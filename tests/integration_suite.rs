//! Suite-level integration: the generated benchmark families have the
//! structural properties the experiments rely on, and msu4 solves a
//! sample of every family within tight budgets.

use std::time::Duration;

use coremax::{disjoint_core_analysis, MaxSatSolver, MaxSatStatus, Msu4};
use coremax_instances::{debug_suite, full_suite, Family, SuiteConfig};
use coremax_sat::Budget;

#[test]
fn msu4_solves_one_instance_of_every_family() {
    let suite = full_suite(&SuiteConfig::default());
    for family in [
        Family::Bmc,
        Family::Equiv,
        Family::Atpg,
        Family::Php,
        Family::Xor,
        Family::Rand3,
        Family::Debug,
    ] {
        let instance = suite
            .iter()
            .find(|i| i.family == family)
            .unwrap_or_else(|| panic!("family {family} missing"));
        let mut solver = Msu4::v2();
        solver.set_budget(Budget::new().with_timeout(Duration::from_secs(30)));
        let solution = solver.solve(&instance.wcnf);
        assert_eq!(
            solution.status,
            MaxSatStatus::Optimal,
            "msu4-v2 aborted on {}",
            instance.name
        );
        let cost = solution.cost.expect("optimal cost");
        if family == Family::Debug {
            // Debug instances may be fully consistent only when the bug
            // is not excited; cost is just bounded.
            assert!(cost <= instance.wcnf.num_soft() as u64);
        } else {
            assert!(cost >= 1, "{} comes from an UNSAT CNF", instance.name);
        }
    }
}

#[test]
fn plain_families_have_small_cores_relative_to_size() {
    // The paper's premise: industrial instances have inconsistency that
    // core extraction isolates. Every circuit family must yield a
    // proper-subset core; BMC instances (property cone inside a larger
    // unrolling) must additionally have *localised* cores.
    let suite = full_suite(&SuiteConfig::default());
    for family in [Family::Bmc, Family::Equiv, Family::Atpg] {
        let instance = suite
            .iter()
            .filter(|i| i.family == family)
            .max_by_key(|i| i.wcnf.num_clauses())
            .expect("family present");
        let cnf = instance.wcnf.to_cnf();
        let report = disjoint_core_analysis(&cnf, &Budget::new());
        assert!(!report.cores.is_empty(), "{}: no core found", instance.name);
        let smallest = report.cores.iter().map(Vec::len).min().expect("non-empty");
        assert!(
            smallest < cnf.num_clauses(),
            "{}: core is the whole formula",
            instance.name
        );
        if family == Family::Bmc {
            assert!(
                smallest * 2 < cnf.num_clauses(),
                "{}: smallest core {} of {} clauses is not localised",
                instance.name,
                smallest,
                cnf.num_clauses()
            );
        }
    }
}

#[test]
fn debug_suite_instances_feasible_and_partial() {
    let suite = debug_suite(&SuiteConfig::default());
    assert_eq!(suite.len(), 29, "Table 2 uses 29 instances");
    for instance in suite.iter().take(6) {
        let mut solver = Msu4::v2();
        solver.set_budget(Budget::new().with_timeout(Duration::from_secs(30)));
        let solution = solver.solve(&instance.wcnf);
        assert_eq!(
            solution.status,
            MaxSatStatus::Optimal,
            "{} did not finish",
            instance.name
        );
        // Hard observation clauses are satisfiable by construction (they
        // come from a real simulation).
        assert!(solution.cost.is_some());
    }
}

#[test]
fn suite_instance_sizes_span_a_range() {
    let suite = full_suite(&SuiteConfig::default());
    let sizes: Vec<usize> = suite.iter().map(|i| i.wcnf.num_clauses()).collect();
    let min = sizes.iter().min().copied().unwrap_or(0);
    let max = sizes.iter().max().copied().unwrap_or(0);
    assert!(min >= 4);
    assert!(max >= 10 * min, "size sweep too flat: {min}..{max}");
}

#[test]
fn scaled_suite_grows_instances_not_just_count() {
    let s1 = full_suite(&SuiteConfig { scale: 1, seed: 7 });
    let s2 = full_suite(&SuiteConfig { scale: 2, seed: 7 });
    let max1 = s1.iter().map(|i| i.wcnf.num_clauses()).max().unwrap();
    let max2 = s2.iter().map(|i| i.wcnf.num_clauses()).max().unwrap();
    assert!(max2 > max1, "scale must increase the largest instance");
}
