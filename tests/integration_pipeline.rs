//! End-to-end pipelines across crates: circuit → CNF → SAT/MaxSAT, and
//! the full design-debugging flow the paper motivates.

use coremax::{verify_solution, MaxSatSolver, MaxSatStatus, Msu4};
use coremax_circuits::{atpg, builders, debug, miter, seq, transform, tseitin};
use coremax_cnf::{dimacs, WcnfFormula};
use coremax_sat::{SolveOutcome, Solver};

#[test]
fn adder_equivalence_pipeline() {
    // Build → rewrite → miter → Tseitin → SAT: UNSAT proves equivalence,
    // and the core is itself unsatisfiable.
    let a = builders::ripple_carry_adder(4);
    let b = transform::rewrite_nand(&builders::majority_adder(4));
    let m = miter::build_miter(&a, &b).expect("interfaces match");
    let enc = tseitin::encode(&m);

    let mut solver = Solver::new();
    solver.add_formula(&enc.formula);
    solver.add_clause([enc.output_lits[0]]);
    assert_eq!(solver.solve(), SolveOutcome::Unsat);

    let core = solver.unsat_core().expect("core").to_vec();
    assert!(!core.is_empty());
    // Replay only the core (plus the output assertion, which has the
    // last clause id) and confirm it is unsatisfiable on its own.
    let mut replay = Solver::new();
    replay.ensure_vars(enc.formula.num_vars());
    let total = enc.formula.num_clauses();
    for id in &core {
        if id.index() < total {
            replay.add_clause(enc.formula.clause(id.index()).lits().iter().copied());
        } else {
            replay.add_clause([enc.output_lits[0]]);
        }
    }
    assert_eq!(replay.solve(), SolveOutcome::Unsat, "core must be UNSAT");
}

#[test]
fn bmc_pipeline_depth_sweep() {
    let machine = seq::counter_with_safe_property(2);
    let width = machine.core.outputs().len();
    for k in 1..=5 {
        let unrolled = seq::unroll(&machine, k);
        let enc = tseitin::encode(&unrolled);
        let mut solver = Solver::new();
        solver.add_formula(&enc.formula);
        let violations: Vec<_> = (0..k)
            .map(|t| enc.output_lits[(t + 1) * width - 1])
            .collect();
        solver.add_clause(violations);
        assert_eq!(solver.solve(), SolveOutcome::Unsat, "depth {k}");
    }
}

#[test]
fn design_debugging_pipeline_localises_bug() {
    let reference = builders::comparator(4);
    let (buggy, bug_gate) = debug::mutate_gate(&reference, 0xBEEF).expect("has gates");
    let instance =
        debug::debug_instance(&reference, &buggy, bug_gate, 3, 0xF00D).expect("interfaces match");

    let mut solver = Msu4::v2();
    let solution = solver.solve(&instance.wcnf);
    assert_eq!(solution.status, MaxSatStatus::Optimal);
    assert!(verify_solution(&instance.wcnf, &solution));
    assert!(solution.cost.expect("cost") <= instance.cost_upper_bound);
}

#[test]
fn atpg_pipeline_testable_and_untestable() {
    let base = builders::ripple_carry_adder(3);
    // A real fault on a primary input is testable.
    let testable = atpg::atpg_miter(
        &base,
        atpg::StuckAtFault {
            net: base.input(2),
            value: true,
        },
    );
    let enc = tseitin::encode(&testable);
    let mut solver = Solver::new();
    solver.add_formula(&enc.formula);
    solver.add_clause([enc.output_lits[0]]);
    assert_eq!(solver.solve(), SolveOutcome::Sat);

    // A planted-redundancy fault is untestable.
    let (with_red, r) = atpg::with_redundant_logic(&base);
    let untestable = atpg::atpg_miter(
        &with_red,
        atpg::StuckAtFault {
            net: r,
            value: false,
        },
    );
    let enc2 = tseitin::encode(&untestable);
    let mut solver2 = Solver::new();
    solver2.add_formula(&enc2.formula);
    solver2.add_clause([enc2.output_lits[0]]);
    assert_eq!(solver2.solve(), SolveOutcome::Unsat);
}

#[test]
fn wcnf_file_round_trip_preserves_optimum() {
    let reference = builders::parity_tree(4);
    let (buggy, g) = debug::mutate_gate(&reference, 3).expect("gates");
    let instance = debug::debug_instance(&reference, &buggy, g, 2, 5).expect("ok");

    let text = dimacs::write_wcnf(&instance.wcnf);
    let reparsed = dimacs::parse_wcnf(&text).expect("own output parses");
    assert_eq!(reparsed, instance.wcnf);

    let a = Msu4::v2().solve(&instance.wcnf);
    let b = Msu4::v1().solve(&reparsed);
    assert_eq!(a.cost, b.cost);
}

#[test]
fn maxsat_on_unsat_cnf_counts_min_falsified() {
    // Cross-crate sanity: the MaxSAT cost of an UNSAT CNF is ≥ 1 and a
    // verified model attains it.
    let cnf = coremax_instances::pigeonhole(3);
    let wcnf = WcnfFormula::from_cnf_all_soft(&cnf);
    let solution = Msu4::v2().solve(&wcnf);
    let cost = solution.cost.expect("optimal");
    assert!(cost >= 1);
    assert!(verify_solution(&wcnf, &solution));
    // PHP(4,3): exactly one pigeon must be dropped.
    assert_eq!(cost, 1);
}
