//! Cross-algorithm agreement: every solver in the suite must report the
//! same optimum on the same instance — including the exhaustive oracle
//! on small formulas.

use coremax::{
    BinarySearchSat, BranchBound, LinearSearchSat, MaxSatSolver, Msu1, Msu2, Msu3, Msu4,
    PboBaseline,
};
use coremax_cnf::{CnfFormula, Lit, Var, WcnfFormula};
use coremax_sat::dpll_max_satisfiable;

fn all_solvers() -> Vec<Box<dyn MaxSatSolver>> {
    vec![
        Box::new(Msu4::v1()),
        Box::new(Msu4::v2()),
        Box::new(Msu1::new()),
        Box::new(Msu2::new()),
        Box::new(Msu3::new()),
        Box::new(PboBaseline::new()),
        Box::new(BranchBound::new()),
        Box::new(LinearSearchSat::new()),
        Box::new(BinarySearchSat::new()),
    ]
}

fn random_cnf(seed: &mut u64, num_vars: usize, num_clauses: usize) -> CnfFormula {
    let mut next = move || {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    };
    let mut f = CnfFormula::with_vars(num_vars);
    for _ in 0..num_clauses {
        let len = 1 + (next() % 3) as usize;
        let lits: Vec<Lit> = (0..len)
            .map(|_| {
                let v = Var::new((next() % num_vars as u64) as u32);
                Lit::new(v, next() & 1 == 0)
            })
            .collect();
        f.add_clause(lits);
    }
    f
}

#[test]
fn all_solvers_agree_with_oracle_on_random_unweighted() {
    let mut seed = 0x1234_5678_9ABC_DEF0u64;
    for round in 0..12 {
        let f = random_cnf(&mut seed, 5, 8 + round % 7);
        let oracle = (f.num_clauses() - dpll_max_satisfiable(&f)) as u64;
        let w = WcnfFormula::from_cnf_all_soft(&f);
        for mut solver in all_solvers() {
            let s = solver.solve(&w);
            assert_eq!(
                s.cost,
                Some(oracle),
                "round {round}: {} disagrees with oracle on {f}",
                solver.name()
            );
            if let Some(model) = &s.model {
                assert_eq!(w.cost(model), s.cost, "{} model mismatch", solver.name());
            }
        }
    }
}

#[test]
fn all_solvers_agree_on_generated_suite_instances() {
    use coremax_instances::{full_suite, SuiteConfig};
    let suite = full_suite(&SuiteConfig::default());
    // Pick small representatives of each plain family.
    let mut picked = Vec::new();
    for family in ["php", "xor", "bmc", "equiv"] {
        if let Some(inst) = suite.iter().find(|i| i.family.name() == family) {
            picked.push(inst);
        }
    }
    assert!(picked.len() >= 3);
    for instance in picked {
        let mut reference: Option<u64> = None;
        for mut solver in all_solvers() {
            // Skip the exponential B&B on larger circuit instances.
            if solver.name() == "maxsatz-bb" && instance.wcnf.num_vars() > 24 {
                continue;
            }
            let s = solver.solve(&instance.wcnf);
            let cost = s.cost.expect("suite instances are solvable");
            match reference {
                None => reference = Some(cost),
                Some(r) => assert_eq!(cost, r, "{} disagrees on {}", solver.name(), instance.name),
            }
        }
    }
}

#[test]
fn partial_maxsat_agreement() {
    // Hard skeleton + soft units; solvers supporting partial MaxSAT must
    // agree (msu* family, pbo, bb, linear, binary).
    let mut w = WcnfFormula::new();
    let a = w.new_var();
    let b = w.new_var();
    let c = w.new_var();
    w.add_hard([Lit::positive(a), Lit::positive(b)]);
    w.add_hard([Lit::negative(a), Lit::negative(b)]);
    w.add_soft([Lit::positive(a)], 1);
    w.add_soft([Lit::positive(b)], 1);
    w.add_soft([Lit::negative(c)], 1);
    w.add_soft([Lit::positive(c)], 1);
    // Exactly one of a,b true → one of the first two soft falsified; the
    // c pair costs one more: optimum 2.
    for mut solver in all_solvers() {
        let s = solver.solve(&w);
        assert_eq!(s.cost, Some(2), "{}", solver.name());
    }
}

#[test]
fn weighted_solvers_agree() {
    // Only pbo and bb accept weights.
    let mut w = WcnfFormula::new();
    let x = w.new_var();
    let y = w.new_var();
    w.add_soft([Lit::positive(x)], 4);
    w.add_soft([Lit::negative(x)], 7);
    w.add_soft([Lit::positive(y)], 2);
    w.add_soft([Lit::negative(y)], 2);
    let mut pbo = PboBaseline::new();
    let mut bb = BranchBound::new();
    let a = pbo.solve(&w);
    let b = bb.solve(&w);
    assert_eq!(a.cost, Some(6));
    assert_eq!(b.cost, Some(6));
}

#[test]
fn infeasible_agreement() {
    let mut w = WcnfFormula::new();
    let x = w.new_var();
    w.add_hard([Lit::positive(x)]);
    w.add_hard([Lit::negative(x)]);
    w.add_soft([Lit::positive(x)], 1);
    for mut solver in all_solvers() {
        let s = solver.solve(&w);
        assert_eq!(
            s.status,
            coremax::MaxSatStatus::Infeasible,
            "{}",
            solver.name()
        );
    }
}
