//! Property tests for DIMACS serialisation: write→parse is the
//! identity for both CNF and WCNF, for arbitrary generated formulas.

use coremax_cnf::{dimacs, CnfFormula, Lit, WcnfFormula};
use proptest::prelude::*;

fn arb_lits(max_var: i32) -> impl Strategy<Value = Vec<Lit>> {
    prop::collection::vec(
        (1..=max_var).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]),
        0..=5,
    )
    .prop_map(|ds| {
        ds.into_iter()
            .map(|d| Lit::from_dimacs(d).unwrap())
            .collect()
    })
}

proptest! {
    #[test]
    fn cnf_roundtrip(clauses in prop::collection::vec(arb_lits(12), 0..30)) {
        let mut f = CnfFormula::new();
        for c in clauses {
            f.add_clause(c);
        }
        let text = dimacs::write_cnf(&f);
        let parsed = dimacs::parse_cnf(&text).expect("own output must parse");
        // Variable counts may differ (writer declares max used), clauses
        // must be identical.
        prop_assert_eq!(f.num_clauses(), parsed.num_clauses());
        for (a, b) in f.iter().zip(parsed.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn wcnf_roundtrip(
        hard in prop::collection::vec(arb_lits(10), 0..10),
        soft in prop::collection::vec((arb_lits(10), 1u64..100), 0..15),
    ) {
        let mut w = WcnfFormula::new();
        for c in hard {
            w.add_hard(c);
        }
        for (c, weight) in soft {
            w.add_soft(c, weight);
        }
        let text = dimacs::write_wcnf(&w);
        let parsed = dimacs::parse_wcnf(&text).expect("own output must parse");
        prop_assert_eq!(w.num_hard(), parsed.num_hard());
        prop_assert_eq!(w.num_soft(), parsed.num_soft());
        for (a, b) in w.soft_clauses().iter().zip(parsed.soft_clauses()) {
            prop_assert_eq!(a, b);
        }
        for (a, b) in w.hard_clauses().iter().zip(parsed.hard_clauses()) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn wcnf_new_format_roundtrip(
        hard in prop::collection::vec(arb_lits(10), 0..10),
        soft in prop::collection::vec((arb_lits(10), 1u64..100), 0..15),
    ) {
        let mut w = WcnfFormula::new();
        for c in hard {
            w.add_hard(c);
        }
        for (c, weight) in soft {
            w.add_soft(c, weight);
        }
        let text = dimacs::write_wcnf_new(&w);
        let parsed = dimacs::parse_wcnf(&text).expect("own output must parse");
        prop_assert_eq!(w.hard_clauses(), parsed.hard_clauses());
        prop_assert_eq!(w.soft_clauses(), parsed.soft_clauses());
        // Cross-dialect agreement: both writers describe one formula.
        let via_classic = dimacs::parse_wcnf(&dimacs::write_wcnf(&w)).expect("classic");
        prop_assert_eq!(via_classic.hard_clauses(), parsed.hard_clauses());
        prop_assert_eq!(via_classic.soft_clauses(), parsed.soft_clauses());
        prop_assert_eq!(via_classic.total_soft_weight(), parsed.total_soft_weight());
    }

    #[test]
    fn parser_never_panics_on_noise(text in "[ \\t\\r\\nhp0-9cw%-]{0,120}") {
        // Arbitrary junk: parsing may fail but must not panic.
        let _ = dimacs::parse_cnf(&text);
        let _ = dimacs::parse_wcnf(&text);
    }

    #[test]
    fn formula_eval_consistent_with_counts(
        clauses in prop::collection::vec(arb_lits(8), 1..20),
        bits in any::<u16>(),
    ) {
        let mut f = CnfFormula::new();
        for c in clauses {
            f.add_clause(c);
        }
        let mut a = coremax_cnf::Assignment::for_vars(f.num_vars());
        for i in 0..f.num_vars().min(16) {
            a.assign(coremax_cnf::Var::new(i as u32), bits >> i & 1 == 1);
        }
        a.complete_with(false);
        let satisfied = f.num_satisfied(&a);
        prop_assert_eq!(satisfied + f.num_unsatisfied(&a), f.num_clauses());
        prop_assert_eq!(f.eval(&a) == Some(true), satisfied == f.num_clauses());
    }
}
