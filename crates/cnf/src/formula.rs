//! Plain CNF formulas.

use std::fmt;

use crate::{Assignment, Clause, Lit, Var};

/// A CNF formula: a conjunction of [`Clause`]s over a dense variable range.
///
/// The formula tracks the number of variables explicitly so that
/// variables may exist without occurring in any clause (useful for
/// auxiliary/blocking variables and for DIMACS headers).
///
/// # Examples
///
/// ```
/// use coremax_cnf::{CnfFormula, Lit};
/// let mut cnf = CnfFormula::new();
/// let x = cnf.new_var();
/// let y = cnf.new_var();
/// cnf.add_clause([Lit::positive(x), Lit::positive(y)]);
/// cnf.add_clause([Lit::negative(x)]);
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.num_clauses(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Creates an empty formula with no variables.
    #[must_use]
    pub fn new() -> Self {
        CnfFormula::default()
    }

    /// Creates an empty formula that already has `num_vars` variables.
    #[must_use]
    pub fn with_vars(num_vars: usize) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Allocates and returns a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables and returns them.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables (including unused ones).
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Ensures the variable range covers `var`.
    pub fn ensure_var(&mut self, var: Var) {
        if var.index() >= self.num_vars {
            self.num_vars = var.index() + 1;
        }
    }

    /// Number of clauses.
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns `true` if the formula has no clauses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Adds a clause, growing the variable range as needed.
    /// Returns the index of the new clause.
    pub fn add_clause<I>(&mut self, lits: I) -> usize
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause = Clause::from_lits(lits);
        for &l in clause.lits() {
            self.ensure_var(l.var());
        }
        self.clauses.push(clause);
        self.clauses.len() - 1
    }

    /// Returns the clause at `index`.
    #[must_use]
    pub fn clause(&self, index: usize) -> &Clause {
        &self.clauses[index]
    }

    /// All clauses.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }

    /// Counts clauses satisfied by `assignment`.
    #[must_use]
    pub fn num_satisfied(&self, assignment: &Assignment) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.is_satisfied_by(assignment))
            .count()
    }

    /// Counts clauses *not* satisfied by `assignment` (falsified or
    /// undecided).
    #[must_use]
    pub fn num_unsatisfied(&self, assignment: &Assignment) -> usize {
        self.num_clauses() - self.num_satisfied(assignment)
    }

    /// Evaluates the whole formula under a (possibly partial) assignment.
    ///
    /// `Some(true)` iff every clause is satisfied; `Some(false)` iff some
    /// clause is falsified; `None` otherwise.
    #[must_use]
    pub fn eval(&self, assignment: &Assignment) -> Option<bool> {
        let mut undecided = false;
        for c in &self.clauses {
            match c.eval(assignment) {
                Some(false) => return Some(false),
                None => undecided = true,
                Some(true) => {}
            }
        }
        if undecided {
            None
        } else {
            Some(true)
        }
    }
}

impl FromIterator<Clause> for CnfFormula {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        let mut f = CnfFormula::new();
        for c in iter {
            for &l in c.lits() {
                f.ensure_var(l.var());
            }
            f.clauses.push(c);
        }
        f
    }
}

impl Extend<Clause> for CnfFormula {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for c in iter {
            for &l in c.lits() {
                self.ensure_var(l.var());
            }
            self.clauses.push(c);
        }
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d).unwrap()
    }

    #[test]
    fn var_allocation() {
        let mut f = CnfFormula::new();
        let a = f.new_var();
        let b = f.new_var();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(f.num_vars(), 2);
        let more = f.new_vars(3);
        assert_eq!(more.len(), 3);
        assert_eq!(f.num_vars(), 5);
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut f = CnfFormula::new();
        f.add_clause([lit(10)]);
        assert_eq!(f.num_vars(), 10);
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn ensure_var_never_shrinks() {
        let mut f = CnfFormula::with_vars(5);
        f.ensure_var(Var::new(2));
        assert_eq!(f.num_vars(), 5);
        f.ensure_var(Var::new(9));
        assert_eq!(f.num_vars(), 10);
    }

    #[test]
    fn satisfied_counts() {
        // (x1)(¬x1 ∨ x2)(¬x2): unsat, best is 2.
        let mut f = CnfFormula::new();
        f.add_clause([lit(1)]);
        f.add_clause([lit(-1), lit(2)]);
        f.add_clause([lit(-2)]);
        let a = Assignment::from_bools(&[true, true]);
        assert_eq!(f.num_satisfied(&a), 2);
        assert_eq!(f.num_unsatisfied(&a), 1);
        assert_eq!(f.eval(&a), Some(false));
    }

    #[test]
    fn eval_partial() {
        let mut f = CnfFormula::new();
        f.add_clause([lit(1), lit(2)]);
        let mut a = Assignment::for_vars(2);
        assert_eq!(f.eval(&a), None);
        a.assign(Var::new(0), true);
        assert_eq!(f.eval(&a), Some(true));
    }

    #[test]
    fn empty_formula_is_true() {
        let f = CnfFormula::new();
        assert_eq!(f.eval(&Assignment::for_vars(0)), Some(true));
        assert_eq!(f.to_string(), "⊤");
    }

    #[test]
    fn from_and_extend() {
        let c1 = Clause::from_lits([lit(1)]);
        let c2 = Clause::from_lits([lit(-2), lit(3)]);
        let mut f: CnfFormula = [c1].into_iter().collect();
        assert_eq!(f.num_vars(), 1);
        f.extend([c2]);
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
    }

    #[test]
    fn display_conjunction() {
        let mut f = CnfFormula::new();
        f.add_clause([lit(1)]);
        f.add_clause([lit(-2)]);
        assert_eq!(f.to_string(), "(x1) ∧ (¬x2)");
    }
}
