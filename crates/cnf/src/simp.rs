//! Boundary types between the formula layer and the `coremax_simp`
//! preprocessing subsystem.
//!
//! The simplifier rewrites a [`WcnfFormula`] into a smaller one over a
//! compacted variable space. Three artefacts cross the boundary back to
//! the solvers:
//!
//! - [`VarMap`] — the dense renaming between the original and the
//!   compacted variable spaces;
//! - [`Reconstructor`] — the elimination stack: enough of the removed
//!   clauses to extend any model of the simplified formula to a model
//!   of the original one (MiniSAT/SatELite `elimclauses` style);
//! - [`SimpResult`] — the bundle of simplified formula, map,
//!   reconstructor, and the cost already decided during preprocessing.
//!
//! These types live in `coremax_cnf` (not in the simplifier crate) so
//! that every consumer — the MaxSAT algorithms, the CLI, the benches —
//! can hold them without depending on the simplifier implementation.

use crate::{Assignment, Lit, Var, WcnfFormula, Weight};

/// A renaming between an *original* variable space and the dense
/// *compacted* space of a simplified formula.
///
/// Variables eliminated or fixed during preprocessing have no image;
/// surviving variables map to a contiguous prefix `0..num_new_vars()`.
///
/// # Examples
///
/// ```
/// use coremax_cnf::{simp::VarMap, Lit, Var};
/// // Keep variables 0 and 2 of an original 3-variable space.
/// let map = VarMap::from_kept(&[true, false, true]);
/// assert_eq!(map.num_old_vars(), 3);
/// assert_eq!(map.num_new_vars(), 2);
/// assert_eq!(map.map_var(Var::new(2)), Some(Var::new(1)));
/// assert_eq!(map.map_var(Var::new(1)), None);
/// assert_eq!(map.old_var(Var::new(1)), Var::new(2));
/// let l = Lit::negative(Var::new(2));
/// assert_eq!(map.map_lit(l), Some(Lit::negative(Var::new(1))));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VarMap {
    old_to_new: Vec<Option<Var>>,
    new_to_old: Vec<Var>,
}

impl VarMap {
    /// The identity map over `num_vars` variables.
    #[must_use]
    pub fn identity(num_vars: usize) -> Self {
        VarMap {
            old_to_new: (0..num_vars).map(|i| Some(Var::new(i as u32))).collect(),
            new_to_old: (0..num_vars).map(|i| Var::new(i as u32)).collect(),
        }
    }

    /// Builds the map that keeps exactly the variables flagged in
    /// `keep` (indexed by original variable), renumbering them densely
    /// in ascending order.
    #[must_use]
    pub fn from_kept(keep: &[bool]) -> Self {
        let mut old_to_new = Vec::with_capacity(keep.len());
        let mut new_to_old = Vec::new();
        for (old, &kept) in keep.iter().enumerate() {
            if kept {
                old_to_new.push(Some(Var::new(new_to_old.len() as u32)));
                new_to_old.push(Var::new(old as u32));
            } else {
                old_to_new.push(None);
            }
        }
        VarMap {
            old_to_new,
            new_to_old,
        }
    }

    /// Size of the original variable space.
    #[must_use]
    pub fn num_old_vars(&self) -> usize {
        self.old_to_new.len()
    }

    /// Size of the compacted variable space.
    #[must_use]
    pub fn num_new_vars(&self) -> usize {
        self.new_to_old.len()
    }

    /// Image of an original variable, or `None` if it was removed.
    #[must_use]
    pub fn map_var(&self, old: Var) -> Option<Var> {
        self.old_to_new.get(old.index()).copied().flatten()
    }

    /// Image of an original literal (same polarity), or `None` if its
    /// variable was removed.
    #[must_use]
    pub fn map_lit(&self, old: Lit) -> Option<Lit> {
        self.map_var(old.var())
            .map(|v| Lit::new(v, old.is_positive()))
    }

    /// Pre-image of a compacted variable.
    ///
    /// # Panics
    ///
    /// Panics if `new` is outside the compacted space.
    #[must_use]
    pub fn old_var(&self, new: Var) -> Var {
        self.new_to_old[new.index()]
    }

    /// The full compacted→original table (indexed by compacted var).
    #[must_use]
    pub fn new_to_old(&self) -> &[Var] {
        &self.new_to_old
    }

    /// The full original→compacted table (`None` = variable removed).
    #[must_use]
    pub fn old_to_new(&self) -> &[Option<Var>] {
        &self.old_to_new
    }

    /// Translates a model over the compacted space into a (partial)
    /// assignment over the original space: every surviving variable
    /// receives its value, removed variables stay unassigned.
    #[must_use]
    pub fn lift_model(&self, model: &Assignment) -> Assignment {
        let mut out = Assignment::for_vars(self.num_old_vars());
        for (new_idx, &old) in self.new_to_old.iter().enumerate() {
            if let Some(value) = model.value(Var::new(new_idx as u32)) {
                out.assign(old, value);
            }
        }
        out
    }
}

/// The elimination stack: removed clauses (and forced literals) kept in
/// the order preprocessing removed them, so models of the simplified
/// formula can be extended to models of the original.
///
/// Each step is either a *unit* (a literal the extension must make true
/// unless already satisfied) or a saved *clause* stored pivot-first.
/// [`Reconstructor::extend_model`] walks the stack **in reverse**: if a
/// step's clause is not satisfied by the model built so far, its pivot
/// literal is assigned true. This is exactly the MiniSAT `elimclauses`
/// discipline, and it makes the following invariant hold: if the input
/// model satisfies the simplified formula, the extended model satisfies
/// the original formula's hard clauses, and falsifies exactly the same
/// soft clauses the simplified model does (plus the ones preprocessing
/// already charged to [`SimpResult::cost_offset`]).
///
/// # Examples
///
/// Eliminating `x2` from `(x1 ∨ x2)` saves the clause and a default:
///
/// ```
/// use coremax_cnf::{simp::Reconstructor, Assignment, Lit, Var};
/// let x1 = Var::new(0);
/// let x2 = Var::new(1);
/// let mut r = Reconstructor::new();
/// // Saved side: clauses containing x2, pivot first; default ¬x2.
/// r.push_clause(Lit::positive(x2), &[Lit::positive(x2), Lit::positive(x1)]);
/// r.push_unit(Lit::negative(x2));
/// // A model with x1 = false needs x2 = true…
/// let mut m = Assignment::from_bools(&[false]);
/// r.extend_model(&mut m);
/// assert_eq!(m.value(x2), Some(true));
/// // …while a model with x1 = true takes the default x2 = false.
/// let mut m = Assignment::from_bools(&[true]);
/// r.extend_model(&mut m);
/// assert_eq!(m.value(x2), Some(false));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Reconstructor {
    /// Flat literal storage; clauses are stored pivot-first.
    lits: Vec<Lit>,
    /// Exclusive end offset of each step in `lits`.
    ends: Vec<u32>,
    /// Highest variable index referenced (+1), so extension can grow
    /// the model before assigning.
    var_watermark: usize,
}

impl Reconstructor {
    /// Creates an empty stack.
    #[must_use]
    pub fn new() -> Self {
        Reconstructor::default()
    }

    /// Number of recorded steps.
    #[must_use]
    pub fn num_steps(&self) -> usize {
        self.ends.len()
    }

    /// Returns `true` if no step was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Records a forced literal: the extension assigns it true unless
    /// the model already satisfies it. Used for top-level facts, pure
    /// literals, and the default polarity of eliminated variables.
    pub fn push_unit(&mut self, lit: Lit) {
        self.note_var(lit);
        self.lits.push(lit);
        self.ends.push(self.lits.len() as u32);
    }

    /// Records a removed clause with its pivot (the literal of the
    /// eliminated variable). The pivot is stored first; the extension
    /// assigns it true when the rest of the clause is unsatisfied.
    ///
    /// # Panics
    ///
    /// Panics if `pivot` does not occur in `lits`.
    pub fn push_clause(&mut self, pivot: Lit, lits: &[Lit]) {
        assert!(lits.contains(&pivot), "pivot must occur in the clause");
        let first = self.lits.len();
        self.lits.extend_from_slice(lits);
        // Swap the pivot to the front.
        let at = self.lits[first..].iter().position(|&l| l == pivot).unwrap() + first;
        self.lits.swap(first, at);
        for &l in lits {
            self.note_var(l);
        }
        self.ends.push(self.lits.len() as u32);
    }

    fn note_var(&mut self, lit: Lit) {
        self.var_watermark = self.var_watermark.max(lit.var().index() + 1);
    }

    /// Extends `model` (an assignment over the *original* variable
    /// space) by replaying the stack in reverse. See the type docs for
    /// the invariant this establishes.
    pub fn extend_model(&self, model: &mut Assignment) {
        model.grow_to(self.var_watermark);
        for step in (0..self.ends.len()).rev() {
            let start = if step == 0 {
                0
            } else {
                self.ends[step - 1] as usize
            };
            let clause = &self.lits[start..self.ends[step] as usize];
            if !clause.iter().any(|&l| model.satisfies(l)) {
                model.assign_lit(clause[0]);
            }
        }
    }
}

/// Everything a solver needs to work on a simplified formula and still
/// answer questions about the original one.
///
/// Produced by `coremax_simp::Simplifier::simplify`; consumed by the
/// preprocessing wrapper in `coremax` and by the benches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpResult {
    /// The simplified formula, over the compacted variable space.
    pub formula: WcnfFormula,
    /// Renaming between the original and compacted variable spaces.
    pub var_map: VarMap,
    /// Elimination stack for model reconstruction.
    pub reconstructor: Reconstructor,
    /// Weight of soft clauses preprocessing already proved falsified in
    /// every feasible assignment (e.g. soft clauses emptied by hard
    /// unit facts). Add this to any cost computed on
    /// [`SimpResult::formula`] to obtain a cost on the original.
    pub cost_offset: Weight,
    /// `true` when preprocessing refuted the hard clauses outright; the
    /// other fields are then meaningless and the instance is
    /// infeasible.
    pub infeasible: bool,
}

impl SimpResult {
    /// A pass-through result: `formula` is a clone of `wcnf`, the map
    /// is the identity, and reconstruction is a no-op. Useful as the
    /// "preprocessing disabled" value and in tests.
    #[must_use]
    pub fn identity(wcnf: &WcnfFormula) -> Self {
        SimpResult {
            formula: wcnf.clone(),
            var_map: VarMap::identity(wcnf.num_vars()),
            reconstructor: Reconstructor::new(),
            cost_offset: 0,
            infeasible: false,
        }
    }

    /// Turns a model of [`SimpResult::formula`] into a total model of
    /// the original formula: lift through the variable map, default
    /// every non-surviving variable to false, then replay the
    /// elimination stack.
    ///
    /// Defaulting happens *before* the replay: saved clauses may
    /// mention variables owned by no reconstruction step (their last
    /// clauses died as a side effect of another elimination), and the
    /// replay must evaluate such literals under their final value, not
    /// treat them as unsatisfied placeholders. Replay steps then
    /// override the default wherever the stack demands it.
    #[must_use]
    pub fn reconstruct_model(&self, simplified_model: &Assignment) -> Assignment {
        let mut model = self.var_map.lift_model(simplified_model);
        model.grow_to(self.var_map.num_old_vars());
        model.complete_with(false);
        self.reconstructor.extend_model(&mut model);
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d).unwrap()
    }

    #[test]
    fn identity_map_roundtrips() {
        let map = VarMap::identity(3);
        assert_eq!(map.num_old_vars(), 3);
        assert_eq!(map.num_new_vars(), 3);
        for i in 0..3u32 {
            assert_eq!(map.map_var(Var::new(i)), Some(Var::new(i)));
            assert_eq!(map.old_var(Var::new(i)), Var::new(i));
        }
        assert_eq!(map.map_var(Var::new(7)), None, "out of range maps to None");
    }

    #[test]
    fn from_kept_renumbers_densely() {
        let map = VarMap::from_kept(&[false, true, false, true, true]);
        assert_eq!(map.num_new_vars(), 3);
        assert_eq!(map.map_var(Var::new(1)), Some(Var::new(0)));
        assert_eq!(map.map_var(Var::new(3)), Some(Var::new(1)));
        assert_eq!(map.map_var(Var::new(4)), Some(Var::new(2)));
        assert_eq!(map.map_var(Var::new(0)), None);
        assert_eq!(map.map_lit(lit(-4)), Some(Lit::negative(Var::new(1))));
        assert_eq!(map.map_lit(lit(3)), None);
    }

    #[test]
    fn lift_model_assigns_survivors_only() {
        let map = VarMap::from_kept(&[true, false, true]);
        let m = Assignment::from_bools(&[true, false]); // compacted space
        let lifted = map.lift_model(&m);
        assert_eq!(lifted.num_vars(), 3);
        assert_eq!(lifted.value(Var::new(0)), Some(true));
        assert_eq!(lifted.value(Var::new(1)), None);
        assert_eq!(lifted.value(Var::new(2)), Some(false));
    }

    #[test]
    fn unit_steps_fire_only_when_unsatisfied() {
        let mut r = Reconstructor::new();
        r.push_unit(lit(1));
        let mut m = Assignment::for_vars(1);
        m.assign(Var::new(0), false);
        r.extend_model(&mut m);
        // Already assigned false: the unit is *not* satisfied, so the
        // step flips it — unit steps are facts, not suggestions.
        assert_eq!(m.value(Var::new(0)), Some(true));
        let mut m2 = Assignment::for_vars(1);
        r.extend_model(&mut m2);
        assert_eq!(m2.value(Var::new(0)), Some(true));
    }

    #[test]
    fn elimination_reverse_replay() {
        // Eliminate x2 from (x2 ∨ x1)(¬x2 ∨ x3): resolvent (x1 ∨ x3).
        // Save the positive side plus the ¬x2 default.
        let mut r = Reconstructor::new();
        r.push_clause(lit(2), &[lit(2), lit(1)]);
        r.push_unit(lit(-2));
        // Model of the resolvent with x1 false, x3 true: x2 must be true.
        let mut m = Assignment::for_vars(3);
        m.assign(Var::new(0), false);
        m.assign(Var::new(2), true);
        r.extend_model(&mut m);
        assert_eq!(m.value(Var::new(1)), Some(true));
        // Model with x1 true: the default ¬x2 wins and (¬x2 ∨ x3) holds.
        let mut m = Assignment::for_vars(3);
        m.assign(Var::new(0), true);
        m.assign(Var::new(2), false);
        r.extend_model(&mut m);
        assert_eq!(m.value(Var::new(1)), Some(false));
    }

    #[test]
    fn pivot_moved_to_front() {
        let mut r = Reconstructor::new();
        r.push_clause(lit(3), &[lit(1), lit(2), lit(3)]);
        // All other literals false → pivot (x3) must be set true.
        let mut m = Assignment::from_bools(&[false, false]);
        r.extend_model(&mut m);
        assert_eq!(m.value(Var::new(2)), Some(true));
    }

    #[test]
    #[should_panic(expected = "pivot must occur")]
    fn push_clause_requires_pivot_membership() {
        let mut r = Reconstructor::new();
        r.push_clause(lit(4), &[lit(1), lit(2)]);
    }

    #[test]
    fn identity_result_reconstructs_verbatim() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        let y = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_soft([Lit::negative(y)], 2);
        let r = SimpResult::identity(&w);
        assert!(!r.infeasible);
        assert_eq!(r.cost_offset, 0);
        assert_eq!(r.formula, w);
        let m = Assignment::from_bools(&[true, false]);
        assert_eq!(r.reconstruct_model(&m), m);
    }

    #[test]
    fn reconstruct_model_is_total() {
        // 4 original vars: var 0 survives, var 1 eliminated with a step,
        // vars 2-3 untouched (default false).
        let mut r = SimpResult::identity(&WcnfFormula::with_vars(4));
        r.var_map = VarMap::from_kept(&[true, false, false, false]);
        r.reconstructor.push_unit(lit(2));
        let m = Assignment::from_bools(&[true]);
        let full = r.reconstruct_model(&m);
        assert!(full.is_total());
        assert_eq!(full.num_vars(), 4);
        assert_eq!(full.value(Var::new(0)), Some(true));
        assert_eq!(full.value(Var::new(1)), Some(true));
        assert_eq!(full.value(Var::new(2)), Some(false));
        assert_eq!(full.value(Var::new(3)), Some(false));
    }
}
