//! Weighted / partial CNF formulas for MaxSAT.

use std::fmt;

use crate::{Assignment, Clause, CnfFormula, Lit, Var};

/// Clause weight for weighted (partial) MaxSAT.
pub type Weight = u64;

/// Weight sentinel used by WCNF "top": clauses with this weight are hard.
pub const HARD_WEIGHT: Weight = Weight::MAX;

/// A soft clause: a clause together with a positive weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftClause {
    /// The clause itself.
    pub clause: Clause,
    /// Cost of falsifying the clause (must be ≥ 1).
    pub weight: Weight,
}

/// One weight stratum of a [`WcnfFormula`]: the weight shared by a
/// group of soft clauses together with their indices into
/// [`WcnfFormula::soft_clauses`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightStratum {
    /// The weight every clause of the stratum carries.
    pub weight: Weight,
    /// Indices of the stratum's clauses, in input order.
    pub indices: Vec<usize>,
}

impl WeightStratum {
    /// Total weight of the stratum (`weight × |indices|`), saturating.
    #[must_use]
    pub fn total_weight(&self) -> Weight {
        self.weight.saturating_mul(self.indices.len() as Weight)
    }
}

/// A weighted partial CNF formula: hard clauses that must be satisfied
/// plus soft clauses with falsification costs.
///
/// Plain (unweighted) MaxSAT is the special case "no hard clauses, all
/// weights 1"; partial MaxSAT allows hard clauses; weighted variants
/// carry arbitrary weights. All four standard MaxSAT flavours are
/// expressible.
///
/// # Examples
///
/// ```
/// use coremax_cnf::{WcnfFormula, Lit, Var};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_hard([Lit::positive(x)]);
/// w.add_soft([Lit::negative(x)], 1);
/// assert_eq!(w.num_hard(), 1);
/// assert_eq!(w.num_soft(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WcnfFormula {
    num_vars: usize,
    hard: Vec<Clause>,
    soft: Vec<SoftClause>,
}

impl WcnfFormula {
    /// Creates an empty formula.
    #[must_use]
    pub fn new() -> Self {
        WcnfFormula::default()
    }

    /// Creates an empty formula with `num_vars` pre-allocated variables.
    #[must_use]
    pub fn with_vars(num_vars: usize) -> Self {
        WcnfFormula {
            num_vars,
            ..WcnfFormula::default()
        }
    }

    /// Builds a plain MaxSAT instance: every clause of `cnf` becomes a
    /// soft clause of weight 1; there are no hard clauses.
    #[must_use]
    pub fn from_cnf_all_soft(cnf: &CnfFormula) -> Self {
        let mut w = WcnfFormula::with_vars(cnf.num_vars());
        for c in cnf.iter() {
            w.soft.push(SoftClause {
                clause: c.clone(),
                weight: 1,
            });
        }
        w
    }

    /// Allocates and returns a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Ensures the variable range covers `var`.
    pub fn ensure_var(&mut self, var: Var) {
        if var.index() >= self.num_vars {
            self.num_vars = var.index() + 1;
        }
    }

    /// Adds a hard clause.
    pub fn add_hard<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let clause = Clause::from_lits(lits);
        for &l in clause.lits() {
            self.ensure_var(l.var());
        }
        self.hard.push(clause);
    }

    /// Adds a soft clause with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight == 0` or `weight == HARD_WEIGHT` (use
    /// [`WcnfFormula::add_hard`] for hard clauses).
    pub fn add_soft<I: IntoIterator<Item = Lit>>(&mut self, lits: I, weight: Weight) {
        assert!(weight > 0, "soft clause weight must be positive");
        assert!(
            weight != HARD_WEIGHT,
            "HARD_WEIGHT is reserved; use add_hard"
        );
        let clause = Clause::from_lits(lits);
        for &l in clause.lits() {
            self.ensure_var(l.var());
        }
        self.soft.push(SoftClause { clause, weight });
    }

    /// Number of hard clauses.
    #[must_use]
    pub fn num_hard(&self) -> usize {
        self.hard.len()
    }

    /// Number of soft clauses.
    #[must_use]
    pub fn num_soft(&self) -> usize {
        self.soft.len()
    }

    /// Total number of clauses (hard + soft).
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.hard.len() + self.soft.len()
    }

    /// The hard clauses.
    #[must_use]
    pub fn hard_clauses(&self) -> &[Clause] {
        &self.hard
    }

    /// The soft clauses.
    #[must_use]
    pub fn soft_clauses(&self) -> &[SoftClause] {
        &self.soft
    }

    /// Sum of all soft weights (the cost of falsifying everything),
    /// saturating at [`Weight::MAX`] rather than wrapping: weighted
    /// instances near the representable limit must degrade to a
    /// conservative bound, never to a silently smaller total.
    #[must_use]
    pub fn total_soft_weight(&self) -> Weight {
        self.soft
            .iter()
            .fold(0, |acc: Weight, s| acc.saturating_add(s.weight))
    }

    /// Sum of all soft weights, or `None` if the total overflows
    /// [`Weight`]. The checked twin of
    /// [`WcnfFormula::total_soft_weight`] for callers (replication,
    /// stratification) that must *reject* rather than cap.
    #[must_use]
    pub fn checked_total_soft_weight(&self) -> Option<Weight> {
        self.soft
            .iter()
            .try_fold(0, |acc: Weight, s| acc.checked_add(s.weight))
    }

    /// The distinct soft-clause weights in strictly decreasing order —
    /// the stratum boundaries weight-aware solvers iterate over.
    #[must_use]
    pub fn distinct_soft_weights(&self) -> Vec<Weight> {
        let mut weights: Vec<Weight> = self.soft.iter().map(|s| s.weight).collect();
        weights.sort_unstable_by(|a, b| b.cmp(a));
        weights.dedup();
        weights
    }

    /// The largest soft weight, or `None` when there are no soft
    /// clauses.
    #[must_use]
    pub fn max_soft_weight(&self) -> Option<Weight> {
        self.soft.iter().map(|s| s.weight).max()
    }

    /// Partitions the soft clauses into weight strata, heaviest first.
    /// Each stratum carries its weight and the indices (into
    /// [`WcnfFormula::soft_clauses`]) of the clauses at that weight.
    /// Concatenating the strata yields every soft index exactly once.
    ///
    /// # Examples
    ///
    /// ```
    /// use coremax_cnf::{Lit, Var, WcnfFormula};
    /// let mut w = WcnfFormula::new();
    /// let x = w.new_var();
    /// w.add_soft([Lit::positive(x)], 5);
    /// w.add_soft([Lit::negative(x)], 1);
    /// w.add_soft([Lit::positive(x)], 5);
    /// let strata = w.weight_strata();
    /// assert_eq!(strata.len(), 2);
    /// assert_eq!(strata[0].weight, 5);
    /// assert_eq!(strata[0].indices, vec![0, 2]);
    /// assert_eq!(strata[1].weight, 1);
    /// ```
    #[must_use]
    pub fn weight_strata(&self) -> Vec<WeightStratum> {
        // Single sort + adjacent grouping: weight_strata runs on every
        // stratified solve, so avoid a per-distinct-weight scan.
        let mut by_weight: Vec<(Weight, usize)> = self
            .soft
            .iter()
            .enumerate()
            .map(|(i, s)| (s.weight, i))
            .collect();
        by_weight.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut strata: Vec<WeightStratum> = Vec::new();
        for (weight, index) in by_weight {
            match strata.last_mut() {
                Some(stratum) if stratum.weight == weight => stratum.indices.push(index),
                _ => strata.push(WeightStratum {
                    weight,
                    indices: vec![index],
                }),
            }
        }
        strata
    }

    /// Returns `true` if all soft clauses have weight 1.
    #[must_use]
    pub fn is_unweighted(&self) -> bool {
        self.soft.iter().all(|s| s.weight == 1)
    }

    /// Returns `true` if there are no hard clauses.
    #[must_use]
    pub fn is_plain_maxsat(&self) -> bool {
        self.hard.is_empty()
    }

    /// Cost of `assignment`: the total weight of falsified soft clauses
    /// (saturating at [`Weight::MAX`], like [`total_soft_weight`]
    /// (Self::total_soft_weight) — a wrapped sum could certify a bogus
    /// low cost), or `None` if some hard clause is not satisfied.
    #[must_use]
    pub fn cost(&self, assignment: &Assignment) -> Option<Weight> {
        for h in &self.hard {
            if !h.is_satisfied_by(assignment) {
                return None;
            }
        }
        Some(
            self.soft
                .iter()
                .filter(|s| !s.clause.is_satisfied_by(assignment))
                .fold(0, |acc: Weight, s| acc.saturating_add(s.weight)),
        )
    }

    /// Number of satisfied soft clauses (ignoring weights); `None` if a
    /// hard clause is violated.
    #[must_use]
    pub fn num_soft_satisfied(&self, assignment: &Assignment) -> Option<usize> {
        for h in &self.hard {
            if !h.is_satisfied_by(assignment) {
                return None;
            }
        }
        Some(
            self.soft
                .iter()
                .filter(|s| s.clause.is_satisfied_by(assignment))
                .count(),
        )
    }

    /// Flattens to a plain CNF containing the hard clauses followed by
    /// the soft clauses (weights dropped). Useful for satisfiability
    /// pre-checks and for algorithms that treat the instance as plain
    /// MaxSAT.
    #[must_use]
    pub fn to_cnf(&self) -> CnfFormula {
        let mut f = CnfFormula::with_vars(self.num_vars);
        for c in &self.hard {
            f.add_clause(c.lits().iter().copied());
        }
        for s in &self.soft {
            f.add_clause(s.clause.lits().iter().copied());
        }
        f
    }
}

impl fmt::Display for WcnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wcnf(vars={}, hard={}, soft={})",
            self.num_vars,
            self.hard.len(),
            self.soft.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d).unwrap()
    }

    #[test]
    fn build_and_count() {
        let mut w = WcnfFormula::new();
        w.add_hard([lit(1), lit(2)]);
        w.add_soft([lit(-1)], 3);
        w.add_soft([lit(-2)], 2);
        assert_eq!(w.num_vars(), 2);
        assert_eq!(w.num_hard(), 1);
        assert_eq!(w.num_soft(), 2);
        assert_eq!(w.num_clauses(), 3);
        assert_eq!(w.total_soft_weight(), 5);
        assert!(!w.is_unweighted());
        assert!(!w.is_plain_maxsat());
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_rejected() {
        let mut w = WcnfFormula::new();
        w.add_soft([lit(1)], 0);
    }

    #[test]
    #[should_panic(expected = "HARD_WEIGHT is reserved")]
    fn hard_weight_rejected_for_soft() {
        let mut w = WcnfFormula::new();
        w.add_soft([lit(1)], HARD_WEIGHT);
    }

    #[test]
    fn cost_semantics() {
        let mut w = WcnfFormula::new();
        w.add_hard([lit(1)]);
        w.add_soft([lit(2)], 4);
        w.add_soft([lit(-2)], 1);
        // x1=T x2=T: hard ok, falsifies (¬x2) → cost 1.
        let a = Assignment::from_bools(&[true, true]);
        assert_eq!(w.cost(&a), Some(1));
        assert_eq!(w.num_soft_satisfied(&a), Some(1));
        // x1=F violates the hard clause.
        let b = Assignment::from_bools(&[false, true]);
        assert_eq!(w.cost(&b), None);
        assert_eq!(w.num_soft_satisfied(&b), None);
    }

    #[test]
    fn from_cnf_all_soft() {
        let mut f = CnfFormula::new();
        f.add_clause([lit(1)]);
        f.add_clause([lit(-1)]);
        let w = WcnfFormula::from_cnf_all_soft(&f);
        assert!(w.is_plain_maxsat());
        assert!(w.is_unweighted());
        assert_eq!(w.num_soft(), 2);
        assert_eq!(w.num_vars(), 1);
    }

    #[test]
    fn to_cnf_flattens() {
        let mut w = WcnfFormula::new();
        w.add_hard([lit(1)]);
        w.add_soft([lit(2)], 1);
        let f = w.to_cnf();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.num_vars(), 2);
    }

    #[test]
    fn strata_cover_every_soft_clause_once() {
        let mut w = WcnfFormula::new();
        w.add_soft([lit(1)], 4);
        w.add_soft([lit(-1)], 1);
        w.add_soft([lit(2)], 4);
        w.add_soft([lit(-2)], 9);
        let strata = w.weight_strata();
        assert_eq!(strata.len(), 3);
        assert_eq!(
            strata.iter().map(|s| s.weight).collect::<Vec<_>>(),
            vec![9, 4, 1]
        );
        let mut all: Vec<usize> = strata.iter().flat_map(|s| s.indices.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert_eq!(strata[1].total_weight(), 8);
        assert_eq!(w.distinct_soft_weights(), vec![9, 4, 1]);
        assert_eq!(w.max_soft_weight(), Some(9));
    }

    #[test]
    fn strata_of_empty_formula() {
        let w = WcnfFormula::new();
        assert!(w.weight_strata().is_empty());
        assert!(w.distinct_soft_weights().is_empty());
        assert_eq!(w.max_soft_weight(), None);
    }

    #[test]
    fn weight_adjacent_to_hard_sentinel_accepted() {
        let mut w = WcnfFormula::new();
        w.add_soft([lit(1)], HARD_WEIGHT - 1);
        assert_eq!(w.total_soft_weight(), HARD_WEIGHT - 1);
        assert_eq!(w.checked_total_soft_weight(), Some(HARD_WEIGHT - 1));
    }

    #[test]
    fn total_soft_weight_saturates_instead_of_wrapping() {
        let mut w = WcnfFormula::new();
        w.add_soft([lit(1)], HARD_WEIGHT - 1);
        w.add_soft([lit(-1)], HARD_WEIGHT - 1);
        // A wrapping sum would report ~u64::MAX - 2 wrapped around to a
        // tiny value; the saturating contract pins it at the ceiling.
        assert_eq!(w.total_soft_weight(), Weight::MAX);
        assert_eq!(w.checked_total_soft_weight(), None);
        assert_eq!(w.weight_strata()[0].total_weight(), Weight::MAX);
    }

    #[test]
    fn duplicate_soft_clauses_with_different_weights_kept_separate() {
        let mut w = WcnfFormula::new();
        w.add_soft([lit(1)], 3);
        w.add_soft([lit(1)], 5);
        assert_eq!(w.num_soft(), 2);
        assert_eq!(w.total_soft_weight(), 8);
        // Falsifying the shared literal costs the *sum* of both copies.
        let a = Assignment::from_bools(&[false]);
        assert_eq!(w.cost(&a), Some(8));
        assert_eq!(w.weight_strata().len(), 2);
    }

    #[test]
    fn display_summary() {
        let mut w = WcnfFormula::new();
        w.add_hard([lit(1)]);
        assert_eq!(w.to_string(), "wcnf(vars=1, hard=1, soft=0)");
    }
}
