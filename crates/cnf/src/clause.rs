//! Clause container.

use std::fmt;
use std::ops::Deref;

use crate::{Assignment, Lit};

/// A disjunction of literals.
///
/// A `Clause` is an immutable, ordered sequence of literals. Duplicate
/// literals and tautologies are permitted at this level; normalisation
/// (sorting, deduplication, tautology detection) is available via
/// [`Clause::normalized`], and solvers typically normalise on ingest.
///
/// # Examples
///
/// ```
/// use coremax_cnf::{Clause, Lit, Var};
/// let a = Lit::positive(Var::new(0));
/// let b = Lit::negative(Var::new(1));
/// let c = Clause::from_lits([a, b]);
/// assert_eq!(c.len(), 2);
/// assert!(c.contains(a));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Box<[Lit]>,
}

impl Clause {
    /// Creates a clause from an iterator of literals.
    #[must_use]
    pub fn from_lits<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        Clause {
            lits: lits.into_iter().collect(),
        }
    }

    /// The empty clause (always false).
    #[must_use]
    pub fn empty() -> Self {
        Clause { lits: Box::new([]) }
    }

    /// Returns the literals of the clause.
    #[inline]
    #[must_use]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Returns the number of literals.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` if the clause has no literals (i.e. is unsatisfiable).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` if the clause contains exactly one literal.
    #[inline]
    #[must_use]
    pub fn is_unit(&self) -> bool {
        self.lits.len() == 1
    }

    /// Returns `true` if `lit` occurs in the clause.
    #[must_use]
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.contains(&lit)
    }

    /// Returns `true` if the clause contains both a literal and its
    /// negation (and is therefore trivially satisfied).
    #[must_use]
    pub fn is_tautology(&self) -> bool {
        // Clauses are short in practice; the quadratic scan only triggers
        // on ingest paths that have not normalised yet.
        for (i, &l) in self.lits.iter().enumerate() {
            if self.lits[i + 1..].contains(&!l) {
                return true;
            }
        }
        false
    }

    /// Returns a normalised copy: literals sorted and deduplicated.
    /// Returns `None` if the clause is a tautology.
    #[must_use]
    pub fn normalized(&self) -> Option<Clause> {
        let mut lits: Vec<Lit> = self.lits.to_vec();
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return None; // x and ¬x are adjacent after sorting
            }
        }
        Some(Clause { lits: lits.into() })
    }

    /// Evaluates the clause under a (possibly partial) assignment.
    ///
    /// Returns `Some(true)` if some literal is true, `Some(false)` if all
    /// literals are assigned and false, and `None` otherwise (undecided).
    #[must_use]
    pub fn eval(&self, assignment: &Assignment) -> Option<bool> {
        let mut undecided = false;
        for &l in self.lits.iter() {
            match assignment.lit_value(l) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => undecided = true,
            }
        }
        if undecided {
            None
        } else {
            Some(false)
        }
    }

    /// Returns `true` if the assignment makes the clause true.
    ///
    /// Unassigned variables count as not satisfying.
    #[must_use]
    pub fn is_satisfied_by(&self, assignment: &Assignment) -> bool {
        self.eval(assignment) == Some(true)
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }
}

impl Deref for Clause {
    type Target = [Lit];

    fn deref(&self) -> &[Lit] {
        &self.lits
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause::from_lits(iter)
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl From<Vec<Lit>> for Clause {
    fn from(lits: Vec<Lit>) -> Self {
        Clause { lits: lits.into() }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "⊥");
        }
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let c = Clause::from_lits([lit(1), lit(-2), lit(3)]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(!c.is_unit());
        assert!(c.contains(lit(-2)));
        assert!(!c.contains(lit(2)));
    }

    #[test]
    fn empty_and_unit() {
        assert!(Clause::empty().is_empty());
        assert!(Clause::from_lits([lit(5)]).is_unit());
        assert_eq!(Clause::default(), Clause::empty());
    }

    #[test]
    fn tautology_detection() {
        assert!(Clause::from_lits([lit(1), lit(-1)]).is_tautology());
        assert!(Clause::from_lits([lit(2), lit(1), lit(-2)]).is_tautology());
        assert!(!Clause::from_lits([lit(1), lit(2)]).is_tautology());
        assert!(!Clause::empty().is_tautology());
    }

    #[test]
    fn normalization_sorts_and_dedups() {
        let c = Clause::from_lits([lit(3), lit(1), lit(3), lit(-2)]);
        let n = c.normalized().unwrap();
        assert_eq!(n.lits(), &[lit(1), lit(-2), lit(3)]);
    }

    #[test]
    fn normalization_rejects_tautology() {
        assert!(Clause::from_lits([lit(1), lit(-1)]).normalized().is_none());
    }

    #[test]
    fn eval_partial_and_total() {
        let c = Clause::from_lits([lit(1), lit(2)]);
        let mut a = Assignment::for_vars(2);
        assert_eq!(c.eval(&a), None);
        a.assign(Var::new(0), false);
        assert_eq!(c.eval(&a), None);
        a.assign(Var::new(1), false);
        assert_eq!(c.eval(&a), Some(false));
        a.assign(Var::new(1), true);
        assert_eq!(c.eval(&a), Some(true));
        assert!(c.is_satisfied_by(&a));
    }

    #[test]
    fn empty_clause_is_false() {
        let a = Assignment::for_vars(0);
        assert_eq!(Clause::empty().eval(&a), Some(false));
    }

    #[test]
    fn display() {
        let c = Clause::from_lits([lit(1), lit(-2)]);
        assert_eq!(c.to_string(), "(x1 ∨ ¬x2)");
        assert_eq!(Clause::empty().to_string(), "⊥");
    }

    #[test]
    fn collect_from_iterator() {
        let c: Clause = [lit(1), lit(2)].into_iter().collect();
        assert_eq!(c.len(), 2);
        let total: i32 = c.iter().map(|l| l.to_dimacs()).sum();
        assert_eq!(total, 3);
    }
}
