//! DIMACS CNF and WCNF text I/O.
//!
//! Supports the classic formats used by the SAT competitions and MaxSAT
//! evaluations referenced in the paper:
//!
//! - **CNF**: `p cnf <vars> <clauses>` followed by zero-terminated clauses.
//! - **WCNF**: `p wcnf <vars> <clauses> [top]` where each clause starts
//!   with a weight; weight = `top` marks a hard clause. Without `top`
//!   every clause is soft (plain weighted MaxSAT).
//! - **New-format WCNF** (MaxSAT Evaluation 2022+): no `p` header line;
//!   hard clauses start with the token `h`, soft clauses with their
//!   (positive integer) weight. [`parse_wcnf`] auto-detects the two
//!   WCNF dialects from the presence of the `p` line.
//!
//! Comments (`c …`) are ignored. Clauses may span lines; a clause ends at
//! the literal `0`.
//!
//! # Examples
//!
//! ```
//! use coremax_cnf::dimacs;
//! let cnf = dimacs::parse_cnf("p cnf 2 2\n1 -2 0\n2 0\n")?;
//! assert_eq!(cnf.num_vars(), 2);
//! assert_eq!(cnf.num_clauses(), 2);
//! let text = dimacs::write_cnf(&cnf);
//! let again = dimacs::parse_cnf(&text)?;
//! assert_eq!(cnf, again);
//! # Ok::<(), coremax_cnf::ParseDimacsError>(())
//! ```

use std::fmt::Write as _;

use crate::error::{ParseDimacsError, ParseDimacsErrorKind};
use crate::{CnfFormula, Lit, WcnfFormula, Weight};

/// Parses DIMACS CNF text into a [`CnfFormula`].
///
/// The declared variable count is honoured even if larger than the
/// maximum variable used; literals beyond the declared count are errors.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, tokens, weights or
/// unterminated clauses.
pub fn parse_cnf(text: &str) -> Result<CnfFormula, ParseDimacsError> {
    let mut parser = Parser::new(text);
    let header = parser.read_header()?;
    if header.format != Format::Cnf {
        return Err(ParseDimacsError::new(
            parser.header_line,
            ParseDimacsErrorKind::BadHeader,
        ));
    }
    let mut formula = CnfFormula::with_vars(header.num_vars);
    while let Some(clause) = parser.read_clause(header.num_vars, None)? {
        if formula.num_clauses() == header.num_clauses {
            return Err(ParseDimacsError::new(
                parser.line,
                ParseDimacsErrorKind::TooManyClauses,
            ));
        }
        formula.add_clause(clause.lits);
    }
    Ok(formula)
}

/// Parses DIMACS WCNF text into a [`WcnfFormula`].
///
/// Accepts both WCNF dialects, auto-detected by the presence of a `p`
/// header line:
///
/// - **classic**: `p wcnf <vars> <clauses> [top]`; if the header carries
///   a `top` weight, clauses with exactly that weight are hard; all
///   others are soft. Without `top`, all clauses are soft.
/// - **new format** (MaxSAT Evaluation 2022+): no header; each clause
///   starts with `h` (hard) or its weight (soft), and variables grow on
///   demand.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed input.
///
/// # Examples
///
/// ```
/// use coremax_cnf::dimacs;
/// let classic = dimacs::parse_wcnf("p wcnf 2 2 9\n9 1 0\n4 -2 0\n")?;
/// let modern = dimacs::parse_wcnf("c new format\nh 1 0\n4 -2 0\n")?;
/// assert_eq!(classic.num_hard(), modern.num_hard());
/// assert_eq!(classic.num_soft(), modern.num_soft());
/// # Ok::<(), coremax_cnf::ParseDimacsError>(())
/// ```
pub fn parse_wcnf(text: &str) -> Result<WcnfFormula, ParseDimacsError> {
    if first_meaningful_token(text) != Some("p") {
        return parse_wcnf_new(text);
    }
    let mut parser = Parser::new(text);
    let header = parser.read_header()?;
    if header.format != Format::Wcnf {
        return Err(ParseDimacsError::new(
            parser.header_line,
            ParseDimacsErrorKind::BadHeader,
        ));
    }
    let mut formula = WcnfFormula::with_vars(header.num_vars);
    let mut seen = 0usize;
    while let Some(clause) = parser.read_clause(header.num_vars, Some(header.top))? {
        if seen == header.num_clauses {
            return Err(ParseDimacsError::new(
                parser.line,
                ParseDimacsErrorKind::TooManyClauses,
            ));
        }
        seen += 1;
        match clause.weight {
            Some(w) if Some(w) == header.top => formula.add_hard(clause.lits),
            Some(w) if w == crate::HARD_WEIGHT => {
                // The hard-weight sentinel cannot be stored as a soft
                // weight; a classic file using it without declaring it
                // as `top` is malformed.
                return Err(ParseDimacsError::new(
                    parser.line,
                    ParseDimacsErrorKind::BadWeight(w.to_string()),
                ));
            }
            Some(w) => formula.add_soft(clause.lits, w),
            None => unreachable!("wcnf clauses always carry a weight"),
        }
    }
    Ok(formula)
}

/// First token of the first non-comment, non-blank line (used to sniff
/// the WCNF dialect: the classic format always opens with `p`).
fn first_meaningful_token(text: &str) -> Option<&str> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('c') && !l.starts_with('%'))
        .find_map(|l| l.split_ascii_whitespace().next())
}

/// Parses new-format (headerless) WCNF: `h <lits> 0` for hard clauses,
/// `<weight> <lits> 0` for soft clauses.
fn parse_wcnf_new(text: &str) -> Result<WcnfFormula, ParseDimacsError> {
    let mut parser = Parser::new(text);
    let mut formula = WcnfFormula::new();
    // No declared variable count: literals are bounded only by the
    // representable range, and the formula grows on demand.
    let var_limit = crate::Var::MAX_INDEX as usize + 1;
    loop {
        let first = match parser.next_token() {
            Some(t) => t,
            None => return Ok(formula),
        };
        let weight: Option<Weight> = if first == "h" {
            None
        } else {
            let w: Weight = first.parse().map_err(|_| {
                ParseDimacsError::new(
                    parser.line,
                    ParseDimacsErrorKind::BadWeight(first.to_string()),
                )
            })?;
            if w == 0 || w == crate::HARD_WEIGHT {
                return Err(ParseDimacsError::new(
                    parser.line,
                    ParseDimacsErrorKind::BadWeight(first.to_string()),
                ));
            }
            Some(w)
        };
        let mut lits = Vec::new();
        loop {
            let tok = match parser.next_token() {
                Some(t) => t,
                None => {
                    return Err(ParseDimacsError::new(
                        parser.line,
                        ParseDimacsErrorKind::UnterminatedClause,
                    ))
                }
            };
            if !parser.push_lit(tok, var_limit, &mut lits)? {
                break;
            }
        }
        match weight {
            None => formula.add_hard(lits),
            Some(w) => formula.add_soft(lits, w),
        }
    }
}

/// Serialises a [`CnfFormula`] to DIMACS CNF text.
#[must_use]
pub fn write_cnf(formula: &CnfFormula) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "p cnf {} {}",
        formula.num_vars(),
        formula.num_clauses()
    );
    for clause in formula.iter() {
        for &lit in clause.lits() {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Serialises a [`WcnfFormula`] to DIMACS WCNF text, using
/// `total_soft_weight + 1` as the `top` (hard) weight.
#[must_use]
pub fn write_wcnf(formula: &WcnfFormula) -> String {
    let top = formula.total_soft_weight().saturating_add(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "p wcnf {} {} {}",
        formula.num_vars(),
        formula.num_clauses(),
        top
    );
    for clause in formula.hard_clauses() {
        let _ = write!(out, "{top} ");
        for &lit in clause.lits() {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    for soft in formula.soft_clauses() {
        let _ = write!(out, "{} ", soft.weight);
        for &lit in soft.clause.lits() {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

/// Serialises a [`WcnfFormula`] to the post-2022 MaxSAT-Evaluation WCNF
/// dialect: no `p` header, hard clauses prefixed `h`, soft clauses
/// prefixed with their weight. [`parse_wcnf`] reads this format back.
///
/// # Examples
///
/// ```
/// use coremax_cnf::{dimacs, Lit, WcnfFormula};
/// let mut w = WcnfFormula::new();
/// let x = w.new_var();
/// w.add_hard([Lit::positive(x)]);
/// w.add_soft([Lit::negative(x)], 4);
/// let text = dimacs::write_wcnf_new(&w);
/// assert_eq!(text, "h 1 0\n4 -1 0\n");
/// assert_eq!(dimacs::parse_wcnf(&text).unwrap(), w);
/// ```
#[must_use]
pub fn write_wcnf_new(formula: &WcnfFormula) -> String {
    let mut out = String::new();
    for clause in formula.hard_clauses() {
        out.push('h');
        for &lit in clause.lits() {
            let _ = write!(out, " {}", lit.to_dimacs());
        }
        out.push_str(" 0\n");
    }
    for soft in formula.soft_clauses() {
        let _ = write!(out, "{}", soft.weight);
        for &lit in soft.clause.lits() {
            let _ = write!(out, " {}", lit.to_dimacs());
        }
        out.push_str(" 0\n");
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Cnf,
    Wcnf,
}

struct Header {
    format: Format,
    num_vars: usize,
    num_clauses: usize,
    /// `Some(top)` iff the wcnf header declared a top weight.
    top: Option<Weight>,
}

struct ParsedClause {
    weight: Option<Weight>,
    lits: Vec<Lit>,
}

struct Parser<'a> {
    lines: std::iter::Peekable<std::str::Lines<'a>>,
    /// Tokens remaining on the current line.
    tokens: Vec<&'a str>,
    /// Position in `tokens`.
    pos: usize,
    line: usize,
    header_line: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            lines: text.lines().peekable(),
            tokens: Vec::new(),
            pos: 0,
            line: 0,
            header_line: 0,
        }
    }

    /// Advances to the next meaningful token, skipping comments/blanks.
    fn next_token(&mut self) -> Option<&'a str> {
        loop {
            if self.pos < self.tokens.len() {
                let tok = self.tokens[self.pos];
                self.pos += 1;
                return Some(tok);
            }
            let line = self.lines.next()?;
            self.line += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
                continue;
            }
            self.tokens = trimmed.split_ascii_whitespace().collect();
            self.pos = 0;
        }
    }

    fn read_header(&mut self) -> Result<Header, ParseDimacsError> {
        let tok = self
            .next_token()
            .ok_or_else(|| ParseDimacsError::new(self.line, ParseDimacsErrorKind::BadHeader))?;
        self.header_line = self.line;
        if tok != "p" {
            return Err(ParseDimacsError::new(
                self.line,
                ParseDimacsErrorKind::BadHeader,
            ));
        }
        let bad = |p: &Parser<'_>| ParseDimacsError::new(p.line, ParseDimacsErrorKind::BadHeader);
        let fmt_tok = self.next_token().ok_or_else(|| bad(self))?;
        let format = match fmt_tok {
            "cnf" => Format::Cnf,
            "wcnf" => Format::Wcnf,
            _ => return Err(bad(self)),
        };
        let nv: usize = self
            .next_token()
            .ok_or_else(|| bad(self))?
            .parse()
            .map_err(|_| bad(self))?;
        let nc: usize = self
            .next_token()
            .ok_or_else(|| bad(self))?
            .parse()
            .map_err(|_| bad(self))?;
        // Optional wcnf top weight; it sits on the same (header) line.
        let mut top = None;
        if format == Format::Wcnf && self.pos < self.tokens.len() {
            let t = self.tokens[self.pos];
            self.pos += 1;
            top = Some(t.parse().map_err(|_| {
                ParseDimacsError::new(self.line, ParseDimacsErrorKind::BadWeight(t.to_string()))
            })?);
        }
        Ok(Header {
            format,
            num_vars: nv,
            num_clauses: nc,
            top,
        })
    }

    /// Reads the next clause. `wcnf_top = Some(top)` switches weighted
    /// mode on (each clause starts with a weight). Returns `None` at EOF.
    fn read_clause(
        &mut self,
        num_vars: usize,
        wcnf_top: Option<Option<Weight>>,
    ) -> Result<Option<ParsedClause>, ParseDimacsError> {
        let first = match self.next_token() {
            Some(t) => t,
            None => return Ok(None),
        };
        let mut lits = Vec::new();
        let weight = if wcnf_top.is_some() {
            let w: Weight = first.parse().map_err(|_| {
                ParseDimacsError::new(
                    self.line,
                    ParseDimacsErrorKind::BadWeight(first.to_string()),
                )
            })?;
            if w == 0 {
                return Err(ParseDimacsError::new(
                    self.line,
                    ParseDimacsErrorKind::BadWeight(first.to_string()),
                ));
            }
            Some(w)
        } else {
            if !self.push_lit(first, num_vars, &mut lits)? {
                // The first token was already the terminator: empty clause.
                return Ok(Some(ParsedClause { weight: None, lits }));
            }
            None
        };
        loop {
            let tok = match self.next_token() {
                Some(t) => t,
                None => {
                    return Err(ParseDimacsError::new(
                        self.line,
                        ParseDimacsErrorKind::UnterminatedClause,
                    ))
                }
            };
            if !self.push_lit(tok, num_vars, &mut lits)? {
                return Ok(Some(ParsedClause { weight, lits }));
            }
        }
    }

    /// Parses one literal token into `lits`. Returns `Ok(false)` when the
    /// token is the clause terminator `0`.
    fn push_lit(
        &self,
        tok: &str,
        num_vars: usize,
        lits: &mut Vec<Lit>,
    ) -> Result<bool, ParseDimacsError> {
        let value: i32 = tok.parse().map_err(|_| {
            ParseDimacsError::new(self.line, ParseDimacsErrorKind::BadLiteral(tok.to_string()))
        })?;
        if value == 0 {
            return Ok(false);
        }
        if value.unsigned_abs() as usize > num_vars {
            return Err(ParseDimacsError::new(
                self.line,
                ParseDimacsErrorKind::VariableOutOfRange(value),
            ));
        }
        let lit = Lit::from_dimacs(value).ok_or_else(|| {
            ParseDimacsError::new(self.line, ParseDimacsErrorKind::BadLiteral(tok.to_string()))
        })?;
        lits.push(lit);
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_cnf() {
        let f = parse_cnf("c comment\np cnf 3 2\n1 -2 0\n3 0\n").unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clause(0).lits()[1].to_dimacs(), -2);
    }

    #[test]
    fn parse_multiline_clause() {
        let f = parse_cnf("p cnf 4 1\n1 2\n3 -4\n0\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.clause(0).len(), 4);
    }

    #[test]
    fn parse_empty_clause() {
        let f = parse_cnf("p cnf 1 1\n0\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
        assert!(f.clause(0).is_empty());
    }

    #[test]
    fn reject_missing_header() {
        let e = parse_cnf("1 2 0\n").unwrap_err();
        assert_eq!(e.kind, ParseDimacsErrorKind::BadHeader);
    }

    #[test]
    fn reject_bad_literal() {
        let e = parse_cnf("p cnf 2 1\n1 xy 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseDimacsErrorKind::BadLiteral(_)));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn reject_unterminated_clause() {
        let e = parse_cnf("p cnf 2 1\n1 2\n").unwrap_err();
        assert_eq!(e.kind, ParseDimacsErrorKind::UnterminatedClause);
    }

    #[test]
    fn reject_variable_out_of_range() {
        let e = parse_cnf("p cnf 2 1\n1 5 0\n").unwrap_err();
        assert_eq!(e.kind, ParseDimacsErrorKind::VariableOutOfRange(5));
    }

    #[test]
    fn reject_too_many_clauses() {
        let e = parse_cnf("p cnf 1 1\n1 0\n-1 0\n").unwrap_err();
        assert_eq!(e.kind, ParseDimacsErrorKind::TooManyClauses);
    }

    #[test]
    fn reject_wcnf_header_for_cnf_parse() {
        assert!(parse_cnf("p wcnf 1 1 2\n2 1 0\n").is_err());
    }

    #[test]
    fn cnf_roundtrip() {
        let text = "p cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n";
        let f = parse_cnf(text).unwrap();
        assert_eq!(write_cnf(&f), text);
        let g = parse_cnf(&write_cnf(&f)).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn parse_wcnf_with_top() {
        let w = parse_wcnf("p wcnf 2 3 10\n10 1 0\n3 -1 0\n1 2 0\n").unwrap();
        assert_eq!(w.num_hard(), 1);
        assert_eq!(w.num_soft(), 2);
        assert_eq!(w.soft_clauses()[0].weight, 3);
    }

    #[test]
    fn parse_wcnf_without_top_all_soft() {
        let w = parse_wcnf("p wcnf 2 2\n3 1 0\n1 -1 0\n").unwrap();
        assert_eq!(w.num_hard(), 0);
        assert_eq!(w.num_soft(), 2);
    }

    #[test]
    fn reject_zero_weight() {
        let e = parse_wcnf("p wcnf 1 1 5\n0 1 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseDimacsErrorKind::BadWeight(_)));
    }

    #[test]
    fn wcnf_roundtrip() {
        let mut w = WcnfFormula::new();
        let text_in = "p wcnf 3 3 7\n7 1 2 0\n5 -1 0\n1 3 0\n";
        w.add_hard([Lit::from_dimacs(1).unwrap(), Lit::from_dimacs(2).unwrap()]);
        w.add_soft([Lit::from_dimacs(-1).unwrap()], 5);
        w.add_soft([Lit::from_dimacs(3).unwrap()], 1);
        let text = write_wcnf(&w);
        assert_eq!(text, text_in);
        let again = parse_wcnf(&text).unwrap();
        assert_eq!(w, again);
    }

    #[test]
    fn comments_and_percent_lines_skipped() {
        let f = parse_cnf("c a\n%\np cnf 1 1\nc inner\n1 0\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn blank_lines_between_clauses_skipped() {
        let f = parse_cnf("p cnf 2 2\n\n1 0\n   \n\t\n-2 0\n\n").unwrap();
        assert_eq!(f.num_clauses(), 2);
    }

    #[test]
    fn empty_clause_line_in_wcnf() {
        // A weight followed directly by the terminator: empty soft clause.
        let w = parse_wcnf("p wcnf 1 2 9\n5 0\n9 1 0\n").unwrap();
        assert_eq!(w.num_soft(), 1);
        assert_eq!(w.num_hard(), 1);
        assert!(w.soft_clauses()[0].clause.is_empty());
        assert_eq!(w.soft_clauses()[0].weight, 5);
    }

    #[test]
    fn several_empty_cnf_clauses() {
        let f = parse_cnf("p cnf 1 3\n0\n0\n0\n").unwrap();
        assert_eq!(f.num_clauses(), 3);
        assert!(f.iter().all(|c| c.is_empty()));
    }

    #[test]
    fn reject_missing_terminator_at_eof() {
        let e = parse_cnf("p cnf 3 1\n1 2 3").unwrap_err();
        assert_eq!(e.kind, ParseDimacsErrorKind::UnterminatedClause);
        assert_eq!(e.line, 2);
    }

    #[test]
    fn reject_wcnf_missing_terminator_at_eof() {
        let e = parse_wcnf("p wcnf 2 1 5\n5 1 2").unwrap_err();
        assert_eq!(e.kind, ParseDimacsErrorKind::UnterminatedClause);
    }

    #[test]
    fn reject_wcnf_weight_with_no_clause_at_eof() {
        // A dangling weight token is an unterminated clause, not a panic.
        let e = parse_wcnf("p wcnf 1 1 5\n3").unwrap_err();
        assert_eq!(e.kind, ParseDimacsErrorKind::UnterminatedClause);
    }

    #[test]
    fn top_weight_exactly_marks_hard() {
        let w = parse_wcnf("p wcnf 1 3 1000\n1000 1 0\n999 -1 0\n1 1 0\n").unwrap();
        assert_eq!(w.num_hard(), 1);
        assert_eq!(w.num_soft(), 2);
        assert_eq!(w.soft_clauses()[0].weight, 999);
    }

    #[test]
    fn weight_above_top_stays_soft() {
        // Only weights exactly equal to top are hard (module contract);
        // larger weights remain soft rather than being silently promoted.
        let w = parse_wcnf("p wcnf 1 2 10\n11 1 0\n10 -1 0\n").unwrap();
        assert_eq!(w.num_hard(), 1);
        assert_eq!(w.num_soft(), 1);
        assert_eq!(w.soft_clauses()[0].weight, 11);
    }

    #[test]
    fn crlf_input_parses() {
        let f = parse_cnf("p cnf 3 2\r\n1 -2 0\r\n3 0\r\n").unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        let w = parse_wcnf("c crlf\r\np wcnf 2 2 9\r\n9 1 0\r\n4 -2 0\r\n").unwrap();
        assert_eq!(w.num_hard(), 1);
        assert_eq!(w.soft_clauses()[0].weight, 4);
    }

    #[test]
    fn crlf_multiline_clause() {
        let f = parse_cnf("p cnf 4 1\r\n1 2\r\n3 -4\r\n0\r\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
        assert_eq!(f.clause(0).len(), 4);
    }

    #[test]
    fn new_format_basic() {
        let w = parse_wcnf("c new format\nh 1 2 0\nh -1 0\n3 2 0\n1 -2 0\n").unwrap();
        assert_eq!(w.num_hard(), 2);
        assert_eq!(w.num_soft(), 2);
        assert_eq!(w.num_vars(), 2);
        assert_eq!(w.soft_clauses()[0].weight, 3);
        assert_eq!(w.soft_clauses()[1].weight, 1);
        assert_eq!(w.hard_clauses()[0].lits()[1].to_dimacs(), 2);
    }

    #[test]
    fn new_format_vars_grow_on_demand() {
        let w = parse_wcnf("h 7 0\n2 -9 0\n").unwrap();
        assert_eq!(w.num_vars(), 9);
    }

    #[test]
    fn new_format_multiline_and_crlf() {
        let w = parse_wcnf("h 1 2\r\n3 0\r\n5 -1\r\n-2 0\r\n").unwrap();
        assert_eq!(w.num_hard(), 1);
        assert_eq!(w.hard_clauses()[0].len(), 3);
        assert_eq!(w.num_soft(), 1);
        assert_eq!(w.soft_clauses()[0].clause.len(), 2);
    }

    #[test]
    fn new_format_empty_clauses() {
        let w = parse_wcnf("h 0\n4 0\n").unwrap();
        assert_eq!(w.num_hard(), 1);
        assert!(w.hard_clauses()[0].is_empty());
        assert_eq!(w.num_soft(), 1);
        assert!(w.soft_clauses()[0].clause.is_empty());
        assert_eq!(w.soft_clauses()[0].weight, 4);
    }

    #[test]
    fn new_format_rejects_bad_weight_token() {
        let e = parse_wcnf("x 1 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseDimacsErrorKind::BadWeight(_)));
        let e = parse_wcnf("0 1 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseDimacsErrorKind::BadWeight(_)));
    }

    #[test]
    fn new_format_rejects_unterminated_clause() {
        let e = parse_wcnf("h 1 2").unwrap_err();
        assert_eq!(e.kind, ParseDimacsErrorKind::UnterminatedClause);
        let e = parse_wcnf("3 1\n").unwrap_err();
        assert_eq!(e.kind, ParseDimacsErrorKind::UnterminatedClause);
    }

    #[test]
    fn new_format_agrees_with_classic() {
        let classic = parse_wcnf("p wcnf 3 3 10\n10 1 2 0\n5 -1 0\n1 3 0\n").unwrap();
        let modern = parse_wcnf("h 1 2 0\n5 -1 0\n1 3 0\n").unwrap();
        assert_eq!(classic.hard_clauses(), modern.hard_clauses());
        assert_eq!(classic.soft_clauses(), modern.soft_clauses());
    }

    #[test]
    fn classic_roundtrip_of_new_format_input() {
        // New-format input serialises through the classic writer and
        // parses back to the same formula.
        let w = parse_wcnf("h 1 -2 0\n7 2 0\n").unwrap();
        let again = parse_wcnf(&write_wcnf(&w)).unwrap();
        assert_eq!(w, again);
    }

    #[test]
    fn hard_weight_sentinel_rejected_as_soft() {
        let text = format!("p wcnf 1 1\n{} 1 0\n", u64::MAX);
        let e = parse_wcnf(&text).unwrap_err();
        assert!(matches!(e.kind, ParseDimacsErrorKind::BadWeight(_)));
        let text = format!("{} 1 0\n", u64::MAX);
        let e = parse_wcnf(&text).unwrap_err();
        assert!(matches!(e.kind, ParseDimacsErrorKind::BadWeight(_)));
    }

    #[test]
    fn new_format_roundtrip() {
        let mut w = WcnfFormula::new();
        w.add_hard([Lit::from_dimacs(1).unwrap(), Lit::from_dimacs(-2).unwrap()]);
        w.add_soft([Lit::from_dimacs(-1).unwrap()], 5);
        w.add_soft([Lit::from_dimacs(2).unwrap()], 1);
        let text = write_wcnf_new(&w);
        assert_eq!(text, "h 1 -2 0\n5 -1 0\n1 2 0\n");
        let again = parse_wcnf(&text).unwrap();
        assert_eq!(w, again);
    }

    #[test]
    fn both_writers_agree_on_the_parsed_formula() {
        // classic text → formula → each writer → parse → same formula.
        let w = parse_wcnf("p wcnf 3 4 9\n9 1 2 0\n9 -3 0\n4 -1 0\n2 3 0\n").unwrap();
        let via_classic = parse_wcnf(&write_wcnf(&w)).unwrap();
        let via_new = parse_wcnf(&write_wcnf_new(&w)).unwrap();
        assert_eq!(w, via_classic);
        assert_eq!(w, via_new);
    }

    #[test]
    fn new_format_writer_handles_empty_clauses() {
        let mut w = WcnfFormula::new();
        w.add_hard(std::iter::empty::<Lit>());
        w.add_soft(std::iter::empty::<Lit>(), 3);
        let text = write_wcnf_new(&w);
        assert_eq!(text, "h 0\n3 0\n");
        assert_eq!(parse_wcnf(&text).unwrap(), w);
    }

    #[test]
    fn near_sentinel_weight_roundtrips_in_both_dialects() {
        // HARD_WEIGHT - 1 is the largest legal soft weight; both
        // writers must carry it through a parse cycle unchanged.
        let mut w = WcnfFormula::new();
        w.add_soft([Lit::from_dimacs(1).unwrap()], crate::HARD_WEIGHT - 1);
        let via_new = parse_wcnf(&write_wcnf_new(&w)).unwrap();
        assert_eq!(via_new.soft_clauses()[0].weight, crate::HARD_WEIGHT - 1);
        // The classic writer saturates its top at u64::MAX, which still
        // exceeds no soft weight ambiguity: weight != top stays soft.
        let via_classic = parse_wcnf(&write_wcnf(&w)).unwrap();
        assert_eq!(via_classic.soft_clauses()[0].weight, crate::HARD_WEIGHT - 1);
        assert_eq!(via_classic.num_hard(), 0);
    }

    #[test]
    fn wcnf_top_written_above_every_soft_weight() {
        // write_wcnf must pick a top no soft weight can collide with,
        // so the roundtrip preserves the hard/soft split.
        let mut w = WcnfFormula::new();
        w.add_hard([Lit::from_dimacs(1).unwrap()]);
        w.add_soft([Lit::from_dimacs(-1).unwrap()], 7);
        w.add_soft([Lit::from_dimacs(2).unwrap()], 3);
        let text = write_wcnf(&w);
        let again = parse_wcnf(&text).unwrap();
        assert_eq!(again.num_hard(), 1);
        assert_eq!(again.num_soft(), 2);
        assert_eq!(again.total_soft_weight(), 10);
    }
}
