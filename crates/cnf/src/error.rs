//! Error types for DIMACS parsing.

use std::error::Error;
use std::fmt;

/// The reason a DIMACS document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseDimacsErrorKind {
    /// The `p cnf …` / `p wcnf …` header line is missing or malformed.
    BadHeader,
    /// A token could not be parsed as an integer literal.
    BadLiteral(String),
    /// A clause weight was invalid (zero, or unparsable).
    BadWeight(String),
    /// A clause was not terminated by `0` before end of input.
    UnterminatedClause,
    /// A literal referenced a variable above the header's declared count.
    VariableOutOfRange(i32),
    /// More clauses appeared than the header declared.
    TooManyClauses,
    /// An I/O error occurred while reading.
    Io(String),
}

/// An error produced while parsing DIMACS CNF/WCNF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number where the error was detected.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseDimacsErrorKind,
}

impl ParseDimacsError {
    pub(crate) fn new(line: usize, kind: ParseDimacsErrorKind) -> Self {
        ParseDimacsError { line, kind }
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseDimacsErrorKind::BadHeader => write!(f, "missing or malformed problem header"),
            ParseDimacsErrorKind::BadLiteral(tok) => write!(f, "invalid literal token `{tok}`"),
            ParseDimacsErrorKind::BadWeight(tok) => write!(f, "invalid clause weight `{tok}`"),
            ParseDimacsErrorKind::UnterminatedClause => {
                write!(f, "clause not terminated by 0 before end of input")
            }
            ParseDimacsErrorKind::VariableOutOfRange(v) => {
                write!(f, "literal {v} exceeds declared variable count")
            }
            ParseDimacsErrorKind::TooManyClauses => {
                write!(f, "more clauses than declared in header")
            }
            ParseDimacsErrorKind::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for ParseDimacsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseDimacsError::new(7, ParseDimacsErrorKind::BadHeader);
        assert_eq!(e.to_string(), "line 7: missing or malformed problem header");
    }

    #[test]
    fn display_bad_literal() {
        let e = ParseDimacsError::new(2, ParseDimacsErrorKind::BadLiteral("xy".into()));
        assert!(e.to_string().contains("`xy`"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync>() {}
        assert_err::<ParseDimacsError>();
    }
}
