//! CNF and weighted CNF formula types for the `coremax` MaxSAT suite.
//!
//! This crate is the foundation of the workspace: it defines the
//! propositional vocabulary ([`Var`], [`Lit`]), clause and formula
//! containers ([`Clause`], [`CnfFormula`], [`WcnfFormula`]), truth
//! assignments ([`Assignment`]), and DIMACS text I/O ([`dimacs`]).
//!
//! The representation follows the conventions of modern CDCL solvers
//! (MiniSAT lineage): variables are dense non-negative integers, and a
//! literal is a variable paired with a sign, packed into a single `u32`
//! so that `lit.index()` can be used directly as an array index for
//! watch lists and saved phases.
//!
//! # Examples
//!
//! Build the formula from Example 1 of Marques-Silva & Planes (DATE'08),
//! `(x1)(x2 ∨ ¬x1)(¬x2)`, and evaluate an assignment:
//!
//! ```
//! use coremax_cnf::{CnfFormula, Lit, Assignment};
//!
//! let mut cnf = CnfFormula::new();
//! let x1 = cnf.new_var();
//! let x2 = cnf.new_var();
//! cnf.add_clause([Lit::positive(x1)]);
//! cnf.add_clause([Lit::positive(x2), Lit::negative(x1)]);
//! cnf.add_clause([Lit::negative(x2)]);
//!
//! let mut a = Assignment::for_vars(cnf.num_vars());
//! a.assign(x1, true);
//! a.assign(x2, true);
//! // The formula is unsatisfiable; this assignment satisfies 2 of 3 clauses.
//! assert_eq!(cnf.num_satisfied(&a), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod clause;
pub mod dimacs;
mod error;
mod formula;
mod lit;
pub mod simp;
mod wcnf;

pub use assignment::Assignment;
pub use clause::Clause;
pub use error::{ParseDimacsError, ParseDimacsErrorKind};
pub use formula::CnfFormula;
pub use lit::{Lit, Var};
pub use wcnf::{SoftClause, WcnfFormula, Weight, WeightStratum, HARD_WEIGHT};
