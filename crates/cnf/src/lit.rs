//! Variables and literals.

use std::fmt;
use std::num::NonZeroI32;
use std::ops::Not;

/// A propositional variable, identified by a dense index starting at 0.
///
/// Variables print 1-based (`x1`, `x2`, …) to match DIMACS conventions,
/// but index 0-based everywhere in the API.
///
/// # Examples
///
/// ```
/// use coremax_cnf::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "x4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Maximum supported variable index.
    pub const MAX_INDEX: u32 = (u32::MAX >> 1) - 1;

    /// Creates a variable from its 0-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`Var::MAX_INDEX`].
    #[inline]
    #[must_use]
    pub fn new(index: u32) -> Self {
        assert!(index <= Self::MAX_INDEX, "variable index out of range");
        Var(index)
    }

    /// Returns the 0-based index of this variable.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index.
    #[inline]
    #[must_use]
    pub fn index_u32(self) -> u32 {
        self.0
    }

    /// Returns the positive literal of this variable.
    ///
    /// Shorthand for [`Lit::positive`].
    #[inline]
    #[must_use]
    pub fn lit(self, positive: bool) -> Lit {
        Lit::new(self, positive)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable together with a polarity.
///
/// Packed into a single `u32` as `var << 1 | sign` where `sign == 1`
/// means *negated*. This makes [`Lit::index`] usable directly as a dense
/// array index (watch lists, occurrence lists) and negation a single XOR.
///
/// # Examples
///
/// ```
/// use coremax_cnf::{Lit, Var};
/// let v = Var::new(0);
/// let p = Lit::positive(v);
/// let n = !p;
/// assert_eq!(n, Lit::negative(v));
/// assert!(p.is_positive());
/// assert!(n.is_negative());
/// assert_eq!(p.var(), n.var());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a polarity.
    ///
    /// `positive == true` yields the literal `v`, `false` yields `¬v`.
    #[inline]
    #[must_use]
    pub fn new(var: Var, positive: bool) -> Self {
        Lit((var.0 << 1) | u32::from(!positive))
    }

    /// The positive literal of `var`.
    #[inline]
    #[must_use]
    pub fn positive(var: Var) -> Self {
        Lit::new(var, true)
    }

    /// The negative literal of `var`.
    #[inline]
    #[must_use]
    pub fn negative(var: Var) -> Self {
        Lit::new(var, false)
    }

    /// Creates a literal from its dense code (as returned by [`Lit::code`]).
    #[inline]
    #[must_use]
    pub fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Creates a literal from a DIMACS integer (non-zero; negative means
    /// negated). Returns `None` for zero or out-of-range magnitudes.
    #[must_use]
    pub fn from_dimacs(value: i32) -> Option<Self> {
        let nz = NonZeroI32::new(value)?;
        let mag = nz.get().unsigned_abs() - 1;
        if mag > Var::MAX_INDEX {
            return None;
        }
        Some(Lit::new(Var(mag), nz.get() > 0))
    }

    /// Returns the DIMACS integer representation (1-based, sign = polarity).
    #[inline]
    #[must_use]
    pub fn to_dimacs(self) -> i32 {
        let v = (self.0 >> 1) as i32 + 1;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Returns the underlying variable.
    #[inline]
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is the positive (unnegated) literal.
    #[inline]
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns `true` if this is the negative (negated) literal.
    #[inline]
    #[must_use]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the dense code of this literal (`2*var + sign`), suitable
    /// for direct indexing of per-literal arrays.
    #[inline]
    #[must_use]
    pub fn code(self) -> u32 {
        self.0
    }

    /// Returns the dense code as `usize`.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<Var> for Lit {
    #[inline]
    fn from(var: Var) -> Lit {
        Lit::positive(var)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬")?;
        }
        write!(f, "{}", self.var())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        for i in [0u32, 1, 2, 100, Var::MAX_INDEX] {
            let v = Var::new(i);
            assert_eq!(v.index(), i as usize);
            assert_eq!(v.index_u32(), i);
        }
    }

    #[test]
    #[should_panic(expected = "variable index out of range")]
    fn var_out_of_range_panics() {
        let _ = Var::new(Var::MAX_INDEX + 1);
    }

    #[test]
    fn lit_packing() {
        let v = Var::new(5);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.code(), 10);
        assert_eq!(n.code(), 11);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!p.is_negative());
        assert!(n.is_negative());
    }

    #[test]
    fn negation_is_involution() {
        let v = Var::new(7);
        let p = Lit::positive(v);
        assert_eq!(!!p, p);
        assert_ne!(!p, p);
        assert_eq!((!p).var(), p.var());
    }

    #[test]
    fn dimacs_roundtrip() {
        for d in [1i32, -1, 2, -2, 42, -42] {
            let l = Lit::from_dimacs(d).unwrap();
            assert_eq!(l.to_dimacs(), d);
        }
        assert!(Lit::from_dimacs(0).is_none());
    }

    #[test]
    fn var_into_lit() {
        let v = Var::new(3);
        let l: Lit = v.into();
        assert_eq!(l, Lit::positive(v));
        assert_eq!(v.lit(false), Lit::negative(v));
    }

    #[test]
    fn display_forms() {
        let v = Var::new(0);
        assert_eq!(Lit::positive(v).to_string(), "x1");
        assert_eq!(Lit::negative(v).to_string(), "¬x1");
    }

    #[test]
    fn ordering_groups_by_var() {
        let a = Lit::positive(Var::new(1));
        let b = Lit::negative(Var::new(1));
        let c = Lit::positive(Var::new(2));
        assert!(a < b);
        assert!(b < c);
    }
}
