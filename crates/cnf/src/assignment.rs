//! Truth assignments.

use std::fmt;

use crate::{Lit, Var};

/// A (possibly partial) truth assignment over a dense range of variables.
///
/// # Examples
///
/// ```
/// use coremax_cnf::{Assignment, Lit, Var};
/// let mut a = Assignment::for_vars(3);
/// a.assign(Var::new(0), true);
/// assert_eq!(a.value(Var::new(0)), Some(true));
/// assert_eq!(a.value(Var::new(1)), None);
/// assert_eq!(a.lit_value(Lit::negative(Var::new(0))), Some(false));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    // 0 = unassigned, 1 = true, 2 = false — kept private so the invariant
    // "values.len() == num_vars" holds.
    values: Vec<u8>,
}

impl Assignment {
    /// Creates an all-unassigned assignment for `num_vars` variables.
    #[must_use]
    pub fn for_vars(num_vars: usize) -> Self {
        Assignment {
            values: vec![0; num_vars],
        }
    }

    /// Creates a total assignment from a boolean slice (index = variable).
    #[must_use]
    pub fn from_bools(values: &[bool]) -> Self {
        Assignment {
            values: values.iter().map(|&b| if b { 1 } else { 2 }).collect(),
        }
    }

    /// Number of variables covered by this assignment.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Grows the assignment to cover at least `num_vars` variables.
    pub fn grow_to(&mut self, num_vars: usize) {
        if self.values.len() < num_vars {
            self.values.resize(num_vars, 0);
        }
    }

    /// Assigns `var` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn assign(&mut self, var: Var, value: bool) {
        self.values[var.index()] = if value { 1 } else { 2 };
    }

    /// Makes `lit` true (assigns its variable accordingly).
    pub fn assign_lit(&mut self, lit: Lit) {
        self.assign(lit.var(), lit.is_positive());
    }

    /// Removes the assignment of `var`.
    pub fn unassign(&mut self, var: Var) {
        self.values[var.index()] = 0;
    }

    /// Returns the value of `var`, or `None` if unassigned or out of range.
    #[must_use]
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.values.get(var.index()) {
            Some(1) => Some(true),
            Some(2) => Some(false),
            _ => None,
        }
    }

    /// Returns the value of a literal under this assignment.
    #[must_use]
    pub fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| v == lit.is_positive())
    }

    /// Returns `true` if the literal evaluates to true.
    #[must_use]
    pub fn satisfies(&self, lit: Lit) -> bool {
        self.lit_value(lit) == Some(true)
    }

    /// Returns `true` if every variable is assigned.
    #[must_use]
    pub fn is_total(&self) -> bool {
        self.values.iter().all(|&v| v != 0)
    }

    /// Number of assigned variables.
    #[must_use]
    pub fn num_assigned(&self) -> usize {
        self.values.iter().filter(|&&v| v != 0).count()
    }

    /// Completes the assignment by setting every unassigned variable to
    /// `default`.
    pub fn complete_with(&mut self, default: bool) {
        let fill = if default { 1 } else { 2 };
        for v in &mut self.values {
            if *v == 0 {
                *v = fill;
            }
        }
    }

    /// Iterates over `(Var, bool)` pairs of assigned variables.
    pub fn iter(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| match v {
                1 => Some((Var::new(i as u32), true)),
                2 => Some((Var::new(i as u32), false)),
                _ => None,
            })
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (var, val) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}={}", var, u8::from(val))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_query() {
        let mut a = Assignment::for_vars(4);
        assert_eq!(a.num_assigned(), 0);
        a.assign(Var::new(2), true);
        a.assign(Var::new(3), false);
        assert_eq!(a.value(Var::new(2)), Some(true));
        assert_eq!(a.value(Var::new(3)), Some(false));
        assert_eq!(a.value(Var::new(0)), None);
        assert_eq!(a.num_assigned(), 2);
        assert!(!a.is_total());
    }

    #[test]
    fn lit_semantics() {
        let mut a = Assignment::for_vars(1);
        let v = Var::new(0);
        a.assign(v, false);
        assert_eq!(a.lit_value(Lit::positive(v)), Some(false));
        assert_eq!(a.lit_value(Lit::negative(v)), Some(true));
        assert!(a.satisfies(Lit::negative(v)));
        a.assign_lit(Lit::positive(v));
        assert!(a.satisfies(Lit::positive(v)));
    }

    #[test]
    fn unassign_and_grow() {
        let mut a = Assignment::for_vars(1);
        a.assign(Var::new(0), true);
        a.unassign(Var::new(0));
        assert_eq!(a.value(Var::new(0)), None);
        a.grow_to(5);
        assert_eq!(a.num_vars(), 5);
        a.grow_to(2); // never shrinks
        assert_eq!(a.num_vars(), 5);
    }

    #[test]
    fn from_bools_and_total() {
        let a = Assignment::from_bools(&[true, false, true]);
        assert!(a.is_total());
        assert_eq!(a.value(Var::new(1)), Some(false));
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[2], (Var::new(2), true));
    }

    #[test]
    fn complete_with_fills_gaps() {
        let mut a = Assignment::for_vars(3);
        a.assign(Var::new(1), false);
        a.complete_with(true);
        assert!(a.is_total());
        assert_eq!(a.value(Var::new(0)), Some(true));
        assert_eq!(a.value(Var::new(1)), Some(false));
    }

    #[test]
    fn out_of_range_value_is_none() {
        let a = Assignment::for_vars(1);
        assert_eq!(a.value(Var::new(10)), None);
    }

    #[test]
    fn display_lists_assigned() {
        let mut a = Assignment::for_vars(2);
        a.assign(Var::new(0), true);
        assert_eq!(a.to_string(), "{x1=1}");
    }
}
