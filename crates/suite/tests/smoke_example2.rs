//! End-to-end smoke test: the paper's running example (Example 2, §3.3)
//! solved through the `coremax_cli` pipeline exactly as the binary would —
//! argument parsing, problem parsing, `run`, and output formatting — with
//! MSU4, asserting the known optimum of 6 satisfied clauses out of 8.

use coremax::{verify_solution, MaxSatStatus};
use coremax_cli::{format_solution, parse_args, parse_problem, run};

/// Example 2 of Marques-Silva & Planes (DATE 2008): 8 clauses over 4
/// variables, at most 6 simultaneously satisfiable.
const EXAMPLE2: &str = "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n";

#[test]
fn cli_pipeline_solves_example2_with_msu4() {
    let options = parse_args(
        ["--algorithm", "msu4-v2", "--verify", "-"]
            .into_iter()
            .map(String::from),
    )
    .expect("argument parsing");
    let wcnf = parse_problem(EXAMPLE2).expect("Example 2 parses");

    let solution = run(&options, &wcnf).expect("solver runs");

    assert_eq!(solution.status, MaxSatStatus::Optimal);
    assert_eq!(solution.cost, Some(2), "two clauses must be falsified");
    assert_eq!(
        solution.num_satisfied(&wcnf),
        Some(6),
        "optimum is 6 of 8 clauses"
    );
    let model = solution.model.as_ref().expect("optimal run yields a model");
    assert_eq!(wcnf.cost(model), Some(2), "model must attain the optimum");
    assert!(
        verify_solution(&wcnf, &solution),
        "independent verification must accept the solution"
    );

    let rendered = format_solution(&wcnf, &solution, true);
    assert!(
        rendered.contains("o 2"),
        "output must report the optimum cost line, got:\n{rendered}"
    );
}

#[test]
fn all_core_guided_algorithms_agree_on_example2() {
    let wcnf = parse_problem(EXAMPLE2).expect("Example 2 parses");
    for algorithm in ["msu1", "msu3", "msu4-v1", "msu4-v2", "msu4-inc"] {
        let mut options = parse_args(["-".to_string()]).expect("argument parsing");
        options.algorithm = algorithm.to_string();
        let solution = run(&options, &wcnf).unwrap_or_else(|e| panic!("{algorithm}: {e}"));
        assert_eq!(solution.status, MaxSatStatus::Optimal, "{algorithm}");
        assert_eq!(solution.cost, Some(2), "{algorithm}");
    }
}
