//! Umbrella crate for the workspace's repo-level integration tests and
//! examples (see `tests/` and `examples/` at the repository root, wired
//! in via explicit `[[test]]`/`[[example]]` targets in this crate's
//! manifest). It exports nothing; depend on the individual `coremax_*`
//! crates instead.
