//! Bailleux–Boufkhad totalizer encoding.
//!
//! O. Bailleux and Y. Boufkhad, *Efficient CNF Encoding of Boolean
//! Cardinality Constraints*, CP 2003. A balanced tree of unary adders:
//! each node carries output literals `o₁ ≥ o₂ ≥ …` in unary ("at least
//! i inputs are true"), merged from its two children. The at-most-k
//! constraint asserts `¬o_{k+1}` at the root. We emit both implication
//! directions so the same counter also serves at-least bounds and keeps
//! models extractable.

use coremax_cnf::Lit;

use crate::CnfSink;

pub(crate) fn at_most(lits: &[Lit], k: usize, sink: &mut CnfSink) {
    debug_assert!(k >= 1 && k < lits.len());
    let outputs = build_totalizer(lits, sink);
    // Forbid the (k+1)-th output: at most k inputs may be true.
    sink.add_clause(vec![!outputs[k]]);
}

/// Builds the unary counting tree and returns the root's output
/// literals (`out[i]` ⇔ at least `i+1` inputs true).
fn build_totalizer(lits: &[Lit], sink: &mut CnfSink) -> Vec<Lit> {
    if lits.len() == 1 {
        return vec![lits[0]];
    }
    let mid = lits.len() / 2;
    let left = build_totalizer(&lits[..mid], sink);
    let right = build_totalizer(&lits[mid..], sink);
    merge(&left, &right, sink)
}

/// Merges two unary numbers with fresh output literals.
fn merge(a: &[Lit], b: &[Lit], sink: &mut CnfSink) -> Vec<Lit> {
    let n = a.len() + b.len();
    let out: Vec<Lit> = (0..n).map(|_| Lit::positive(sink.fresh_var())).collect();
    // a_i ∧ b_j → out_{i+j+1}  (with the empty-index conventions below)
    for i in 0..=a.len() {
        for j in 0..=b.len() {
            if i + j == 0 {
                continue;
            }
            // Sum direction: i trues on the left and j on the right imply
            // out_{i+j}.
            {
                let mut clause = Vec::with_capacity(3);
                if i > 0 {
                    clause.push(!a[i - 1]);
                }
                if j > 0 {
                    clause.push(!b[j - 1]);
                }
                clause.push(out[i + j - 1]);
                sink.add_clause(clause);
            }
            // Converse direction: out_{i+j} implies i trues on the left or
            // j+1 on the right / etc. Encoded as:
            // ¬a_{i+1} ∧ ¬b_{j+1} → ¬out_{i+j+1}.
            if i + j < n {
                let mut clause = Vec::with_capacity(3);
                if i < a.len() {
                    clause.push(a[i]);
                }
                if j < b.len() {
                    clause.push(b[j]);
                }
                clause.push(!out[i + j]);
                sink.add_clause(clause);
            }
        }
    }
    out
}

/// One node of the persistent counting tree.
///
/// Leaves carry the input literal itself as their only "output";
/// internal nodes own the fresh output literals materialised so far.
/// Nodes are stored in post-order (children before parents, root last)
/// so a single forward sweep can extend children before the parents
/// that merge them.
#[derive(Debug, Clone)]
struct TotNode {
    /// `None` for leaves; `Some((left, right))` indexes into the node
    /// vector for internal nodes.
    children: Option<(usize, usize)>,
    /// Number of input literals under this node.
    size: usize,
    /// Materialised output literals: `outs[i]` ⇔ at least `i+1` of this
    /// node's inputs are true. Truncated at `min(size, bound + 1)`.
    outs: Vec<Lit>,
}

/// An incrementally-extensible Bailleux–Boufkhad totalizer.
///
/// The tree is built once over a fixed input set, *truncated* at a
/// bound `k`: each node materialises only its first `min(size, k+1)`
/// output literals and the clauses that define them, which is all an
/// at-most-`k` constraint can ever inspect. [`increase_bound`] later
/// raises the truncation point, reusing every existing internal node
/// and emitting **only** the new output variables and the clauses whose
/// consequent is a newly materialised output — the incremental-reuse
/// contract OLL/RC2-class solvers depend on when a core forces a bound
/// from `k` to `k+1`.
///
/// Output semantics match [`build_totalizer`]: `output(i)` ⇔ at least
/// `i+1` inputs are true. An at-most-`k` bound is enforced by asserting
/// (or assuming, for retractable bounds) `¬output(k)`; both implication
/// directions are emitted so models stay extractable.
///
/// The builder is sink-agnostic across calls: each call takes a fresh
/// [`CnfSink`] whose first free variable continues the caller's
/// allocation (e.g. `CnfSink::new(engine.num_vars())`), and the caller
/// drains the sink's clauses into its persistent solver. Literals
/// stored in the tree remain valid across sinks.
///
/// [`increase_bound`]: IncrementalTotalizer::increase_bound
#[derive(Debug, Clone)]
pub struct IncrementalTotalizer {
    /// Post-order node storage; the root is the last element.
    nodes: Vec<TotNode>,
    /// Current truncation bound: outputs `0..=bound` are materialised
    /// (capped by each node's size).
    bound: usize,
}

impl IncrementalTotalizer {
    /// Builds the counting tree over `lits`, materialising outputs up
    /// to index `bound` (so `output(bound)` exists whenever
    /// `bound < lits.len()`). Fresh variables and clauses go into
    /// `sink`.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty.
    #[must_use]
    pub fn new(lits: &[Lit], bound: usize, sink: &mut CnfSink) -> Self {
        assert!(!lits.is_empty(), "totalizer over an empty input set");
        let mut nodes = Vec::with_capacity(2 * lits.len());
        Self::build_tree(lits, &mut nodes);
        let mut tot = IncrementalTotalizer { nodes, bound: 0 };
        tot.materialise(None, bound, sink);
        tot.bound = bound;
        tot
    }

    /// Recursive balanced split, pushing nodes in post-order and
    /// returning the subtree root's index.
    fn build_tree(lits: &[Lit], nodes: &mut Vec<TotNode>) -> usize {
        if lits.len() == 1 {
            nodes.push(TotNode {
                children: None,
                size: 1,
                outs: vec![lits[0]],
            });
            return nodes.len() - 1;
        }
        let mid = lits.len() / 2;
        let left = Self::build_tree(&lits[..mid], nodes);
        let right = Self::build_tree(&lits[mid..], nodes);
        nodes.push(TotNode {
            children: Some((left, right)),
            size: lits.len(),
            outs: Vec::new(),
        });
        nodes.len() - 1
    }

    /// Number of input literals the tree counts.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.nodes.last().map_or(0, |root| root.size)
    }

    /// The current truncation bound.
    #[must_use]
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// The root output literal at index `k` (`⇔` at least `k+1` inputs
    /// true), or `None` when `k` exceeds the input count or has not
    /// been materialised yet.
    #[must_use]
    pub fn output(&self, k: usize) -> Option<Lit> {
        self.nodes.last().and_then(|root| root.outs.get(k)).copied()
    }

    /// Raises the truncation bound, emitting only the new output
    /// variables and the clauses that define them into `sink`. Every
    /// previously emitted variable and clause is reused untouched; a
    /// `new_bound` at or below the current bound is a no-op.
    pub fn increase_bound(&mut self, new_bound: usize, sink: &mut CnfSink) {
        if new_bound <= self.bound {
            return;
        }
        let old = self.bound;
        self.materialise(Some(old), new_bound, sink);
        self.bound = new_bound;
    }

    /// Shared emission sweep: materialises every output index in
    /// `(old_bound, new_bound]` (per node, capped by node size) plus
    /// exactly the merge clauses whose consequent lands in that window.
    /// `old_bound = None` means nothing has been emitted yet.
    fn materialise(&mut self, old_bound: Option<usize>, new_bound: usize, sink: &mut CnfSink) {
        // Post-order storage: children precede parents, so child
        // outputs for this window already exist when the parent merge
        // clauses need them.
        for idx in 0..self.nodes.len() {
            let Some((left, right)) = self.nodes[idx].children else {
                continue;
            };
            let size = self.nodes[idx].size;
            let new_mat = size.min(new_bound + 1);
            let old_mat = old_bound.map_or(0, |b| size.min(b + 1));
            // Extend this node's outputs first: merge clauses below
            // reference them.
            for _ in old_mat..new_mat {
                let fresh = Lit::positive(sink.fresh_var());
                self.nodes[idx].outs.push(fresh);
            }
            if new_mat == old_mat {
                continue;
            }
            let (a_mat, b_mat) = (self.nodes[left].outs.len(), self.nodes[right].outs.len());
            for i in 0..=a_mat {
                for j in 0..=b_mat {
                    // Sum direction: i trues left ∧ j trues right →
                    // out_{i+j}; consequent index i+j-1 must be new.
                    if i + j >= 1 {
                        let t = i + j - 1;
                        if t >= old_mat && t < new_mat {
                            let mut clause = Vec::with_capacity(3);
                            if i > 0 {
                                clause.push(!self.nodes[left].outs[i - 1]);
                            }
                            if j > 0 {
                                clause.push(!self.nodes[right].outs[j - 1]);
                            }
                            clause.push(self.nodes[idx].outs[t]);
                            sink.add_clause(clause);
                        }
                    }
                    // Converse direction: ¬a_{i+1} ∧ ¬b_{j+1} →
                    // ¬out_{i+j+1}; consequent index i+j must be new.
                    let t = i + j;
                    if t < size && t >= old_mat && t < new_mat {
                        let mut clause = Vec::with_capacity(3);
                        if i < self.nodes[left].size {
                            clause.push(self.nodes[left].outs[i]);
                        }
                        if j < self.nodes[right].size {
                            clause.push(self.nodes[right].outs[j]);
                        }
                        clause.push(!self.nodes[idx].outs[t]);
                        sink.add_clause(clause);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Var;

    #[test]
    fn produces_n_outputs_at_root() {
        let lits: Vec<Lit> = (0..5).map(|i| Lit::positive(Var::new(i))).collect();
        let mut sink = CnfSink::new(5);
        let out = build_totalizer(&lits, &mut sink);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn single_literal_passthrough() {
        let l = Lit::positive(Var::new(0));
        let mut sink = CnfSink::new(1);
        let out = build_totalizer(&[l], &mut sink);
        assert_eq!(out, vec![l]);
        assert_eq!(sink.num_clauses(), 0);
    }

    #[test]
    fn clause_count_quadratic_bound() {
        let n = 16;
        let lits: Vec<Lit> = (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect();
        let mut sink = CnfSink::new(n);
        at_most(&lits, 8, &mut sink);
        // O(n²) clauses for the full (non-k-truncated) totalizer.
        assert!(sink.num_clauses() <= 2 * n * n + 1);
    }

    use crate::test_support::{bit_assumptions, solver_for_sink};
    use coremax_sat::SolveOutcome;

    fn inputs(n: usize) -> Vec<Lit> {
        (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect()
    }

    /// Exhaustively checks that with `¬output(k)` asserted, the sink's
    /// clauses are satisfiable exactly for input patterns with at most
    /// `k` bits set.
    fn assert_at_most_semantics(n: usize, k: usize, tot: &IncrementalTotalizer, sink: &CnfSink) {
        let mut gated = sink.clone();
        gated.add_clause(vec![!tot.output(k).expect("bound output materialised")]);
        let mut solver = solver_for_sink(&gated);
        for bits in 0u32..(1 << n) {
            let expect = bits.count_ones() as usize <= k;
            let outcome = solver.solve_with_assumptions(&bit_assumptions(n, bits));
            let sat = outcome == SolveOutcome::Sat;
            assert_eq!(sat, expect, "n={n} k={k} bits={bits:b}");
        }
    }

    #[test]
    fn truncated_build_is_exact_at_its_bound() {
        for n in 2..=7 {
            for k in 1..n {
                let lits = inputs(n);
                let mut sink = CnfSink::new(n);
                let tot = IncrementalTotalizer::new(&lits, k, &mut sink);
                assert_at_most_semantics(n, k, &tot, &sink);
            }
        }
    }

    #[test]
    fn increase_bound_emits_only_the_new_layers() {
        let n = 8;
        let lits = inputs(n);
        // Grown incrementally 1 → 2 → … → n-1.
        let mut grown_sink = CnfSink::new(n);
        let mut tot = IncrementalTotalizer::new(&lits, 1, &mut grown_sink);
        let mut clause_counts = vec![grown_sink.num_clauses()];
        for k in 2..n {
            tot.increase_bound(k, &mut grown_sink);
            clause_counts.push(grown_sink.num_clauses());
            assert_at_most_semantics(n, k, &tot, &grown_sink);
        }
        // Every extension emitted something (new layers exist while
        // k < n), and the grown encoding is exactly the clauses a
        // direct build at the final bound would have emitted.
        for w in clause_counts.windows(2) {
            assert!(w[1] > w[0], "extension emitted no clauses");
        }
        let mut direct_sink = CnfSink::new(n);
        let _ = IncrementalTotalizer::new(&lits, n - 1, &mut direct_sink);
        assert_eq!(grown_sink.num_clauses(), direct_sink.num_clauses());
        assert_eq!(grown_sink.num_vars(), direct_sink.num_vars());
    }

    #[test]
    fn increase_bound_preserves_existing_outputs() {
        let n = 6;
        let lits = inputs(n);
        let mut sink = CnfSink::new(n);
        let mut tot = IncrementalTotalizer::new(&lits, 1, &mut sink);
        let o0 = tot.output(0).unwrap();
        let o1 = tot.output(1).unwrap();
        assert_eq!(tot.output(2), None, "index 2 not materialised yet");
        tot.increase_bound(3, &mut sink);
        assert_eq!(tot.output(0), Some(o0));
        assert_eq!(tot.output(1), Some(o1));
        assert!(tot.output(2).is_some() && tot.output(3).is_some());
        assert_eq!(tot.bound(), 3);
        // No-op shrink/equal calls change nothing.
        let clauses = sink.num_clauses();
        tot.increase_bound(3, &mut sink);
        tot.increase_bound(1, &mut sink);
        assert_eq!(sink.num_clauses(), clauses);
    }

    #[test]
    fn single_input_tree_passes_the_literal_through() {
        let l = Lit::positive(Var::new(0));
        let mut sink = CnfSink::new(1);
        let mut tot = IncrementalTotalizer::new(&[l], 1, &mut sink);
        assert_eq!(tot.output(0), Some(l));
        assert_eq!(tot.output(1), None);
        assert_eq!(tot.num_inputs(), 1);
        assert_eq!(sink.num_clauses(), 0);
        tot.increase_bound(4, &mut sink);
        assert_eq!(sink.num_clauses(), 0, "nothing to extend past the size");
    }
}
