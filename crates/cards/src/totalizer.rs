//! Bailleux–Boufkhad totalizer encoding.
//!
//! O. Bailleux and Y. Boufkhad, *Efficient CNF Encoding of Boolean
//! Cardinality Constraints*, CP 2003. A balanced tree of unary adders:
//! each node carries output literals `o₁ ≥ o₂ ≥ …` in unary ("at least
//! i inputs are true"), merged from its two children. The at-most-k
//! constraint asserts `¬o_{k+1}` at the root. We emit both implication
//! directions so the same counter also serves at-least bounds and keeps
//! models extractable.

use coremax_cnf::Lit;

use crate::CnfSink;

pub(crate) fn at_most(lits: &[Lit], k: usize, sink: &mut CnfSink) {
    debug_assert!(k >= 1 && k < lits.len());
    let outputs = build_totalizer(lits, sink);
    // Forbid the (k+1)-th output: at most k inputs may be true.
    sink.add_clause(vec![!outputs[k]]);
}

/// Builds the unary counting tree and returns the root's output
/// literals (`out[i]` ⇔ at least `i+1` inputs true).
fn build_totalizer(lits: &[Lit], sink: &mut CnfSink) -> Vec<Lit> {
    if lits.len() == 1 {
        return vec![lits[0]];
    }
    let mid = lits.len() / 2;
    let left = build_totalizer(&lits[..mid], sink);
    let right = build_totalizer(&lits[mid..], sink);
    merge(&left, &right, sink)
}

/// Merges two unary numbers with fresh output literals.
fn merge(a: &[Lit], b: &[Lit], sink: &mut CnfSink) -> Vec<Lit> {
    let n = a.len() + b.len();
    let out: Vec<Lit> = (0..n).map(|_| Lit::positive(sink.fresh_var())).collect();
    // a_i ∧ b_j → out_{i+j+1}  (with the empty-index conventions below)
    for i in 0..=a.len() {
        for j in 0..=b.len() {
            if i + j == 0 {
                continue;
            }
            // Sum direction: i trues on the left and j on the right imply
            // out_{i+j}.
            {
                let mut clause = Vec::with_capacity(3);
                if i > 0 {
                    clause.push(!a[i - 1]);
                }
                if j > 0 {
                    clause.push(!b[j - 1]);
                }
                clause.push(out[i + j - 1]);
                sink.add_clause(clause);
            }
            // Converse direction: out_{i+j} implies i trues on the left or
            // j+1 on the right / etc. Encoded as:
            // ¬a_{i+1} ∧ ¬b_{j+1} → ¬out_{i+j+1}.
            if i + j < n {
                let mut clause = Vec::with_capacity(3);
                if i < a.len() {
                    clause.push(a[i]);
                }
                if j < b.len() {
                    clause.push(b[j]);
                }
                clause.push(!out[i + j]);
                sink.add_clause(clause);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Var;

    #[test]
    fn produces_n_outputs_at_root() {
        let lits: Vec<Lit> = (0..5).map(|i| Lit::positive(Var::new(i))).collect();
        let mut sink = CnfSink::new(5);
        let out = build_totalizer(&lits, &mut sink);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn single_literal_passthrough() {
        let l = Lit::positive(Var::new(0));
        let mut sink = CnfSink::new(1);
        let out = build_totalizer(&[l], &mut sink);
        assert_eq!(out, vec![l]);
        assert_eq!(sink.num_clauses(), 0);
    }

    #[test]
    fn clause_count_quadratic_bound() {
        let n = 16;
        let lits: Vec<Lit> = (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect();
        let mut sink = CnfSink::new(n);
        at_most(&lits, 8, &mut sink);
        // O(n²) clauses for the full (non-k-truncated) totalizer.
        assert!(sink.num_clauses() <= 2 * n * n + 1);
    }
}
