//! Binary adder-network encoding.
//!
//! The third translation of Eén & Sörensson's minisat+ paper (§5.3,
//! after BDDs and sorting networks): count the true inputs with a tree
//! of full/half adders into a binary number, then compare that number
//! against the bound with a lexicographic comparator. `O(n)` clauses
//! for the counter plus `O(log n)` for the comparison — the most
//! compact of the three, at the price of weak propagation (no arc
//! consistency), which is exactly the trade-off the paper's §5
//! "alternative encodings" discussion is about.

use coremax_cnf::Lit;

use crate::CnfSink;

pub(crate) fn at_most(lits: &[Lit], k: usize, sink: &mut CnfSink) {
    debug_assert!(k >= 1 && k < lits.len());
    let sum_bits = count_bits(lits, sink);
    // Enforce  (b_{m-1} … b_0)₂ ≤ k.
    leq_constant(&sum_bits, k, sink);
}

/// Builds a binary counter over `lits`, returning its bits LSB-first.
fn count_bits(lits: &[Lit], sink: &mut CnfSink) -> Vec<Lit> {
    // Bucket queue per bit position: pending addends of weight 2^i.
    let mut buckets: Vec<Vec<Lit>> = vec![lits.to_vec()];
    let mut result: Vec<Lit> = Vec::new();
    let mut position = 0usize;
    loop {
        while buckets.len() <= position {
            buckets.push(Vec::new());
        }
        // Reduce the current bucket to a single literal using full and
        // half adders; carries land in the next bucket.
        while buckets[position].len() >= 3 {
            let a = buckets[position].pop().expect("len>=3");
            let b = buckets[position].pop().expect("len>=2");
            let c = buckets[position].pop().expect("len>=1");
            let (sum, carry) = full_adder(a, b, c, sink);
            buckets[position].push(sum);
            if buckets.len() <= position + 1 {
                buckets.push(Vec::new());
            }
            buckets[position + 1].push(carry);
        }
        if buckets[position].len() == 2 {
            let a = buckets[position].pop().expect("len==2");
            let b = buckets[position].pop().expect("len==1");
            let (sum, carry) = half_adder(a, b, sink);
            buckets[position].push(sum);
            if buckets.len() <= position + 1 {
                buckets.push(Vec::new());
            }
            buckets[position + 1].push(carry);
        }
        match buckets[position].pop() {
            Some(bit) => result.push(bit),
            None => {
                // Empty bucket: constant-zero bit.
                let zero = Lit::positive(sink.fresh_var());
                sink.add_clause(vec![!zero]);
                result.push(zero);
            }
        }
        position += 1;
        if position >= buckets.len() {
            break;
        }
        // Stop when no pending addends remain at or beyond `position`.
        if buckets[position..].iter().all(Vec::is_empty) {
            break;
        }
    }
    result
}

/// Full adder with two-sided Tseitin clauses: `(sum, carry)`.
fn full_adder(a: Lit, b: Lit, c: Lit, sink: &mut CnfSink) -> (Lit, Lit) {
    let sum = Lit::positive(sink.fresh_var());
    let carry = Lit::positive(sink.fresh_var());
    // sum ⇔ a ⊕ b ⊕ c
    sink.add_clause(vec![!a, !b, !c, sum]);
    sink.add_clause(vec![!a, b, c, sum]);
    sink.add_clause(vec![a, !b, c, sum]);
    sink.add_clause(vec![a, b, !c, sum]);
    sink.add_clause(vec![a, b, c, !sum]);
    sink.add_clause(vec![a, !b, !c, !sum]);
    sink.add_clause(vec![!a, b, !c, !sum]);
    sink.add_clause(vec![!a, !b, c, !sum]);
    // carry ⇔ majority(a, b, c)
    sink.add_clause(vec![!a, !b, carry]);
    sink.add_clause(vec![!a, !c, carry]);
    sink.add_clause(vec![!b, !c, carry]);
    sink.add_clause(vec![a, b, !carry]);
    sink.add_clause(vec![a, c, !carry]);
    sink.add_clause(vec![b, c, !carry]);
    (sum, carry)
}

/// Half adder: `(sum, carry) = (a ⊕ b, a ∧ b)`.
fn half_adder(a: Lit, b: Lit, sink: &mut CnfSink) -> (Lit, Lit) {
    let sum = Lit::positive(sink.fresh_var());
    let carry = Lit::positive(sink.fresh_var());
    sink.add_clause(vec![!a, b, sum]);
    sink.add_clause(vec![a, !b, sum]);
    sink.add_clause(vec![a, b, !sum]);
    sink.add_clause(vec![!a, !b, !sum]);
    sink.add_clause(vec![!a, !b, carry]);
    sink.add_clause(vec![a, !carry]);
    sink.add_clause(vec![b, !carry]);
    (sum, carry)
}

/// Enforces `(bits)₂ ≤ constant` (bits LSB-first) by forbidding every
/// position where a greater number would first exceed the constant:
/// for each bit i with constant-bit 0, require that if all higher
/// constant-1 positions... — standard lexicographic encoding: for every
/// `i` with `constant[i] == 0`:  `(∧_{j>i, constant[j]=1} bits[j]) → ¬bits[i]`.
fn leq_constant(bits: &[Lit], constant: usize, sink: &mut CnfSink) {
    for i in (0..bits.len()).rev() {
        let k_bit = constant >> i & 1;
        if k_bit == 1 {
            continue;
        }
        // Clause: ¬bits[i] ∨ ⋁_{j>i, k_j = 1} ¬bits[j]
        let mut clause = vec![!bits[i]];
        for (j, &bj) in bits.iter().enumerate().skip(i + 1) {
            if constant >> j & 1 == 1 {
                clause.push(!bj);
            } else {
                // A higher 0-position already forces bits[j] = 0 through
                // its own clause when the prefix matches; including it
                // here would weaken the clause, so skip.
            }
        }
        sink.add_clause(clause);
    }
    // Bits beyond the constant's width must satisfy their own clauses
    // (covered above since those positions have k_bit = 0).
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Var;
    use coremax_sat::SolveOutcome;

    fn input_lits(n: usize) -> Vec<Lit> {
        (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect()
    }

    #[test]
    fn counter_counts_exactly() {
        for n in [1usize, 2, 3, 5, 8] {
            let lits = input_lits(n);
            let mut sink = CnfSink::new(n);
            let bits = count_bits(&lits, &mut sink);
            for value in 0u32..(1 << n) {
                let mut solver = crate::test_support::solver_for_sink(&sink);
                let assumptions = crate::test_support::bit_assumptions(n, value);
                assert_eq!(
                    solver.solve_with_assumptions(&assumptions),
                    SolveOutcome::Sat
                );
                let model = solver.model().unwrap();
                let mut counted = 0usize;
                for (i, &bit) in bits.iter().enumerate() {
                    if model.satisfies(bit) {
                        counted += 1 << i;
                    }
                }
                assert_eq!(
                    counted,
                    value.count_ones() as usize,
                    "n={n} value={value:b}"
                );
            }
        }
    }

    #[test]
    fn full_adder_truth_table() {
        let mut sink = CnfSink::new(3);
        let (a, b, c) = (
            Lit::positive(Var::new(0)),
            Lit::positive(Var::new(1)),
            Lit::positive(Var::new(2)),
        );
        let (sum, carry) = full_adder(a, b, c, &mut sink);
        for bits in 0u32..8 {
            let mut solver = crate::test_support::solver_for_sink(&sink);
            let assumptions = crate::test_support::bit_assumptions(3, bits);
            assert_eq!(
                solver.solve_with_assumptions(&assumptions),
                SolveOutcome::Sat
            );
            let m = solver.model().unwrap();
            let total = bits.count_ones();
            assert_eq!(m.satisfies(sum), total % 2 == 1);
            assert_eq!(m.satisfies(carry), total >= 2);
        }
    }

    #[test]
    fn leq_constant_semantics() {
        // 3 free bits, constraint value ≤ 5.
        let n = 3;
        let bits = input_lits(n);
        let mut sink = CnfSink::new(n);
        leq_constant(&bits, 5, &mut sink);
        for value in 0u32..8 {
            let mut solver = crate::test_support::solver_for_sink(&sink);
            let assumptions = crate::test_support::bit_assumptions(n, value);
            let sat = solver.solve_with_assumptions(&assumptions) == SolveOutcome::Sat;
            assert_eq!(sat, value <= 5, "value={value}");
        }
    }

    #[test]
    fn encoding_is_linear_sized() {
        let n = 64;
        let lits = input_lits(n);
        let mut sink = CnfSink::new(n);
        at_most(&lits, 20, &mut sink);
        // ~14 clauses per adder, ~n adders.
        assert!(
            sink.num_clauses() < 20 * n,
            "{} clauses",
            sink.num_clauses()
        );
    }
}
