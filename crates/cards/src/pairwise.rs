//! Naive binomial ("pairwise") encoding.
//!
//! `Σ lits ≤ k` holds iff no `k+1` of the literals are simultaneously
//! true, so one clause `(¬l₁ ∨ … ∨ ¬l_{k+1})` per `(k+1)`-subset encodes
//! the constraint with no auxiliary variables. Exponential in general;
//! used as the semantic oracle in tests and for very small `n`.

use coremax_cnf::Lit;

use crate::CnfSink;

pub(crate) fn at_most(lits: &[Lit], k: usize, sink: &mut CnfSink) {
    debug_assert!(k >= 1 && k < lits.len());
    let mut subset: Vec<usize> = (0..=k).collect();
    loop {
        sink.add_clause(subset.iter().map(|&i| !lits[i]).collect());
        if !next_combination(&mut subset, lits.len()) {
            return;
        }
    }
}

/// Advances `idx` to the next m-combination of `0..n` in lexicographic
/// order; returns `false` after the last combination.
fn next_combination(idx: &mut [usize], n: usize) -> bool {
    let m = idx.len();
    let mut i = m;
    while i > 0 {
        i -= 1;
        if idx[i] < n - m + i {
            idx[i] += 1;
            for j in i + 1..m {
                idx[j] = idx[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Var;

    fn lits(n: usize) -> Vec<Lit> {
        (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect()
    }

    fn binomial(n: usize, r: usize) -> usize {
        if r > n {
            return 0;
        }
        let mut result = 1usize;
        for i in 0..r {
            result = result * (n - i) / (i + 1);
        }
        result
    }

    #[test]
    fn clause_count_is_binomial() {
        for n in 2..=7 {
            for k in 1..n {
                let mut sink = CnfSink::new(n);
                at_most(&lits(n), k, &mut sink);
                assert_eq!(sink.num_clauses(), binomial(n, k + 1), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn no_aux_vars() {
        let mut sink = CnfSink::new(5);
        at_most(&lits(5), 2, &mut sink);
        assert_eq!(sink.num_vars(), 5);
    }

    #[test]
    fn at_most_one_is_all_pairs() {
        let mut sink = CnfSink::new(4);
        at_most(&lits(4), 1, &mut sink);
        assert_eq!(sink.num_clauses(), 6);
        for c in sink.clauses() {
            assert_eq!(c.len(), 2);
            assert!(c.iter().all(|l| l.is_negative()));
        }
    }
}
