//! Batcher odd-even merge-sorting network (msu4 **v2**).
//!
//! Eén & Sörensson, *Translating Pseudo-Boolean Constraints into SAT*
//! (JSAT 2006), §5.2. The network sorts the input literals so that true
//! inputs bubble to the front: output `out[i]` is true iff at least
//! `i+1` inputs are true. `Σ lits ≤ k` is then the single unit clause
//! `¬out[k]`. Comparators are encoded with full (two-sided) Tseitin
//! clauses so models remain extractable and the same network serves
//! both bound directions.

use coremax_cnf::Lit;

use crate::CnfSink;

pub(crate) fn at_most(lits: &[Lit], k: usize, sink: &mut CnfSink) {
    debug_assert!(k >= 1 && k < lits.len());
    let sorted = sort_network(lits, sink);
    sink.add_clause(vec![!sorted[k]]);
}

/// Builds the sorting network, returning outputs in descending order
/// (`out[0]` = "at least one input true", …). Exposed to the totalizer
/// comparison benches via the crate-internal API.
pub(crate) fn sort_network(lits: &[Lit], sink: &mut CnfSink) -> Vec<Lit> {
    // Pad to a power of two with a constant-false literal.
    let n = lits.len().next_power_of_two();
    let mut input = lits.to_vec();
    if input.len() < n {
        let f = Lit::positive(sink.fresh_var());
        sink.add_clause(vec![!f]); // force false
        input.resize(n, f);
    }
    let mut out = oe_sort(&input, sink);
    // Padding elements are constant-false and sort to the back.
    out.truncate(lits.len());
    out
}

fn oe_sort(x: &[Lit], sink: &mut CnfSink) -> Vec<Lit> {
    debug_assert!(x.len().is_power_of_two());
    if x.len() == 1 {
        return x.to_vec();
    }
    let mid = x.len() / 2;
    let a = oe_sort(&x[..mid], sink);
    let b = oe_sort(&x[mid..], sink);
    oe_merge(&a, &b, sink)
}

/// Batcher odd-even merge of two descending-sorted sequences of equal
/// power-of-two length.
fn oe_merge(a: &[Lit], b: &[Lit], sink: &mut CnfSink) -> Vec<Lit> {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 1 {
        let (hi, lo) = comparator(a[0], b[0], sink);
        return vec![hi, lo];
    }
    let evens = |s: &[Lit]| -> Vec<Lit> { s.iter().step_by(2).copied().collect() };
    let odds = |s: &[Lit]| -> Vec<Lit> { s.iter().skip(1).step_by(2).copied().collect() };
    let d = oe_merge(&evens(a), &evens(b), sink);
    let e = oe_merge(&odds(a), &odds(b), sink);
    debug_assert_eq!(d.len(), n);
    debug_assert_eq!(e.len(), n);

    let mut out = Vec::with_capacity(2 * n);
    out.push(d[0]);
    for i in 0..n - 1 {
        let (hi, lo) = comparator(e[i], d[i + 1], sink);
        out.push(hi);
        out.push(lo);
    }
    out.push(e[n - 1]);
    out
}

/// A two-sorter: `hi = a ∨ b`, `lo = a ∧ b`, with both implication
/// directions emitted.
fn comparator(a: Lit, b: Lit, sink: &mut CnfSink) -> (Lit, Lit) {
    let hi = Lit::positive(sink.fresh_var());
    let lo = Lit::positive(sink.fresh_var());
    // hi ⇔ a ∨ b
    sink.add_clause(vec![!a, hi]);
    sink.add_clause(vec![!b, hi]);
    sink.add_clause(vec![a, b, !hi]);
    // lo ⇔ a ∧ b
    sink.add_clause(vec![!a, !b, lo]);
    sink.add_clause(vec![a, !lo]);
    sink.add_clause(vec![b, !lo]);
    (hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Var;
    use coremax_sat::SolveOutcome;

    fn input_lits(n: usize) -> Vec<Lit> {
        (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect()
    }

    /// For each input assignment, every sorted output must equal the
    /// unary count ("out[i] ⇔ popcount > i").
    #[test]
    fn network_counts_exactly() {
        for n in [1usize, 2, 3, 4, 5, 7, 8] {
            let lits = input_lits(n);
            let mut sink = CnfSink::new(n);
            let out = sort_network(&lits, &mut sink);
            assert_eq!(out.len(), n);
            for bits in 0u32..(1 << n) {
                let mut solver = crate::test_support::solver_for_sink(&sink);
                let assumptions = crate::test_support::bit_assumptions(n, bits);
                assert_eq!(
                    solver.solve_with_assumptions(&assumptions),
                    SolveOutcome::Sat
                );
                let m = solver.model().unwrap().clone();
                let pop = bits.count_ones() as usize;
                for (i, &o) in out.iter().enumerate() {
                    assert_eq!(m.satisfies(o), pop > i, "n={n} bits={bits:b} output {i}");
                }
            }
        }
    }

    #[test]
    fn comparator_truth_table() {
        let a = Lit::positive(Var::new(0));
        let b = Lit::positive(Var::new(1));
        let mut sink = CnfSink::new(2);
        let (hi, lo) = comparator(a, b, &mut sink);
        for bits in 0u32..4 {
            let mut solver = crate::test_support::solver_for_sink(&sink);
            let assumptions = [
                Lit::new(Var::new(0), bits & 1 == 1),
                Lit::new(Var::new(1), bits & 2 == 2),
            ];
            assert_eq!(
                solver.solve_with_assumptions(&assumptions),
                SolveOutcome::Sat
            );
            let m = solver.model().unwrap();
            let (av, bv) = (bits & 1 == 1, bits & 2 == 2);
            assert_eq!(m.satisfies(hi), av || bv);
            assert_eq!(m.satisfies(lo), av && bv);
        }
    }

    #[test]
    fn network_size_nlog2n() {
        let n = 64;
        let lits = input_lits(n);
        let mut sink = CnfSink::new(n);
        let _ = sort_network(&lits, &mut sink);
        // O(n log² n) comparators, 6 clauses each.
        let comparators = (sink.num_vars() - n) / 2;
        assert!(comparators <= n * 36, "too many comparators: {comparators}");
    }
}
