//! Clause sink with fresh-variable allocation for encoders.

use coremax_cnf::{Lit, Var};

/// Receives the clauses produced by an encoding and allocates auxiliary
/// variables above a caller-supplied watermark.
///
/// # Examples
///
/// ```
/// use coremax_cards::CnfSink;
/// let mut sink = CnfSink::new(10); // vars 0..10 belong to the problem
/// let aux = sink.fresh_var();
/// assert_eq!(aux.index(), 10);
/// assert_eq!(sink.num_vars(), 11);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CnfSink {
    next_var: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfSink {
    /// Creates a sink whose fresh variables start at `first_free_var`.
    #[must_use]
    pub fn new(first_free_var: usize) -> Self {
        CnfSink {
            next_var: first_free_var,
            clauses: Vec::new(),
        }
    }

    /// Allocates a fresh auxiliary variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var::new(self.next_var as u32);
        self.next_var += 1;
        v
    }

    /// Appends a clause.
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        self.clauses.push(lits);
    }

    /// Total variable count (problem + auxiliary).
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.next_var
    }

    /// Number of clauses emitted so far.
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The emitted clauses.
    #[must_use]
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Consumes the sink, returning the clauses.
    #[must_use]
    pub fn into_clauses(self) -> Vec<Vec<Lit>> {
        self.clauses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_sequential_above_watermark() {
        let mut s = CnfSink::new(5);
        assert_eq!(s.fresh_var().index(), 5);
        assert_eq!(s.fresh_var().index(), 6);
        assert_eq!(s.num_vars(), 7);
    }

    #[test]
    fn clauses_accumulate() {
        let mut s = CnfSink::new(0);
        let v = s.fresh_var();
        s.add_clause(vec![Lit::positive(v)]);
        s.add_clause(vec![Lit::negative(v)]);
        assert_eq!(s.num_clauses(), 2);
        assert_eq!(s.into_clauses().len(), 2);
    }
}
