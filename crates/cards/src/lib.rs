//! CNF encodings of cardinality constraints.
//!
//! The msu4 algorithm of Marques-Silva & Planes (DATE 2008) adds
//! constraints of the form `Σ bᵢ ≤ k` and `Σ bᵢ ≥ 1` to a working CNF
//! formula. Its two implementation variants differ *only* in how these
//! constraints are translated to clauses:
//!
//! - **v1** used BDDs ([`CardEncoding::Bdd`]), and
//! - **v2** used sorting networks ([`CardEncoding::SortingNetwork`]),
//!
//! both following Eén & Sörensson's *Translating Pseudo-Boolean
//! Constraints into SAT* (JSAT 2006). This crate implements those two
//! plus the sequential counter (Sinz 2005, the "linear encoding" of
//! msu2/msu3) and the totalizer (Bailleux & Boufkhad 2003) for the
//! ablation experiments, and the naive pairwise/binomial encoding as a
//! correctness oracle.
//!
//! All encodings are *exact*: for a total assignment of the input
//! literals, the encoding (with its auxiliary variables) is satisfiable
//! iff the cardinality bound holds.
//!
//! # Examples
//!
//! ```
//! use coremax_cnf::{Lit, Var};
//! use coremax_cards::{CardEncoding, CnfSink, encode_at_most};
//!
//! let lits: Vec<Lit> = (0..4).map(|i| Lit::positive(Var::new(i))).collect();
//! let mut sink = CnfSink::new(4); // variables 0..4 already in use
//! encode_at_most(&lits, 2, CardEncoding::SortingNetwork, &mut sink);
//! assert!(sink.num_clauses() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adder;
mod bdd;
mod pairwise;
mod sequential;
mod sink;
mod sorting;
mod totalizer;

pub use sink::CnfSink;
pub use totalizer::IncrementalTotalizer;

/// Shared scaffolding for the exhaustive encoding tests in this crate
/// (unit and integration alike): every one of them builds the same
/// preamble — a fresh solver loaded with a sink's clauses — and forces
/// the input variables to a bit pattern via assumptions.
#[doc(hidden)]
pub mod test_support {
    use coremax_cnf::{Lit, Var};
    use coremax_sat::Solver;

    use crate::CnfSink;

    /// A fresh solver over the sink's variables, loaded with all of
    /// its clauses.
    #[must_use]
    pub fn solver_for_sink(sink: &CnfSink) -> Solver {
        let mut solver = Solver::new();
        solver.ensure_vars(sink.num_vars());
        for c in sink.clauses() {
            solver.add_clause(c.iter().copied());
        }
        solver
    }

    /// Assumptions forcing input variable `i` (for each `i < n`) to
    /// bit `i` of `bits`.
    #[must_use]
    pub fn bit_assumptions(n: usize, bits: u32) -> Vec<Lit> {
        (0..n)
            .map(|i| Lit::new(Var::new(i as u32), bits >> i & 1 == 1))
            .collect()
    }
}

use coremax_cnf::Lit;

/// Selects the CNF translation used for a cardinality constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CardEncoding {
    /// BDD / ITE-chain encoding (msu4 **v1**, Eén–Sörensson §5.1).
    Bdd,
    /// Batcher odd-even sorting network (msu4 **v2**, Eén–Sörensson §5.2).
    SortingNetwork,
    /// Sinz sequential counter — the "linear encoding" used by msu2/msu3.
    SequentialCounter,
    /// Bailleux–Boufkhad totalizer (unary counting tree).
    Totalizer,
    /// Naive binomial encoding; exponential, for tests and tiny n only.
    Pairwise,
    /// Binary adder network + lexicographic comparison (Eén–Sörensson
    /// §5.3) — smallest encoding, weakest propagation.
    AdderNetwork,
}

impl CardEncoding {
    /// All supported encodings, for sweep-style benchmarks.
    pub const ALL: [CardEncoding; 6] = [
        CardEncoding::Bdd,
        CardEncoding::SortingNetwork,
        CardEncoding::SequentialCounter,
        CardEncoding::Totalizer,
        CardEncoding::Pairwise,
        CardEncoding::AdderNetwork,
    ];

    /// A short stable name (used by the bench harness output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CardEncoding::Bdd => "bdd",
            CardEncoding::SortingNetwork => "sortnet",
            CardEncoding::SequentialCounter => "seqcounter",
            CardEncoding::Totalizer => "totalizer",
            CardEncoding::Pairwise => "pairwise",
            CardEncoding::AdderNetwork => "adder",
        }
    }
}

impl std::fmt::Display for CardEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Encodes `Σ lits ≤ k` into `sink` using the chosen encoding.
///
/// `k >= lits.len()` produces no clauses (trivially true); `k == 0`
/// produces unit clauses forcing every literal false.
pub fn encode_at_most(lits: &[Lit], k: usize, encoding: CardEncoding, sink: &mut CnfSink) {
    if k >= lits.len() {
        return;
    }
    if k == 0 {
        for &l in lits {
            sink.add_clause(vec![!l]);
        }
        return;
    }
    match encoding {
        CardEncoding::Bdd => bdd::at_most(lits, k, sink),
        CardEncoding::SortingNetwork => sorting::at_most(lits, k, sink),
        CardEncoding::SequentialCounter => sequential::at_most(lits, k, sink),
        CardEncoding::Totalizer => totalizer::at_most(lits, k, sink),
        CardEncoding::Pairwise => pairwise::at_most(lits, k, sink),
        CardEncoding::AdderNetwork => adder::at_most(lits, k, sink),
    }
}

/// Encodes `Σ lits ≥ k` into `sink` using the chosen encoding.
///
/// Implemented as `Σ ¬lits ≤ n − k`. `k == 0` is trivially true;
/// `k > lits.len()` is unsatisfiable and emits the empty clause.
pub fn encode_at_least(lits: &[Lit], k: usize, encoding: CardEncoding, sink: &mut CnfSink) {
    if k == 0 {
        return;
    }
    if k > lits.len() {
        sink.add_clause(Vec::new());
        return;
    }
    if k == 1 {
        // Σ lits ≥ 1 is just the clause itself — the form msu4 adds for
        // every freshly blocked core (Algorithm 1, line 19).
        sink.add_clause(lits.to_vec());
        return;
    }
    let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
    encode_at_most(&negated, lits.len() - k, encoding, sink);
}

/// Encodes `Σ lits = k` into `sink` (conjunction of ≤ k and ≥ k).
pub fn encode_exactly(lits: &[Lit], k: usize, encoding: CardEncoding, sink: &mut CnfSink) {
    encode_at_most(lits, k, encoding, sink);
    encode_at_least(lits, k, encoding, sink);
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Var;

    fn input_lits(n: usize) -> Vec<Lit> {
        (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect()
    }

    /// Exhaustive semantic check: for every assignment of the `n` input
    /// variables, the encoding extended by forcing that assignment must
    /// be satisfiable iff the constraint holds.
    fn check_exact_at_most(n: usize, k: usize, encoding: CardEncoding) {
        use coremax_sat::SolveOutcome;
        let lits = input_lits(n);
        let mut sink = CnfSink::new(n);
        encode_at_most(&lits, k, encoding, &mut sink);
        for bits in 0u32..(1 << n) {
            let mut solver = crate::test_support::solver_for_sink(&sink);
            let assumptions = crate::test_support::bit_assumptions(n, bits);
            let outcome = solver.solve_with_assumptions(&assumptions);
            let popcount = bits.count_ones() as usize;
            let expected = if popcount <= k {
                SolveOutcome::Sat
            } else {
                SolveOutcome::Unsat
            };
            assert_eq!(
                outcome, expected,
                "{encoding} at_most({n},{k}) bits={bits:b}"
            );
        }
    }

    #[test]
    fn all_encodings_exact_small() {
        for encoding in CardEncoding::ALL {
            for n in 1..=5 {
                for k in 0..=n {
                    check_exact_at_most(n, k, encoding);
                }
            }
        }
    }

    #[test]
    fn all_encodings_exact_n6() {
        for encoding in CardEncoding::ALL {
            for k in [1, 2, 3, 5] {
                check_exact_at_most(6, k, encoding);
            }
        }
    }

    #[test]
    fn at_least_one_is_plain_clause() {
        let lits = input_lits(3);
        let mut sink = CnfSink::new(3);
        encode_at_least(&lits, 1, CardEncoding::Bdd, &mut sink);
        assert_eq!(sink.num_clauses(), 1);
        assert_eq!(sink.clauses()[0], lits);
    }

    #[test]
    fn at_least_semantics() {
        use coremax_sat::SolveOutcome;
        for encoding in CardEncoding::ALL {
            let n = 4;
            let lits = input_lits(n);
            let mut sink = CnfSink::new(n);
            encode_at_least(&lits, 3, encoding, &mut sink);
            for bits in 0u32..(1 << n) {
                let mut solver = crate::test_support::solver_for_sink(&sink);
                let assumptions = crate::test_support::bit_assumptions(n, bits);
                let sat = solver.solve_with_assumptions(&assumptions) == SolveOutcome::Sat;
                assert_eq!(sat, bits.count_ones() >= 3, "{encoding} ≥3 bits={bits:b}");
            }
        }
    }

    #[test]
    fn exactly_semantics() {
        use coremax_sat::SolveOutcome;
        for encoding in CardEncoding::ALL {
            let n = 4;
            let k = 2;
            let lits = input_lits(n);
            let mut sink = CnfSink::new(n);
            encode_exactly(&lits, k, encoding, &mut sink);
            for bits in 0u32..(1 << n) {
                let mut solver = crate::test_support::solver_for_sink(&sink);
                let assumptions = crate::test_support::bit_assumptions(n, bits);
                let sat = solver.solve_with_assumptions(&assumptions) == SolveOutcome::Sat;
                assert_eq!(
                    sat,
                    bits.count_ones() as usize == k,
                    "{encoding} =2 bits={bits:b}"
                );
            }
        }
    }

    #[test]
    fn trivial_bounds() {
        let lits = input_lits(3);
        let mut sink = CnfSink::new(3);
        encode_at_most(&lits, 3, CardEncoding::Bdd, &mut sink);
        assert_eq!(sink.num_clauses(), 0);
        encode_at_least(&lits, 0, CardEncoding::Bdd, &mut sink);
        assert_eq!(sink.num_clauses(), 0);
        encode_at_most(&lits, 0, CardEncoding::SortingNetwork, &mut sink);
        assert_eq!(sink.num_clauses(), 3); // three forcing units
        encode_at_least(&lits, 4, CardEncoding::Totalizer, &mut sink);
        assert!(sink.clauses().last().unwrap().is_empty());
    }

    #[test]
    fn negated_input_literals_supported() {
        use coremax_sat::SolveOutcome;
        // Constraint over ¬x literals: Σ ¬xᵢ ≤ 1.
        let lits: Vec<Lit> = (0..3).map(|i| Lit::negative(Var::new(i))).collect();
        for encoding in CardEncoding::ALL {
            let mut sink = CnfSink::new(3);
            encode_at_most(&lits, 1, encoding, &mut sink);
            for bits in 0u32..8 {
                let mut solver = crate::test_support::solver_for_sink(&sink);
                let assumptions = crate::test_support::bit_assumptions(3, bits);
                let sat = solver.solve_with_assumptions(&assumptions) == SolveOutcome::Sat;
                let zeros = 3 - bits.count_ones();
                assert_eq!(sat, zeros <= 1, "{encoding} bits={bits:b}");
            }
        }
    }

    #[test]
    fn encoding_sizes_reported() {
        // Not a semantic test: document relative clause counts so size
        // regressions are caught.
        let lits = input_lits(16);
        let mut sizes = Vec::new();
        for encoding in CardEncoding::ALL {
            if encoding == CardEncoding::Pairwise {
                continue; // binomial(16, 9) clauses — skip
            }
            let mut sink = CnfSink::new(16);
            encode_at_most(&lits, 8, encoding, &mut sink);
            sizes.push((encoding, sink.num_clauses(), sink.num_vars() - 16));
        }
        for (enc, clauses, aux) in sizes {
            assert!(clauses > 0, "{enc} emitted nothing");
            assert!(clauses < 5000, "{enc} blew up: {clauses} clauses");
            assert!(aux < 2000, "{enc} used {aux} aux vars");
        }
    }
}
