//! Sinz sequential-counter encoding (LTSeq).
//!
//! C. Sinz, *Towards an Optimal CNF Encoding of Boolean Cardinality
//! Constraints*, CP 2005. Registers `s(i,j)` mean "at least `j+1` of the
//! first `i+1` literals are true". `O(n·k)` clauses and auxiliaries —
//! the "linear encoding" referenced for msu2/msu3 in the companion
//! report (Marques-Silva & Planes, CoRR abs/0712.0097).

use coremax_cnf::{Lit, Var};

use crate::CnfSink;

pub(crate) fn at_most(lits: &[Lit], k: usize, sink: &mut CnfSink) {
    let n = lits.len();
    debug_assert!(k >= 1 && k < n);

    // s[i][j]: register variable, i in 0..n-1 (no registers needed for
    // the last literal), j in 0..k.
    let mut s: Vec<Vec<Var>> = Vec::with_capacity(n - 1);
    for _ in 0..n - 1 {
        s.push((0..k).map(|_| sink.fresh_var()).collect());
    }
    let reg = |s: &[Vec<Var>], i: usize, j: usize| Lit::positive(s[i][j]);

    // x0 → s(0,0)
    sink.add_clause(vec![!lits[0], reg(&s, 0, 0)]);
    // ¬s(0,j) for j ≥ 1 (a prefix of length one cannot reach count 2).
    for j in 1..k {
        sink.add_clause(vec![!reg(&s, 0, j)]);
    }
    // Indexing is clearer than iterators here: every clause couples
    // position i with its predecessor register row i - 1.
    #[allow(clippy::needless_range_loop)]
    for i in 1..n - 1 {
        // xi → s(i,0)
        sink.add_clause(vec![!lits[i], reg(&s, i, 0)]);
        // s(i−1,0) → s(i,0)
        sink.add_clause(vec![!reg(&s, i - 1, 0), reg(&s, i, 0)]);
        for j in 1..k {
            // xi ∧ s(i−1,j−1) → s(i,j)
            sink.add_clause(vec![!lits[i], !reg(&s, i - 1, j - 1), reg(&s, i, j)]);
            // s(i−1,j) → s(i,j)
            sink.add_clause(vec![!reg(&s, i - 1, j), reg(&s, i, j)]);
        }
        // xi ∧ s(i−1,k−1) → overflow forbidden
        sink.add_clause(vec![!lits[i], !reg(&s, i - 1, k - 1)]);
    }
    // Last literal: overflow check only.
    sink.add_clause(vec![!lits[n - 1], !reg(&s, n - 2, k - 1)]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Var;

    #[test]
    fn clause_and_var_counts_are_linear() {
        let n = 20;
        let k = 3;
        let lits: Vec<Lit> = (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect();
        let mut sink = CnfSink::new(n);
        at_most(&lits, k, &mut sink);
        assert_eq!(sink.num_vars() - n, (n - 1) * k);
        // 2nk + n - 3k - 1 clauses per Sinz's paper (up to constants).
        assert!(sink.num_clauses() <= 2 * n * k + n);
    }

    #[test]
    fn at_most_one_structure() {
        let lits: Vec<Lit> = (0..3).map(|i| Lit::positive(Var::new(i))).collect();
        let mut sink = CnfSink::new(3);
        at_most(&lits, 1, &mut sink);
        // n-1 = 2 registers, and a handful of clauses.
        assert_eq!(sink.num_vars(), 5);
        assert!(sink.num_clauses() >= 4);
    }
}
