//! BDD / ITE-chain encoding (msu4 **v1**).
//!
//! Eén & Sörensson, *Translating Pseudo-Boolean Constraints into SAT*
//! (JSAT 2006), §5.1: build the (reduced, ordered) BDD of the constraint
//! `Σ lits ≤ k` and introduce one Tseitin variable per internal node,
//! encoded as an if-then-else gate. For a cardinality constraint the
//! BDD collapses to the grid of states `(i, j)` = "among `lits[i..]` at
//! most `k − j` may still be true", so the BDD has `O(n·k)` nodes and
//! memoisation on `(i, j)` builds it directly without a BDD package's
//! generality — exactly how minisat+ special-cases cardinality.

use std::collections::HashMap;

use coremax_cnf::Lit;

use crate::CnfSink;

/// A node outcome during BDD construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeRef {
    True,
    False,
    Node(Lit),
}

pub(crate) fn at_most(lits: &[Lit], k: usize, sink: &mut CnfSink) {
    debug_assert!(k >= 1 && k < lits.len());
    let mut memo: HashMap<(usize, usize), NodeRef> = HashMap::new();
    let root = build(lits, k, 0, 0, &mut memo, sink);
    match root {
        NodeRef::True => {}
        NodeRef::False => sink.add_clause(Vec::new()),
        NodeRef::Node(l) => sink.add_clause(vec![l]),
    }
}

/// Builds the node for state `(i, j)`: the constraint restricted to
/// suffix `lits[i..]` given that `j` literals among `lits[..i]` are true.
fn build(
    lits: &[Lit],
    k: usize,
    i: usize,
    j: usize,
    memo: &mut HashMap<(usize, usize), NodeRef>,
    sink: &mut CnfSink,
) -> NodeRef {
    if j > k {
        return NodeRef::False;
    }
    // All remaining literals may be true without exceeding the bound.
    if lits.len() - i <= k - j {
        return NodeRef::True;
    }
    if let Some(&n) = memo.get(&(i, j)) {
        return n;
    }
    let cond = lits[i];
    let then_branch = build(lits, k, i + 1, j + 1, memo, sink); // lits[i] true
    let else_branch = build(lits, k, i + 1, j, memo, sink); // lits[i] false
    let node = encode_ite(cond, then_branch, else_branch, sink);
    memo.insert((i, j), node);
    node
}

/// Tseitin-encodes `t ⇔ ITE(c, a, b)` with terminal simplifications,
/// returning the node's literal (or a terminal when it simplifies away).
fn encode_ite(c: Lit, a: NodeRef, b: NodeRef, sink: &mut CnfSink) -> NodeRef {
    use NodeRef::{False, Node, True};
    match (a, b) {
        (True, True) => True,
        (False, False) => False,
        // t ⇔ (c → a) with b = true, etc. — each case emits the minimal
        // two-sided encoding.
        (True, False) => Node(c),
        (False, True) => Node(!c),
        (True, Node(bl)) => {
            // t ⇔ c ∨ b
            let t = Lit::positive(sink.fresh_var());
            sink.add_clause(vec![!c, t]);
            sink.add_clause(vec![!bl, t]);
            sink.add_clause(vec![c, bl, !t]);
            Node(t)
        }
        (False, Node(bl)) => {
            // t ⇔ ¬c ∧ b
            let t = Lit::positive(sink.fresh_var());
            sink.add_clause(vec![!t, !c]);
            sink.add_clause(vec![!t, bl]);
            sink.add_clause(vec![c, !bl, t]);
            Node(t)
        }
        (Node(al), True) => {
            // t ⇔ ¬c ∨ a
            let t = Lit::positive(sink.fresh_var());
            sink.add_clause(vec![c, t]);
            sink.add_clause(vec![!al, t]);
            sink.add_clause(vec![!c, al, !t]);
            Node(t)
        }
        (Node(al), False) => {
            // t ⇔ c ∧ a
            let t = Lit::positive(sink.fresh_var());
            sink.add_clause(vec![!t, c]);
            sink.add_clause(vec![!t, al]);
            sink.add_clause(vec![!c, !al, t]);
            Node(t)
        }
        (Node(al), Node(bl)) => {
            if al == bl {
                return Node(al);
            }
            let t = Lit::positive(sink.fresh_var());
            // c → (t ⇔ a)
            sink.add_clause(vec![!c, !al, t]);
            sink.add_clause(vec![!c, al, !t]);
            // ¬c → (t ⇔ b)
            sink.add_clause(vec![c, !bl, t]);
            sink.add_clause(vec![c, bl, !t]);
            // Redundant but propagation-strengthening ("both branches"):
            sink.add_clause(vec![!al, !bl, t]);
            sink.add_clause(vec![al, bl, !t]);
            Node(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Var;

    fn input_lits(n: usize) -> Vec<Lit> {
        (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect()
    }

    #[test]
    fn node_count_is_grid_sized() {
        let n = 30;
        let k = 5;
        let lits = input_lits(n);
        let mut sink = CnfSink::new(n);
        at_most(&lits, k, &mut sink);
        // One aux var per internal node, at most n·(k+1) nodes.
        assert!(sink.num_vars() - n <= n * (k + 1));
        assert!(sink.num_clauses() <= 6 * n * (k + 1) + 1);
    }

    #[test]
    fn memoisation_shares_nodes() {
        let n = 8;
        let lits = input_lits(n);
        let mut sink_a = CnfSink::new(n);
        at_most(&lits, 2, &mut sink_a);
        // Without memoisation the tree would have 2^8 nodes; with it the
        // grid has at most n*(k+1) = 24.
        assert!(sink_a.num_vars() - n <= 24);
    }

    #[test]
    fn root_is_asserted() {
        let lits = input_lits(3);
        let mut sink = CnfSink::new(3);
        at_most(&lits, 1, &mut sink);
        let last = sink.clauses().last().unwrap();
        assert_eq!(last.len(), 1, "root unit clause expected");
    }
}
