//! Property tests: every cardinality encoding is semantically exact for
//! randomly chosen arities, bounds and input polarities.

use coremax_cards::{encode_at_least, encode_at_most, test_support, CardEncoding, CnfSink};
use coremax_cnf::{Lit, Var};
use coremax_sat::SolveOutcome;
use proptest::prelude::*;

fn encodings() -> impl Strategy<Value = CardEncoding> {
    prop_oneof![
        Just(CardEncoding::Bdd),
        Just(CardEncoding::SortingNetwork),
        Just(CardEncoding::SequentialCounter),
        Just(CardEncoding::Totalizer),
        Just(CardEncoding::Pairwise),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn at_most_exact(
        encoding in encodings(),
        n in 1usize..7,
        k_frac in 0.0f64..1.0,
        polarity_bits in any::<u8>(),
        input_bits in any::<u8>(),
    ) {
        let k = ((n as f64) * k_frac) as usize;
        let lits: Vec<Lit> = (0..n)
            .map(|i| Lit::new(Var::new(i as u32), polarity_bits >> i & 1 == 0))
            .collect();
        let mut sink = CnfSink::new(n);
        encode_at_most(&lits, k, encoding, &mut sink);

        let mut solver = test_support::solver_for_sink(&sink);
        let assumptions = test_support::bit_assumptions(n, u32::from(input_bits));
        let true_count = lits
            .iter()
            .enumerate()
            .filter(|(i, l)| {
                let var_value = input_bits >> i & 1 == 1;
                var_value == l.is_positive()
            })
            .count();
        let outcome = solver.solve_with_assumptions(&assumptions);
        let expected = if true_count <= k { SolveOutcome::Sat } else { SolveOutcome::Unsat };
        prop_assert_eq!(outcome, expected, "{} n={} k={}", encoding, n, k);
    }

    #[test]
    fn at_least_exact(
        encoding in encodings(),
        n in 1usize..7,
        k in 0usize..8,
        input_bits in any::<u8>(),
    ) {
        let lits: Vec<Lit> = (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect();
        let mut sink = CnfSink::new(n);
        encode_at_least(&lits, k, encoding, &mut sink);

        let mut solver = test_support::solver_for_sink(&sink);
        let assumptions = test_support::bit_assumptions(n, u32::from(input_bits));
        let true_count = (0..n).filter(|i| input_bits >> i & 1 == 1).count();
        let outcome = solver.solve_with_assumptions(&assumptions);
        let expected = if true_count >= k { SolveOutcome::Sat } else { SolveOutcome::Unsat };
        prop_assert_eq!(outcome, expected, "{} n={} k={}", encoding, n, k);
    }

    // The stratified-freeze shape: relaxation selectors are forced true
    // exactly for the "falsified" clauses (selector ← clause direction
    // free), and the bound must admit precisely the assignments whose
    // falsified count stays at the stage optimum. Mirrors how
    // `coremax::Stratified` seals a stratum and `coremax::Wmsu1` spends
    // one blocking variable per core.
    #[test]
    fn selector_bound_freezes_falsified_count(
        encoding in encodings(),
        n in 1usize..7,
        k in 0usize..7,
        falsified_bits in any::<u8>(),
    ) {
        let selectors: Vec<Lit> = (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect();
        let mut sink = CnfSink::new(n);
        encode_at_most(&selectors, k, encoding, &mut sink);
        let mut solver = test_support::solver_for_sink(&sink);
        // Only the falsified clauses *force* their selector; satisfied
        // clauses leave theirs free — so assume positives only.
        let assumptions: Vec<Lit> = (0..n)
            .filter(|i| falsified_bits >> i & 1 == 1)
            .map(|i| Lit::positive(Var::new(i as u32)))
            .collect();
        let falsified = assumptions.len();
        let outcome = solver.solve_with_assumptions(&assumptions);
        let expected = if falsified <= k { SolveOutcome::Sat } else { SolveOutcome::Unsat };
        prop_assert_eq!(outcome, expected, "{} n={} k={} forced={}", encoding, n, k, falsified);
    }

    #[test]
    fn encodings_agree_pairwise(
        n in 2usize..6,
        k in 1usize..5,
        input_bits in any::<u8>(),
    ) {
        // All encodings must accept/reject the same assignments.
        let lits: Vec<Lit> = (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect();
        let assumptions: Vec<Lit> = (0..n)
            .map(|i| Lit::new(Var::new(i as u32), input_bits >> i & 1 == 1))
            .collect();
        let mut verdicts = Vec::new();
        for encoding in CardEncoding::ALL {
            let mut sink = CnfSink::new(n);
            encode_at_most(&lits, k.min(n), encoding, &mut sink);
            let mut solver = test_support::solver_for_sink(&sink);
            verdicts.push(solver.solve_with_assumptions(&assumptions));
        }
        prop_assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{verdicts:?}");
    }
}
