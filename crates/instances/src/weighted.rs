//! Random *weighted* partial MaxSAT instances with controlled weight
//! distributions — the shared generator behind the weighted benchmark
//! families and the differential weighted-oracle test harness.
//!
//! Hard clauses are **planted**: a hidden assignment drawn from the
//! seed satisfies every hard clause (a violating literal is flipped
//! onto the plant), so generated instances are always hard-feasible and
//! solvers exercise the optimisation path rather than the infeasibility
//! shortcut. Soft clauses are unconstrained random clauses whose
//! weights follow the selected [`WeightDist`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use coremax_cnf::{Lit, Var, WcnfFormula, Weight};

/// Weight distribution of the generated soft clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightDist {
    /// Uniform in `lo..=hi`.
    Uniform {
        /// Smallest weight (≥ 1).
        lo: Weight,
        /// Largest weight.
        hi: Weight,
    },
    /// `2^e` with `e` uniform in `0..=max_exp` — gcd-friendly strata
    /// with partial domination, the natural stratification testbed.
    PowerOfTwo {
        /// Largest exponent.
        max_exp: u32,
    },
    /// Mostly light clauses (uniform `1..=light`), with every
    /// `heavy_every`-th clause weighted `heavy` — the skew that makes
    /// replication blow up while stratification hardens the heavy
    /// stratum immediately.
    Skewed {
        /// Upper bound of the light weights.
        light: Weight,
        /// Weight of the heavy clauses.
        heavy: Weight,
        /// A heavy clause every this many soft clauses (≥ 1).
        heavy_every: usize,
    },
}

impl WeightDist {
    /// Short stable name used in instance/benchmark labels.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WeightDist::Uniform { .. } => "uniform",
            WeightDist::PowerOfTwo { .. } => "pow2",
            WeightDist::Skewed { .. } => "skewed",
        }
    }

    fn sample(self, rng: &mut SmallRng, index: usize) -> Weight {
        match self {
            WeightDist::Uniform { lo, hi } => rng.gen_range(lo..=hi.max(lo)),
            WeightDist::PowerOfTwo { max_exp } => 1 << rng.gen_range(0..=max_exp),
            WeightDist::Skewed {
                light,
                heavy,
                heavy_every,
            } => {
                if index % heavy_every.max(1) == heavy_every.max(1) - 1 {
                    heavy
                } else {
                    rng.gen_range(1..=light.max(1))
                }
            }
        }
    }
}

/// Shape of a generated weighted instance.
#[derive(Debug, Clone)]
pub struct WeightedConfig {
    /// Number of variables (≥ 1).
    pub num_vars: usize,
    /// Number of hard clauses (planted satisfiable).
    pub num_hard: usize,
    /// Number of soft clauses.
    pub num_soft: usize,
    /// Maximum clause length (clamped to `num_vars`).
    pub max_len: usize,
    /// Soft-weight distribution.
    pub dist: WeightDist,
    /// RNG seed; equal configs generate equal instances.
    pub seed: u64,
}

impl Default for WeightedConfig {
    fn default() -> Self {
        WeightedConfig {
            num_vars: 8,
            num_hard: 6,
            num_soft: 16,
            max_len: 3,
            dist: WeightDist::Uniform { lo: 1, hi: 8 },
            seed: 42,
        }
    }
}

/// Generates a random weighted partial MaxSAT instance per `config`.
/// Deterministic in the configuration; the hard part is satisfiable by
/// construction (planted assignment).
///
/// # Examples
///
/// ```
/// use coremax_instances::{random_weighted_wcnf, WeightedConfig};
/// let w = random_weighted_wcnf(&WeightedConfig::default());
/// assert_eq!(w.num_hard(), 6);
/// assert_eq!(w.num_soft(), 16);
/// assert!(!w.is_unweighted());
/// ```
#[must_use]
pub fn random_weighted_wcnf(config: &WeightedConfig) -> WcnfFormula {
    let num_vars = config.num_vars.max(1);
    let max_len = config.max_len.clamp(1, num_vars);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let plant: Vec<bool> = (0..num_vars).map(|_| rng.gen()).collect();
    let mut w = WcnfFormula::with_vars(num_vars);

    let random_clause = |rng: &mut SmallRng| -> Vec<Lit> {
        let len = rng.gen_range(1..=max_len);
        let mut vars = Vec::with_capacity(len);
        while vars.len() < len {
            let v = rng.gen_range(0..num_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        vars.iter()
            .map(|&v| Lit::new(Var::new(v as u32), rng.gen()))
            .collect()
    };

    for _ in 0..config.num_hard {
        let mut lits = random_clause(&mut rng);
        // Plant: flip one literal onto the hidden assignment if the
        // clause would otherwise be violated by it.
        if !lits
            .iter()
            .any(|l| plant[l.var().index()] == l.is_positive())
        {
            let i = rng.gen_range(0..lits.len());
            let v = lits[i].var();
            lits[i] = Lit::new(v, plant[v.index()]);
        }
        w.add_hard(lits);
    }
    for i in 0..config.num_soft {
        let lits = random_clause(&mut rng);
        let weight = config.dist.sample(&mut rng, i);
        w.add_soft(lits, weight);
    }
    w
}

/// The weighted benchmark suite: three weight distributions × a size
/// sweep, scaled like [`crate::full_suite`]. The `skewed-heavy`
/// instances carry totals past any sensible replication cap — the
/// family the native weighted solvers open up.
#[must_use]
pub fn weighted_suite(config: &crate::SuiteConfig) -> Vec<crate::Instance> {
    let s = config.scale.max(1);
    let mut out = Vec::new();
    let dists: [(WeightDist, &str); 4] = [
        (WeightDist::Uniform { lo: 1, hi: 8 }, "uniform"),
        (WeightDist::PowerOfTwo { max_exp: 4 }, "pow2"),
        (
            WeightDist::Skewed {
                light: 3,
                heavy: 12,
                heavy_every: 5,
            },
            "skewed",
        ),
        (
            // Heavy stratum alone exceeds the default 100 000-copy
            // replication cap.
            WeightDist::Skewed {
                light: 6,
                heavy: 100_000,
                heavy_every: 4,
            },
            "skewed-heavy",
        ),
    ];
    for (dist, label) in dists {
        for size in 0..(2 + s).min(5) {
            let num_vars = 10 + 4 * size;
            let cfg = WeightedConfig {
                num_vars,
                num_hard: num_vars,
                num_soft: 3 * num_vars,
                max_len: 3,
                dist,
                seed: config.seed.wrapping_add(size as u64),
            };
            out.push(crate::Instance {
                name: format!("w-{label}-v{num_vars}"),
                family: crate::Family::Weighted,
                wcnf: random_weighted_wcnf(&cfg),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Assignment;

    #[test]
    fn deterministic_per_config() {
        let cfg = WeightedConfig::default();
        assert_eq!(random_weighted_wcnf(&cfg), random_weighted_wcnf(&cfg));
        let other = WeightedConfig {
            seed: 43,
            ..cfg.clone()
        };
        assert_ne!(random_weighted_wcnf(&cfg), random_weighted_wcnf(&other));
    }

    #[test]
    fn hard_part_is_planted_satisfiable() {
        use coremax_sat::{SolveOutcome, Solver};
        for seed in 0..20 {
            let cfg = WeightedConfig {
                seed,
                num_hard: 20,
                ..WeightedConfig::default()
            };
            let w = random_weighted_wcnf(&cfg);
            let mut solver = Solver::new();
            solver.ensure_vars(w.num_vars());
            for h in w.hard_clauses() {
                solver.add_clause(h.lits().iter().copied());
            }
            assert_eq!(solver.solve(), SolveOutcome::Sat, "seed {seed}");
        }
    }

    #[test]
    fn distributions_shape_the_weights() {
        let pow2 = random_weighted_wcnf(&WeightedConfig {
            dist: WeightDist::PowerOfTwo { max_exp: 5 },
            num_soft: 40,
            ..WeightedConfig::default()
        });
        assert!(pow2
            .soft_clauses()
            .iter()
            .all(|s| s.weight.is_power_of_two() && s.weight <= 32));

        let skew = random_weighted_wcnf(&WeightedConfig {
            dist: WeightDist::Skewed {
                light: 3,
                heavy: 500,
                heavy_every: 4,
            },
            num_soft: 16,
            ..WeightedConfig::default()
        });
        let heavies = skew
            .soft_clauses()
            .iter()
            .filter(|s| s.weight == 500)
            .count();
        assert_eq!(heavies, 4);
        assert!(skew
            .soft_clauses()
            .iter()
            .all(|s| s.weight == 500 || s.weight <= 3));

        let uni = random_weighted_wcnf(&WeightedConfig {
            dist: WeightDist::Uniform { lo: 2, hi: 5 },
            ..WeightedConfig::default()
        });
        assert!(uni
            .soft_clauses()
            .iter()
            .all(|s| (2..=5).contains(&s.weight)));
    }

    #[test]
    fn suite_is_deterministic_and_weighted() {
        let cfg = crate::SuiteConfig::default();
        let a = weighted_suite(&cfg);
        let b = weighted_suite(&cfg);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.wcnf, y.wcnf);
            assert_eq!(x.family, crate::Family::Weighted);
            assert!(!x.wcnf.is_unweighted(), "{} is unweighted", x.name);
        }
    }

    #[test]
    fn suite_contains_a_family_past_the_replication_cap() {
        let suite = weighted_suite(&crate::SuiteConfig::default());
        assert!(
            suite.iter().any(|i| i.wcnf.total_soft_weight() > 100_000),
            "no instance exceeds the default replication cap"
        );
        // And families safely under it, so the baseline still has
        // something to solve.
        assert!(suite.iter().any(|i| i.wcnf.total_soft_weight() <= 100_000));
    }

    #[test]
    fn cost_evaluates_on_generated_instances() {
        let w = random_weighted_wcnf(&WeightedConfig::default());
        let mut all_true = Assignment::for_vars(w.num_vars());
        all_true.complete_with(true);
        // Not necessarily feasible, but must never panic.
        let _ = w.cost(&all_true);
    }
}
