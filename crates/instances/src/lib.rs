//! Deterministic benchmark-instance suite for the coremax experiments.
//!
//! The paper evaluates on 691 unsatisfiable industrial instances (model
//! checking, equivalence checking, test-pattern generation) plus 29
//! design-debugging MaxSAT instances. Those archives are not
//! redistributable, so this crate *generates* a suite of the same
//! families at laptop scale, deterministically from a seed:
//!
//! | Family | Generator | Paper analogue |
//! |---|---|---|
//! | `bmc` | counter safety property unrolled k steps | bounded model checking |
//! | `equiv` | miters of structurally different equivalents | equivalence checking |
//! | `atpg` | untestable stuck-at faults on redundant logic | test-pattern generation |
//! | `php` | pigeonhole principle | hard combinatorial cores |
//! | `xor` | inconsistent XOR chains | parity/Tseitin-style hardness |
//! | `rand3` | unsatisfiable random 3-CNF | the regime where B&B shines |
//! | `debug` | fault-injected circuits vs golden reference | design debugging (Table 2) |
//! | `weighted` | random weighted partial MaxSAT, three weight distributions | post-paper weighted evaluations |
//!
//! All families except `debug` and `weighted` are plain unweighted
//! MaxSAT over an unsatisfiable CNF; `debug` is partial MaxSAT (hard
//! I/O observations, soft gate clauses); `weighted` (a separate
//! [`weighted_suite`], not part of [`full_suite`]) carries uniform,
//! power-of-two and skewed soft weights over planted-feasible hard
//! clauses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod families;
mod stats;
mod suite;
mod weighted;

pub use families::{
    bmc_instance, equiv_instance, pigeonhole, random_unsat_3cnf, untestable_atpg, xor_chain,
};
pub use stats::InstanceStats;
pub use suite::{batch_suite, debug_suite, full_suite, Family, Instance, SuiteConfig};
pub use weighted::{random_weighted_wcnf, weighted_suite, WeightDist, WeightedConfig};
