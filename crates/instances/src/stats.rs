//! Instance feature extraction: the size/shape numbers reported in
//! benchmark tables and used to sanity-check generated suites.

use coremax_cnf::WcnfFormula;

/// Structural statistics of a (W)CNF instance.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of variables.
    pub num_vars: usize,
    /// Number of hard clauses.
    pub num_hard: usize,
    /// Number of soft clauses.
    pub num_soft: usize,
    /// Total literal occurrences.
    pub num_literals: usize,
    /// Mean clause length over all clauses.
    pub mean_clause_len: f64,
    /// Length of the longest clause.
    pub max_clause_len: usize,
    /// Clause/variable ratio (the random-SAT hardness coordinate).
    pub clause_var_ratio: f64,
    /// Fraction of binary clauses (a proxy for implication-graph
    /// density — high for circuit-derived CNF).
    pub binary_fraction: f64,
}

impl InstanceStats {
    /// Computes statistics for `wcnf`.
    ///
    /// # Examples
    ///
    /// ```
    /// use coremax_cnf::{Lit, WcnfFormula};
    /// use coremax_instances::InstanceStats;
    /// let mut w = WcnfFormula::new();
    /// let x = w.new_var();
    /// let y = w.new_var();
    /// w.add_hard([Lit::positive(x), Lit::positive(y)]);
    /// w.add_soft([Lit::negative(x)], 1);
    /// let s = InstanceStats::of(&w);
    /// assert_eq!(s.num_vars, 2);
    /// assert_eq!(s.num_literals, 3);
    /// assert_eq!(s.binary_fraction, 0.5);
    /// ```
    #[must_use]
    pub fn of(wcnf: &WcnfFormula) -> Self {
        let mut num_literals = 0usize;
        let mut max_clause_len = 0usize;
        let mut binary = 0usize;
        let mut clauses = 0usize;
        let mut visit = |len: usize| {
            num_literals += len;
            max_clause_len = max_clause_len.max(len);
            if len == 2 {
                binary += 1;
            }
            clauses += 1;
        };
        for c in wcnf.hard_clauses() {
            visit(c.len());
        }
        for s in wcnf.soft_clauses() {
            visit(s.clause.len());
        }
        let num_vars = wcnf.num_vars();
        InstanceStats {
            num_vars,
            num_hard: wcnf.num_hard(),
            num_soft: wcnf.num_soft(),
            num_literals,
            mean_clause_len: if clauses == 0 {
                0.0
            } else {
                num_literals as f64 / clauses as f64
            },
            max_clause_len,
            clause_var_ratio: if num_vars == 0 {
                0.0
            } else {
                clauses as f64 / num_vars as f64
            },
            binary_fraction: if clauses == 0 {
                0.0
            } else {
                binary as f64 / clauses as f64
            },
        }
    }
}

impl std::fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vars={} hard={} soft={} lits={} mean_len={:.2} max_len={} ratio={:.2} binary={:.0}%",
            self.num_vars,
            self.num_hard,
            self.num_soft,
            self.num_literals,
            self.mean_clause_len,
            self.max_clause_len,
            self.clause_var_ratio,
            self.binary_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{full_suite, Family, SuiteConfig};
    use coremax_cnf::Lit;

    #[test]
    fn empty_formula() {
        let s = InstanceStats::of(&WcnfFormula::new());
        assert_eq!(s.num_vars, 0);
        assert_eq!(s.mean_clause_len, 0.0);
        assert_eq!(s.clause_var_ratio, 0.0);
    }

    #[test]
    fn counts_hard_and_soft() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        let y = w.new_var();
        let z = w.new_var();
        w.add_hard([Lit::positive(x), Lit::positive(y), Lit::positive(z)]);
        w.add_soft([Lit::negative(x), Lit::negative(y)], 1);
        w.add_soft([Lit::positive(z)], 1);
        let s = InstanceStats::of(&w);
        assert_eq!(s.num_hard, 1);
        assert_eq!(s.num_soft, 2);
        assert_eq!(s.num_literals, 6);
        assert_eq!(s.max_clause_len, 3);
        assert!((s.mean_clause_len - 2.0).abs() < 1e-9);
        assert!((s.clause_var_ratio - 1.0).abs() < 1e-9);
        assert!((s.binary_fraction - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn circuit_families_are_binary_heavy() {
        // Tseitin CNF of 2-input gates is dominated by 2- and 3-literal
        // clauses; this structural signature separates circuit-derived
        // instances from random 3-CNF.
        let suite = full_suite(&SuiteConfig::default());
        let equiv = suite
            .iter()
            .find(|i| i.family == Family::Equiv)
            .expect("equiv present");
        let rand = suite
            .iter()
            .find(|i| i.family == Family::Rand3)
            .expect("rand3 present");
        let se = InstanceStats::of(&equiv.wcnf);
        let sr = InstanceStats::of(&rand.wcnf);
        assert!(se.binary_fraction > 0.2, "{se}");
        assert!(sr.binary_fraction < 0.05, "{sr}");
        assert!(sr.clause_var_ratio > 5.0, "{sr}");
    }

    #[test]
    fn display_mentions_fields() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], 1);
        let text = InstanceStats::of(&w).to_string();
        assert!(text.contains("vars=1"));
        assert!(text.contains("soft=1"));
    }
}
