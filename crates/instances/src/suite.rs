//! Benchmark suite assembly (the "691 instances" analogue).

use coremax_circuits::{builders, debug};
use coremax_cnf::WcnfFormula;

use crate::families;

/// Benchmark family tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Bounded model checking.
    Bmc,
    /// Combinational equivalence checking.
    Equiv,
    /// Untestable-fault ATPG.
    Atpg,
    /// Pigeonhole principle.
    Php,
    /// Inconsistent XOR chains.
    Xor,
    /// Random unsatisfiable 3-CNF.
    Rand3,
    /// Design debugging (partial MaxSAT).
    Debug,
    /// Random weighted partial MaxSAT (see [`crate::weighted_suite`]).
    Weighted,
}

impl Family {
    /// Short stable name used in experiment output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Bmc => "bmc",
            Family::Equiv => "equiv",
            Family::Atpg => "atpg",
            Family::Php => "php",
            Family::Xor => "xor",
            Family::Rand3 => "rand3",
            Family::Debug => "debug",
            Family::Weighted => "weighted",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A named benchmark instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Unique name, e.g. `bmc-n3-k4`.
    pub name: String,
    /// Family tag.
    pub family: Family,
    /// The (weighted partial) MaxSAT formulation. Plain families carry
    /// every clause as a weight-1 soft clause.
    pub wcnf: WcnfFormula,
}

impl Instance {
    fn plain(name: String, family: Family, cnf: &coremax_cnf::CnfFormula) -> Self {
        Instance {
            name,
            family,
            wcnf: WcnfFormula::from_cnf_all_soft(cnf),
        }
    }
}

/// Size/scale knobs for [`full_suite`].
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Global size multiplier (1 = CI scale, larger = closer to the
    /// paper's regime).
    pub scale: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig { scale: 1, seed: 42 }
    }
}

/// Generates the full evaluation suite (the analogue of the paper's 691
/// industrial instances): a size sweep through every CNF family, sized
/// so that the interesting solver separations appear — small instances
/// everyone solves, a middle band where branch and bound collapses but
/// core-guided search survives, and a top band that strains everything.
/// Deterministic in the configuration.
#[must_use]
pub fn full_suite(config: &SuiteConfig) -> Vec<Instance> {
    let s = config.scale.max(1);
    let mut out = Vec::new();

    // Bounded model checking: counter widths × unroll depths.
    for n in 2..=(2 + 2 * s).min(6) {
        for k in (4..=(4 + 4 * s)).step_by(4) {
            out.push(Instance::plain(
                format!("bmc-n{n}-k{k}"),
                Family::Bmc,
                &families::bmc_instance(n, k),
            ));
        }
    }

    // Equivalence checking. Adders span the band where chronological
    // branch and bound collapses; multipliers strain everything.
    for size in (4..=(4 + 3 * s).min(14)).step_by(2) {
        out.push(Instance::plain(
            format!("equiv-adder-s{size}"),
            Family::Equiv,
            &families::equiv_instance(0, size),
        ));
    }
    for size in [4, 6 + 2 * s.min(4)] {
        out.push(Instance::plain(
            format!("equiv-cmp-s{size}"),
            Family::Equiv,
            &families::equiv_instance(1, size),
        ));
    }
    for size in [6, 10 + 2 * s.min(4)] {
        out.push(Instance::plain(
            format!("equiv-parity-s{size}"),
            Family::Equiv,
            &families::equiv_instance(2, size),
        ));
    }
    for size in 2..=(2 + s).min(5) {
        out.push(Instance::plain(
            format!("equiv-mult-s{size}"),
            Family::Equiv,
            &families::equiv_instance(3, size),
        ));
    }
    // Barrel-shifter and ALU miters (equiv kinds 4-5) are available via
    // `families::equiv_instance` and the CLI generator but are excluded
    // from the default table-1 suite: their cores are global (whole-
    // datapath), which probes a different regime than the paper's
    // "SAT solvers find small cores" premise (see EXPERIMENTS.md).

    // ATPG untestable faults.
    for kind in 0..3 {
        for size in (4..=(4 + 2 * s).min(10)).step_by(2) {
            out.push(Instance::plain(
                format!("atpg-k{kind}-s{size}"),
                Family::Atpg,
                &families::untestable_atpg(kind, size),
            ));
        }
    }

    // Pigeonhole.
    for holes in 2..=(4 + s).min(7) {
        out.push(Instance::plain(
            format!("php-{holes}"),
            Family::Php,
            &families::pigeonhole(holes),
        ));
    }

    // XOR chains.
    for n in (10..=(20 + 10 * s).min(60)).step_by(10) {
        out.push(Instance::plain(
            format!("xor-{n}"),
            Family::Xor,
            &families::xor_chain(n),
        ));
        out.push(Instance::plain(
            format!("xor-{}", n + 1),
            Family::Xor,
            &families::xor_chain(n + 1),
        ));
    }

    // Random unsatisfiable 3-CNF (small: the B&B-friendly regime).
    for i in 0..(3 * s) {
        let num_vars = 12 + 2 * (i % 3);
        out.push(Instance::plain(
            format!("rand3-v{num_vars}-i{i}"),
            Family::Rand3,
            &families::random_unsat_3cnf(num_vars, config.seed.wrapping_add(i as u64)),
        ));
    }

    // Design debugging (partial MaxSAT), interleaved into the full
    // suite like the paper's evaluation.
    out.extend(debug_suite_inner(config, 6));

    out
}

/// The mixed multi-family batch used by parallel throughput baselines:
/// the full unweighted suite plus the weighted suite — what a batch
/// driver should chew through when fed "everything". Deterministic in
/// the configuration, like its constituents.
#[must_use]
pub fn batch_suite(config: &SuiteConfig) -> Vec<Instance> {
    let mut all = full_suite(config);
    all.extend(crate::weighted_suite(config));
    all
}

/// Generates the design-debugging suite used for Table 2 (the paper's
/// 29 instances become `count` fault-injected circuits here).
#[must_use]
pub fn debug_suite(config: &SuiteConfig) -> Vec<Instance> {
    debug_suite_inner(config, 29)
}

fn debug_suite_inner(config: &SuiteConfig, count: usize) -> Vec<Instance> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut attempt = 0u64;
    while out.len() < count {
        let seed = config.seed.wrapping_add(1000).wrapping_add(attempt);
        attempt += 1;
        // Sized so the localisation advantage shows: hundreds of soft
        // gate clauses, but the error cone (and hence the cores msu4
        // sees) stays small.
        let reference = match i % 4 {
            0 => builders::ripple_carry_adder(8 + 2 * config.scale.min(3)),
            1 => builders::comparator(8 + 2 * config.scale.min(3)),
            2 => builders::array_multiplier(3 + config.scale.min(2)),
            _ => builders::array_multiplier(4 + config.scale.min(1)),
        };
        let Some((buggy, gate)) = debug::mutate_gate(&reference, seed) else {
            continue;
        };
        let vectors = 2 + (i % 3);
        let Some(inst) = debug::debug_instance(&reference, &buggy, gate, vectors, seed ^ 0x5bd1)
        else {
            continue;
        };
        out.push(Instance {
            name: format!("debug-{i}-g{gate}-v{vectors}"),
            family: Family::Debug,
            wcnf: inst.wcnf,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic() {
        let cfg = SuiteConfig::default();
        let a = full_suite(&cfg);
        let b = full_suite(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.wcnf, y.wcnf);
        }
    }

    #[test]
    fn suite_covers_all_families() {
        let suite = full_suite(&SuiteConfig::default());
        for family in [
            Family::Bmc,
            Family::Equiv,
            Family::Atpg,
            Family::Php,
            Family::Xor,
            Family::Rand3,
            Family::Debug,
        ] {
            assert!(
                suite.iter().any(|i| i.family == family),
                "family {family} missing"
            );
        }
        assert!(suite.len() >= 30, "suite too small: {}", suite.len());
    }

    #[test]
    fn batch_suite_mixes_weighted_in() {
        let cfg = SuiteConfig::default();
        let batch = batch_suite(&cfg);
        let full = full_suite(&cfg);
        assert!(batch.len() > full.len());
        assert!(batch.iter().any(|i| i.family == Family::Weighted));
        // Deterministic, like its constituents.
        let again = batch_suite(&cfg);
        assert_eq!(batch.len(), again.len());
        for (a, b) in batch.iter().zip(&again) {
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let suite = full_suite(&SuiteConfig::default());
        let mut names: Vec<&str> = suite.iter().map(|i| i.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn debug_suite_has_29_partial_instances() {
        let suite = debug_suite(&SuiteConfig::default());
        assert_eq!(suite.len(), 29);
        for inst in &suite {
            assert_eq!(inst.family, Family::Debug);
            assert!(
                inst.wcnf.num_hard() > 0,
                "{} has no hard clauses",
                inst.name
            );
            assert!(inst.wcnf.num_soft() > 0);
        }
    }

    #[test]
    fn plain_instances_are_unsat_cnf() {
        use coremax_sat::{SolveOutcome, Solver};
        let suite = full_suite(&SuiteConfig::default());
        for inst in suite.iter().filter(|i| i.family != Family::Debug).take(8) {
            let mut solver = Solver::new();
            solver.add_formula(&inst.wcnf.to_cnf());
            assert_eq!(
                solver.solve(),
                SolveOutcome::Unsat,
                "{} should be UNSAT",
                inst.name
            );
        }
    }

    #[test]
    fn scale_grows_the_suite() {
        let small = full_suite(&SuiteConfig { scale: 1, seed: 1 });
        let large = full_suite(&SuiteConfig { scale: 2, seed: 1 });
        assert!(large.len() > small.len());
    }
}
