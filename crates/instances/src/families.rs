//! Individual instance generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use coremax_circuits::{atpg, builders, miter, seq, transform, tseitin};
use coremax_cnf::{CnfFormula, Lit, Var};

/// Bounded-model-checking instance: an `n`-bit counter with a safe
/// property unrolled `k` steps, violation asserted — unsatisfiable.
#[must_use]
pub fn bmc_instance(n: usize, k: usize) -> CnfFormula {
    let machine = seq::counter_with_safe_property(n);
    let width = machine.core.outputs().len();
    let unrolled = seq::unroll(&machine, k);
    let enc = tseitin::encode(&unrolled);
    let mut f = enc.formula;
    // Assert a violation in some frame.
    let violations: Vec<Lit> = (0..k)
        .map(|t| enc.output_lits[(t + 1) * width - 1])
        .collect();
    f.add_clause(violations);
    f
}

/// Equivalence-checking instance: the miter of a circuit against an
/// equivalence-preserving rewrite of itself, difference asserted —
/// unsatisfiable.
///
/// `kind` selects the base circuit: 0 = ripple/majority adders,
/// 1 = comparator vs NAND rewrite, 2 = parity tree vs chain (NOR
/// rewritten), 3 = multiplier vs NAND rewrite, 4 = barrel shifter vs
/// NAND rewrite, 5 = ALU vs NOR rewrite.
#[must_use]
pub fn equiv_instance(kind: usize, size: usize) -> CnfFormula {
    let (a, b) = match kind % 6 {
        0 => {
            let a = builders::ripple_carry_adder(size);
            let b = builders::majority_adder(size);
            (a, b)
        }
        1 => {
            let a = builders::comparator(size);
            let b = transform::rewrite_nand(&a);
            (a, b)
        }
        2 => {
            let a = builders::parity_tree(size);
            let b = transform::rewrite_nor(&builders::parity_chain(size));
            (a, b)
        }
        3 => {
            let a = builders::array_multiplier(size);
            let b = transform::rewrite_nand(&a);
            (a, b)
        }
        4 => {
            let a = builders::barrel_shifter(size.next_power_of_two().max(2));
            let b = transform::rewrite_nand(&a);
            (a, b)
        }
        _ => {
            let a = builders::alu(size);
            let b = transform::rewrite_nor(&a);
            (a, b)
        }
    };
    let m = miter::build_miter(&a, &b).expect("interfaces match by construction");
    let enc = tseitin::encode(&m);
    let mut f = enc.formula;
    f.add_clause([enc.output_lits[0]]);
    f
}

/// ATPG instance for an untestable fault: redundant logic is planted on
/// the base circuit and the redundant net's stuck-at-0 fault is
/// targeted — unsatisfiable.
///
/// `kind` selects the base circuit as in [`equiv_instance`].
#[must_use]
pub fn untestable_atpg(kind: usize, size: usize) -> CnfFormula {
    let base = match kind % 3 {
        0 => builders::ripple_carry_adder(size),
        1 => builders::comparator(size),
        _ => builders::array_multiplier(size),
    };
    let (c, r) = atpg::with_redundant_logic(&base);
    let m = atpg::atpg_miter(
        &c,
        atpg::StuckAtFault {
            net: r,
            value: false,
        },
    );
    let enc = tseitin::encode(&m);
    let mut f = enc.formula;
    f.add_clause([enc.output_lits[0]]);
    f
}

/// The pigeonhole principle PHP(n+1, n): `n+1` pigeons into `n` holes —
/// unsatisfiable, classically hard for resolution.
#[must_use]
pub fn pigeonhole(holes: usize) -> CnfFormula {
    let pigeons = holes + 1;
    let mut f = CnfFormula::with_vars(pigeons * holes);
    let var = |p: usize, h: usize| Var::new((p * holes + h) as u32);
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| Lit::positive(var(p, h))));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                f.add_clause([Lit::negative(var(p1, h)), Lit::negative(var(p2, h))]);
            }
        }
    }
    f
}

/// An inconsistent XOR chain over `n` variables, CNF-expanded:
/// `x1⊕x2, x2⊕x3, …, x_{n-1}⊕x_n, x1⊕x_n` with an odd total parity —
/// unsatisfiable; each XOR contributes two clauses.
#[must_use]
pub fn xor_chain(n: usize) -> CnfFormula {
    assert!(n >= 2);
    let mut f = CnfFormula::with_vars(n);
    let v = |i: usize| Var::new(i as u32);
    // x_i ⊕ x_{i+1} = 1 for the chain…
    for i in 0..n - 1 {
        f.add_clause([Lit::positive(v(i)), Lit::positive(v(i + 1))]);
        f.add_clause([Lit::negative(v(i)), Lit::negative(v(i + 1))]);
    }
    // …and close the cycle with parity depending on n so the system is
    // inconsistent: sum of chain parities is n−1; require x1 ⊕ xn = 1 if
    // n−1 is even, = 0 otherwise.
    if (n - 1).is_multiple_of(2) {
        f.add_clause([Lit::positive(v(0)), Lit::positive(v(n - 1))]);
        f.add_clause([Lit::negative(v(0)), Lit::negative(v(n - 1))]);
    } else {
        f.add_clause([Lit::positive(v(0)), Lit::negative(v(n - 1))]);
        f.add_clause([Lit::negative(v(0)), Lit::positive(v(n - 1))]);
    }
    f
}

/// A random 3-CNF at clause/variable ratio ≥ 6 (deep in the
/// unsatisfiable region), re-sampled until actually unsatisfiable
/// (verified with the CDCL solver). Deterministic in `seed`.
#[must_use]
pub fn random_unsat_3cnf(num_vars: usize, seed: u64) -> CnfFormula {
    use coremax_sat::{SolveOutcome, Solver};
    let mut rng = SmallRng::seed_from_u64(seed);
    let num_clauses = num_vars * 6;
    loop {
        let mut f = CnfFormula::with_vars(num_vars);
        for _ in 0..num_clauses {
            let mut vars = Vec::with_capacity(3);
            while vars.len() < 3 {
                let v = rng.gen_range(0..num_vars);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            f.add_clause(
                vars.iter()
                    .map(|&v| Lit::new(Var::new(v as u32), rng.gen())),
            );
        }
        let mut solver = Solver::new();
        solver.add_formula(&f);
        if solver.solve() == SolveOutcome::Unsat {
            return f;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_sat::{SolveOutcome, Solver};

    fn assert_unsat(f: &CnfFormula) {
        let mut s = Solver::new();
        s.add_formula(f);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn bmc_instances_unsat() {
        for (n, k) in [(2, 2), (2, 4), (3, 3)] {
            assert_unsat(&bmc_instance(n, k));
        }
    }

    #[test]
    fn equiv_instances_unsat() {
        assert_unsat(&equiv_instance(0, 3));
        assert_unsat(&equiv_instance(1, 3));
        assert_unsat(&equiv_instance(2, 4));
        assert_unsat(&equiv_instance(3, 2));
        assert_unsat(&equiv_instance(4, 4));
        assert_unsat(&equiv_instance(5, 2));
    }

    #[test]
    fn atpg_instances_unsat() {
        assert_unsat(&untestable_atpg(0, 2));
        assert_unsat(&untestable_atpg(1, 3));
    }

    #[test]
    fn pigeonhole_unsat_and_sized() {
        let f = pigeonhole(3);
        assert_eq!(f.num_vars(), 12);
        assert_unsat(&f);
    }

    #[test]
    fn xor_chains_unsat_both_parities() {
        assert_unsat(&xor_chain(4)); // n−1 odd
        assert_unsat(&xor_chain(5)); // n−1 even
        assert_unsat(&xor_chain(2));
        assert_unsat(&xor_chain(9));
    }

    #[test]
    fn random_3cnf_unsat_and_deterministic() {
        let a = random_unsat_3cnf(12, 5);
        let b = random_unsat_3cnf(12, 5);
        assert_eq!(a, b);
        assert_unsat(&a);
    }
}
