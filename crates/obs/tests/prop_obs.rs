//! Differential property tests for the observability stack: turning
//! the tracing machinery on must be observationally inert. Every
//! solver configuration — bare drivers, the preprocessing wrapper,
//! the parallel portfolio — is solved once with no sink installed and
//! once with the full sink stack (progress + JSONL trace + collector,
//! timing on), and the two runs must agree on status, cost, and model
//! cost. On top of the differential check, the captured artifacts
//! themselves are validated:
//!
//! - progress `o` lines are strictly decreasing (monotone incumbents);
//! - every `bounds` event with a known incumbent satisfies `lb <= ub`;
//! - every JSONL trace line parses as a JSON object with a `t_us`
//!   timestamp, and `span_enter`/`span_exit` pairs balance per thread
//!   with matching phases.
//!
//! The sink registry is process-global, so every test serializes
//! through one lock.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use coremax::{
    verify_solution, MaxSatSolution, MaxSatSolver, MaxSatStatus, Msu1, Msu3, Msu4, Preprocessed,
    Stratified, Wmsu1,
};
use coremax_cnf::{Lit, WcnfFormula};
use coremax_obs::json::Value;
use coremax_obs::{
    json, CollectorSink, Event, EventSink, FanoutSink, JsonlTraceSink, ProgressSink,
};
use coremax_par::Portfolio;
use proptest::prelude::*;

/// Serializes every test that installs the process-global sink.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A writer mirroring everything into a shared byte buffer.
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn buf_to_string(buf: &Arc<Mutex<Vec<u8>>>) -> String {
    String::from_utf8(buf.lock().unwrap_or_else(|e| e.into_inner()).clone())
        .expect("sink output is UTF-8")
}

/// Random *unweighted* partial MaxSAT instance.
fn arb_unweighted(max_vars: i32) -> impl Strategy<Value = WcnfFormula> {
    let lit = (1..=max_vars).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=3);
    (
        prop::collection::vec(clause.clone(), 0..8),
        prop::collection::vec(clause, 1..10),
    )
        .prop_map(move |(hard, soft)| {
            let mut w = WcnfFormula::with_vars(max_vars as usize);
            for c in hard {
                w.add_hard(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()));
            }
            for c in soft {
                w.add_soft(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()), 1);
            }
            w
        })
}

/// Random *weighted* partial MaxSAT instance.
fn arb_weighted(max_vars: i32) -> impl Strategy<Value = WcnfFormula> {
    let lit = (1..=max_vars).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=3);
    let weighted = (clause.clone(), 1u64..=6);
    (
        prop::collection::vec(clause, 0..8),
        prop::collection::vec(weighted, 1..8),
    )
        .prop_map(move |(hard, soft)| {
            let mut w = WcnfFormula::with_vars(max_vars as usize);
            for c in hard {
                w.add_hard(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()));
            }
            for (c, weight) in soft {
                w.add_soft(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()), weight);
            }
            w
        })
}

/// Progress `o` lines must be strictly decreasing.
fn check_progress_monotone(progress: &str, label: &str) {
    let mut last: Option<u64> = None;
    for line in progress.lines() {
        if let Some(rest) = line.strip_prefix("o ") {
            let cost: u64 = rest
                .parse()
                .unwrap_or_else(|e| panic!("{label}: bad o line {line:?}: {e}"));
            prop_assert!(
                last.is_none_or(|prev| cost < prev),
                "{} printed non-improving incumbent {} after {:?}",
                label,
                cost,
                last
            );
            last = Some(cost);
        }
    }
}

/// Every captured bounds event with an incumbent must be a valid
/// interval.
fn check_bounds_events(events: &[(Duration, Event)], label: &str) {
    for (_, ev) in events {
        if let Event::Bounds { lb, ub: Some(ub) } = ev {
            prop_assert!(lb <= ub, "{} emitted bounds lb={} > ub={}", label, lb, ub);
        }
    }
}

/// Every JSONL line parses; span events balance per thread with
/// matching phases.
fn check_trace_wellformed(trace: &str, label: &str) {
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    for line in trace.lines() {
        let v =
            json::parse(line).unwrap_or_else(|e| panic!("{label}: bad trace line {line:?}: {e}"));
        prop_assert!(
            v.get("t_us").and_then(Value::as_u64).is_some(),
            "{} trace line lacks t_us: {}",
            label,
            line
        );
        let kind = v.get("ev").and_then(Value::as_str).unwrap_or_default();
        if kind == "span_enter" || kind == "span_exit" {
            let tid = v.get("tid").and_then(Value::as_u64).unwrap_or(0);
            let phase = v
                .get("phase")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            let stack = stacks.entry(tid).or_default();
            if kind == "span_enter" {
                stack.push(phase);
            } else {
                let open = stack.pop();
                prop_assert_eq!(
                    open.as_deref(),
                    Some(phase.as_str()),
                    "{} span_exit without matching span_enter: {}",
                    label,
                    line
                );
            }
        }
    }
    for (tid, stack) in &stacks {
        prop_assert!(
            stack.is_empty(),
            "{} thread {} left spans open: {:?}",
            label,
            tid,
            stack
        );
    }
}

/// Solves twice — sinks off, then the full sink stack — and checks
/// both the differential contract and the captured artifacts.
fn differential(w: &WcnfFormula, mut solve: impl FnMut() -> MaxSatSolution, label: &str) {
    let baseline = solve();

    let progress_buf = Arc::new(Mutex::new(Vec::new()));
    let trace_buf = Arc::new(Mutex::new(Vec::new()));
    let collector = Arc::new(CollectorSink::new());
    let traced = {
        let sinks: Vec<Arc<dyn EventSink>> = vec![
            Arc::new(ProgressSink::to_writer(
                Box::new(SharedBuf(progress_buf.clone())),
                Duration::ZERO,
            )),
            Arc::new(JsonlTraceSink::to_writer(Box::new(SharedBuf(
                trace_buf.clone(),
            )))),
            collector.clone(),
        ];
        let _guard = coremax_obs::install(Arc::new(FanoutSink::new(sinks)), true);
        solve()
    };

    prop_assert_eq!(
        traced.status,
        baseline.status,
        "{} status changed under tracing",
        label
    );
    prop_assert_eq!(
        traced.cost,
        baseline.cost,
        "{} cost changed under tracing",
        label
    );
    prop_assert!(
        verify_solution(w, &traced),
        "{} traced solution failed verification",
        label
    );
    if traced.status == MaxSatStatus::Optimal {
        let model = traced.model.as_ref().expect("optimal has model");
        prop_assert_eq!(
            w.cost(model),
            traced.cost,
            "{} traced model lies about cost",
            label
        );
    }

    check_progress_monotone(&buf_to_string(&progress_buf), label);
    check_bounds_events(&collector.events(), label);
    check_trace_wellformed(&buf_to_string(&trace_buf), label);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unweighted_solvers_are_trace_invariant(w in arb_unweighted(6)) {
        let _l = obs_lock();
        differential(&w, || Msu3::new().solve(&w), "msu3");
        differential(&w, || Msu4::v2().solve(&w), "msu4-v2");
        differential(&w, || Msu1::new().solve(&w), "msu1");
        differential(&w, || Preprocessed::new(Msu4::v2()).solve(&w), "msu4-v2+simp");
    }

    #[test]
    fn weighted_solvers_are_trace_invariant(w in arb_weighted(6)) {
        let _l = obs_lock();
        differential(&w, || Wmsu1::new().solve(&w), "wmsu1");
        differential(&w, || Stratified::new(Msu3::new()).solve(&w), "strat-msu3");
        differential(&w, || Preprocessed::new(Wmsu1::new()).solve(&w), "wmsu1+simp");
    }

    #[test]
    fn portfolio_is_trace_invariant(w in arb_weighted(5)) {
        let _l = obs_lock();
        // Unlimited budget: the race always ends exactly, so the
        // winner's `(status, cost)` is deterministic by the
        // thread-count-invariance guarantee — tracing must not
        // perturb it either.
        differential(&w, || Portfolio::new(2).solve(&w).solution, "portfolio");
        // Clause sharing keeps races exact, so the same differential
        // holds with the exchange active (and its extra events on).
        differential(
            &w,
            || {
                Portfolio::new(2)
                    .with_sharing(coremax_sat::SharingConfig::default())
                    .solve(&w)
                    .solution
            },
            "portfolio+share",
        );
    }

    // Member lifecycles balance for every job count and sharing mode:
    // each member slot is claimed exactly once (started or skipped),
    // every started member ends exactly once (finished or cancelled),
    // skipped members never end, and the winner — when one exists —
    // was started. Regression: workers observing the race stop flag
    // used to drop claimed members with no lifecycle event at all.
    #[test]
    fn portfolio_member_lifecycles_balance(
        w in arb_weighted(5),
        jobs in 1usize..=8,
        share in any::<bool>(),
    ) {
        let _l = obs_lock();
        let collector = Arc::new(CollectorSink::new());
        let outcome = {
            let _guard = coremax_obs::install(collector.clone(), true);
            let mut portfolio = Portfolio::new(jobs);
            if share {
                portfolio = portfolio.with_sharing(coremax_sat::SharingConfig::default());
            }
            portfolio.solve(&w)
        };
        let n = Portfolio::default_members().len();
        let (mut started, mut skipped, mut ended) = (vec![0u32; n], vec![0u32; n], vec![0u32; n]);
        let mut shared_totals = 0u32;
        for (_, ev) in collector.events() {
            match ev {
                Event::MemberStarted { index, .. } => started[index as usize] += 1,
                Event::MemberSkipped { index, .. } => skipped[index as usize] += 1,
                Event::MemberFinished { index, .. } | Event::MemberCancelled { index, .. } => {
                    ended[index as usize] += 1;
                }
                Event::ClausesShared { .. } => shared_totals += 1,
                _ => {}
            }
        }
        for i in 0..n {
            prop_assert_eq!(
                started[i] + skipped[i],
                1,
                "member {} claimed {} times (jobs={}, share={})",
                i, started[i] + skipped[i], jobs, share
            );
            prop_assert_eq!(
                ended[i],
                started[i],
                "member {} started {} but ended {} times (jobs={}, share={})",
                i, started[i], ended[i], jobs, share
            );
        }
        if let Some(winner) = outcome.winner_index {
            prop_assert_eq!(started[winner], 1, "winner must have started");
        }
        prop_assert_eq!(
            shared_totals,
            u32::from(share),
            "exactly one clauses_shared summary per sharing race"
        );
    }
}
