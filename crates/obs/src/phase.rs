//! Phases, per-phase wall-time aggregation, and RAII timing spans.

use std::fmt;
use std::time::{Duration, Instant};

use crate::{dispatch, flags, thread_tag, timing_bit, trace_bit, Event};

/// The solve phases wall time is attributed to.
///
/// *Fine* phases (`Propagate`, `Analyze`, `ReduceDb`, `Gc`) live in
/// the CDCL hot loop: their spans aggregate into [`PhaseTimes`] when
/// timing is on but never emit trace events. *Coarse* phases
/// (`SatCall`, `Encode`, `SimpPass`) are rare enough to also emit
/// [`Event::SpanEnter`]/[`Event::SpanExit`] pairs when tracing is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Unit propagation inside the CDCL search loop.
    Propagate,
    /// Conflict analysis (first-UIP learning and minimisation).
    Analyze,
    /// Learned-clause database reduction.
    ReduceDb,
    /// Clause-arena garbage collection.
    Gc,
    /// One full SAT-solver invocation (assumptions in, verdict out).
    SatCall,
    /// Cardinality/relaxation constraint encoding in a MaxSAT driver.
    Encode,
    /// A preprocessing pipeline run in `coremax_simp`.
    SimpPass,
}

/// Number of [`Phase`] variants (the length of [`PhaseTimes`]).
pub const PHASE_COUNT: usize = 7;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Propagate,
        Phase::Analyze,
        Phase::ReduceDb,
        Phase::Gc,
        Phase::SatCall,
        Phase::Encode,
        Phase::SimpPass,
    ];

    /// Stable lower-case identifier used in traces and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Propagate => "propagate",
            Phase::Analyze => "analyze",
            Phase::ReduceDb => "reduce_db",
            Phase::Gc => "gc",
            Phase::SatCall => "sat_call",
            Phase::Encode => "encode",
            Phase::SimpPass => "simp_pass",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Propagate => 0,
            Phase::Analyze => 1,
            Phase::ReduceDb => 2,
            Phase::Gc => 3,
            Phase::SatCall => 4,
            Phase::Encode => 5,
            Phase::SimpPass => 6,
        }
    }

    /// Whether spans of this phase emit trace events (coarse phases
    /// only; the fine CDCL phases would flood the trace).
    #[must_use]
    pub fn traced(self) -> bool {
        matches!(self, Phase::SatCall | Phase::Encode | Phase::SimpPass)
    }
}

/// Cumulative wall time attributed to each [`Phase`].
///
/// All zero unless timing was enabled (see [`crate::set_timing`] /
/// [`crate::install`]) while the work ran. Embedded in the solver and
/// MaxSAT stats structs, so it keeps their `Copy + Eq + Default`
/// contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    totals: [Duration; PHASE_COUNT],
}

impl PhaseTimes {
    /// Adds `d` to the total for `phase`.
    pub fn add(&mut self, phase: Phase, d: Duration) {
        self.totals[phase.index()] += d;
    }

    /// Cumulative time attributed to `phase`.
    #[must_use]
    pub fn get(&self, phase: Phase) -> Duration {
        self.totals[phase.index()]
    }

    /// Sums another breakdown into this one (stats aggregation).
    pub fn absorb(&mut self, other: &PhaseTimes) {
        for (a, b) in self.totals.iter_mut().zip(other.totals.iter()) {
            *a += *b;
        }
    }

    /// A new breakdown holding the per-phase sums of `self` and
    /// `other`.
    #[must_use]
    pub fn merged(&self, other: &PhaseTimes) -> PhaseTimes {
        let mut out = *self;
        out.absorb(other);
        out
    }

    /// Sum over all phases. Phases nest (a SAT call contains
    /// propagation), so this can exceed real wall time.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// `true` when no time has been recorded (timing was off).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.totals.iter().all(|d| d.is_zero())
    }

    /// Appends this breakdown as a JSON object (`{"propagate_us": …}`,
    /// microsecond integers, every phase present).
    pub fn to_json_into(&self, out: &mut String) {
        out.push('{');
        for (i, phase) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let us = self.get(*phase).as_micros();
            out.push_str(&format!("\"{}_us\": {us}", phase.name()));
        }
        out.push('}');
    }
}

impl fmt::Display for PhaseTimes {
    /// `propagate=1.2ms analyze=0.3ms …`, zero phases skipped.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for phase in Phase::ALL {
            let d = self.get(phase);
            if d.is_zero() {
                continue;
            }
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            write!(f, "{}={:.1}ms", phase.name(), d.as_secs_f64() * 1e3)?;
        }
        if first {
            f.write_str("(untimed)")?;
        }
        Ok(())
    }
}

/// An open timing span; created by [`crate::span`], closed by
/// [`Span::finish`], which attributes the elapsed time to the span's
/// phase in a caller-supplied [`PhaseTimes`].
///
/// Inert (no clock read, no events) when neither tracing nor timing
/// is enabled, so it is safe in hot loops.
#[must_use = "a span measures nothing unless finished"]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
    traced: bool,
}

impl Span {
    #[inline]
    pub(crate) fn open(phase: Phase) -> Span {
        let flags = flags();
        let traced = phase.traced() && flags & trace_bit() != 0;
        if !traced && flags & timing_bit() == 0 {
            return Span {
                phase,
                start: None,
                traced: false,
            };
        }
        if traced {
            dispatch(&Event::SpanEnter {
                phase,
                tid: thread_tag(),
            });
        }
        Span {
            phase,
            start: Some(Instant::now()),
            traced,
        }
    }

    /// Closes the span, adding its elapsed wall time to `times` (and
    /// emitting the matching [`Event::SpanExit`] for traced phases).
    #[inline]
    pub fn finish(self, times: &mut PhaseTimes) {
        if let Some(start) = self.start {
            let d = start.elapsed();
            times.add(self.phase, d);
            if self.traced {
                dispatch(&Event::SpanExit {
                    phase: self.phase,
                    tid: thread_tag(),
                    dur_us: u64::try_from(d.as_micros()).unwrap_or(u64::MAX),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_cover_all() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn phase_times_add_absorb_total() {
        let mut a = PhaseTimes::default();
        assert!(a.is_zero());
        a.add(Phase::Propagate, Duration::from_micros(5));
        a.add(Phase::SatCall, Duration::from_micros(7));
        let mut b = PhaseTimes::default();
        b.add(Phase::Propagate, Duration::from_micros(3));
        a.absorb(&b);
        assert_eq!(a.get(Phase::Propagate), Duration::from_micros(8));
        assert_eq!(a.total(), Duration::from_micros(15));
        let m = a.merged(&b);
        assert_eq!(m.get(Phase::Propagate), Duration::from_micros(11));
        assert!(!a.is_zero());
    }

    #[test]
    fn display_skips_zero_phases() {
        let mut t = PhaseTimes::default();
        assert_eq!(t.to_string(), "(untimed)");
        t.add(Phase::Analyze, Duration::from_millis(2));
        let s = t.to_string();
        assert!(s.contains("analyze=2.0ms"), "{s}");
        assert!(!s.contains("propagate"), "{s}");
    }

    #[test]
    fn json_has_every_phase() {
        let mut t = PhaseTimes::default();
        t.add(Phase::Gc, Duration::from_micros(9));
        let mut s = String::new();
        t.to_json_into(&mut s);
        assert!(s.contains("\"gc_us\": 9"), "{s}");
        assert!(s.contains("\"propagate_us\": 0"), "{s}");
        crate::json::parse(&s).expect("valid json");
    }
}
