//! The structured event vocabulary of the stack.

use crate::json::escape_into;
use crate::Phase;

/// One solve-lifecycle event.
///
/// Events are plain data, cheap to construct, and carry raw `u64`
/// weights/costs (the `coremax_cnf::Weight` alias) so this crate
/// depends on nothing. Field meanings are documented per variant; the
/// JSONL encoding is `{"t_us": …, "ev": "<kind>", …fields…}` with the
/// field names used here.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    // ---- SAT engine ----
    /// The CDCL engine restarted. Counters are cumulative.
    Restart {
        /// Restarts so far (this one included).
        restarts: u64,
        /// Conflicts analysed so far.
        conflicts: u64,
        /// Learned clauses currently retained.
        learned: u64,
    },
    /// Periodic conflict-rate sample (every 1024 conflicts); rates are
    /// derived from successive samples' sink timestamps.
    ConflictRate {
        /// Conflicts analysed so far.
        conflicts: u64,
        /// Literals propagated so far.
        propagations: u64,
    },
    /// Learned-clause database reduction ran.
    ReduceDb {
        /// Learned clauses retained before the reduction.
        learned_before: u64,
        /// Learned clauses retained after it.
        learned_after: u64,
    },
    /// The clause arena was garbage-collected.
    Gc {
        /// Bytes of arena storage reclaimed.
        bytes_reclaimed: u64,
    },
    /// The arena memory watermark fired: every unprotected learned
    /// clause was shed.
    WatermarkReduction {
        /// Learned clauses retained before the shed.
        learned_before: u64,
        /// Learned clauses retained after it.
        learned_after: u64,
    },

    // ---- Phase spans (coarse phases only; see [`Phase::traced`]) ----
    /// A coarse phase span opened on thread `tid`.
    SpanEnter {
        /// The phase being entered.
        phase: Phase,
        /// Emitting thread's tag ([`crate::thread_tag`]).
        tid: u64,
    },
    /// The matching span closed.
    SpanExit {
        /// The phase being left.
        phase: Phase,
        /// Emitting thread's tag.
        tid: u64,
        /// Span duration in microseconds.
        dur_us: u64,
    },

    // ---- Core-guided MaxSAT drivers ----
    /// An unsatisfiable core was extracted.
    CoreExtracted {
        /// Soft clauses in the core.
        size: u64,
        /// Minimum weight over the core's soft clauses (1 when
        /// unweighted).
        weight: u64,
    },
    /// A relaxation/cardinality constraint was encoded.
    RelaxationEncoded {
        /// Fresh blocking (relaxation) variables introduced.
        blocking_vars: u64,
        /// CNF clauses the encoding added.
        clauses: u64,
    },
    /// The certified interval moved: `lb` is the proven lower bound,
    /// `ub` the incumbent cost (`None` while no model is known).
    /// Invariant: `lb <= ub` whenever `ub` is present.
    Bounds {
        /// Proven lower bound on the optimum.
        lb: u64,
        /// Incumbent (upper bound) cost, if any model is known.
        ub: Option<u64>,
    },
    /// A model strictly better than every previous one was found;
    /// `cost` is its exact soft-clause cost (the new upper bound).
    Incumbent {
        /// The incumbent's exact cost.
        cost: u64,
    },
    /// An OLL-style solver raised an existing totalizer's bound in
    /// place, reusing its internal nodes and emitting only the new
    /// layers.
    TotalizerExtended {
        /// The totalizer's new bound (outputs `0..=bound` exist).
        bound: u64,
        /// CNF clauses the extension added (the new layers only).
        clauses: u64,
    },
    /// A soft clause was made permanently hard because its residual
    /// weight exceeded the certified gap `ub − lb` (OLL weight-aware
    /// hardening).
    SoftHardened {
        /// Residual weight of the hardened soft clause.
        weight: u64,
        /// The certified gap that justified the hardening.
        gap: u64,
    },
    /// A stratification driver opened a weight stratum.
    StratumOpened {
        /// 0-based stratum index (heaviest first).
        index: u64,
        /// Smallest soft-clause weight admitted into this stratum.
        weight: u64,
        /// Soft clauses active once this stratum is included.
        softs: u64,
    },
    /// The stratum was solved (or abandoned on budget exhaustion).
    StratumClosed {
        /// 0-based stratum index.
        index: u64,
        /// Cumulative cost after closing this stratum.
        cost: u64,
    },

    // ---- Preprocessing ----
    /// One named pass of a `coremax_simp` round completed.
    SimpPass {
        /// Pass name (`"subsume"`, `"probe"`, `"bve"`).
        pass: &'static str,
        /// 1-based round number.
        round: u64,
        /// Clauses/variables/literals the pass removed or rewrote
        /// (pass-specific unit, 0 when the pass was a no-op).
        removed: u64,
    },

    // ---- Parallel portfolio ----
    /// A portfolio worker picked up member `index` and began solving.
    MemberStarted {
        /// Member slot index.
        index: u64,
        /// Member solver name.
        name: &'static str,
    },
    /// The member's solve returned.
    MemberFinished {
        /// Member slot index.
        index: u64,
        /// Member solver name.
        name: &'static str,
        /// `"optimal"`, `"infeasible"` or `"unknown"`.
        status: &'static str,
    },
    /// The member observed the race stop flag and was cancelled
    /// before (or while) solving.
    MemberCancelled {
        /// Member slot index.
        index: u64,
        /// Member solver name.
        name: &'static str,
    },
    /// A worker claimed member `index` but the race had already been
    /// won; the member was skipped without ever building a solver.
    MemberSkipped {
        /// Member slot index.
        index: u64,
        /// Member solver name.
        name: &'static str,
    },
    /// The portfolio chose its answer.
    WinnerChosen {
        /// Winning member slot index.
        index: u64,
        /// Winning member solver name.
        name: &'static str,
    },
    /// Final clause-exchange totals for a sharing-enabled race.
    ClausesShared {
        /// Clauses published into the exchange across all workers.
        exported: u64,
        /// Clause deliveries into importing solvers (one export can be
        /// imported by many workers).
        imported: u64,
        /// Deliveries dropped as duplicates by receivers.
        duplicates: u64,
    },
}

impl Event {
    /// Stable snake-case discriminant name (the `"ev"` field of the
    /// JSONL encoding).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Restart { .. } => "restart",
            Event::ConflictRate { .. } => "conflict_rate",
            Event::ReduceDb { .. } => "reduce_db",
            Event::Gc { .. } => "gc",
            Event::WatermarkReduction { .. } => "watermark_reduction",
            Event::SpanEnter { .. } => "span_enter",
            Event::SpanExit { .. } => "span_exit",
            Event::CoreExtracted { .. } => "core",
            Event::RelaxationEncoded { .. } => "relax",
            Event::Bounds { .. } => "bounds",
            Event::Incumbent { .. } => "incumbent",
            Event::TotalizerExtended { .. } => "totalizer_extended",
            Event::SoftHardened { .. } => "soft_hardened",
            Event::StratumOpened { .. } => "stratum_opened",
            Event::StratumClosed { .. } => "stratum_closed",
            Event::SimpPass { .. } => "simp_pass",
            Event::MemberStarted { .. } => "member_started",
            Event::MemberFinished { .. } => "member_finished",
            Event::MemberCancelled { .. } => "member_cancelled",
            Event::MemberSkipped { .. } => "member_skipped",
            Event::WinnerChosen { .. } => "winner_chosen",
            Event::ClausesShared { .. } => "clauses_shared",
        }
    }

    /// Appends the event's payload as JSON object fields —
    /// `"ev": "<kind>", "<field>": <value>, …` — without braces, so a
    /// sink can prepend its own fields (e.g. a timestamp).
    pub fn fields_to_json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        fn num(out: &mut String, name: &str, v: u64) {
            let _ = write!(out, ", \"{name}\": {v}");
        }
        let _ = write!(out, "\"ev\": \"{}\"", self.kind());
        match self {
            Event::Restart {
                restarts,
                conflicts,
                learned,
            } => {
                num(out, "restarts", *restarts);
                num(out, "conflicts", *conflicts);
                num(out, "learned", *learned);
            }
            Event::ConflictRate {
                conflicts,
                propagations,
            } => {
                num(out, "conflicts", *conflicts);
                num(out, "propagations", *propagations);
            }
            Event::ReduceDb {
                learned_before,
                learned_after,
            }
            | Event::WatermarkReduction {
                learned_before,
                learned_after,
            } => {
                num(out, "learned_before", *learned_before);
                num(out, "learned_after", *learned_after);
            }
            Event::Gc { bytes_reclaimed } => num(out, "bytes_reclaimed", *bytes_reclaimed),
            Event::SpanEnter { phase, tid } => {
                let _ = write!(out, ", \"phase\": \"{}\"", phase.name());
                num(out, "tid", *tid);
            }
            Event::SpanExit { phase, tid, dur_us } => {
                let _ = write!(out, ", \"phase\": \"{}\"", phase.name());
                num(out, "tid", *tid);
                num(out, "dur_us", *dur_us);
            }
            Event::CoreExtracted { size, weight } => {
                num(out, "size", *size);
                num(out, "weight", *weight);
            }
            Event::RelaxationEncoded {
                blocking_vars,
                clauses,
            } => {
                num(out, "blocking_vars", *blocking_vars);
                num(out, "clauses", *clauses);
            }
            Event::Bounds { lb, ub } => {
                num(out, "lb", *lb);
                match ub {
                    Some(u) => num(out, "ub", *u),
                    None => {
                        let _ = write!(out, ", \"ub\": null");
                    }
                }
            }
            Event::Incumbent { cost } => num(out, "cost", *cost),
            Event::TotalizerExtended { bound, clauses } => {
                num(out, "bound", *bound);
                num(out, "clauses", *clauses);
            }
            Event::SoftHardened { weight, gap } => {
                num(out, "weight", *weight);
                num(out, "gap", *gap);
            }
            Event::StratumOpened {
                index,
                weight,
                softs,
            } => {
                num(out, "index", *index);
                num(out, "weight", *weight);
                num(out, "softs", *softs);
            }
            Event::StratumClosed { index, cost } => {
                num(out, "index", *index);
                num(out, "cost", *cost);
            }
            Event::SimpPass {
                pass,
                round,
                removed,
            } => {
                let mut s = String::new();
                escape_into(&mut s, pass);
                let _ = write!(out, ", \"pass\": \"{s}\"");
                num(out, "round", *round);
                num(out, "removed", *removed);
            }
            Event::MemberStarted { index, name }
            | Event::MemberCancelled { index, name }
            | Event::MemberSkipped { index, name } => {
                num(out, "index", *index);
                let mut s = String::new();
                escape_into(&mut s, name);
                let _ = write!(out, ", \"name\": \"{s}\"");
            }
            Event::MemberFinished {
                index,
                name,
                status,
            } => {
                num(out, "index", *index);
                let mut s = String::new();
                escape_into(&mut s, name);
                let _ = write!(out, ", \"name\": \"{s}\", \"status\": \"{status}\"");
            }
            Event::WinnerChosen { index, name } => {
                num(out, "index", *index);
                let mut s = String::new();
                escape_into(&mut s, name);
                let _ = write!(out, ", \"name\": \"{s}\"");
            }
            Event::ClausesShared {
                exported,
                imported,
                duplicates,
            } => {
                num(out, "exported", *exported);
                num(out, "imported", *imported);
                num(out, "duplicates", *duplicates);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_encodes_to_valid_json_fields() {
        let samples = [
            Event::Restart {
                restarts: 1,
                conflicts: 100,
                learned: 50,
            },
            Event::ConflictRate {
                conflicts: 1024,
                propagations: 99999,
            },
            Event::ReduceDb {
                learned_before: 100,
                learned_after: 50,
            },
            Event::Gc {
                bytes_reclaimed: 4096,
            },
            Event::WatermarkReduction {
                learned_before: 9,
                learned_after: 2,
            },
            Event::SpanEnter {
                phase: Phase::SatCall,
                tid: 1,
            },
            Event::SpanExit {
                phase: Phase::SatCall,
                tid: 1,
                dur_us: 12,
            },
            Event::CoreExtracted { size: 3, weight: 2 },
            Event::RelaxationEncoded {
                blocking_vars: 3,
                clauses: 9,
            },
            Event::Bounds { lb: 1, ub: Some(4) },
            Event::Bounds { lb: 0, ub: None },
            Event::Incumbent { cost: 4 },
            Event::TotalizerExtended {
                bound: 2,
                clauses: 11,
            },
            Event::SoftHardened { weight: 9, gap: 3 },
            Event::StratumOpened {
                index: 0,
                weight: 8,
                softs: 5,
            },
            Event::StratumClosed { index: 0, cost: 2 },
            Event::SimpPass {
                pass: "bve",
                round: 1,
                removed: 7,
            },
            Event::MemberStarted {
                index: 2,
                name: "msu3",
            },
            Event::MemberFinished {
                index: 2,
                name: "msu3",
                status: "optimal",
            },
            Event::MemberCancelled {
                index: 4,
                name: "msu1",
            },
            Event::MemberSkipped {
                index: 5,
                name: "oll",
            },
            Event::WinnerChosen {
                index: 2,
                name: "msu3",
            },
            Event::ClausesShared {
                exported: 120,
                imported: 340,
                duplicates: 16,
            },
        ];
        for ev in &samples {
            let mut body = String::from("{");
            ev.fields_to_json_into(&mut body);
            body.push('}');
            let parsed = crate::json::parse(&body).unwrap_or_else(|e| panic!("{body}: {e}"));
            let obj = parsed.as_object().expect("object");
            assert_eq!(
                obj.iter().find(|(k, _)| k == "ev").map(|(_, v)| v.as_str()),
                Some(Some(ev.kind())),
                "{body}"
            );
        }
    }
}
