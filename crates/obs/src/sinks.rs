//! The concrete sinks: live progress printer, JSONL trace writer,
//! in-memory collector, and a fan-out combinator.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::{Event, EventSink};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One `(elapsed, lb, ub)` sample of the certified interval, as
/// captured from [`Event::Bounds`] / [`Event::Incumbent`] events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundSample {
    /// Milliseconds since the sink was created.
    pub elapsed_ms: u64,
    /// Proven lower bound at that moment.
    pub lb: u64,
    /// Incumbent cost at that moment (`None` before the first model).
    pub ub: Option<u64>,
}

// ---------------------------------------------------------------------
// ProgressSink
// ---------------------------------------------------------------------

struct ProgressState {
    best_cost: Option<u64>,
    best_lb: u64,
    best_ub: Option<u64>,
    last_bounds_print: Option<Instant>,
    bounds_dirty: bool,
}

/// Live progress printer following the MaxSAT-Evaluation output
/// conventions: an `o <cost>` line the moment a strictly better
/// incumbent is found, and throttled `c bounds lb=<n> ub=<n>` lines
/// as the certified interval tightens (`ub=-` while no model is
/// known).
///
/// Incumbent lines are globally monotone even when events arrive out
/// of order from racing portfolio members: a cost not strictly better
/// than the best already printed is suppressed. Bound lines likewise
/// only report the tightest interval seen so far.
pub struct ProgressSink {
    out: Mutex<Box<dyn Write + Send>>,
    state: Mutex<ProgressState>,
    /// Minimum spacing of `c bounds` lines; zero prints every update.
    interval: Duration,
}

impl ProgressSink {
    /// A progress printer writing to standard output, spacing
    /// `c bounds` lines at least `interval` apart.
    #[must_use]
    pub fn stdout(interval: Duration) -> Self {
        Self::to_writer(Box::new(std::io::stdout()), interval)
    }

    /// A progress printer writing to an arbitrary writer (tests).
    pub fn to_writer(out: Box<dyn Write + Send>, interval: Duration) -> Self {
        ProgressSink {
            out: Mutex::new(out),
            state: Mutex::new(ProgressState {
                best_cost: None,
                best_lb: 0,
                best_ub: None,
                last_bounds_print: None,
                bounds_dirty: false,
            }),
            interval,
        }
    }
}

impl EventSink for ProgressSink {
    fn on_event(&self, event: &Event) {
        match event {
            Event::Incumbent { cost } => {
                let mut st = lock(&self.state);
                if st.best_cost.is_none_or(|b| *cost < b) {
                    st.best_cost = Some(*cost);
                    drop(st);
                    let mut out = lock(&self.out);
                    let _ = writeln!(out, "o {cost}");
                    let _ = out.flush();
                }
            }
            Event::Bounds { lb, ub } => {
                let mut st = lock(&self.state);
                let new_lb = st.best_lb.max(*lb);
                let new_ub = match (st.best_ub, *ub) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                if new_lb != st.best_lb || new_ub != st.best_ub {
                    st.best_lb = new_lb;
                    st.best_ub = new_ub;
                    st.bounds_dirty = true;
                }
                let due = st.bounds_dirty
                    && st
                        .last_bounds_print
                        .is_none_or(|t| t.elapsed() >= self.interval);
                if due {
                    st.last_bounds_print = Some(Instant::now());
                    st.bounds_dirty = false;
                    let (lb, ub) = (st.best_lb, st.best_ub);
                    drop(st);
                    let ub = ub.map_or_else(|| "-".to_string(), |u| u.to_string());
                    let mut out = lock(&self.out);
                    let _ = writeln!(out, "c bounds lb={lb} ub={ub}");
                    let _ = out.flush();
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// JsonlTraceSink
// ---------------------------------------------------------------------

/// Structured trace writer: one JSON object per line per event —
/// `{"t_us": <since sink creation>, "ev": "<kind>", …}` — hand-rolled
/// (no serde), buffered, flushed on drop.
pub struct JsonlTraceSink {
    start: Instant,
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlTraceSink {
    /// Creates (truncates) `path` and writes the trace there.
    pub fn create(path: &str) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(BufWriter::new(file))))
    }

    /// A trace writer over an arbitrary writer (tests).
    #[must_use]
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        JsonlTraceSink {
            start: Instant::now(),
            out: Mutex::new(out),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let _ = lock(&self.out).flush();
    }
}

impl EventSink for JsonlTraceSink {
    fn on_event(&self, event: &Event) {
        let t_us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut line = String::with_capacity(96);
        line.push_str("{\"t_us\": ");
        line.push_str(&t_us.to_string());
        line.push_str(", ");
        event.fields_to_json_into(&mut line);
        line.push_str("}\n");
        let _ = lock(&self.out).write_all(line.as_bytes());
    }
}

impl Drop for JsonlTraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

// ---------------------------------------------------------------------
// CollectorSink
// ---------------------------------------------------------------------

/// In-memory event capture for benchmarks and tests: every event is
/// stored with its elapsed time since the sink was created.
pub struct CollectorSink {
    start: Instant,
    events: Mutex<Vec<(Duration, Event)>>,
}

impl CollectorSink {
    /// An empty collector; the clock starts now.
    #[must_use]
    pub fn new() -> Self {
        CollectorSink {
            start: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// A snapshot of everything captured so far.
    #[must_use]
    pub fn events(&self) -> Vec<(Duration, Event)> {
        lock(&self.events).clone()
    }

    /// Drains and returns everything captured so far.
    #[must_use]
    pub fn take(&self) -> Vec<(Duration, Event)> {
        std::mem::take(&mut lock(&self.events))
    }

    /// The anytime trajectory: one [`BoundSample`] per captured
    /// [`Event::Bounds`], with lower bounds monotonically tightened
    /// and incumbents folded in (so the series is a valid
    /// `(elapsed, lb, ub)` staircase even with interleaved sources).
    #[must_use]
    pub fn bound_samples(&self) -> Vec<BoundSample> {
        let mut out = Vec::new();
        let mut best_lb = 0u64;
        let mut best_ub: Option<u64> = None;
        for (t, ev) in lock(&self.events).iter() {
            let changed = match ev {
                Event::Bounds { lb, ub } => {
                    let prev = (best_lb, best_ub);
                    best_lb = best_lb.max(*lb);
                    best_ub = match (best_ub, *ub) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    (best_lb, best_ub) != prev
                }
                Event::Incumbent { cost } => {
                    let prev = best_ub;
                    best_ub = Some(best_ub.map_or(*cost, |u| u.min(*cost)));
                    best_ub != prev
                }
                _ => false,
            };
            if changed {
                out.push(BoundSample {
                    elapsed_ms: u64::try_from(t.as_millis()).unwrap_or(u64::MAX),
                    lb: best_lb,
                    ub: best_ub,
                });
            }
        }
        out
    }
}

impl Default for CollectorSink {
    fn default() -> Self {
        Self::new()
    }
}

impl EventSink for CollectorSink {
    fn on_event(&self, event: &Event) {
        let t = self.start.elapsed();
        lock(&self.events).push((t, event.clone()));
    }
}

// ---------------------------------------------------------------------
// FanoutSink
// ---------------------------------------------------------------------

/// Delivers every event to each of several sinks in order (e.g. a
/// live progress printer plus a JSONL trace).
pub struct FanoutSink {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl FanoutSink {
    /// A fan-out over `sinks`.
    #[must_use]
    pub fn new(sinks: Vec<Arc<dyn EventSink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl EventSink for FanoutSink {
    fn on_event(&self, event: &Event) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            lock(&self.0).extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn progress_prints_monotone_o_lines() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = ProgressSink::to_writer(Box::new(SharedBuf(buf.clone())), Duration::ZERO);
        for cost in [7, 9, 5, 5, 3] {
            sink.on_event(&Event::Incumbent { cost });
        }
        let text = String::from_utf8(lock(&buf).clone()).unwrap();
        assert_eq!(text, "o 7\no 5\no 3\n");
    }

    #[test]
    fn progress_bounds_tighten_and_format() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = ProgressSink::to_writer(Box::new(SharedBuf(buf.clone())), Duration::ZERO);
        sink.on_event(&Event::Bounds { lb: 1, ub: None });
        sink.on_event(&Event::Bounds { lb: 0, ub: Some(9) }); // lb must not regress
        sink.on_event(&Event::Bounds { lb: 3, ub: Some(4) });
        sink.on_event(&Event::Bounds { lb: 3, ub: Some(4) }); // unchanged: no line
        let text = String::from_utf8(lock(&buf).clone()).unwrap();
        assert_eq!(
            text,
            "c bounds lb=1 ub=-\nc bounds lb=1 ub=9\nc bounds lb=3 ub=4\n"
        );
    }

    #[test]
    fn progress_throttles_bounds_but_never_o_lines() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink =
            ProgressSink::to_writer(Box::new(SharedBuf(buf.clone())), Duration::from_secs(3600));
        sink.on_event(&Event::Bounds { lb: 1, ub: None }); // first: prints
        sink.on_event(&Event::Bounds { lb: 2, ub: None }); // throttled
        sink.on_event(&Event::Incumbent { cost: 5 }); // immediate
        let text = String::from_utf8(lock(&buf).clone()).unwrap();
        assert_eq!(text, "c bounds lb=1 ub=-\no 5\n");
    }

    #[test]
    fn jsonl_lines_parse_and_carry_timestamps() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlTraceSink::to_writer(Box::new(SharedBuf(buf.clone())));
        sink.on_event(&Event::Incumbent { cost: 2 });
        sink.on_event(&Event::Gc {
            bytes_reclaimed: 10,
        });
        sink.flush();
        let text = String::from_utf8(lock(&buf).clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = crate::json::parse(line).expect("well-formed");
            assert!(v.get("t_us").unwrap().as_u64().is_some());
            assert!(v.get("ev").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn collector_builds_interval_staircase() {
        let sink = CollectorSink::new();
        sink.on_event(&Event::Bounds { lb: 1, ub: None });
        sink.on_event(&Event::Restart {
            restarts: 1,
            conflicts: 2,
            learned: 3,
        }); // ignored by samples
        sink.on_event(&Event::Incumbent { cost: 6 });
        sink.on_event(&Event::Bounds { lb: 2, ub: Some(6) });
        sink.on_event(&Event::Bounds { lb: 2, ub: Some(6) }); // no change
        let samples = sink.bound_samples();
        let key: Vec<(u64, Option<u64>)> = samples.iter().map(|s| (s.lb, s.ub)).collect();
        assert_eq!(key, vec![(1, None), (1, Some(6)), (2, Some(6))]);
        for w in samples.windows(2) {
            assert!(w[0].elapsed_ms <= w[1].elapsed_ms);
        }
        assert_eq!(sink.events().len(), 5);
        assert_eq!(sink.take().len(), 5);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(CollectorSink::new());
        let b = Arc::new(CollectorSink::new());
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        fan.on_event(&Event::Incumbent { cost: 1 });
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }
}
