//! `coremax_obs` — zero-cost-when-disabled observability for the
//! coremax stack.
//!
//! Every layer of the solver (CDCL engine, core-guided drivers,
//! preprocessing, portfolio) emits structured [`Event`]s through a
//! single process-global sink. The design contract is that the
//! *disabled* path — no sink installed — costs exactly one relaxed
//! atomic load per potential emission point, so instrumentation can
//! live inside hot loops without a measurable footprint:
//!
//! - [`emit`] checks one [`AtomicU8`] flag word and returns
//!   immediately when tracing is off; only then is the sink registry
//!   lock touched.
//! - [`span`] returns an inert [`Span`] (no clock read, no event) when
//!   neither tracing nor timing is enabled.
//!
//! Sinks implement [`EventSink`] and are installed with [`install`],
//! which returns an RAII [`SinkGuard`]; dropping the guard restores
//! the disabled state. Three concrete sinks ship with the crate:
//! [`ProgressSink`] (live MaxSAT-Evaluation-style `o <cost>` /
//! `c bounds` lines), [`JsonlTraceSink`] (one JSON object per event)
//! and [`CollectorSink`] (in-memory capture for benchmarks and tests).
//! [`FanoutSink`] composes several of them.
//!
//! Wall-time attribution is aggregated per [`Phase`] into
//! [`PhaseTimes`] via [`Span`]s; coarse phases (SAT call, encoding,
//! preprocessing pass) additionally emit [`Event::SpanEnter`] /
//! [`Event::SpanExit`] pairs into the trace, while the fine CDCL
//! phases (propagate/analyze/reduce/GC) only aggregate, keeping trace
//! volume bounded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod json;
mod phase;
mod sinks;

pub use event::Event;
pub use phase::{Phase, PhaseTimes, Span, PHASE_COUNT};
pub use sinks::{BoundSample, CollectorSink, FanoutSink, JsonlTraceSink, ProgressSink};

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Receives every [`Event`] the stack emits while tracing is enabled.
///
/// Implementations must be cheap and must never panic: sinks run
/// inline on solver threads (including portfolio workers), and an
/// event is delivered on whichever thread produced it.
pub trait EventSink: Send + Sync {
    /// Called once per emitted event, on the emitting thread.
    fn on_event(&self, event: &Event);
}

/// Flag bit: a sink is installed and events are dispatched.
const TRACE_BIT: u8 = 1;
/// Flag bit: phase timing (clock reads in [`span`]) is enabled.
const TIMING_BIT: u8 = 2;

/// The single process-global flag word: the only state the disabled
/// fast path ever touches.
static FLAGS: AtomicU8 = AtomicU8::new(0);

/// The installed sink. Locked only on the enabled path (install,
/// uninstall, dispatch); never on the fast path.
static SINK: Mutex<Option<Arc<dyn EventSink>>> = Mutex::new(None);

/// Whether a sink is installed and [`emit`] dispatches events.
#[inline]
#[must_use]
pub fn tracing_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & TRACE_BIT != 0
}

/// Whether phase timing is enabled ([`span`] reads the clock and
/// aggregates into [`PhaseTimes`]).
#[inline]
#[must_use]
pub fn timing_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & TIMING_BIT != 0
}

pub(crate) fn flags() -> u8 {
    FLAGS.load(Ordering::Relaxed)
}

pub(crate) const fn trace_bit() -> u8 {
    TRACE_BIT
}

pub(crate) const fn timing_bit() -> u8 {
    TIMING_BIT
}

/// Emits an event to the installed sink, if any.
///
/// When tracing is disabled this is one relaxed atomic load and a
/// branch; hot call sites may additionally pre-guard event
/// construction with [`tracing_enabled`].
#[inline]
pub fn emit(event: Event) {
    if tracing_enabled() {
        dispatch(&event);
    }
}

/// The enabled-path dispatch: clones the sink handle out of the
/// registry lock, then delivers outside it so sinks on different
/// threads run concurrently.
#[cold]
pub(crate) fn dispatch(event: &Event) {
    let sink = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    if let Some(sink) = sink {
        sink.on_event(event);
    }
}

/// RAII handle for an installed sink: dropping it uninstalls the sink
/// and clears every flag, restoring the zero-cost disabled state.
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub struct SinkGuard {
    _private: (),
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        FLAGS.store(0, Ordering::SeqCst);
        *SINK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }
}

/// Installs `sink` as the process-global event sink and enables
/// tracing; with `timing` also enables phase-time aggregation.
///
/// There is one global slot: installing replaces any previous sink.
/// Tests that install sinks must serialize among themselves.
pub fn install(sink: Arc<dyn EventSink>, timing: bool) -> SinkGuard {
    *SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(sink);
    let flags = TRACE_BIT | if timing { TIMING_BIT } else { 0 };
    FLAGS.store(flags, Ordering::SeqCst);
    SinkGuard { _private: () }
}

/// Enables or disables phase timing without installing a sink: spans
/// aggregate wall time into [`PhaseTimes`] but no events are
/// dispatched. Used by `--stats`-style consumers that want the
/// breakdown without a trace.
pub fn set_timing(on: bool) {
    if on {
        FLAGS.fetch_or(TIMING_BIT, Ordering::SeqCst);
    } else {
        FLAGS.fetch_and(!TIMING_BIT, Ordering::SeqCst);
    }
}

/// Opens a timing span for `phase`; see [`Phase`] for which phases
/// also emit trace span events. Returns an inert span (no clock read)
/// when both tracing and timing are disabled.
#[inline]
pub fn span(phase: Phase) -> Span {
    Span::open(phase)
}

static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_TAG: u64 = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
}

/// A small stable per-thread integer used to correlate span events
/// emitted by different threads (portfolio members) in one trace.
#[must_use]
pub fn thread_tag() -> u64 {
    THREAD_TAG.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    // The registry is process-global; tests that install sinks
    // serialize through this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct Counting(AtomicUsize);
    impl EventSink for Counting {
        fn on_event(&self, _event: &Event) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn disabled_by_default_and_guard_restores() {
        let _l = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(!tracing_enabled());
        emit(Event::Incumbent { cost: 1 }); // goes nowhere, must not panic
        let sink = Arc::new(Counting(AtomicUsize::new(0)));
        {
            let _guard = install(sink.clone(), false);
            assert!(tracing_enabled());
            assert!(!timing_enabled());
            emit(Event::Incumbent { cost: 1 });
            emit(Event::Bounds { lb: 0, ub: None });
            assert_eq!(sink.0.load(Ordering::Relaxed), 2);
        }
        assert!(!tracing_enabled());
        emit(Event::Incumbent { cost: 2 });
        assert_eq!(sink.0.load(Ordering::Relaxed), 2, "uninstalled sink fed");
    }

    #[test]
    fn spans_aggregate_only_when_timing_on() {
        let _l = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut times = PhaseTimes::default();
        let sp = span(Phase::Propagate);
        std::thread::sleep(std::time::Duration::from_millis(1));
        sp.finish(&mut times);
        assert!(times.is_zero(), "disabled span must not read the clock");

        let sink = Arc::new(Counting(AtomicUsize::new(0)));
        let _guard = install(sink, true);
        let sp = span(Phase::Propagate);
        std::thread::sleep(std::time::Duration::from_millis(1));
        sp.finish(&mut times);
        assert!(!times.is_zero());
        assert!(times.get(Phase::Propagate) >= std::time::Duration::from_millis(1));
    }

    #[test]
    fn coarse_spans_emit_balanced_events() {
        let _l = TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let collector = Arc::new(CollectorSink::new());
        let _guard = install(collector.clone(), true);
        let mut times = PhaseTimes::default();
        let sp = span(Phase::SatCall);
        span(Phase::Analyze).finish(&mut times); // fine phase: no events
        sp.finish(&mut times);
        let events = collector.events();
        let kinds: Vec<&'static str> = events.iter().map(|(_, e)| e.kind()).collect();
        assert_eq!(kinds, vec!["span_enter", "span_exit"]);
    }

    #[test]
    fn thread_tags_are_distinct() {
        let here = thread_tag();
        let there = std::thread::spawn(thread_tag).join().unwrap();
        assert_ne!(here, there);
        assert_eq!(here, thread_tag(), "stable within a thread");
    }
}
