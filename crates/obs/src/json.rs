//! Minimal hand-rolled JSON support: string escaping for the writers
//! and a small recursive-descent parser for the readers (trace
//! validation, bench-file post-processing). No serde — the whole
//! stack serializes by hand, matching the BENCH binaries.

use std::collections::BTreeMap;
use std::fmt;

/// Appends `s` to `out` with JSON string escaping applied.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A parsed JSON value.
///
/// Numbers are kept as `f64` (plus the raw text for exact integer
/// access); object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number: parsed value plus its source text.
    Num(f64, String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match), `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string's contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n, _) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer, if this is a number
    /// written as one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(_, raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// `true` for `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object members as a map (later duplicates win). Convenience
    /// for tests.
    #[must_use]
    pub fn to_map(&self) -> BTreeMap<String, Value> {
        match self {
            Value::Obj(m) => m.iter().cloned().collect(),
            _ => BTreeMap::new(),
        }
    }
}

/// A parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our
                            // own writers; map them to the
                            // replacement character instead of
                            // rejecting foreign traces outright.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        let n: f64 = raw.parse().map_err(|_| self.err("bad number"))?;
        Ok(Value::Num(n, raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap().as_str(), Some("a\nb"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": null}, "x"], "c": {"d": 2.5}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(2.5));
        assert!(v.get("a").unwrap().as_array().unwrap()[1]
            .get("b")
            .unwrap()
            .is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{e9}";
        let mut enc = String::from("\"");
        escape_into(&mut enc, nasty);
        enc.push('"');
        assert_eq!(parse(&enc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        let e = parse("[nulx]").unwrap_err();
        assert!(e.to_string().contains("byte 1"), "{e}");
    }

    #[test]
    fn u64_precision_is_exact() {
        let big = u64::MAX.to_string();
        assert_eq!(parse(&big).unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
