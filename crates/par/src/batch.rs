//! Work-stealing batch execution: many instances, N workers, one
//! configuration.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use coremax::{MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus};
use coremax_cnf::WcnfFormula;
use coremax_sat::Budget;

/// Knobs for [`solve_batch`].
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads (clamped to ≥ 1).
    pub jobs: usize,
    /// Per-instance budget (each instance starts a fresh clock).
    pub budget: Budget,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            jobs: 1,
            budget: Budget::new(),
        }
    }
}

/// One instance's result within a batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Instance name, as given in the input list.
    pub name: String,
    /// The solution (statuses and costs are identical to a sequential
    /// run of the same configuration on the same instance).
    pub solution: MaxSatSolution,
}

/// Aggregated results of a batch run, in input order.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-instance outcomes, ordered as the input list (independent of
    /// which worker solved what).
    pub outcomes: Vec<BatchOutcome>,
    /// Wall-clock time of the whole batch.
    pub wall_time: Duration,
    /// Work counters summed over every instance.
    pub total_stats: MaxSatStats,
    /// Instances proven optimal.
    pub optimal: usize,
    /// Instances with infeasible hard clauses.
    pub infeasible: usize,
    /// Instances aborted within budget (the paper's "aborted" column).
    pub unknown: usize,
}

impl BatchReport {
    /// Sum of per-instance solve times — the sequential-equivalent cost
    /// of the batch. `wall_time` below this means parallelism paid off.
    #[must_use]
    pub fn cpu_time(&self) -> Duration {
        self.outcomes
            .iter()
            .map(|o| o.solution.stats.wall_time)
            .sum()
    }
}

/// Solves every `(name, instance)` pair with a fresh solver from
/// `make_solver`, stealing work across `options.jobs` threads.
///
/// Work stealing is index-based: workers atomically pop the next
/// unsolved instance, so long instances never serialise the queue
/// behind them. Per-instance results are deterministic — the same
/// configuration solves each instance no matter which worker runs it or
/// how many workers exist — and are reported in input order.
#[must_use]
pub fn solve_batch<F>(
    items: &[(&str, &WcnfFormula)],
    make_solver: F,
    options: &BatchOptions,
) -> BatchReport
where
    F: Fn() -> Box<dyn MaxSatSolver + Send> + Sync,
{
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<MaxSatSolution>>> =
        items.iter().map(|_| Mutex::new(None)).collect();

    let workers = options.jobs.max(1).min(items.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= items.len() {
                    break;
                }
                let mut solver = make_solver();
                solver.set_budget(options.budget.clone());
                let solution = solver.solve(items[i].1);
                *slots[i].lock().expect("no poisoned slot") = Some(solution);
            });
        }
    });

    let mut total_stats = MaxSatStats::default();
    let (mut optimal, mut infeasible, mut unknown) = (0usize, 0usize, 0usize);
    let outcomes: Vec<BatchOutcome> = items
        .iter()
        .zip(slots)
        .map(|(&(name, _), slot)| {
            let solution = slot
                .into_inner()
                .expect("no poisoned slot")
                .expect("every queued instance is solved");
            total_stats.absorb(&solution.stats);
            match solution.status {
                MaxSatStatus::Optimal => optimal += 1,
                MaxSatStatus::Infeasible => infeasible += 1,
                MaxSatStatus::Unknown => unknown += 1,
            }
            BatchOutcome {
                name: name.to_string(),
                solution,
            }
        })
        .collect();
    total_stats.wall_time = start.elapsed();

    BatchReport {
        outcomes,
        wall_time: total_stats.wall_time,
        total_stats,
        optimal,
        infeasible,
        unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax::Msu4;
    use coremax_cnf::{dimacs, Lit};

    fn instances() -> Vec<(String, WcnfFormula)> {
        let mut out = Vec::new();
        // A few small all-soft UNSAT formulas with known optima.
        for (name, text, _cost) in [
            ("units", "p cnf 1 2\n1 0\n-1 0\n", 1),
            (
                "example2",
                "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n",
                2,
            ),
            ("pair", "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n", 1),
        ] {
            let cnf = dimacs::parse_cnf(text).unwrap();
            out.push((name.to_string(), WcnfFormula::from_cnf_all_soft(&cnf)));
        }
        // And one with infeasible hard clauses.
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 1);
        out.push(("infeasible".to_string(), w));
        out
    }

    #[test]
    fn batch_results_are_job_count_invariant_and_in_input_order() {
        let owned = instances();
        let items: Vec<(&str, &WcnfFormula)> = owned.iter().map(|(n, w)| (n.as_str(), w)).collect();
        let run = |jobs: usize| {
            solve_batch(
                &items,
                || Box::new(Msu4::v2()) as Box<dyn MaxSatSolver + Send>,
                &BatchOptions {
                    jobs,
                    budget: Budget::new(),
                },
            )
        };
        let seq = run(1);
        assert_eq!(seq.optimal, 3);
        assert_eq!(seq.infeasible, 1);
        assert_eq!(seq.unknown, 0);
        for jobs in [2, 4, 8] {
            let par = run(jobs);
            assert_eq!(par.outcomes.len(), seq.outcomes.len());
            for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
                assert_eq!(a.name, b.name, "input order preserved");
                assert_eq!(a.solution.status, b.solution.status, "{}", a.name);
                assert_eq!(a.solution.cost, b.solution.cost, "{}", a.name);
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = solve_batch(
            &[],
            || Box::new(Msu4::v2()) as Box<dyn MaxSatSolver + Send>,
            &BatchOptions::default(),
        );
        assert!(report.outcomes.is_empty());
        assert_eq!(report.optimal + report.infeasible + report.unknown, 0);
    }

    #[test]
    fn cpu_time_sums_instance_times() {
        let owned = instances();
        let items: Vec<(&str, &WcnfFormula)> = owned.iter().map(|(n, w)| (n.as_str(), w)).collect();
        let report = solve_batch(
            &items,
            || Box::new(Msu4::v2()) as Box<dyn MaxSatSolver + Send>,
            &BatchOptions::default(),
        );
        let sum: Duration = report
            .outcomes
            .iter()
            .map(|o| o.solution.stats.wall_time)
            .sum();
        assert_eq!(report.cpu_time(), sum);
    }
}
