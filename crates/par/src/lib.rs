//! Parallel solving for the coremax MaxSAT suite: portfolio racing and
//! work-stealing batch execution.
//!
//! The paper's Tables 1–2 solve fleets of instances one at a time; this
//! crate opens the parallel dimension while keeping the repo's
//! signature discipline — every parallel answer is differentially
//! checkable against the sequential solvers, and the *reported* answer
//! is thread-count-invariant.
//!
//! | Type | Role |
//! |---|---|
//! | [`Portfolio`] | races K solver configurations on one instance across threads |
//! | [`PortfolioMember`] | one racing configuration (algorithm × preprocessing) |
//! | [`PortfolioOutcome`] | winner + per-member run summaries + aggregate work counters |
//! | [`solve_batch`] | solves many instances across N workers (work stealing) |
//! | [`BatchOptions`], [`BatchReport`] | batch knobs and aggregated results |
//!
//! # Determinism guarantee
//!
//! A portfolio run reports `(status, cost)` — and, when a model exists,
//! a model whose evaluated cost equals `cost` — **independent of the
//! number of worker threads**. Every member is an exact solver on the
//! instance class it receives (weight-restricted members are wrapped in
//! [`coremax::Stratified`] first), so all exact answers agree; the
//! winner is selected by *fixed member priority* among the finishers,
//! never by wall-clock arrival order, and losing members are halted via
//! the cooperative stop flag in [`coremax_sat::Budget`] the moment a
//! winner commits. Under a wall-clock budget the set of finishers can
//! vary, so only budget-free runs are bit-reproducible end to end —
//! the same caveat sequential timeouts already carry. (Conflict and
//! propagation caps are forwarded to the members unchanged, and each
//! member interprets them exactly as it does sequentially — the
//! core-guided drivers currently meter wall-clock and stop flags only.)
//!
//! Batch solving is deterministic per instance by construction: each
//! instance is solved by the same configuration regardless of which
//! worker picks it up, and results are reported in input order.
//!
//! # Examples
//!
//! Race the default portfolio on the paper's Example 2:
//!
//! ```
//! use coremax_par::Portfolio;
//! use coremax_cnf::{dimacs, WcnfFormula};
//!
//! let cnf = dimacs::parse_cnf(
//!     "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n",
//! ).expect("valid DIMACS");
//! let wcnf = WcnfFormula::from_cnf_all_soft(&cnf);
//! let outcome = Portfolio::new(2).solve(&wcnf);
//! assert_eq!(outcome.solution.cost, Some(2));
//! assert!(outcome.winner.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod portfolio;

pub use batch::{solve_batch, BatchOptions, BatchOutcome, BatchReport};
pub use portfolio::{MemberRun, Portfolio, PortfolioMember, PortfolioOutcome};
