//! Portfolio racing: K solver configurations, one instance, first exact
//! answer wins under a deterministic tie-break.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use coremax::{
    MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus, Msu3, Msu4, Msu4Incremental, Oll,
    Preprocessed, Stratified, Wmsu1,
};
use coremax_cnf::{WcnfFormula, Weight};
use coremax_sat::{
    Budget, ClauseExchange, ExchangeTotals, RestartMode, SharingConfig, SolverConfig,
};

/// Which base algorithm a portfolio member runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BaseAlgo {
    Msu4V2,
    Msu4V1,
    Msu4Inc,
    Msu3,
    Wmsu1,
    Oll,
    StratMsu4,
}

/// One racing configuration: a base algorithm, optionally behind the
/// `coremax_simp` preprocessing pipeline.
///
/// Members whose base algorithm is weight-restricted are transparently
/// wrapped in [`Stratified`] when the instance is weighted, so every
/// member is exact on every instance it receives.
#[derive(Debug, Clone)]
pub struct PortfolioMember {
    name: &'static str,
    base: BaseAlgo,
    preprocess: bool,
}

impl PortfolioMember {
    /// The member's stable display name (e.g. `msu4-v2+simp`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Builds a fresh solver for this member. `weighted` selects the
    /// stratification wrapper for weight-restricted base algorithms.
    fn build(&self, weighted: bool) -> Box<dyn MaxSatSolver + Send> {
        let mut solver: Box<dyn MaxSatSolver + Send> = match self.base {
            BaseAlgo::Msu4V2 => Box::new(Msu4::v2()),
            BaseAlgo::Msu4V1 => Box::new(Msu4::v1()),
            BaseAlgo::Msu4Inc => Box::new(Msu4Incremental::new()),
            BaseAlgo::Msu3 => Box::new(Msu3::new()),
            BaseAlgo::Wmsu1 => Box::new(Wmsu1::new()),
            BaseAlgo::Oll => Box::new(Oll::new()),
            BaseAlgo::StratMsu4 => Box::new(Stratified::new(Msu4::v2())),
        };
        if weighted && !solver.supports_weights() {
            solver = Box::new(Stratified::new(solver));
        }
        if self.preprocess {
            solver = Box::new(Preprocessed::new(solver));
        }
        solver
    }
}

/// Summary of one member's run within a race.
#[derive(Debug, Clone)]
pub struct MemberRun {
    /// Member name.
    pub name: &'static str,
    /// Outcome status; `None` when the member never produced a result
    /// (the race ended before a worker picked it up).
    pub status: Option<MaxSatStatus>,
    /// The member's reported cost, when it produced one.
    pub cost: Option<Weight>,
    /// The member's certified lower bound, when it produced a result.
    pub lower_bound: Option<Weight>,
}

/// Result of a portfolio race.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// Winning member name (`None` when no member finished exactly).
    pub winner: Option<&'static str>,
    /// Winning member index (the deterministic priority tie-break:
    /// lowest index among exact finishers).
    pub winner_index: Option<usize>,
    /// The reported solution: the winner's, or — when nothing finished
    /// exactly within budget — the best-bound `Unknown` among the
    /// members that produced a result. The thread-count-invariance
    /// guarantee covers *exact* outcomes only; which members reach a
    /// bound before a wall-clock deadline is inherently
    /// timing-dependent, exactly as sequential timeouts already are.
    pub solution: MaxSatSolution,
    /// Per-member run summaries, in member-priority order. Which losers
    /// carry a (cancelled) result is timing-dependent; the *winning*
    /// answer is not.
    pub runs: Vec<MemberRun>,
    /// Work counters aggregated over every member that produced a
    /// result — the whole race's effort, unlike `solution.stats`
    /// (the winner's own counters, which stay thread-count-invariant
    /// in what they describe). `total_stats.wall_time` is the race's
    /// wall-clock span; `solution.stats.wall_time` stays the winner's
    /// own solve time.
    pub total_stats: MaxSatStats,
    /// Clause-exchange totals when the race ran with sharing enabled
    /// ([`Portfolio::with_sharing`]); `None` for a plain race.
    pub sharing: Option<ExchangeTotals>,
}

/// Races K solver configurations on one instance across worker threads.
///
/// See the [crate docs](crate) for the determinism guarantee. The
/// portfolio also implements [`MaxSatSolver`], reporting the winner's
/// solution, so it can slot into any existing driver (CLI, batch,
/// verification harnesses).
#[derive(Debug, Clone)]
pub struct Portfolio {
    members: Vec<PortfolioMember>,
    jobs: usize,
    budget: Budget,
    sharing: Option<SharingConfig>,
}

impl Portfolio {
    /// A portfolio over [`Portfolio::default_members`] using `jobs`
    /// worker threads (clamped to ≥ 1).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Portfolio {
            members: Portfolio::default_members(),
            jobs: jobs.max(1),
            budget: Budget::new(),
            sharing: None,
        }
    }

    /// A portfolio over an explicit member list. Order is priority:
    /// on ties the lowest-index exact finisher is reported.
    #[must_use]
    pub fn with_members(jobs: usize, members: Vec<PortfolioMember>) -> Self {
        Portfolio {
            members,
            jobs: jobs.max(1),
            budget: Budget::new(),
            sharing: None,
        }
    }

    /// Enables cooperative clause sharing for this portfolio's races.
    ///
    /// Every member gets a [`SharedContext`](coremax_sat::SharedContext)
    /// into one per-race [`ClauseExchange`]: hard-implied low-LBD
    /// learned clauses travel between workers, and member solver
    /// configurations are diversified (branch seed, default phase,
    /// restart schedule) so workers explore different parts of the
    /// search space. Sharing preserves exactness — exchanged clauses
    /// are implied by the instance's hard clauses, so no member's
    /// verdict can change — but the *timing* of a race stops being
    /// bit-reproducible: which member wins first may vary run to run
    /// (the reported winner is still the deterministic priority
    /// tie-break among exact finishers). The default (no sharing)
    /// keeps races byte-identical to the sharing-free implementation.
    #[must_use]
    pub fn with_sharing(mut self, config: SharingConfig) -> Self {
        self.sharing = Some(config);
        self
    }

    /// The sharing configuration, when sharing is enabled.
    #[must_use]
    pub fn sharing(&self) -> Option<SharingConfig> {
        self.sharing
    }

    /// The default racing line-up: the paper's strongest variants first,
    /// each bare and behind the `coremax_simp` pipeline.
    #[must_use]
    pub fn default_members() -> Vec<PortfolioMember> {
        let bases: [(&'static str, &'static str, BaseAlgo); 7] = [
            ("msu4-v2", "msu4-v2+simp", BaseAlgo::Msu4V2),
            ("msu4-inc", "msu4-inc+simp", BaseAlgo::Msu4Inc),
            ("oll", "oll+simp", BaseAlgo::Oll),
            ("msu4-v1", "msu4-v1+simp", BaseAlgo::Msu4V1),
            ("msu3", "msu3+simp", BaseAlgo::Msu3),
            ("wmsu1", "wmsu1+simp", BaseAlgo::Wmsu1),
            ("strat-msu4", "strat-msu4+simp", BaseAlgo::StratMsu4),
        ];
        let mut members = Vec::with_capacity(bases.len() * 2);
        for (bare, simp, base) in bases {
            members.push(PortfolioMember {
                name: bare,
                base,
                preprocess: false,
            });
            members.push(PortfolioMember {
                name: simp,
                base,
                preprocess: true,
            });
        }
        members
    }

    /// The member list, in priority order.
    #[must_use]
    pub fn members(&self) -> &[PortfolioMember] {
        &self.members
    }

    /// Sets the per-race budget (shared by every member).
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Races all members on `wcnf` and returns the deterministic
    /// winner.
    ///
    /// The first member to finish with an exact verdict (`Optimal` or
    /// `Infeasible`) raises a shared stop flag; running members are
    /// interrupted within a bounded number of propagations and members
    /// not yet started are skipped. The *reported* winner is then the
    /// lowest-priority-index exact finisher — never the wall-clock
    /// first — so whenever a race produces an exact verdict,
    /// `(status, cost, model cost)` is identical for any `jobs` value.
    /// (All-`Unknown` races under a wall-clock budget report a
    /// best-effort bound; see [`PortfolioOutcome::solution`].)
    #[must_use]
    pub fn solve(&self, wcnf: &WcnfFormula) -> PortfolioOutcome {
        let start = Instant::now();
        let weighted = !wcnf.is_unweighted();
        let members = &self.members;
        let race_stop = Arc::new(AtomicBool::new(false));
        // Resolve the caller's wall-clock limits ONCE, at race start: a
        // relative timeout handed out unresolved would restart its clock
        // in every member, letting a K-member race run up to K× the
        // requested bound. Conflict/propagation caps become *shared*
        // caps for the same reason: re-attaching them per member would
        // let a K-member race spend the caller's cap K times over.
        // Every member charges one jointly-metered pool, so the race as
        // a whole respects the cap (give or take one polling interval
        // per member).
        let member_budget = self
            .budget
            .child(start)
            .with_stop_flag(race_stop.clone())
            .with_shared_caps(self.budget.max_conflicts(), self.budget.max_propagations());
        let exchange = self
            .sharing
            .map(|cfg| ClauseExchange::new(members.len(), cfg));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<MaxSatSolution>>> =
            members.iter().map(|_| Mutex::new(None)).collect();

        let workers = self.jobs.min(members.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= members.len() {
                        break;
                    }
                    if race_stop.load(Ordering::Relaxed) {
                        // A winner committed: skip unstarted members.
                        // Each claimed member still gets a lifecycle
                        // event, so event streams stay balanced (every
                        // member index appears exactly once as
                        // started/skipped).
                        if coremax_obs::tracing_enabled() {
                            coremax_obs::emit(coremax_obs::Event::MemberSkipped {
                                index: i as u64,
                                name: members[i].name,
                            });
                        }
                        continue;
                    }
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::MemberStarted {
                            index: i as u64,
                            name: members[i].name,
                        });
                    }
                    let mut solver = members[i].build(weighted);
                    solver.set_budget(member_budget.clone());
                    if let Some(ex) = &exchange {
                        solver.set_shared_context(ex.context(i, diversified_config(i)));
                    }
                    let solution = solver.solve(wcnf);
                    let exact = matches!(
                        solution.status,
                        MaxSatStatus::Optimal | MaxSatStatus::Infeasible
                    );
                    if coremax_obs::tracing_enabled() {
                        if exact {
                            coremax_obs::emit(coremax_obs::Event::MemberFinished {
                                index: i as u64,
                                name: members[i].name,
                                status: match solution.status {
                                    MaxSatStatus::Optimal => "optimal",
                                    _ => "infeasible",
                                },
                            });
                        } else {
                            coremax_obs::emit(coremax_obs::Event::MemberCancelled {
                                index: i as u64,
                                name: members[i].name,
                            });
                        }
                    }
                    *slots[i].lock().expect("no poisoned slot") = Some(solution);
                    if exact {
                        race_stop.store(true, Ordering::Relaxed);
                    }
                });
            }
        });

        let results: Vec<Option<MaxSatSolution>> = slots
            .into_iter()
            .map(|m| m.into_inner().expect("no poisoned slot"))
            .collect();

        let mut total_stats = MaxSatStats::default();
        for s in results.iter().flatten() {
            total_stats.absorb(&s.stats);
        }

        let runs: Vec<MemberRun> = members
            .iter()
            .zip(&results)
            .map(|(m, r)| MemberRun {
                name: m.name,
                status: r.as_ref().map(|s| s.status),
                cost: r.as_ref().and_then(|s| s.cost),
                lower_bound: r.as_ref().map(|s| s.lower_bound),
            })
            .collect();

        // Deterministic tie-break: lowest member index with an exact
        // verdict. All exact members agree on (status, cost), so the
        // reported answer does not depend on which subset finished.
        let winner_index = results.iter().position(|r| {
            r.as_ref().is_some_and(|s| {
                matches!(s.status, MaxSatStatus::Optimal | MaxSatStatus::Infeasible)
            })
        });

        if let Some(i) = winner_index {
            if coremax_obs::tracing_enabled() {
                coremax_obs::emit(coremax_obs::Event::WinnerChosen {
                    index: i as u64,
                    name: members[i].name,
                });
            }
        }

        let solution = match winner_index {
            Some(i) => results[i].clone().expect("winner slot is filled"),
            None => merge_aborted_intervals(&results),
        };
        // The race's wall-clock span belongs to the aggregate: the
        // winner's `stats.wall_time` keeps describing the winner's own
        // solve, exactly as it would sequentially.
        total_stats.wall_time = start.elapsed();

        let sharing = exchange.as_ref().map(|ex| ex.totals());
        if let Some(totals) = sharing {
            if coremax_obs::tracing_enabled() {
                coremax_obs::emit(coremax_obs::Event::ClausesShared {
                    exported: totals.exported,
                    imported: totals.imported,
                    duplicates: totals.duplicates,
                });
            }
        }

        PortfolioOutcome {
            winner: winner_index.map(|i| members[i].name),
            winner_index,
            solution,
            runs,
            total_stats,
            sharing,
        }
    }
}

/// splitmix64: a full-avalanche mix for per-worker branch seeds.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Worker `i`'s diversified SAT configuration for a sharing race.
///
/// Worker 0 keeps the stock configuration (the same solver the
/// sequential oracle runs); the rest vary the branch tie-break seed,
/// the default phase, and the restart schedule so that workers explore
/// different parts of the search space and their exported clauses
/// complement each other. Diversification only changes *heuristics* —
/// every configuration is exact.
fn diversified_config(worker: usize) -> SolverConfig {
    let mut cfg = SolverConfig::default();
    if worker == 0 {
        return cfg;
    }
    cfg.branch_seed = splitmix64(worker as u64);
    cfg.default_phase = worker % 2 == 1;
    if worker % 3 == 2 {
        cfg.restart_mode = RestartMode::Glucose;
    }
    cfg.restart_base = [100, 64, 150, 256][worker % 4];
    cfg
}

/// Merges the certified intervals of an all-aborted race: incumbent
/// from the member with the lowest upper bound (lowest member index on
/// cost ties, so the reported incumbent is deterministic for any
/// thread count given the same member results), lower bound the
/// tightest any member proved. Every member lb is sound for the same
/// instance, so their max is too — but the lb and the incumbent come
/// from *different* members, so the lb is clamped to the incumbent's
/// cost: a merged interval must never be crossed.
fn merge_aborted_intervals(results: &[Option<MaxSatSolution>]) -> MaxSatSolution {
    let tightest_lb = results
        .iter()
        .flatten()
        .map(|s| s.lower_bound)
        .max()
        .unwrap_or(0);
    let best = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().and_then(|s| s.cost.map(|c| (c, i, s))))
        .min_by_key(|&(c, i, _)| (c, i));
    let mut merged = match best {
        Some((_, _, s)) => s.clone(),
        None => MaxSatSolution {
            status: MaxSatStatus::Unknown,
            cost: None,
            model: None,
            lower_bound: 0,
            stats: MaxSatStats::default(),
        },
    };
    merged.lower_bound = merged.lower_bound.max(tightest_lb);
    if let Some(cost) = merged.cost {
        merged.lower_bound = merged.lower_bound.min(cost);
    }
    merged
}

impl MaxSatSolver for Portfolio {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn set_budget(&mut self, budget: Budget) {
        Portfolio::set_budget(self, budget);
    }

    fn supports_weights(&self) -> bool {
        true // weight-restricted members are stratified transparently
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        Portfolio::solve(self, wcnf).solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::{dimacs, Lit};

    fn example2() -> WcnfFormula {
        let cnf = dimacs::parse_cnf(
            "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n",
        )
        .unwrap();
        WcnfFormula::from_cnf_all_soft(&cnf)
    }

    #[test]
    fn default_members_cover_bare_and_simp() {
        let members = Portfolio::default_members();
        assert_eq!(members.len(), 14);
        assert!(members.iter().any(|m| m.name() == "msu4-v2"));
        assert!(members.iter().any(|m| m.name() == "msu4-v2+simp"));
        assert!(members.iter().any(|m| m.name() == "oll"));
        assert!(members.iter().any(|m| m.name() == "oll+simp"));
        let names: std::collections::HashSet<_> = members.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), members.len(), "member names unique");
    }

    #[test]
    fn every_member_is_exact_on_weighted_input() {
        // 99-weight sentinel-free weighted instance; the optimum is 3.
        let w = dimacs::parse_wcnf("p wcnf 2 3 99\n99 1 2 0\n100 -1 0\n3 -2 0\n").unwrap();
        for member in Portfolio::default_members() {
            let mut solver = member.build(true);
            let s = solver.solve(&w);
            assert_eq!(s.status, MaxSatStatus::Optimal, "{}", member.name());
            assert_eq!(s.cost, Some(3), "{}", member.name());
            assert!(coremax::verify_solution(&w, &s), "{}", member.name());
        }
    }

    #[test]
    fn race_reports_example2_optimum_for_any_job_count() {
        let w = example2();
        for jobs in [1, 2, 4, 8, 64] {
            let outcome = Portfolio::new(jobs).solve(&w);
            assert_eq!(
                outcome.solution.status,
                MaxSatStatus::Optimal,
                "jobs={jobs}"
            );
            assert_eq!(outcome.solution.cost, Some(2), "jobs={jobs}");
            let model = outcome.solution.model.as_ref().expect("optimal model");
            assert_eq!(w.cost(model), Some(2), "jobs={jobs}");
            assert!(outcome.winner.is_some());
            assert_eq!(
                outcome.winner_index.map(|i| outcome.runs[i].name),
                outcome.winner
            );
        }
    }

    #[test]
    fn sequential_race_winner_is_the_first_member() {
        // With one worker and no budget, member 0 always finishes
        // exactly, stops the race, and later members never start.
        let outcome = Portfolio::new(1).solve(&example2());
        assert_eq!(outcome.winner_index, Some(0));
        assert!(outcome.runs[1..].iter().all(|r| r.status.is_none()));
    }

    #[test]
    fn infeasible_hard_clauses_reported_deterministically() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 1);
        for jobs in [1, 4] {
            let outcome = Portfolio::new(jobs).solve(&w);
            assert_eq!(outcome.solution.status, MaxSatStatus::Infeasible);
            assert_eq!(outcome.solution.cost, None);
        }
    }

    #[test]
    fn raised_stop_flag_aborts_the_whole_race() {
        let stop = Arc::new(AtomicBool::new(true));
        let mut portfolio = Portfolio::new(4);
        portfolio.set_budget(Budget::new().with_stop_flag(stop));
        let outcome = portfolio.solve(&example2());
        assert_eq!(outcome.solution.status, MaxSatStatus::Unknown);
        assert!(outcome.winner.is_none());
        assert!(outcome
            .runs
            .iter()
            .all(|r| r.status.is_none() || r.status == Some(MaxSatStatus::Unknown)));
    }

    #[test]
    fn race_members_share_one_timeout_clock() {
        use std::time::Duration;
        // A miter instance no member proves within 40 ms: with every
        // member resolving the timeout from its own start, a 12-member
        // sequential race would take ~12 × 40 ms; with the shared clock
        // it ends in ~one timeout (members started after the deadline
        // abort instantly).
        let cnf = coremax_instances::equiv_instance(1, 8);
        let w = WcnfFormula::from_cnf_all_soft(&cnf);
        let mut portfolio = Portfolio::new(1);
        portfolio.set_budget(Budget::new().with_timeout(Duration::from_millis(40)));
        let t = std::time::Instant::now();
        let outcome = portfolio.solve(&w);
        let elapsed = t.elapsed();
        assert_eq!(outcome.solution.status, MaxSatStatus::Unknown);
        assert!(
            elapsed < Duration::from_millis(300),
            "race ran {elapsed:?}, expected ~one 40 ms timeout, not twelve"
        );
    }

    #[test]
    fn all_members_timeout_merges_the_certified_intervals() {
        use std::time::Duration;
        // A miter no member finishes within the deadline: the merged
        // solution must be the member minimum (lowest index on cost
        // ties) for the incumbent and the member maximum for the lower
        // bound — the merge property itself is thread-count-invariant
        // even though which members reach which bound is not.
        let cnf = coremax_instances::equiv_instance(1, 8);
        let w = WcnfFormula::from_cnf_all_soft(&cnf);
        for jobs in [1, 4] {
            let mut portfolio = Portfolio::new(jobs);
            portfolio.set_budget(Budget::new().with_timeout(Duration::from_millis(30)));
            let outcome = portfolio.solve(&w);
            assert_eq!(
                outcome.solution.status,
                MaxSatStatus::Unknown,
                "jobs={jobs}"
            );
            assert!(outcome.winner.is_none(), "jobs={jobs}");
            let member_min = outcome.runs.iter().filter_map(|r| r.cost).min();
            assert_eq!(
                outcome.solution.cost, member_min,
                "jobs={jobs}: incumbent must be the member minimum"
            );
            let member_max_lb = outcome
                .runs
                .iter()
                .filter_map(|r| r.lower_bound)
                .max()
                .unwrap_or(0);
            let expected_lb = match outcome.solution.cost {
                Some(cost) => member_max_lb.min(cost),
                None => member_max_lb,
            };
            assert_eq!(
                outcome.solution.lower_bound, expected_lb,
                "jobs={jobs}: lower bound must be the tightest any member \
                 proved, clamped to the incumbent"
            );
            if let Some(cost) = outcome.solution.cost {
                let model = outcome.solution.model.as_ref().expect("incumbent model");
                assert_eq!(
                    w.cost(model),
                    Some(cost),
                    "jobs={jobs}: incumbent certifies"
                );
                assert!(outcome.solution.lower_bound <= cost, "jobs={jobs}");
            }
        }
    }

    /// Synthetic aborted member: an Unknown with the given interval.
    fn aborted_member(
        cost: Option<coremax_cnf::Weight>,
        lower_bound: coremax_cnf::Weight,
        model_bits: &[bool],
    ) -> Option<MaxSatSolution> {
        Some(MaxSatSolution {
            status: MaxSatStatus::Unknown,
            cost,
            model: cost.map(|_| coremax_cnf::Assignment::from_bools(model_bits)),
            lower_bound,
            stats: MaxSatStats::default(),
        })
    }

    #[test]
    fn aborted_merge_clamps_the_lower_bound_to_the_incumbent() {
        // The tightest lb (7, from a member without an incumbent) and
        // the best incumbent (cost 5) come from different members; the
        // merged interval must not be crossed.
        let results = vec![
            aborted_member(Some(5), 1, &[true]),
            aborted_member(None, 7, &[]),
        ];
        let merged = merge_aborted_intervals(&results);
        assert_eq!(merged.cost, Some(5));
        assert_eq!(
            merged.lower_bound, 5,
            "lb must be clamped to the incumbent cost, not reported as 7"
        );
    }

    #[test]
    fn aborted_merge_breaks_cost_ties_by_lowest_member_index() {
        let results = vec![
            aborted_member(None, 2, &[]),
            aborted_member(Some(4), 3, &[true, false]),
            aborted_member(Some(4), 1, &[false, true]),
        ];
        let merged = merge_aborted_intervals(&results);
        assert_eq!(merged.cost, Some(4));
        assert_eq!(
            merged.model,
            Some(coremax_cnf::Assignment::from_bools(&[true, false])),
            "equal costs must resolve to the lowest member index"
        );
        assert_eq!(merged.lower_bound, 3, "tightest sound lb, not crossed");
    }

    #[test]
    fn aborted_merge_without_any_result_is_a_bare_unknown() {
        let merged = merge_aborted_intervals(&[None, None]);
        assert_eq!(merged.status, MaxSatStatus::Unknown);
        assert_eq!(merged.cost, None);
        assert_eq!(merged.lower_bound, 0);
    }

    #[test]
    fn pre_raised_stop_flag_interval_is_jobs_invariant() {
        // With the stop flag raised before the race starts no member
        // does any work, so the merged bare interval is identical for
        // every thread count.
        let w = example2();
        let mut baseline = None;
        for jobs in [1, 2, 4] {
            let stop = Arc::new(AtomicBool::new(true));
            let mut portfolio = Portfolio::new(jobs);
            portfolio.set_budget(Budget::new().with_stop_flag(stop));
            let outcome = portfolio.solve(&w);
            assert_eq!(outcome.solution.status, MaxSatStatus::Unknown);
            let key = (outcome.solution.cost, outcome.solution.lower_bound);
            match baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(key, b, "jobs={jobs}: interval must not depend on jobs"),
            }
        }
    }

    #[test]
    fn conflict_cap_is_spent_once_by_the_whole_race() {
        // Regression: the race used to re-attach the caller's conflict
        // cap to every member, so a K-member race could spend K× the
        // cap. With the cap shared, the members' joint conflict total
        // must stay within the cap plus a bounded polling slack per
        // member, for any job count.
        let cnf = coremax_instances::pigeonhole(7);
        let w = WcnfFormula::from_cnf_all_soft(&cnf);
        let cap = 300u64;
        let members = Portfolio::default_members();
        let num_members = members.len() as u64;
        let mut portfolio = Portfolio::with_members(8, members);
        portfolio.set_budget(Budget::new().with_max_conflicts(cap));
        let outcome = portfolio.solve(&w);
        let spent = outcome.total_stats.sat.conflicts;
        assert!(
            spent <= cap + num_members * 64,
            "race spent {spent} conflicts against a shared cap of {cap}: \
             the cap must be metered jointly, not per member"
        );
        // Sanity: the cap was actually felt (php(7) needs far more than
        // 300 conflicts to prove UNSAT, so no member finished exactly).
        assert_eq!(outcome.solution.status, MaxSatStatus::Unknown);
    }

    #[test]
    fn winner_wall_time_is_its_own_not_the_races() {
        // Regression: the winner's `stats.wall_time` used to be
        // overwritten with the race's span. The race span lives on
        // `total_stats` only.
        let outcome = Portfolio::new(2).solve(&example2());
        assert!(outcome.winner.is_some());
        assert!(outcome.total_stats.wall_time > std::time::Duration::ZERO);
        assert!(
            outcome.solution.stats.wall_time < outcome.total_stats.wall_time,
            "winner wall_time {:?} must be its own solve time, strictly \
             inside the race span {:?}",
            outcome.solution.stats.wall_time,
            outcome.total_stats.wall_time
        );
    }

    #[test]
    fn sharing_race_agrees_with_plain_race() {
        let unsat = {
            let mut w = WcnfFormula::new();
            let x = w.new_var();
            w.add_hard([Lit::positive(x)]);
            w.add_hard([Lit::negative(x)]);
            w.add_soft([Lit::positive(x)], 1);
            w
        };
        let weighted = dimacs::parse_wcnf("p wcnf 2 3 99\n99 1 2 0\n100 -1 0\n3 -2 0\n").unwrap();
        for w in [example2(), unsat, weighted] {
            let plain = Portfolio::new(4).solve(&w);
            for jobs in [1, 2, 4] {
                let shared = Portfolio::new(jobs)
                    .with_sharing(SharingConfig::default())
                    .solve(&w);
                assert_eq!(shared.solution.status, plain.solution.status, "jobs={jobs}");
                assert_eq!(shared.solution.cost, plain.solution.cost, "jobs={jobs}");
                if let Some(model) = &shared.solution.model {
                    assert_eq!(w.cost(model), shared.solution.cost, "jobs={jobs}");
                }
                assert!(shared.sharing.is_some(), "sharing totals must surface");
            }
            assert!(plain.sharing.is_none(), "plain races carry no totals");
        }
    }

    #[test]
    fn sharing_exchanges_clauses_on_a_hard_unweighted_instance() {
        // Hard php(6) clauses make every member grind through real
        // conflicts *on pure (hard) antecedents*, so sharing-eligible
        // low-LBD learnts exist and multi-worker races exchange them.
        // (An all-soft instance has no hard clauses and therefore
        // nothing exportable: exports must be hard-implied.)
        let cnf = coremax_instances::pigeonhole(6);
        let mut w = WcnfFormula::new();
        for _ in 0..cnf.num_vars() {
            w.new_var();
        }
        for c in cnf.clauses() {
            w.add_hard(c.iter().copied());
        }
        w.add_soft([Lit::positive(coremax_cnf::Var::new(0))], 1);
        let plain = Portfolio::new(4).solve(&w);
        let outcome = Portfolio::new(4)
            .with_sharing(SharingConfig::default())
            .solve(&w);
        assert_eq!(outcome.solution.status, plain.solution.status);
        assert_eq!(outcome.solution.cost, plain.solution.cost);
        let totals = outcome.sharing.expect("sharing totals");
        assert!(
            totals.exported > 0,
            "php members must export pure learnts: {totals:?}"
        );
    }

    #[test]
    fn diversified_configs_are_distinct_and_stable() {
        let c0 = diversified_config(0);
        assert_eq!(c0.branch_seed, SolverConfig::default().branch_seed);
        assert_eq!(c0.default_phase, SolverConfig::default().default_phase);
        let mut seeds = std::collections::HashSet::new();
        for i in 1..14 {
            let c = diversified_config(i);
            assert!(seeds.insert(c.branch_seed), "worker {i} seed collides");
            assert_eq!(c.default_phase, i % 2 == 1);
            assert_eq!(diversified_config(i).branch_seed, c.branch_seed);
        }
    }

    #[test]
    fn portfolio_implements_maxsat_solver() {
        let mut solver: Box<dyn MaxSatSolver + Send> = Box::new(Portfolio::new(2));
        assert_eq!(solver.name(), "portfolio");
        assert!(solver.supports_weights());
        let s = solver.solve(&example2());
        assert_eq!(s.cost, Some(2));
    }
}
