//! Portfolio racing: K solver configurations, one instance, first exact
//! answer wins under a deterministic tie-break.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use coremax::{
    MaxSatSolution, MaxSatSolver, MaxSatStats, MaxSatStatus, Msu3, Msu4, Msu4Incremental, Oll,
    Preprocessed, Stratified, Wmsu1,
};
use coremax_cnf::{WcnfFormula, Weight};
use coremax_sat::Budget;

/// Which base algorithm a portfolio member runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BaseAlgo {
    Msu4V2,
    Msu4V1,
    Msu4Inc,
    Msu3,
    Wmsu1,
    Oll,
    StratMsu4,
}

/// One racing configuration: a base algorithm, optionally behind the
/// `coremax_simp` preprocessing pipeline.
///
/// Members whose base algorithm is weight-restricted are transparently
/// wrapped in [`Stratified`] when the instance is weighted, so every
/// member is exact on every instance it receives.
#[derive(Debug, Clone)]
pub struct PortfolioMember {
    name: &'static str,
    base: BaseAlgo,
    preprocess: bool,
}

impl PortfolioMember {
    /// The member's stable display name (e.g. `msu4-v2+simp`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Builds a fresh solver for this member. `weighted` selects the
    /// stratification wrapper for weight-restricted base algorithms.
    fn build(&self, weighted: bool) -> Box<dyn MaxSatSolver + Send> {
        let mut solver: Box<dyn MaxSatSolver + Send> = match self.base {
            BaseAlgo::Msu4V2 => Box::new(Msu4::v2()),
            BaseAlgo::Msu4V1 => Box::new(Msu4::v1()),
            BaseAlgo::Msu4Inc => Box::new(Msu4Incremental::new()),
            BaseAlgo::Msu3 => Box::new(Msu3::new()),
            BaseAlgo::Wmsu1 => Box::new(Wmsu1::new()),
            BaseAlgo::Oll => Box::new(Oll::new()),
            BaseAlgo::StratMsu4 => Box::new(Stratified::new(Msu4::v2())),
        };
        if weighted && !solver.supports_weights() {
            solver = Box::new(Stratified::new(solver));
        }
        if self.preprocess {
            solver = Box::new(Preprocessed::new(solver));
        }
        solver
    }
}

/// Summary of one member's run within a race.
#[derive(Debug, Clone)]
pub struct MemberRun {
    /// Member name.
    pub name: &'static str,
    /// Outcome status; `None` when the member never produced a result
    /// (the race ended before a worker picked it up).
    pub status: Option<MaxSatStatus>,
    /// The member's reported cost, when it produced one.
    pub cost: Option<Weight>,
    /// The member's certified lower bound, when it produced a result.
    pub lower_bound: Option<Weight>,
}

/// Result of a portfolio race.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// Winning member name (`None` when no member finished exactly).
    pub winner: Option<&'static str>,
    /// Winning member index (the deterministic priority tie-break:
    /// lowest index among exact finishers).
    pub winner_index: Option<usize>,
    /// The reported solution: the winner's, or — when nothing finished
    /// exactly within budget — the best-bound `Unknown` among the
    /// members that produced a result. The thread-count-invariance
    /// guarantee covers *exact* outcomes only; which members reach a
    /// bound before a wall-clock deadline is inherently
    /// timing-dependent, exactly as sequential timeouts already are.
    pub solution: MaxSatSolution,
    /// Per-member run summaries, in member-priority order. Which losers
    /// carry a (cancelled) result is timing-dependent; the *winning*
    /// answer is not.
    pub runs: Vec<MemberRun>,
    /// Work counters aggregated over every member that produced a
    /// result — the whole race's effort, unlike `solution.stats`
    /// (the winner's own counters, which stay thread-count-invariant
    /// in what they describe).
    pub total_stats: MaxSatStats,
}

/// Races K solver configurations on one instance across worker threads.
///
/// See the [crate docs](crate) for the determinism guarantee. The
/// portfolio also implements [`MaxSatSolver`], reporting the winner's
/// solution, so it can slot into any existing driver (CLI, batch,
/// verification harnesses).
#[derive(Debug, Clone)]
pub struct Portfolio {
    members: Vec<PortfolioMember>,
    jobs: usize,
    budget: Budget,
}

impl Portfolio {
    /// A portfolio over [`Portfolio::default_members`] using `jobs`
    /// worker threads (clamped to ≥ 1).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Portfolio {
            members: Portfolio::default_members(),
            jobs: jobs.max(1),
            budget: Budget::new(),
        }
    }

    /// A portfolio over an explicit member list. Order is priority:
    /// on ties the lowest-index exact finisher is reported.
    #[must_use]
    pub fn with_members(jobs: usize, members: Vec<PortfolioMember>) -> Self {
        Portfolio {
            members,
            jobs: jobs.max(1),
            budget: Budget::new(),
        }
    }

    /// The default racing line-up: the paper's strongest variants first,
    /// each bare and behind the `coremax_simp` pipeline.
    #[must_use]
    pub fn default_members() -> Vec<PortfolioMember> {
        let bases: [(&'static str, &'static str, BaseAlgo); 7] = [
            ("msu4-v2", "msu4-v2+simp", BaseAlgo::Msu4V2),
            ("msu4-inc", "msu4-inc+simp", BaseAlgo::Msu4Inc),
            ("oll", "oll+simp", BaseAlgo::Oll),
            ("msu4-v1", "msu4-v1+simp", BaseAlgo::Msu4V1),
            ("msu3", "msu3+simp", BaseAlgo::Msu3),
            ("wmsu1", "wmsu1+simp", BaseAlgo::Wmsu1),
            ("strat-msu4", "strat-msu4+simp", BaseAlgo::StratMsu4),
        ];
        let mut members = Vec::with_capacity(bases.len() * 2);
        for (bare, simp, base) in bases {
            members.push(PortfolioMember {
                name: bare,
                base,
                preprocess: false,
            });
            members.push(PortfolioMember {
                name: simp,
                base,
                preprocess: true,
            });
        }
        members
    }

    /// The member list, in priority order.
    #[must_use]
    pub fn members(&self) -> &[PortfolioMember] {
        &self.members
    }

    /// Sets the per-race budget (shared by every member).
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Races all members on `wcnf` and returns the deterministic
    /// winner.
    ///
    /// The first member to finish with an exact verdict (`Optimal` or
    /// `Infeasible`) raises a shared stop flag; running members are
    /// interrupted within a bounded number of propagations and members
    /// not yet started are skipped. The *reported* winner is then the
    /// lowest-priority-index exact finisher — never the wall-clock
    /// first — so whenever a race produces an exact verdict,
    /// `(status, cost, model cost)` is identical for any `jobs` value.
    /// (All-`Unknown` races under a wall-clock budget report a
    /// best-effort bound; see [`PortfolioOutcome::solution`].)
    #[must_use]
    pub fn solve(&self, wcnf: &WcnfFormula) -> PortfolioOutcome {
        let start = Instant::now();
        let weighted = !wcnf.is_unweighted();
        let members = &self.members;
        let race_stop = Arc::new(AtomicBool::new(false));
        // Resolve the caller's wall-clock limits ONCE, at race start: a
        // relative timeout handed out unresolved would restart its clock
        // in every member, letting a K-member race run up to K× the
        // requested bound. Conflict/propagation caps are re-attached so
        // members see the caller's budget unchanged; each member
        // interprets them exactly as it would sequentially (the
        // core-guided drivers currently meter wall-clock and stop flags
        // only — see the crate docs).
        let mut member_budget = self.budget.child(start).with_stop_flag(race_stop.clone());
        if let Some(c) = self.budget.max_conflicts() {
            member_budget = member_budget.with_max_conflicts(c);
        }
        if let Some(p) = self.budget.max_propagations() {
            member_budget = member_budget.with_max_propagations(p);
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<MaxSatSolution>>> =
            members.iter().map(|_| Mutex::new(None)).collect();

        let workers = self.jobs.min(members.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= members.len() {
                        break;
                    }
                    if race_stop.load(Ordering::Relaxed) {
                        break; // a winner committed: skip unstarted members
                    }
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(coremax_obs::Event::MemberStarted {
                            index: i as u64,
                            name: members[i].name,
                        });
                    }
                    let mut solver = members[i].build(weighted);
                    solver.set_budget(member_budget.clone());
                    let solution = solver.solve(wcnf);
                    let exact = matches!(
                        solution.status,
                        MaxSatStatus::Optimal | MaxSatStatus::Infeasible
                    );
                    if coremax_obs::tracing_enabled() {
                        if exact {
                            coremax_obs::emit(coremax_obs::Event::MemberFinished {
                                index: i as u64,
                                name: members[i].name,
                                status: match solution.status {
                                    MaxSatStatus::Optimal => "optimal",
                                    _ => "infeasible",
                                },
                            });
                        } else {
                            coremax_obs::emit(coremax_obs::Event::MemberCancelled {
                                index: i as u64,
                                name: members[i].name,
                            });
                        }
                    }
                    *slots[i].lock().expect("no poisoned slot") = Some(solution);
                    if exact {
                        race_stop.store(true, Ordering::Relaxed);
                    }
                });
            }
        });

        let results: Vec<Option<MaxSatSolution>> = slots
            .into_iter()
            .map(|m| m.into_inner().expect("no poisoned slot"))
            .collect();

        let mut total_stats = MaxSatStats::default();
        for s in results.iter().flatten() {
            total_stats.absorb(&s.stats);
        }

        let runs: Vec<MemberRun> = members
            .iter()
            .zip(&results)
            .map(|(m, r)| MemberRun {
                name: m.name,
                status: r.as_ref().map(|s| s.status),
                cost: r.as_ref().and_then(|s| s.cost),
                lower_bound: r.as_ref().map(|s| s.lower_bound),
            })
            .collect();

        // Deterministic tie-break: lowest member index with an exact
        // verdict. All exact members agree on (status, cost), so the
        // reported answer does not depend on which subset finished.
        let winner_index = results.iter().position(|r| {
            r.as_ref().is_some_and(|s| {
                matches!(s.status, MaxSatStatus::Optimal | MaxSatStatus::Infeasible)
            })
        });

        if let Some(i) = winner_index {
            if coremax_obs::tracing_enabled() {
                coremax_obs::emit(coremax_obs::Event::WinnerChosen {
                    index: i as u64,
                    name: members[i].name,
                });
            }
        }

        let mut solution = match winner_index {
            Some(i) => results[i].clone().expect("winner slot is filled"),
            None => merge_aborted_intervals(&results),
        };
        solution.stats.wall_time = start.elapsed();
        total_stats.wall_time = solution.stats.wall_time;

        PortfolioOutcome {
            winner: winner_index.map(|i| members[i].name),
            winner_index,
            solution,
            runs,
            total_stats,
        }
    }
}

/// Merges the certified intervals of an all-aborted race: incumbent
/// from the member with the lowest upper bound (lowest member index on
/// cost ties, so the reported incumbent is deterministic for any
/// thread count given the same member results), lower bound the
/// tightest any member proved. Every member lb is sound for the same
/// instance, so their max is too — but the lb and the incumbent come
/// from *different* members, so the lb is clamped to the incumbent's
/// cost: a merged interval must never be crossed.
fn merge_aborted_intervals(results: &[Option<MaxSatSolution>]) -> MaxSatSolution {
    let tightest_lb = results
        .iter()
        .flatten()
        .map(|s| s.lower_bound)
        .max()
        .unwrap_or(0);
    let best = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().and_then(|s| s.cost.map(|c| (c, i, s))))
        .min_by_key(|&(c, i, _)| (c, i));
    let mut merged = match best {
        Some((_, _, s)) => s.clone(),
        None => MaxSatSolution {
            status: MaxSatStatus::Unknown,
            cost: None,
            model: None,
            lower_bound: 0,
            stats: MaxSatStats::default(),
        },
    };
    merged.lower_bound = merged.lower_bound.max(tightest_lb);
    if let Some(cost) = merged.cost {
        merged.lower_bound = merged.lower_bound.min(cost);
    }
    merged
}

impl MaxSatSolver for Portfolio {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn set_budget(&mut self, budget: Budget) {
        Portfolio::set_budget(self, budget);
    }

    fn supports_weights(&self) -> bool {
        true // weight-restricted members are stratified transparently
    }

    fn solve(&mut self, wcnf: &WcnfFormula) -> MaxSatSolution {
        Portfolio::solve(self, wcnf).solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::{dimacs, Lit};

    fn example2() -> WcnfFormula {
        let cnf = dimacs::parse_cnf(
            "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n",
        )
        .unwrap();
        WcnfFormula::from_cnf_all_soft(&cnf)
    }

    #[test]
    fn default_members_cover_bare_and_simp() {
        let members = Portfolio::default_members();
        assert_eq!(members.len(), 14);
        assert!(members.iter().any(|m| m.name() == "msu4-v2"));
        assert!(members.iter().any(|m| m.name() == "msu4-v2+simp"));
        assert!(members.iter().any(|m| m.name() == "oll"));
        assert!(members.iter().any(|m| m.name() == "oll+simp"));
        let names: std::collections::HashSet<_> = members.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), members.len(), "member names unique");
    }

    #[test]
    fn every_member_is_exact_on_weighted_input() {
        // 99-weight sentinel-free weighted instance; the optimum is 3.
        let w = dimacs::parse_wcnf("p wcnf 2 3 99\n99 1 2 0\n100 -1 0\n3 -2 0\n").unwrap();
        for member in Portfolio::default_members() {
            let mut solver = member.build(true);
            let s = solver.solve(&w);
            assert_eq!(s.status, MaxSatStatus::Optimal, "{}", member.name());
            assert_eq!(s.cost, Some(3), "{}", member.name());
            assert!(coremax::verify_solution(&w, &s), "{}", member.name());
        }
    }

    #[test]
    fn race_reports_example2_optimum_for_any_job_count() {
        let w = example2();
        for jobs in [1, 2, 4, 8, 64] {
            let outcome = Portfolio::new(jobs).solve(&w);
            assert_eq!(
                outcome.solution.status,
                MaxSatStatus::Optimal,
                "jobs={jobs}"
            );
            assert_eq!(outcome.solution.cost, Some(2), "jobs={jobs}");
            let model = outcome.solution.model.as_ref().expect("optimal model");
            assert_eq!(w.cost(model), Some(2), "jobs={jobs}");
            assert!(outcome.winner.is_some());
            assert_eq!(
                outcome.winner_index.map(|i| outcome.runs[i].name),
                outcome.winner
            );
        }
    }

    #[test]
    fn sequential_race_winner_is_the_first_member() {
        // With one worker and no budget, member 0 always finishes
        // exactly, stops the race, and later members never start.
        let outcome = Portfolio::new(1).solve(&example2());
        assert_eq!(outcome.winner_index, Some(0));
        assert!(outcome.runs[1..].iter().all(|r| r.status.is_none()));
    }

    #[test]
    fn infeasible_hard_clauses_reported_deterministically() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_hard([Lit::positive(x)]);
        w.add_hard([Lit::negative(x)]);
        w.add_soft([Lit::positive(x)], 1);
        for jobs in [1, 4] {
            let outcome = Portfolio::new(jobs).solve(&w);
            assert_eq!(outcome.solution.status, MaxSatStatus::Infeasible);
            assert_eq!(outcome.solution.cost, None);
        }
    }

    #[test]
    fn raised_stop_flag_aborts_the_whole_race() {
        let stop = Arc::new(AtomicBool::new(true));
        let mut portfolio = Portfolio::new(4);
        portfolio.set_budget(Budget::new().with_stop_flag(stop));
        let outcome = portfolio.solve(&example2());
        assert_eq!(outcome.solution.status, MaxSatStatus::Unknown);
        assert!(outcome.winner.is_none());
        assert!(outcome
            .runs
            .iter()
            .all(|r| r.status.is_none() || r.status == Some(MaxSatStatus::Unknown)));
    }

    #[test]
    fn race_members_share_one_timeout_clock() {
        use std::time::Duration;
        // A miter instance no member proves within 40 ms: with every
        // member resolving the timeout from its own start, a 12-member
        // sequential race would take ~12 × 40 ms; with the shared clock
        // it ends in ~one timeout (members started after the deadline
        // abort instantly).
        let cnf = coremax_instances::equiv_instance(1, 8);
        let w = WcnfFormula::from_cnf_all_soft(&cnf);
        let mut portfolio = Portfolio::new(1);
        portfolio.set_budget(Budget::new().with_timeout(Duration::from_millis(40)));
        let t = std::time::Instant::now();
        let outcome = portfolio.solve(&w);
        let elapsed = t.elapsed();
        assert_eq!(outcome.solution.status, MaxSatStatus::Unknown);
        assert!(
            elapsed < Duration::from_millis(300),
            "race ran {elapsed:?}, expected ~one 40 ms timeout, not twelve"
        );
    }

    #[test]
    fn all_members_timeout_merges_the_certified_intervals() {
        use std::time::Duration;
        // A miter no member finishes within the deadline: the merged
        // solution must be the member minimum (lowest index on cost
        // ties) for the incumbent and the member maximum for the lower
        // bound — the merge property itself is thread-count-invariant
        // even though which members reach which bound is not.
        let cnf = coremax_instances::equiv_instance(1, 8);
        let w = WcnfFormula::from_cnf_all_soft(&cnf);
        for jobs in [1, 4] {
            let mut portfolio = Portfolio::new(jobs);
            portfolio.set_budget(Budget::new().with_timeout(Duration::from_millis(30)));
            let outcome = portfolio.solve(&w);
            assert_eq!(
                outcome.solution.status,
                MaxSatStatus::Unknown,
                "jobs={jobs}"
            );
            assert!(outcome.winner.is_none(), "jobs={jobs}");
            let member_min = outcome.runs.iter().filter_map(|r| r.cost).min();
            assert_eq!(
                outcome.solution.cost, member_min,
                "jobs={jobs}: incumbent must be the member minimum"
            );
            let member_max_lb = outcome
                .runs
                .iter()
                .filter_map(|r| r.lower_bound)
                .max()
                .unwrap_or(0);
            let expected_lb = match outcome.solution.cost {
                Some(cost) => member_max_lb.min(cost),
                None => member_max_lb,
            };
            assert_eq!(
                outcome.solution.lower_bound, expected_lb,
                "jobs={jobs}: lower bound must be the tightest any member \
                 proved, clamped to the incumbent"
            );
            if let Some(cost) = outcome.solution.cost {
                let model = outcome.solution.model.as_ref().expect("incumbent model");
                assert_eq!(
                    w.cost(model),
                    Some(cost),
                    "jobs={jobs}: incumbent certifies"
                );
                assert!(outcome.solution.lower_bound <= cost, "jobs={jobs}");
            }
        }
    }

    /// Synthetic aborted member: an Unknown with the given interval.
    fn aborted_member(
        cost: Option<coremax_cnf::Weight>,
        lower_bound: coremax_cnf::Weight,
        model_bits: &[bool],
    ) -> Option<MaxSatSolution> {
        Some(MaxSatSolution {
            status: MaxSatStatus::Unknown,
            cost,
            model: cost.map(|_| coremax_cnf::Assignment::from_bools(model_bits)),
            lower_bound,
            stats: MaxSatStats::default(),
        })
    }

    #[test]
    fn aborted_merge_clamps_the_lower_bound_to_the_incumbent() {
        // The tightest lb (7, from a member without an incumbent) and
        // the best incumbent (cost 5) come from different members; the
        // merged interval must not be crossed.
        let results = vec![
            aborted_member(Some(5), 1, &[true]),
            aborted_member(None, 7, &[]),
        ];
        let merged = merge_aborted_intervals(&results);
        assert_eq!(merged.cost, Some(5));
        assert_eq!(
            merged.lower_bound, 5,
            "lb must be clamped to the incumbent cost, not reported as 7"
        );
    }

    #[test]
    fn aborted_merge_breaks_cost_ties_by_lowest_member_index() {
        let results = vec![
            aborted_member(None, 2, &[]),
            aborted_member(Some(4), 3, &[true, false]),
            aborted_member(Some(4), 1, &[false, true]),
        ];
        let merged = merge_aborted_intervals(&results);
        assert_eq!(merged.cost, Some(4));
        assert_eq!(
            merged.model,
            Some(coremax_cnf::Assignment::from_bools(&[true, false])),
            "equal costs must resolve to the lowest member index"
        );
        assert_eq!(merged.lower_bound, 3, "tightest sound lb, not crossed");
    }

    #[test]
    fn aborted_merge_without_any_result_is_a_bare_unknown() {
        let merged = merge_aborted_intervals(&[None, None]);
        assert_eq!(merged.status, MaxSatStatus::Unknown);
        assert_eq!(merged.cost, None);
        assert_eq!(merged.lower_bound, 0);
    }

    #[test]
    fn pre_raised_stop_flag_interval_is_jobs_invariant() {
        // With the stop flag raised before the race starts no member
        // does any work, so the merged bare interval is identical for
        // every thread count.
        let w = example2();
        let mut baseline = None;
        for jobs in [1, 2, 4] {
            let stop = Arc::new(AtomicBool::new(true));
            let mut portfolio = Portfolio::new(jobs);
            portfolio.set_budget(Budget::new().with_stop_flag(stop));
            let outcome = portfolio.solve(&w);
            assert_eq!(outcome.solution.status, MaxSatStatus::Unknown);
            let key = (outcome.solution.cost, outcome.solution.lower_bound);
            match baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(key, b, "jobs={jobs}: interval must not depend on jobs"),
            }
        }
    }

    #[test]
    fn portfolio_implements_maxsat_solver() {
        let mut solver: Box<dyn MaxSatSolver + Send> = Box::new(Portfolio::new(2));
        assert_eq!(solver.name(), "portfolio");
        assert!(solver.supports_weights());
        let s = solver.solve(&example2());
        assert_eq!(s.cost, Some(2));
    }
}
