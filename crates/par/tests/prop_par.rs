//! Thread-count differential harness.
//!
//! Two properties anchor the parallel subsystem:
//!
//! 1. **Thread-count determinism** — for random weighted and unweighted
//!    instances, the portfolio's `(status, cost, model cost)` is
//!    identical for `jobs ∈ {1, 2, 4, 8}` (plus `COREMAX_TEST_JOBS`
//!    when set — CI's matrix extends the set with 3, an odd count that
//!    stripes the members unevenly, and 16, wider than the member
//!    list), equals the exhaustive oracle, and equals the reported
//!    winner configuration re-run alone sequentially.
//! 2. **Cancellation soundness** — a solver stopped at an arbitrary
//!    point returns `Unknown` or a *correct* `Optimal` (it can win the
//!    race against the flag), never a wrong verdict; its work counters
//!    are a prefix of the uncancelled run's (no double-counted
//!    conflicts after a stop); and a fresh uncancelled solve still
//!    matches the oracle.
//!
//! `PROPTEST_CASES` scales the case count (CI runs an elevated pass).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use coremax::{verify_solution, MaxSatSolver, MaxSatStatus, Msu3, Stratified};
use coremax_cnf::{Assignment, WcnfFormula, Weight};
use coremax_instances::{random_weighted_wcnf, WeightDist, WeightedConfig};
use coremax_par::{solve_batch, BatchOptions, Portfolio};
use coremax_sat::{Budget, SharingConfig};
use proptest::prelude::*;

/// Exhaustive oracle: the minimum cost over all 2^n assignments, or
/// `None` when no assignment satisfies the hard clauses.
fn exhaustive_optimum(w: &WcnfFormula) -> Option<Weight> {
    let n = w.num_vars();
    assert!(n <= 16, "oracle is exponential; keep instances small");
    let mut best: Option<Weight> = None;
    for bits in 0u32..(1 << n) {
        let values: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let assignment = Assignment::from_bools(&values);
        if let Some(cost) = w.cost(&assignment) {
            best = Some(best.map_or(cost, |b: Weight| b.min(cost)));
        }
    }
    best
}

fn arb_dist() -> impl Strategy<Value = WeightDist> {
    prop_oneof![
        // Unweighted: every soft clause at weight 1 (the paper's
        // regime and the one exercising the msu3/msu4 members bare).
        Just(WeightDist::Uniform { lo: 1, hi: 1 }),
        (1u64..=3, 1u64..=8).prop_map(|(lo, extra)| WeightDist::Uniform { lo, hi: lo + extra }),
        (0u32..=3).prop_map(|max_exp| WeightDist::PowerOfTwo { max_exp }),
        (1u64..=3, 5u64..=30, 2usize..=4).prop_map(|(light, heavy, heavy_every)| {
            WeightDist::Skewed {
                light,
                heavy,
                heavy_every,
            }
        }),
    ]
}

fn arb_instance() -> impl Strategy<Value = WcnfFormula> {
    (
        3usize..=6, // vars
        0usize..=5, // hard
        2usize..=8, // soft
        arb_dist(),
        any::<u64>(), // seed
    )
        .prop_map(|(num_vars, num_hard, num_soft, dist, seed)| {
            random_weighted_wcnf(&WeightedConfig {
                num_vars,
                num_hard,
                num_soft,
                max_len: 3,
                dist,
                seed,
            })
        })
}

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The tested thread counts: the issue's {1, 2, 4, 8} plus the CI
/// matrix value from `COREMAX_TEST_JOBS` when present.
fn job_counts() -> Vec<usize> {
    let mut jobs = vec![1usize, 2, 4, 8];
    if let Some(extra) = std::env::var("COREMAX_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        if !jobs.contains(&extra) {
            jobs.push(extra);
        }
    }
    jobs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(16)))]

    // Property 1: the reported answer is a pure function of the
    // instance — not of the thread count, and not of which member
    // happened to finish first.
    #[test]
    fn portfolio_answer_is_thread_count_invariant(w in arb_instance()) {
        let oracle = exhaustive_optimum(&w);
        let mut reference: Option<(MaxSatStatus, Option<Weight>, Option<Weight>)> = None;
        for jobs in job_counts() {
            let outcome = Portfolio::new(jobs).solve(&w);
            let model_cost = outcome.solution.model.as_ref().map(|m| {
                w.cost(m).expect("portfolio models satisfy the hard clauses")
            });
            let key = (outcome.solution.status, outcome.solution.cost, model_cost);
            match &reference {
                None => reference = Some(key),
                Some(expected) => prop_assert_eq!(
                    &key, expected,
                    "jobs={} diverged from jobs=1", jobs
                ),
            }
            // Against the oracle: unlimited budget means every race has
            // an exact winner.
            match oracle {
                Some(optimum) => {
                    prop_assert_eq!(outcome.solution.status, MaxSatStatus::Optimal);
                    prop_assert_eq!(outcome.solution.cost, Some(optimum), "jobs={}", jobs);
                    prop_assert_eq!(model_cost, Some(optimum), "jobs={} model lies", jobs);
                }
                None => {
                    prop_assert_eq!(outcome.solution.status, MaxSatStatus::Infeasible);
                }
            }
            prop_assert!(verify_solution(&w, &outcome.solution), "jobs={}", jobs);

            // The reported winner, re-run alone sequentially, must
            // reproduce the race's answer (fixed-priority tie-break,
            // not wall-clock order).
            let index = outcome.winner_index.expect("unlimited budget always has a winner");
            let members = Portfolio::default_members();
            prop_assert_eq!(members[index].name(), outcome.winner.unwrap());
            let solo = Portfolio::with_members(1, vec![members[index].clone()]).solve(&w);
            prop_assert_eq!(solo.solution.status, outcome.solution.status);
            prop_assert_eq!(solo.solution.cost, outcome.solution.cost, "winner re-run differs");
        }
    }

    // Property 1b: cooperative clause sharing never changes the
    // answer. For every instance, job count, and LBD gate, a sharing
    // race's `(status, cost, model cost)` equals the plain race's and
    // the exhaustive oracle. Exchanged clauses are implied by the
    // instance's hard clauses alone, so they can only accelerate a
    // member, never steer it to a different verdict. No conflict or
    // propagation caps are set here: shared caps make *capped* races
    // timing-dependent by design (only the certified interval is
    // guaranteed), whereas uncapped sharing races must stay exact.
    #[test]
    fn sharing_race_answer_matches_plain_race_and_oracle(
        w in arb_instance(),
        max_lbd in 1u32..=6,
    ) {
        let oracle = exhaustive_optimum(&w);
        let plain = Portfolio::new(1).solve(&w);
        for jobs in job_counts() {
            let outcome = Portfolio::new(jobs)
                .with_sharing(SharingConfig { max_lbd, max_len: 8 })
                .solve(&w);
            prop_assert_eq!(
                outcome.solution.status,
                plain.solution.status,
                "jobs={} sharing changed the status", jobs
            );
            prop_assert_eq!(
                outcome.solution.cost,
                plain.solution.cost,
                "jobs={} sharing changed the cost", jobs
            );
            match oracle {
                Some(optimum) => {
                    prop_assert_eq!(outcome.solution.status, MaxSatStatus::Optimal);
                    prop_assert_eq!(outcome.solution.cost, Some(optimum), "jobs={}", jobs);
                    let model = outcome.solution.model.as_ref().expect("optimal model");
                    prop_assert_eq!(w.cost(model), Some(optimum), "jobs={} model lies", jobs);
                }
                None => {
                    prop_assert_eq!(outcome.solution.status, MaxSatStatus::Infeasible);
                }
            }
            prop_assert!(verify_solution(&w, &outcome.solution), "jobs={}", jobs);
            prop_assert!(outcome.sharing.is_some(), "sharing totals must surface");
        }
    }

    // Property 2: cancellation at an arbitrary point is sound. The
    // flag is raised from a second thread after a random sub-millisecond
    // delay, so the stop lands anywhere from before the first
    // propagation to after the optimum was proven.
    #[test]
    fn cancellation_at_a_random_point_is_sound(
        w in arb_instance(),
        delay_us in 0u64..800,
    ) {
        let oracle = exhaustive_optimum(&w);
        // Reference run: same configuration, no cancellation.
        let full = Stratified::new(Msu3::new()).solve(&w);

        let stop = Arc::new(AtomicBool::new(false));
        let mut cancelled_solver = Stratified::new(Msu3::new());
        cancelled_solver.set_budget(Budget::new().with_stop_flag(stop.clone()));
        let cancelled = std::thread::scope(|scope| {
            let setter = scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                stop.store(true, Ordering::Relaxed);
            });
            let solution = cancelled_solver.solve(&w);
            setter.join().expect("setter thread");
            solution
        });

        match cancelled.status {
            MaxSatStatus::Unknown => {
                // Any reported bound must still be attained by a real
                // model of the original instance.
                prop_assert!(verify_solution(&w, &cancelled));
            }
            status => {
                // The solve won the race against the flag: the verdict
                // must be *correct*, exactly as if never cancelled.
                prop_assert_eq!(status, full.status);
                prop_assert_eq!(cancelled.cost, full.cost);
                prop_assert!(verify_solution(&w, &cancelled));
            }
        }

        // No double-counted work after a stop: a cancelled run performs
        // a prefix of the uncancelled run's deterministic work, so every
        // cumulative counter is bounded by the full run's.
        prop_assert!(
            cancelled.stats.sat.conflicts <= full.stats.sat.conflicts,
            "conflicts {} > uncancelled {}",
            cancelled.stats.sat.conflicts,
            full.stats.sat.conflicts
        );
        prop_assert!(
            cancelled.stats.sat.propagations <= full.stats.sat.propagations,
            "propagations {} > uncancelled {}",
            cancelled.stats.sat.propagations,
            full.stats.sat.propagations
        );
        prop_assert!(
            cancelled.stats.sat_iterations + cancelled.stats.unsat_iterations
                <= cancelled.stats.sat_calls,
            "iteration counters exceed SAT calls"
        );

        // A fresh, uncancelled solve still matches the exhaustive
        // oracle: cancellation never poisons later runs.
        let fresh = Stratified::new(Msu3::new()).solve(&w);
        match oracle {
            Some(optimum) => {
                prop_assert_eq!(fresh.status, MaxSatStatus::Optimal);
                prop_assert_eq!(fresh.cost, Some(optimum));
            }
            None => prop_assert_eq!(fresh.status, MaxSatStatus::Infeasible),
        }
        prop_assert!(verify_solution(&w, &fresh));
    }

    // Merged-interval certification: whatever point the deadline lands
    // on — before any member starts, mid-race, or after some members
    // found incumbents — the portfolio's answer is a certified,
    // *uncrossed* interval: lb ≤ incumbent cost, and the incumbent's
    // model attains its cost on the original instance.
    #[test]
    fn aborted_portfolio_reports_an_uncrossed_certified_interval(
        w in arb_instance(),
        timeout_us in 50u64..5_000,
    ) {
        let mut portfolio = Portfolio::new(2);
        portfolio.set_budget(
            Budget::new().with_timeout(std::time::Duration::from_micros(timeout_us)),
        );
        let outcome = portfolio.solve(&w);
        let s = &outcome.solution;
        if let Some(cost) = s.cost {
            prop_assert!(
                s.lower_bound <= cost,
                "crossed interval: lb {} > ub {}",
                s.lower_bound,
                cost
            );
            let model = s.model.as_ref().expect("an incumbent carries its model");
            prop_assert_eq!(w.cost(model), Some(cost), "incumbent does not certify");
        }
        prop_assert!(verify_solution(&w, s));
    }

    // Batch driver determinism: per-instance answers and their order
    // are independent of the worker count.
    #[test]
    fn batch_results_are_worker_count_invariant(
        seeds in proptest::collection::vec(any::<u64>(), 2..6),
    ) {
        let owned: Vec<(String, WcnfFormula)> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                (
                    format!("inst-{i}"),
                    random_weighted_wcnf(&WeightedConfig {
                        num_vars: 5,
                        num_hard: 3,
                        num_soft: 6,
                        max_len: 3,
                        dist: WeightDist::Uniform { lo: 1, hi: 4 },
                        seed,
                    }),
                )
            })
            .collect();
        let items: Vec<(&str, &WcnfFormula)> =
            owned.iter().map(|(n, w)| (n.as_str(), w)).collect();
        let run = |jobs: usize| {
            solve_batch(
                &items,
                || Box::new(Stratified::new(Msu3::new())) as Box<dyn MaxSatSolver + Send>,
                &BatchOptions {
                    jobs,
                    budget: Budget::new(),
                },
            )
        };
        let seq = run(1);
        prop_assert_eq!(seq.outcomes.len(), items.len());
        for (outcome, (name, w)) in seq.outcomes.iter().zip(&owned) {
            prop_assert_eq!(&outcome.name, name);
            prop_assert_eq!(outcome.solution.cost, exhaustive_optimum(w), "{}", name);
            prop_assert!(verify_solution(w, &outcome.solution), "{}", name);
        }
        for jobs in [2usize, 4, 8] {
            let par = run(jobs);
            for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
                prop_assert_eq!(&a.name, &b.name, "jobs={} reorders", jobs);
                prop_assert_eq!(a.solution.status, b.solution.status, "{}", a.name);
                prop_assert_eq!(a.solution.cost, b.solution.cost, "{}", a.name);
            }
        }
    }
}

/// A pre-raised flag cancels a whole portfolio race deterministically:
/// zero decisions anywhere, status Unknown, and the same portfolio
/// solves the instance once the flag is lowered.
#[test]
fn pre_raised_flag_stops_portfolio_before_any_work() {
    let w = random_weighted_wcnf(&WeightedConfig::default());
    let stop = Arc::new(AtomicBool::new(true));
    let mut portfolio = Portfolio::new(4);
    portfolio.set_budget(Budget::new().with_stop_flag(stop.clone()));
    let outcome = portfolio.solve(&w);
    assert_eq!(outcome.solution.status, MaxSatStatus::Unknown);
    assert!(outcome.winner.is_none());
    assert_eq!(outcome.total_stats.sat.decisions, 0);

    stop.store(false, Ordering::Relaxed);
    let outcome = portfolio.solve(&w);
    assert_eq!(outcome.solution.status, MaxSatStatus::Optimal);
    assert!(verify_solution(&w, &outcome.solution));
}
