//! Criterion bench A1: cardinality-encoding ablation — the axis along
//! which msu4-v1 and msu4-v2 differ (§5 of the paper discusses the
//! "performance differences observed for the two encodings").
//!
//! Two measurements per encoding: (a) encoding size/time for `Σ ≤ k`
//! constraints of growing width, and (b) end-to-end msu4 runtime with
//! that encoding on a fixed instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use coremax::{MaxSatSolver, Msu4, Msu4Config};
use coremax_cards::{encode_at_most, CardEncoding, CnfSink};
use coremax_cnf::{Lit, Var, WcnfFormula};
use coremax_instances::pigeonhole;

fn bench_encoding_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("card_encoding_build");
    for n in [32usize, 64, 128] {
        let lits: Vec<Lit> = (0..n).map(|i| Lit::positive(Var::new(i as u32))).collect();
        let k = n / 4;
        for encoding in [
            CardEncoding::Bdd,
            CardEncoding::SortingNetwork,
            CardEncoding::SequentialCounter,
            CardEncoding::Totalizer,
            CardEncoding::AdderNetwork,
        ] {
            group.bench_with_input(
                BenchmarkId::new(encoding.name(), n),
                &(lits.clone(), k),
                |b, (lits, k)| {
                    b.iter(|| {
                        let mut sink = CnfSink::new(lits.len());
                        encode_at_most(lits, *k, encoding, &mut sink);
                        sink.num_clauses()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_msu4_per_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("msu4_encoding_ablation");
    group.sample_size(10);
    let wcnf = WcnfFormula::from_cnf_all_soft(&pigeonhole(4));
    for encoding in [
        CardEncoding::Bdd,
        CardEncoding::SortingNetwork,
        CardEncoding::SequentialCounter,
        CardEncoding::Totalizer,
        CardEncoding::AdderNetwork,
    ] {
        group.bench_with_input(BenchmarkId::new("php4", encoding.name()), &wcnf, |b, w| {
            b.iter(|| {
                let mut solver = Msu4::with_config(Msu4Config {
                    encoding,
                    ..Msu4Config::default()
                });
                solver.solve(w).cost
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encoding_construction,
    bench_msu4_per_encoding
);
criterion_main!(benches);
