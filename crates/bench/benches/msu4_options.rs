//! Criterion bench A2: ablation of msu4's optional line-19 constraint
//! (`Σ_{i∈core} bᵢ ≥ 1`). The paper: "this cardinality constraint is in
//! fact optional, but experiments suggest that it is most often useful".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use coremax::{MaxSatSolver, Msu4, Msu4Config};
use coremax_cards::CardEncoding;
use coremax_cnf::WcnfFormula;
use coremax_instances::{bmc_instance, pigeonhole, xor_chain};

fn bench_line19_toggle(c: &mut Criterion) {
    let mut group = c.benchmark_group("msu4_line19");
    group.sample_size(10);
    let cases = vec![
        ("php4", WcnfFormula::from_cnf_all_soft(&pigeonhole(4))),
        ("xor11", WcnfFormula::from_cnf_all_soft(&xor_chain(11))),
        ("bmc", WcnfFormula::from_cnf_all_soft(&bmc_instance(2, 3))),
    ];
    for (name, wcnf) in cases {
        for (label, core_at_least_one) in [("with-ge1", true), ("without-ge1", false)] {
            group.bench_with_input(BenchmarkId::new(label, name), &wcnf, |b, w| {
                b.iter(|| {
                    let mut solver = Msu4::with_config(Msu4Config {
                        encoding: CardEncoding::SortingNetwork,
                        core_at_least_one,
                        ..Msu4Config::default()
                    });
                    solver.solve(w).cost
                });
            });
        }
    }
    group.finish();
}

fn bench_core_minimisation_toggle(c: &mut Criterion) {
    let mut group = c.benchmark_group("msu4_core_min");
    group.sample_size(10);
    let cases = vec![
        ("php4", WcnfFormula::from_cnf_all_soft(&pigeonhole(4))),
        ("bmc", WcnfFormula::from_cnf_all_soft(&bmc_instance(2, 3))),
    ];
    for (name, wcnf) in cases {
        for (label, minimize_cores) in [("raw-cores", false), ("min-cores", true)] {
            group.bench_with_input(BenchmarkId::new(label, name), &wcnf, |b, w| {
                b.iter(|| {
                    let mut solver = Msu4::with_config(Msu4Config {
                        encoding: CardEncoding::SortingNetwork,
                        minimize_cores,
                        ..Msu4Config::default()
                    });
                    solver.solve(w).cost
                });
            });
        }
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group!(name = benches; config = configured(); targets = bench_line19_toggle, bench_core_minimisation_toggle);
criterion_main!(benches);
