//! Criterion bench S1: the CDCL substrate on representative SAT/UNSAT
//! families, including core extraction overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use coremax_instances::{bmc_instance, equiv_instance, pigeonhole, xor_chain};
use coremax_sat::{SolveOutcome, Solver};

fn bench_unsat_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_unsat_families");
    let cases = vec![
        ("php", pigeonhole(4)),
        ("xor", xor_chain(15)),
        ("bmc", bmc_instance(2, 4)),
        ("equiv", equiv_instance(0, 3)),
    ];
    for (name, formula) in cases {
        group.bench_with_input(BenchmarkId::new("refute", name), &formula, |b, f| {
            b.iter(|| {
                let mut solver = Solver::new();
                solver.add_formula(f);
                assert_eq!(solver.solve(), SolveOutcome::Unsat);
                solver.unsat_core().expect("core").len()
            });
        });
    }
    group.finish();
}

fn bench_core_extraction_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_extraction");
    for holes in [3usize, 4, 5] {
        let formula = pigeonhole(holes);
        group.bench_with_input(BenchmarkId::new("php", holes), &formula, |b, f| {
            b.iter(|| {
                let mut solver = Solver::new();
                solver.add_formula(f);
                let _ = solver.solve();
                solver.unsat_core().map(<[_]>::len)
            });
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group!(name = benches; config = configured(); targets = bench_unsat_families, bench_core_extraction_scaling);
criterion_main!(benches);
