//! Criterion bench: head-to-head runtimes of the whole algorithm family
//! on one representative of each instance family — the microbenchmark
//! companion to the table1/scatter binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use coremax::{
    BranchBound, LinearSearchSat, MaxSatSolver, Msu1, Msu3, Msu4, Msu4Incremental, PboBaseline,
};
use coremax_cnf::WcnfFormula;
use coremax_instances::{equiv_instance, pigeonhole, xor_chain};

type SolverFactory = Box<dyn Fn() -> Box<dyn MaxSatSolver>>;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxsat_algorithms");
    group.sample_size(10);

    let cases = vec![
        ("php3", WcnfFormula::from_cnf_all_soft(&pigeonhole(3))),
        ("xor9", WcnfFormula::from_cnf_all_soft(&xor_chain(9))),
        (
            "equiv",
            WcnfFormula::from_cnf_all_soft(&equiv_instance(1, 2)),
        ),
    ];

    for (name, wcnf) in &cases {
        let solvers: Vec<(&str, SolverFactory)> = vec![
            ("msu4v2", Box::new(|| Box::new(Msu4::v2()))),
            ("msu4v1", Box::new(|| Box::new(Msu4::v1()))),
            ("msu4inc", Box::new(|| Box::new(Msu4Incremental::new()))),
            ("msu1", Box::new(|| Box::new(Msu1::new()))),
            ("msu3", Box::new(|| Box::new(Msu3::new()))),
            ("pbo", Box::new(|| Box::new(PboBaseline::new()))),
            ("maxsatz", Box::new(|| Box::new(BranchBound::new()))),
            ("linear", Box::new(|| Box::new(LinearSearchSat::new()))),
        ];
        for (solver_name, make) in solvers {
            group.bench_with_input(BenchmarkId::new(solver_name, name), wcnf, |b, w| {
                b.iter(|| {
                    let mut solver = make();
                    solver.solve(w).cost
                });
            });
        }
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
        .sample_size(10)
}

criterion_group!(name = benches; config = configured(); targets = bench_algorithms);
criterion_main!(benches);
