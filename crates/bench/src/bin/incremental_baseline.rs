//! `incremental_baseline` — persistent-engine vs rebuild-per-call
//! baseline over the mixed batch suite.
//!
//! Every core-guided driver now runs on one long-lived incremental SAT
//! engine ([`coremax_sat::IncrementalSolver`]); `EngineMode::Rebuild`
//! reproduces the historic behaviour (a fresh solver per SAT call,
//! identical answers) so the win is measurable rather than assumed.
//! For each instance the same driver runs once per mode and the run
//! records, per mode: status, cost, wall time, SAT calls, and the
//! engine counters (`incremental_solves`, `clauses_retained`,
//! `solver_rebuilds`). The headline numbers are **iterations per
//! second** (SAT calls / wall time) in both modes and **rebuilds
//! avoided** (the rebuild run's `solver_rebuilds` minus the persistent
//! run's, which is 0 by construction).
//!
//! Output is one JSON trajectory (`BENCH_pr6.json` at the repo root by
//! convention) with per-instance rows and per-family aggregates over
//! the suite's families (bmc / equiv / atpg / php / xor / rand3 /
//! debug / weighted — well beyond the required three).
//!
//! The two modes must agree exactly on every exact verdict; any
//! disagreement or verification failure exits 1 unconditionally.
//! `--fail-on-abort` exits 1 on any budget abort.
//!
//! Usage:
//! `incremental_baseline [--out FILE] [--scale N] [--seed S]
//!                       [--budget-ms MS] [--solver NAME] [--fail-on-abort]`

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

use coremax::{
    verify_solution, BinarySearchSat, LinearSearchSat, MaxSatSolution, MaxSatSolver, MaxSatStatus,
    Msu1, Msu2, Msu3, Msu4, Msu4Incremental, Wmsu1,
};
use coremax_instances::{batch_suite, SuiteConfig};
use coremax_sat::{Budget, EngineMode};

struct Args {
    out: String,
    scale: usize,
    seed: u64,
    budget_ms: u64,
    solver: String,
    fail_on_abort: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            out: "BENCH_pr6.json".into(),
            scale: 1,
            seed: 42,
            budget_ms: 8_000,
            solver: "msu3".into(),
            fail_on_abort: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => args.out = value("--out"),
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--budget-ms" => args.budget_ms = value("--budget-ms").parse().expect("budget-ms"),
            "--solver" => args.solver = value("--solver"),
            "--fail-on-abort" => args.fail_on_abort = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The named unweighted driver in the requested engine mode. Weighted
/// instances always go to wmsu1 (the weight-native driver) in the same
/// mode, so every suite family is covered.
fn unweighted_solver(name: &str, mode: EngineMode) -> Box<dyn MaxSatSolver> {
    match name {
        "msu1" => Box::new(Msu1::new().with_engine_mode(mode)),
        "msu2" => Box::new(Msu2::new().with_engine_mode(mode)),
        "msu3" => Box::new(Msu3::new().with_engine_mode(mode)),
        "msu4v1" => Box::new(Msu4::v1().with_engine_mode(mode)),
        "msu4v2" => Box::new(Msu4::v2().with_engine_mode(mode)),
        "msu4inc" => Box::new(Msu4Incremental::new().with_engine_mode(mode)),
        "linear-sat" => Box::new(LinearSearchSat::new().with_engine_mode(mode)),
        "binary-sat" => Box::new(BinarySearchSat::new().with_engine_mode(mode)),
        other => {
            eprintln!(
                "unknown solver {other} (expected msu1|msu2|msu3|msu4v1|msu4v2|msu4inc|linear-sat|binary-sat)"
            );
            std::process::exit(2);
        }
    }
}

fn status_name(status: MaxSatStatus) -> &'static str {
    match status {
        MaxSatStatus::Optimal => "optimal",
        MaxSatStatus::Infeasible => "infeasible",
        MaxSatStatus::Unknown => "unknown",
    }
}

fn is_exact(status: MaxSatStatus) -> bool {
    matches!(status, MaxSatStatus::Optimal | MaxSatStatus::Infeasible)
}

/// Two answers disagree only when BOTH are exact and differ: an
/// `Unknown` under budget pressure is an abort, and which mode aborts
/// first on a loaded host is timing noise, not an answer divergence.
fn disagrees(a: &MaxSatSolution, b: &MaxSatSolution) -> bool {
    is_exact(a.status) && is_exact(b.status) && (a.status != b.status || a.cost != b.cost)
}

#[derive(Default)]
struct ModeTotals {
    wall_s: f64,
    sat_calls: u64,
    incremental_solves: u64,
    clauses_retained: u64,
    solver_rebuilds: u64,
}

impl ModeTotals {
    fn add(&mut self, s: &MaxSatSolution) {
        self.wall_s += s.stats.wall_time.as_secs_f64();
        self.sat_calls += s.stats.sat_calls;
        self.incremental_solves += s.stats.sat.incremental_solves;
        self.clauses_retained += s.stats.sat.clauses_retained;
        self.solver_rebuilds += s.stats.sat.solver_rebuilds;
    }

    fn iters_per_sec(&self) -> f64 {
        self.sat_calls as f64 / self.wall_s.max(1e-9)
    }
}

fn main() {
    let args = parse_args();
    let suite = batch_suite(&SuiteConfig {
        scale: args.scale,
        seed: args.seed,
    });
    let budget = Budget::new().with_timeout(Duration::from_millis(args.budget_ms));
    eprintln!(
        "incremental_baseline: {} instances, solver {} (wmsu1 for weighted), {} ms budget",
        suite.len(),
        args.solver,
        args.budget_ms
    );

    let mut rows = String::new();
    let mut per_family: BTreeMap<&'static str, (ModeTotals, ModeTotals, usize)> = BTreeMap::new();
    let mut aborts = 0usize;
    let mut verify_failures = 0usize;
    let mut disagreements = 0usize;

    for (i, instance) in suite.iter().enumerate() {
        let run = |mode: EngineMode| -> MaxSatSolution {
            let mut solver: Box<dyn MaxSatSolver> = if instance.wcnf.is_unweighted() {
                unweighted_solver(&args.solver, mode)
            } else {
                Box::new(Wmsu1::new().with_engine_mode(mode))
            };
            solver.set_budget(budget.clone());
            solver.solve(&instance.wcnf)
        };
        let rebuild = run(EngineMode::Rebuild);
        let persistent = run(EngineMode::Persistent);

        for (label, s) in [("rebuild", &rebuild), ("persistent", &persistent)] {
            if s.status == MaxSatStatus::Unknown {
                aborts += 1;
                eprintln!("  ABORT ({label}): {}", instance.name);
            }
            if !verify_solution(&instance.wcnf, s) {
                verify_failures += 1;
                eprintln!("  VERIFY FAIL ({label}): {}", instance.name);
            }
        }
        if disagrees(&rebuild, &persistent) {
            disagreements += 1;
            eprintln!(
                "  DISAGREEMENT: {} rebuild=({}, {:?}) persistent=({}, {:?})",
                instance.name,
                status_name(rebuild.status),
                rebuild.cost,
                status_name(persistent.status),
                persistent.cost
            );
        }

        let entry = per_family
            .entry(instance.family.name())
            .or_insert_with(|| (ModeTotals::default(), ModeTotals::default(), 0));
        entry.0.add(&rebuild);
        entry.1.add(&persistent);
        entry.2 += 1;

        let rebuilds_avoided = rebuild
            .stats
            .sat
            .solver_rebuilds
            .saturating_sub(persistent.stats.sat.solver_rebuilds);
        if i > 0 {
            rows.push_str(",\n");
        }
        let mode_json = |s: &MaxSatSolution| {
            let wall_s = s.stats.wall_time.as_secs_f64();
            format!(
                "{{\"status\": \"{}\", \"cost\": {}, \"time_ms\": {:.3}, \"sat_calls\": {}, \
                 \"iters_per_sec\": {:.1}, \"incremental_solves\": {}, \
                 \"clauses_retained\": {}, \"solver_rebuilds\": {}}}",
                status_name(s.status),
                s.cost.map_or("null".into(), |c| c.to_string()),
                wall_s * 1e3,
                s.stats.sat_calls,
                s.stats.sat_calls as f64 / wall_s.max(1e-9),
                s.stats.sat.incremental_solves,
                s.stats.sat.clauses_retained,
                s.stats.sat.solver_rebuilds,
            )
        };
        let _ = write!(
            rows,
            "    {{\"instance\": \"{}\", \"family\": \"{}\", \"rebuild\": {}, \
             \"persistent\": {}, \"rebuilds_avoided\": {}, \"agrees\": {}}}",
            instance.name.replace('"', "\\\""),
            instance.family,
            mode_json(&rebuild),
            mode_json(&persistent),
            rebuilds_avoided,
            !disagrees(&rebuild, &persistent),
        );
    }

    let mut totals = (ModeTotals::default(), ModeTotals::default());
    let mut family_rows = String::new();
    for (fi, (family, (rebuild, persistent, count))) in per_family.iter().enumerate() {
        if fi > 0 {
            family_rows.push_str(",\n");
        }
        let _ = write!(
            family_rows,
            "    {{\"family\": \"{}\", \"instances\": {}, \
             \"rebuild_iters_per_sec\": {:.1}, \"persistent_iters_per_sec\": {:.1}, \
             \"iteration_speedup\": {:.3}, \"rebuilds_avoided\": {}, \
             \"clauses_retained\": {}}}",
            family,
            count,
            rebuild.iters_per_sec(),
            persistent.iters_per_sec(),
            persistent.iters_per_sec() / rebuild.iters_per_sec().max(1e-9),
            rebuild.solver_rebuilds - persistent.solver_rebuilds,
            persistent.clauses_retained,
        );
        totals.0.wall_s += rebuild.wall_s;
        totals.0.sat_calls += rebuild.sat_calls;
        totals.0.solver_rebuilds += rebuild.solver_rebuilds;
        totals.1.wall_s += persistent.wall_s;
        totals.1.sat_calls += persistent.sat_calls;
        totals.1.solver_rebuilds += persistent.solver_rebuilds;
        totals.1.incremental_solves += persistent.incremental_solves;
        totals.1.clauses_retained += persistent.clauses_retained;
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"suite\": {{\"scale\": {}, \"seed\": {}, \"instances\": {}, \"families\": {}}},",
        args.scale,
        args.seed,
        suite.len(),
        per_family.len()
    );
    let _ = writeln!(
        out,
        "  \"solver\": \"{}\", \"weighted_solver\": \"wmsu1\",",
        args.solver
    );
    let _ = writeln!(out, "  \"budget_ms\": {},", args.budget_ms);
    out.push_str("  \"runs\": [\n");
    out.push_str(&rows);
    out.push_str("\n  ],\n");
    out.push_str("  \"families\": [\n");
    out.push_str(&family_rows);
    out.push_str("\n  ],\n");
    let _ = writeln!(
        out,
        "  \"summary\": {{\"rebuild_iters_per_sec\": {:.1}, \"persistent_iters_per_sec\": {:.1}, \
         \"iteration_speedup\": {:.3}, \"rebuilds_avoided\": {}, \"incremental_solves\": {}, \
         \"clauses_retained\": {}}},",
        totals.0.iters_per_sec(),
        totals.1.iters_per_sec(),
        totals.1.iters_per_sec() / totals.0.iters_per_sec().max(1e-9),
        totals.0.solver_rebuilds - totals.1.solver_rebuilds,
        totals.1.incremental_solves,
        totals.1.clauses_retained
    );
    let _ = writeln!(out, "  \"aborts\": {aborts},");
    let _ = writeln!(out, "  \"verify_failures\": {verify_failures},");
    let _ = writeln!(out, "  \"disagreements\": {disagreements}");
    out.push_str("}\n");
    std::fs::write(&args.out, &out).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));

    println!(
        "iterations/sec: rebuild {:.1}, persistent {:.1} ({:.2}x); {} rebuilds avoided, {} learned clauses retained",
        totals.0.iters_per_sec(),
        totals.1.iters_per_sec(),
        totals.1.iters_per_sec() / totals.0.iters_per_sec().max(1e-9),
        totals.0.solver_rebuilds - totals.1.solver_rebuilds,
        totals.1.clauses_retained
    );
    println!(
        "checks: {disagreements} disagreements, {aborts} aborts, {verify_failures} verify failures"
    );
    println!("wrote {}", args.out);

    if verify_failures > 0 {
        eprintln!("FAIL: {verify_failures} solutions failed verification");
        std::process::exit(1);
    }
    if disagreements > 0 {
        eprintln!("FAIL: {disagreements} rebuild/persistent answer divergences");
        std::process::exit(1);
    }
    if args.fail_on_abort && aborts > 0 {
        eprintln!("FAIL: {aborts} aborted runs (budget {} ms)", args.budget_ms);
        std::process::exit(1);
    }
}
