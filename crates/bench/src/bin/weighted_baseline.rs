//! `weighted_baseline` — reproducible performance/coverage baseline for
//! the weighted MaxSAT paths over the generated weighted suite.
//!
//! Writes a JSON trajectory (`BENCH_pr4.json` at the repo root by
//! convention) comparing the clause-replication baseline against the
//! native weight-aware solvers (`wmsu1`, `strat-msu3`, `strat-msu4`,
//! `oll`, `strat-oll`), each measured with preprocessing off and on.
//! Every solution is verified against the original instance.
//!
//! Replication is *expected* to fail on the heavy-skew family: an
//! instance whose total soft weight exceeds the replication cap comes
//! back as UNKNOWN from the baseline and is recorded as `"capped"`,
//! not as an abort — aborts count only budget exhaustion on solvers
//! that accepted the instance. The summary block reports how many
//! capped instances the native paths solved to optimality, which is the
//! headline number: the workload replication cannot reach at all.
//!
//! Usage:
//! `weighted_baseline [--out FILE] [--scale N] [--seed S]
//!                    [--budget-ms MS] [--solvers a,b] [--fail-on-abort]`
//!
//! Exit status 1 on any verification failure or cross-solver optimum
//! disagreement (soundness, unconditional), and — with
//! `--fail-on-abort` — on any true abort.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;

use coremax::{replicate_weights, MaxSatStatus};
use coremax_bench::{consistency_violations, run_solver_over_opts, RunRecord, WEIGHTED_SOLVERS};
use coremax_instances::{weighted_suite, Instance, SuiteConfig};

/// The default replication cap of `WeightedByReplication::new`.
const REPLICATION_CAP: u64 = 100_000;

struct Args {
    out: String,
    scale: usize,
    seed: u64,
    budget_ms: u64,
    solvers: Vec<String>,
    fail_on_abort: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            out: "BENCH_pr4.json".into(),
            scale: 1,
            seed: 42,
            budget_ms: 10_000,
            solvers: WEIGHTED_SOLVERS.iter().map(|s| s.to_string()).collect(),
            fail_on_abort: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => args.out = value("--out"),
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--budget-ms" => args.budget_ms = value("--budget-ms").parse().expect("budget-ms"),
            "--solvers" => {
                args.solvers = value("--solvers").split(',').map(str::to_string).collect();
            }
            "--fail-on-abort" => args.fail_on_abort = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn status_name(status: MaxSatStatus) -> &'static str {
    match status {
        MaxSatStatus::Optimal => "optimal",
        MaxSatStatus::Infeasible => "infeasible",
        MaxSatStatus::Unknown => "unknown",
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0usize);
    for v in values {
        log_sum += v.max(1e-9).ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args = parse_args();
    let suite: Vec<Instance> = weighted_suite(&SuiteConfig {
        scale: args.scale,
        seed: args.seed,
    });
    assert!(!suite.is_empty(), "empty weighted suite");
    // An instance is replication-capped iff the expansion refuses it.
    let capped_instances: Vec<&str> = suite
        .iter()
        .filter(|i| replicate_weights(&i.wcnf, REPLICATION_CAP).is_none())
        .map(|i| i.name.as_str())
        .collect();
    eprintln!(
        "weighted_baseline: {} instances ({} past the replication cap), {} ms budget, solvers {:?}",
        suite.len(),
        capped_instances.len(),
        args.budget_ms,
        args.solvers
    );

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"suite\": {{\"scale\": {}, \"seed\": {}, \"instances\": {}, \"replication_cap\": {}}},",
        args.scale,
        args.seed,
        suite.len(),
        REPLICATION_CAP
    );
    let _ = writeln!(out, "  \"budget_ms\": {},", args.budget_ms);

    let mut aborted_total = 0usize;
    let mut capped_total = 0usize;
    let mut verify_failures = 0usize;
    let mut totalizer_extensions_total = 0u64;
    let mut all_records: Vec<RunRecord> = Vec::new();
    // instance → did any native (non-replication) solver prove optimal?
    let mut native_optimal: HashMap<String, bool> = HashMap::new();

    out.push_str("  \"weighted_runs\": [\n");
    let mut first = true;
    let mut geo: Vec<(String, f64)> = Vec::new();
    for solver_name in &args.solvers {
        let is_replication = solver_name == "replication";
        for preprocess in [false, true] {
            let label = if preprocess {
                format!("{solver_name}+simp")
            } else {
                solver_name.clone()
            };
            eprintln!("weighted layer: {label} over {} instances", suite.len());
            let records = run_solver_over_opts(
                solver_name,
                &suite,
                Duration::from_millis(args.budget_ms),
                preprocess,
            );
            // Cap-refusals are near-instant non-answers; including them
            // would deflate the baseline's geomean to nonsense, so the
            // metric covers only instances the solver actually decided.
            geo.push((
                label.clone(),
                geomean(
                    records
                        .iter()
                        .filter(|r| {
                            !(is_replication
                                && r.status == MaxSatStatus::Unknown
                                && capped_instances.contains(&r.instance.as_str()))
                        })
                        .map(|r| r.time.as_secs_f64() * 1e3),
                ),
            ));
            for r in &records {
                let capped = is_replication
                    && r.status == MaxSatStatus::Unknown
                    && capped_instances.contains(&r.instance.as_str());
                if capped {
                    capped_total += 1;
                } else if r.aborted() {
                    aborted_total += 1;
                    eprintln!("  ABORT: {label} on {} ({})", r.instance, r.family);
                }
                if !r.verified {
                    verify_failures += 1;
                    eprintln!("  VERIFY FAIL: {label} on {} ({})", r.instance, r.family);
                }
                if !is_replication && r.status == MaxSatStatus::Optimal {
                    native_optimal.insert(r.instance.clone(), true);
                }
                totalizer_extensions_total += r.totalizer_extensions;
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "    {{\"solver\": \"{}\", \"preprocess\": {}, \"instance\": \"{}\", \
                     \"family\": \"{}\", \"status\": \"{}\", \"capped\": {}, \"cost\": {}, \
                     \"verified\": {}, \"time_ms\": {:.3}, \"propagations\": {}, \
                     \"conflicts\": {}, \"totalizer_extensions\": {}}}",
                    json_escape(&label),
                    r.preprocess,
                    json_escape(&r.instance),
                    r.family,
                    status_name(r.status),
                    capped,
                    r.cost.map_or("null".into(), |c| c.to_string()),
                    r.verified,
                    r.time.as_secs_f64() * 1e3,
                    r.sat_propagations,
                    r.sat_conflicts,
                    r.totalizer_extensions,
                );
            }
            all_records.extend(records);
        }
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"weighted_geomean_time_ms\": {");
    for (i, (name, g)) in geo.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {:.3}", json_escape(name), g);
    }
    out.push_str("},\n");

    // Cross-solver soundness: every pair of optimal verdicts on the
    // same instance must agree on the optimum.
    let disagreements = consistency_violations(&all_records);

    // The headline: capped instances the native paths solved anyway.
    let native_solved_capped = capped_instances
        .iter()
        .filter(|name| native_optimal.get(**name).copied().unwrap_or(false))
        .count();

    let _ = writeln!(
        out,
        "  \"capped_instances\": [{}],",
        capped_instances
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  \"replication_capped_runs\": {capped_total},");
    let _ = writeln!(
        out,
        "  \"native_solved_capped_instances\": {native_solved_capped},"
    );
    let _ = writeln!(
        out,
        "  \"consistency_violations\": [{}],",
        disagreements
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        out,
        "  \"totalizer_extensions\": {totalizer_extensions_total},"
    );
    let _ = writeln!(out, "  \"weighted_aborted\": {aborted_total},");
    let _ = writeln!(out, "  \"verify_failures\": {verify_failures}");
    out.push_str("}\n");

    std::fs::write(&args.out, &out).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    for (name, g) in &geo {
        println!("geomean {name}: {g:.3} ms");
    }
    println!(
        "replication capped on {} instances; native paths solved {} of them",
        capped_instances.len(),
        native_solved_capped
    );
    println!("wrote {}", args.out);

    if verify_failures > 0 {
        eprintln!("FAIL: {verify_failures} solutions failed verification");
        std::process::exit(1);
    }
    if !disagreements.is_empty() {
        eprintln!("FAIL: optimum disagreement on {disagreements:?}");
        std::process::exit(1);
    }
    if !capped_instances.is_empty() && native_solved_capped == 0 {
        eprintln!("FAIL: no native solver conquered a replication-capped instance");
        std::process::exit(1);
    }
    if args.fail_on_abort && aborted_total > 0 {
        eprintln!(
            "FAIL: {aborted_total} aborted runs (budget {} ms)",
            args.budget_ms
        );
        std::process::exit(1);
    }
}
