//! `sharing_baseline` — cooperative clause sharing measured against the
//! plain portfolio race (`BENCH_pr10.json` at the repo root by
//! convention).
//!
//! The suite mixes families where sharing has real traffic with ones
//! where it is provably inert:
//!
//! - `php-hard` / `rand3-hard` — pigeonhole and random-UNSAT clauses as
//!   *hard* constraints plus soft units: every member grinds through
//!   conflicts whose antecedents are pure (hard-implied), so low-LBD
//!   learnts are exported, imported, and deduplicated across workers.
//! - `chain-partial` — hard implication chains with soft endpoints:
//!   easy optima, near-zero exchange traffic (a sanity family).
//! - `equiv-soft` — all-soft miters: *no* hard clauses, hence nothing
//!   is hard-implied and the exchange must stay empty. Sharing being
//!   harmlessly inert here is part of the soundness claim.
//!
//! For every instance the harness runs the race at `jobs ∈ {1, 2, 4,
//! 8}` with sharing off and on (one fixed answer key per instance —
//! all eight runs must agree on exact status and cost), then measures
//! wall-clock at `--jobs` for the speedup figure and records the
//! exchange totals (exported / imported / duplicate deliveries) of the
//! sharing run. Every solution is verified against its instance; any
//! verification failure exits 1 unconditionally. `--fail-on-disagreement`
//! exits 1 on any sharing-on/off or cross-jobs divergence. The speedup
//! figure is reported but never enforced on hosts with fewer than 4
//! cores, where racing threads just time-slice.
//!
//! Usage:
//! `sharing_baseline [--out FILE] [--scale N] [--seed S] [--budget-ms MS]
//!                   [--jobs N] [--share-lbd N] [--fail-on-disagreement]`

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use coremax::{verify_solution, MaxSatStatus};
use coremax_cnf::{CnfFormula, Lit, Var, WcnfFormula, Weight};
use coremax_instances::{equiv_instance, pigeonhole, random_unsat_3cnf};
use coremax_par::Portfolio;
use coremax_sat::{Budget, ExchangeTotals, SharingConfig};

struct Args {
    out: String,
    scale: usize,
    seed: u64,
    budget_ms: u64,
    jobs: usize,
    share_lbd: u32,
    fail_on_disagreement: bool,
}

fn detected_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl Default for Args {
    fn default() -> Self {
        Args {
            out: "BENCH_pr10.json".into(),
            scale: 2,
            seed: 42,
            budget_ms: 20_000,
            // At least 4 workers even on small hosts: a single-worker
            // race ends before anyone can import, and measuring the
            // exchange is the point. Oversubscription just time-slices.
            jobs: detected_cores().clamp(4, 8),
            share_lbd: SharingConfig::default().max_lbd,
            fail_on_disagreement: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => args.out = value("--out"),
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--budget-ms" => args.budget_ms = value("--budget-ms").parse().expect("budget-ms"),
            "--jobs" => args.jobs = value("--jobs").parse::<usize>().expect("jobs").max(1),
            "--share-lbd" => args.share_lbd = value("--share-lbd").parse().expect("share-lbd"),
            "--fail-on-disagreement" => args.fail_on_disagreement = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

struct Row {
    name: String,
    family: &'static str,
    wcnf: WcnfFormula,
}

/// Every clause of `cnf` as a hard clause, plus `softs` soft units on
/// the first variables — the shape where purity tracking has material
/// to export.
fn hardened(cnf: &CnfFormula, softs: usize) -> WcnfFormula {
    let mut w = WcnfFormula::new();
    for _ in 0..cnf.num_vars() {
        w.new_var();
    }
    for c in cnf.clauses() {
        w.add_hard(c.iter().copied());
    }
    for i in 0..softs.min(cnf.num_vars()) {
        w.add_soft([Lit::positive(Var::new(i as u32))], 1);
    }
    w
}

/// Hard implication chain `x1 → x2 → … → xn` with soft endpoints
/// (optimum 1): trivial for every member, so the exchange stays quiet.
fn chain(n: usize) -> WcnfFormula {
    let mut w = WcnfFormula::new();
    for _ in 0..n {
        w.new_var();
    }
    for i in 0..n - 1 {
        w.add_hard([
            Lit::negative(Var::new(i as u32)),
            Lit::positive(Var::new(i as u32 + 1)),
        ]);
    }
    w.add_soft([Lit::positive(Var::new(0))], 1);
    w.add_soft([Lit::negative(Var::new(n as u32 - 1))], 1);
    w
}

fn suite(scale: usize, seed: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for holes in 5..=(5 + scale.min(3)) {
        rows.push(Row {
            name: format!("php-hard-{holes}"),
            family: "php-hard",
            wcnf: hardened(&pigeonhole(holes), 3),
        });
    }
    for (i, vars) in [24usize, 28].iter().enumerate() {
        rows.push(Row {
            name: format!("rand3-hard-{vars}"),
            family: "rand3-hard",
            wcnf: hardened(&random_unsat_3cnf(*vars, seed.wrapping_add(i as u64)), 3),
        });
    }
    rows.push(Row {
        name: "chain-partial-64".into(),
        family: "chain-partial",
        wcnf: chain(64),
    });
    rows.push(Row {
        name: "equiv-soft-1-6".into(),
        family: "equiv-soft",
        wcnf: WcnfFormula::from_cnf_all_soft(&equiv_instance(1, 6)),
    });
    rows
}

fn status_name(status: MaxSatStatus) -> &'static str {
    match status {
        MaxSatStatus::Optimal => "optimal",
        MaxSatStatus::Infeasible => "infeasible",
        MaxSatStatus::Unknown => "unknown",
    }
}

fn is_exact(status: MaxSatStatus) -> bool {
    matches!(status, MaxSatStatus::Optimal | MaxSatStatus::Infeasible)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn race(
    wcnf: &WcnfFormula,
    jobs: usize,
    sharing: Option<SharingConfig>,
    budget_ms: u64,
) -> (coremax::MaxSatSolution, Option<ExchangeTotals>, f64) {
    let mut portfolio = Portfolio::new(jobs);
    if let Some(cfg) = sharing {
        portfolio = portfolio.with_sharing(cfg);
    }
    portfolio.set_budget(Budget::new().with_timeout(Duration::from_millis(budget_ms)));
    let t = Instant::now();
    let outcome = portfolio.solve(wcnf);
    let ms = t.elapsed().as_secs_f64() * 1e3;
    (outcome.solution, outcome.sharing, ms)
}

fn main() {
    let args = parse_args();
    let cores = detected_cores();
    let rows = suite(args.scale, args.seed);
    let config = SharingConfig {
        max_lbd: args.share_lbd,
        ..SharingConfig::default()
    };
    eprintln!(
        "sharing_baseline: {} instances, jobs {}, {} cores, lbd<={}, {} ms budget",
        rows.len(),
        args.jobs,
        cores,
        args.share_lbd,
        args.budget_ms
    );

    let mut out_rows = String::new();
    let mut disagreements = 0usize;
    let mut verify_failures = 0usize;
    let mut totals = ExchangeTotals::default();
    let mut plain_ms_total = 0.0f64;
    let mut shared_ms_total = 0.0f64;

    for (i, row) in rows.iter().enumerate() {
        // Differential sweep: jobs × sharing, one answer key. Exact
        // verdicts must be identical everywhere; `Unknown` is a budget
        // abort, gated by verification only (which run aborts first on
        // a loaded host is timing noise).
        let mut key: Option<(MaxSatStatus, Option<Weight>)> = None;
        for jobs in [1usize, 2, 4, 8] {
            for share in [false, true] {
                let (solution, _, _) =
                    race(&row.wcnf, jobs, share.then_some(config), args.budget_ms);
                if !verify_solution(&row.wcnf, &solution) {
                    verify_failures += 1;
                    eprintln!("  VERIFY FAIL: {} jobs={jobs} share={share}", row.name);
                }
                if !is_exact(solution.status) {
                    continue;
                }
                let this = (solution.status, solution.cost);
                match &key {
                    None => key = Some(this),
                    Some(expected) => {
                        if *expected != this {
                            disagreements += 1;
                            eprintln!(
                                "  DISAGREEMENT: {} jobs={jobs} share={share}: \
                                 ({}, {:?}) vs ({}, {:?})",
                                row.name,
                                status_name(this.0),
                                this.1,
                                status_name(expected.0),
                                expected.1
                            );
                        }
                    }
                }
            }
        }

        // Timed pair at the measurement job count.
        let (plain, _, plain_ms) = race(&row.wcnf, args.jobs, None, args.budget_ms);
        let (shared, exchange, shared_ms) =
            race(&row.wcnf, args.jobs, Some(config), args.budget_ms);
        let exchange = exchange.expect("sharing race reports totals");
        totals.exported += exchange.exported;
        totals.imported += exchange.imported;
        totals.duplicates += exchange.duplicates;
        plain_ms_total += plain_ms;
        shared_ms_total += shared_ms;

        if i > 0 {
            out_rows.push_str(",\n");
        }
        let _ = write!(
            out_rows,
            "    {{\"instance\": \"{}\", \"family\": \"{}\", \
             \"status\": \"{}\", \"cost\": {}, \
             \"plain_ms\": {plain_ms:.3}, \"shared_ms\": {shared_ms:.3}, \
             \"exported\": {}, \"imported\": {}, \"duplicates\": {}}}",
            json_escape(&row.name),
            row.family,
            status_name(shared.status),
            shared.cost.map_or("null".into(), |c| c.to_string()),
            exchange.exported,
            exchange.imported,
            exchange.duplicates,
        );
        eprintln!(
            "  {}: {} plain {plain_ms:.0} ms, shared {shared_ms:.0} ms, \
             exported {} imported {} dup {}",
            row.name,
            status_name(plain.status),
            exchange.exported,
            exchange.imported,
            exchange.duplicates
        );
    }

    let speedup = plain_ms_total / shared_ms_total.max(1e-9);
    let import_rate = totals.imported as f64 / (totals.exported as f64).max(1.0);
    let dup_rate =
        totals.duplicates as f64 / ((totals.imported + totals.duplicates) as f64).max(1.0);

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"suite\": {{\"scale\": {}, \"seed\": {}, \"instances\": {}}},",
        args.scale,
        args.seed,
        rows.len()
    );
    let _ = writeln!(out, "  \"budget_ms\": {},", args.budget_ms);
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"jobs\": {},", args.jobs);
    let _ = writeln!(
        out,
        "  \"sharing\": {{\"max_lbd\": {}, \"max_len\": {}}},",
        config.max_lbd, config.max_len
    );
    out.push_str("  \"runs\": [\n");
    out.push_str(&out_rows);
    out.push_str("\n  ],\n");
    let _ = writeln!(
        out,
        "  \"exchange\": {{\"exported\": {}, \"imported\": {}, \"duplicates\": {}, \
         \"import_rate\": {import_rate:.3}, \"duplicate_rate\": {dup_rate:.3}}},",
        totals.exported, totals.imported, totals.duplicates
    );
    let _ = writeln!(
        out,
        "  \"race\": {{\"plain_ms\": {plain_ms_total:.3}, \"shared_ms\": {shared_ms_total:.3}, \
         \"speedup\": {speedup:.3}, \"speedup_meaningful\": {}}},",
        cores >= 4
    );
    let _ = writeln!(out, "  \"verify_failures\": {verify_failures},");
    let _ = writeln!(out, "  \"disagreements\": {disagreements}");
    out.push_str("}\n");
    std::fs::write(&args.out, &out).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));

    println!(
        "exchange: {} exported, {} imported ({:.2} imports/export), {} duplicates",
        totals.exported, totals.imported, import_rate, totals.duplicates
    );
    println!(
        "race: plain {plain_ms_total:.1} ms, shared {shared_ms_total:.1} ms, \
         speedup {speedup:.2}x (jobs={}, cores={cores})",
        args.jobs
    );
    println!("checks: {disagreements} disagreements, {verify_failures} verify failures");
    println!("wrote {}", args.out);

    if verify_failures > 0 {
        eprintln!("FAIL: {verify_failures} solutions failed verification");
        std::process::exit(1);
    }
    if args.fail_on_disagreement && disagreements > 0 {
        eprintln!("FAIL: {disagreements} sharing/jobs disagreements");
        std::process::exit(1);
    }
}
