//! `perf_baseline` — reproducible performance baseline over the
//! generated instance suite.
//!
//! Writes a JSON trajectory file (`BENCH_pr<N>.json` at the repo root by
//! convention) so every PR has a number to beat. Two layers are
//! measured:
//!
//! 1. **MaxSAT layer**: wall-clock time per instance for the selected
//!    algorithms (default `msu4v2` + `msu4inc`, the paper's strongest
//!    variants) under a per-instance budget, plus the aggregated
//!    SAT-engine counters for the whole run.
//! 2. **SAT layer**: raw CDCL propagation throughput per instance — the
//!    solver is run directly on all clauses (hard and soft alike) under
//!    a conflict cap, yielding propagations/sec and conflicts/sec on
//!    propagation-bound families.
//!
//! Every MaxSAT measurement is taken twice — preprocessing off and on
//! (the `coremax_simp` pipeline wrapped around the solver) — so the
//! trajectory always contains both curves, and every solution
//! (reconstructed or not) is verified against the original instance.
//!
//! Usage:
//! `perf_baseline [--out FILE] [--scale N] [--seed S] [--budget-ms MS]
//!                [--solvers a,b] [--families f1,f2] [--sat-conflicts N]
//!                [--fail-on-abort]`
//!
//! Any solution failing verification exits with status 1
//! unconditionally (a lying model is a soundness bug, never a tuning
//! matter). `--fail-on-abort` additionally exits 1 if any selected
//! MaxSAT solver aborts (status UNKNOWN) on any instance of the
//! selected suite — used by CI to guarantee the engine never regresses
//! below the seed on the reduced suite.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use coremax::MaxSatStatus;
use coremax_bench::{run_solver_over_opts, RunRecord};
use coremax_instances::{full_suite, Instance, SuiteConfig};
use coremax_sat::{Budget, SolveOutcome, Solver};

struct Args {
    out: String,
    scale: usize,
    seed: u64,
    budget_ms: u64,
    solvers: Vec<String>,
    families: Option<Vec<String>>,
    sat_conflicts: u64,
    fail_on_abort: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            out: "BENCH_pr3.json".into(),
            scale: 1,
            seed: 42,
            budget_ms: 2_000,
            solvers: vec!["msu4v2".into(), "msu4inc".into()],
            families: None,
            sat_conflicts: 20_000,
            fail_on_abort: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => args.out = value("--out"),
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--budget-ms" => args.budget_ms = value("--budget-ms").parse().expect("budget-ms"),
            "--sat-conflicts" => {
                args.sat_conflicts = value("--sat-conflicts").parse().expect("sat-conflicts");
            }
            "--solvers" => {
                args.solvers = value("--solvers").split(',').map(str::to_string).collect();
            }
            "--families" => {
                args.families = Some(value("--families").split(',').map(str::to_string).collect());
            }
            "--fail-on-abort" => args.fail_on_abort = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One SAT-layer throughput measurement.
struct SatRecord {
    instance: String,
    family: &'static str,
    outcome: &'static str,
    time_s: f64,
    propagations: u64,
    conflicts: u64,
    learned: u64,
    bin_propagations: u64,
    peak_learned: u64,
    gc_runs: u64,
    props_per_sec: f64,
    conflicts_per_sec: f64,
}

fn sat_throughput(instance: &Instance, max_conflicts: u64) -> SatRecord {
    let mut solver = Solver::new();
    solver.ensure_vars(instance.wcnf.num_vars());
    for c in instance.wcnf.hard_clauses() {
        solver.add_clause(c.lits().iter().copied());
    }
    for s in instance.wcnf.soft_clauses() {
        solver.add_clause(s.clause.lits().iter().copied());
    }
    solver.set_budget(Budget::new().with_max_conflicts(max_conflicts));
    let start = Instant::now();
    let outcome = solver.solve();
    let time_s = start.elapsed().as_secs_f64().max(1e-9);
    let stats = solver.stats();
    SatRecord {
        instance: instance.name.clone(),
        family: instance.family.name(),
        outcome: match outcome {
            SolveOutcome::Sat => "sat",
            SolveOutcome::Unsat => "unsat",
            SolveOutcome::Unknown => "unknown",
        },
        time_s,
        propagations: stats.propagations,
        conflicts: stats.conflicts,
        learned: stats.learned_clauses,
        bin_propagations: stats.bin_propagations,
        peak_learned: stats.peak_learned,
        gc_runs: stats.gc_runs,
        props_per_sec: stats.propagations as f64 / time_s,
        conflicts_per_sec: stats.conflicts as f64 / time_s,
    }
}

fn status_name(status: MaxSatStatus) -> &'static str {
    match status {
        MaxSatStatus::Optimal => "optimal",
        MaxSatStatus::Infeasible => "infeasible",
        MaxSatStatus::Unknown => "unknown",
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0usize);
    for v in values {
        log_sum += v.max(1e-9).ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args = parse_args();
    let suite: Vec<Instance> = full_suite(&SuiteConfig {
        scale: args.scale,
        seed: args.seed,
    })
    .into_iter()
    .filter(|i| {
        args.families
            .as_ref()
            .is_none_or(|fs| fs.iter().any(|f| f == i.family.name()))
    })
    .collect();
    assert!(!suite.is_empty(), "family filter selected no instances");
    eprintln!(
        "perf_baseline: {} instances, {} ms budget, solvers {:?}",
        suite.len(),
        args.budget_ms,
        args.solvers
    );

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"suite\": {{\"scale\": {}, \"seed\": {}, \"instances\": {}}},",
        args.scale,
        args.seed,
        suite.len()
    );
    let _ = writeln!(out, "  \"budget_ms\": {},", args.budget_ms);
    let _ = writeln!(out, "  \"sat_conflict_cap\": {},", args.sat_conflicts);

    // ---- MaxSAT layer: every solver, preprocessing off and on ----
    let mut aborted_total = 0usize;
    let mut verify_failures = 0usize;
    out.push_str("  \"maxsat_runs\": [\n");
    let mut first = true;
    let mut geo: Vec<(String, f64)> = Vec::new();
    // Per-instance preprocessing counters, captured from the first
    // solver's preprocessed runs (they are a property of the instance,
    // not of the solver — no extra simplifier pass needed).
    let mut simp_records: Vec<RunRecord> = Vec::new();
    for solver_name in &args.solvers {
        for preprocess in [false, true] {
            let label = if preprocess {
                format!("{solver_name}+simp")
            } else {
                solver_name.clone()
            };
            eprintln!("maxsat layer: {label} over {} instances", suite.len());
            let records: Vec<RunRecord> = run_solver_over_opts(
                solver_name,
                &suite,
                Duration::from_millis(args.budget_ms),
                preprocess,
            );
            geo.push((
                label.clone(),
                geomean(records.iter().map(|r| r.time.as_secs_f64() * 1e3)),
            ));
            if preprocess && simp_records.is_empty() {
                simp_records = records.clone();
            }
            for r in &records {
                if r.aborted() {
                    aborted_total += 1;
                    eprintln!("  ABORT: {label} on {} ({})", r.instance, r.family);
                }
                if !r.verified {
                    verify_failures += 1;
                    eprintln!("  VERIFY FAIL: {label} on {} ({})", r.instance, r.family);
                }
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "    {{\"solver\": \"{}\", \"preprocess\": {}, \"instance\": \"{}\", \
                     \"family\": \"{}\", \"status\": \"{}\", \"cost\": {}, \"verified\": {}, \
                     \"time_ms\": {:.3}, \"propagations\": {}, \"conflicts\": {}, \
                     \"props_per_sec\": {:.0}}}",
                    json_escape(r.solver),
                    r.preprocess,
                    json_escape(&r.instance),
                    r.family,
                    status_name(r.status),
                    r.cost.map_or("null".into(), |c| c.to_string()),
                    r.verified,
                    r.time.as_secs_f64() * 1e3,
                    r.sat_propagations,
                    r.sat_conflicts,
                    r.sat_propagations as f64 / r.time.as_secs_f64().max(1e-9),
                );
            }
        }
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"maxsat_geomean_time_ms\": {");
    for (i, (name, g)) in geo.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": {:.3}", json_escape(name), g);
    }
    out.push_str("},\n");

    // ---- Preprocessing layer: per-instance reduction summary ----
    // Sourced from the first solver's preprocessed runs above.
    out.push_str("  \"simp_instances\": [\n");
    for (i, r) in simp_records.iter().enumerate() {
        let st = &r.simp;
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "    {{\"instance\": \"{}\", \"family\": \"{}\", \"infeasible\": {}, \
             \"vars\": [{}, {}], \"hard\": [{}, {}], \"soft\": [{}, {}], \
             \"facts\": {}, \"eliminated\": {}, \"subsumed\": {}, \"strengthened\": {}, \
             \"soft_falsified\": {}}}",
            json_escape(&r.instance),
            r.family,
            r.status == MaxSatStatus::Infeasible,
            st.vars_in,
            st.vars_out,
            st.hard_in,
            st.hard_out,
            st.soft_in,
            st.soft_out,
            st.facts,
            st.eliminated_vars,
            st.subsumed,
            st.strengthened,
            st.soft_falsified,
        );
    }
    out.push_str("\n  ],\n");

    // ---- SAT layer ----
    eprintln!(
        "sat layer: propagation throughput over {} instances",
        suite.len()
    );
    let sat_records: Vec<SatRecord> = suite
        .iter()
        .map(|i| sat_throughput(i, args.sat_conflicts))
        .collect();
    out.push_str("  \"sat_runs\": [\n");
    for (i, r) in sat_records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "    {{\"instance\": \"{}\", \"family\": \"{}\", \"outcome\": \"{}\", \
             \"time_ms\": {:.3}, \"propagations\": {}, \"conflicts\": {}, \"learned\": {}, \
             \"bin_propagations\": {}, \"peak_learned\": {}, \"gc_runs\": {}, \
             \"props_per_sec\": {:.0}, \"conflicts_per_sec\": {:.0}}}",
            json_escape(&r.instance),
            r.family,
            r.outcome,
            r.time_s * 1e3,
            r.propagations,
            r.conflicts,
            r.learned,
            r.bin_propagations,
            r.peak_learned,
            r.gc_runs,
            r.props_per_sec,
            r.conflicts_per_sec,
        );
    }
    out.push_str("\n  ],\n");

    // Per-family aggregate throughput (total propagations / total time:
    // time-weighted, so long runs dominate as they should).
    let mut families: Vec<&str> = sat_records.iter().map(|r| r.family).collect();
    families.sort_unstable();
    families.dedup();
    out.push_str("  \"sat_family_throughput\": {");
    for (i, family) in families.iter().enumerate() {
        let (mut props, mut conflicts, mut time) = (0u64, 0u64, 0.0f64);
        for r in sat_records.iter().filter(|r| r.family == *family) {
            props += r.propagations;
            conflicts += r.conflicts;
            time += r.time_s;
        }
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "\"{}\": {{\"props_per_sec\": {:.0}, \"conflicts_per_sec\": {:.0}, \"time_ms\": {:.3}}}",
            family,
            props as f64 / time.max(1e-9),
            conflicts as f64 / time.max(1e-9),
            time * 1e3,
        );
    }
    out.push_str("},\n");
    let _ = writeln!(out, "  \"maxsat_aborted\": {aborted_total},");
    let _ = writeln!(out, "  \"verify_failures\": {verify_failures}");
    out.push_str("}\n");

    std::fs::write(&args.out, &out).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    for (name, g) in &geo {
        println!("geomean {name}: {g:.3} ms");
    }
    println!("wrote {}", args.out);

    if verify_failures > 0 {
        eprintln!("FAIL: {verify_failures} solutions failed verification");
        std::process::exit(1);
    }
    if args.fail_on_abort && aborted_total > 0 {
        eprintln!(
            "FAIL: {aborted_total} aborted runs (budget {} ms)",
            args.budget_ms
        );
        std::process::exit(1);
    }
}
