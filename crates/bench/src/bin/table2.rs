//! Regenerates **Table 2** of the paper: aborted design-debugging
//! instances per solver.
//!
//! Paper (29 instances from Safarpour et al., 1000 s timeout):
//!
//! | maxsatz | pbo | msu4-v1 | msu4-v2 |
//! |---------|-----|---------|---------|
//! | 26      | 21  | 3       | 3       |
//!
//! The reproduction generates 29 fault-injected circuit debugging
//! instances (partial MaxSAT). Expected shape: maxsatz and pbo abort on
//! most, msu4 on few or none.
//!
//! Usage: `table2 [--scale N] [--budget-ms MS] [--seed S]`

use std::time::Duration;

use coremax_bench::{aborted_counts, consistency_violations, run_solver_over, PAPER_SOLVERS};
use coremax_instances::{debug_suite, SuiteConfig};

fn main() {
    let mut scale = 1usize;
    let mut budget_ms = 2_000u64;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--budget-ms" => {
                budget_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(budget_ms);
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: table2 [--scale N] [--budget-ms MS] [--seed S]"
                );
                std::process::exit(2);
            }
        }
    }

    let suite = debug_suite(&SuiteConfig { scale, seed });
    let budget = Duration::from_millis(budget_ms);
    println!(
        "c Table 2 reproduction: {} design-debugging instances, {budget_ms} ms budget",
        suite.len()
    );

    let mut all_records = Vec::new();
    for solver in PAPER_SOLVERS {
        eprintln!("running {solver} over {} instances…", suite.len());
        all_records.extend(run_solver_over(solver, &suite, budget));
    }

    let bad = consistency_violations(&all_records);
    if !bad.is_empty() {
        eprintln!("WARNING: solvers disagree on {bad:?}");
    }

    println!();
    println!(
        "Table 2: Design debugging instances — aborted (of {})",
        suite.len()
    );
    print!("{:<8}", "Total");
    for (name, _) in aborted_counts(&all_records, &PAPER_SOLVERS) {
        print!("{name:>9}");
    }
    println!();
    print!("{:<8}", suite.len());
    for (_, aborted) in aborted_counts(&all_records, &PAPER_SOLVERS) {
        print!("{aborted:>9}");
    }
    println!();
    println!();
    println!(
        "paper    {:>9}{:>9}{:>9}{:>9}  (of 29, 1000 s)",
        26, 21, 3, 3
    );
}
