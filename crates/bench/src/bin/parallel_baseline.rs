//! `parallel_baseline` — reproducible parallel-vs-sequential baseline
//! over the mixed batch suite.
//!
//! Three measurements, all over the same instances and the same solver
//! configuration, written as one JSON trajectory (`BENCH_pr5.json` at
//! the repo root by convention):
//!
//! 1. **Sequential batch** — `solve_batch` with one worker: the
//!    reference wall-clock and the reference answers.
//! 2. **Parallel batch** — `solve_batch` with `--jobs` workers: the
//!    speedup claim, plus a per-instance differential check (status and
//!    cost must match the sequential run exactly — the determinism
//!    guarantee, measured rather than assumed).
//! 3. **Portfolio race** — every instance raced by the full portfolio:
//!    the winner's answer must also agree, and the winner distribution
//!    is recorded.
//!
//! Every solution is verified against its instance; any verification
//! failure exits 1 unconditionally. `--fail-on-disagreement` exits 1 on
//! any sequential/parallel/portfolio answer divergence,
//! `--fail-on-abort` on any budget abort, and `--min-speedup X`
//! enforces a batch speedup floor — skipped (with a note) on hosts with
//! fewer than 4 cores, where there is no parallelism to measure.
//!
//! Usage:
//! `parallel_baseline [--out FILE] [--scale N] [--seed S] [--budget-ms MS]
//!                    [--jobs N] [--solver NAME] [--min-speedup X]
//!                    [--fail-on-disagreement] [--fail-on-abort] [--skip-portfolio]`

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use coremax::{verify_solution, MaxSatSolver, MaxSatStatus, Stratified};
use coremax_bench::solver_by_name_send;
use coremax_instances::{batch_suite, Instance, SuiteConfig};
use coremax_par::{solve_batch, BatchOptions, BatchReport, Portfolio};
use coremax_sat::Budget;

struct Args {
    out: String,
    scale: usize,
    seed: u64,
    budget_ms: u64,
    jobs: usize,
    solver: String,
    min_speedup: f64,
    fail_on_disagreement: bool,
    fail_on_abort: bool,
    skip_portfolio: bool,
}

fn detected_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl Default for Args {
    fn default() -> Self {
        Args {
            out: "BENCH_pr5.json".into(),
            scale: 1,
            seed: 42,
            budget_ms: 8_000,
            jobs: detected_cores(),
            solver: "msu4v2".into(),
            min_speedup: 0.0,
            fail_on_disagreement: false,
            fail_on_abort: false,
            skip_portfolio: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => args.out = value("--out"),
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--budget-ms" => args.budget_ms = value("--budget-ms").parse().expect("budget-ms"),
            "--jobs" => args.jobs = value("--jobs").parse::<usize>().expect("jobs").max(1),
            "--solver" => args.solver = value("--solver"),
            "--min-speedup" => {
                args.min_speedup = value("--min-speedup").parse().expect("min-speedup");
            }
            "--fail-on-disagreement" => args.fail_on_disagreement = true,
            "--fail-on-abort" => args.fail_on_abort = true,
            "--skip-portfolio" => args.skip_portfolio = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The batch factory: the named experiment solver behind the
/// stratification router, so one configuration serves the mixed
/// (unweighted + weighted) suite.
fn make_solver(name: &str) -> Box<dyn MaxSatSolver + Send> {
    let inner = solver_by_name_send(name);
    if inner.supports_weights() {
        inner
    } else {
        Box::new(Stratified::new(inner))
    }
}

fn status_name(status: MaxSatStatus) -> &'static str {
    match status {
        MaxSatStatus::Optimal => "optimal",
        MaxSatStatus::Infeasible => "infeasible",
        MaxSatStatus::Unknown => "unknown",
    }
}

fn is_exact(status: MaxSatStatus) -> bool {
    matches!(status, MaxSatStatus::Optimal | MaxSatStatus::Infeasible)
}

/// Two answers disagree only when BOTH are exact and differ: an
/// `Unknown` under budget pressure is an abort (gated separately by
/// `--fail-on-abort`), and which run aborts first on a loaded host is
/// timing noise, not a determinism violation.
fn disagrees(a: &coremax::MaxSatSolution, b: &coremax::MaxSatSolution) -> bool {
    is_exact(a.status) && is_exact(b.status) && (a.status != b.status || a.cost != b.cost)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn run_batch(suite: &[Instance], solver: &str, jobs: usize, budget_ms: u64) -> BatchReport {
    let items: Vec<(&str, &coremax_cnf::WcnfFormula)> =
        suite.iter().map(|i| (i.name.as_str(), &i.wcnf)).collect();
    solve_batch(
        &items,
        || make_solver(solver),
        &BatchOptions {
            jobs,
            budget: Budget::new().with_timeout(Duration::from_millis(budget_ms)),
        },
    )
}

fn main() {
    let args = parse_args();
    let cores = detected_cores();
    let mut suite = batch_suite(&SuiteConfig {
        scale: args.scale,
        seed: args.seed,
    });
    // Longest-processing-time-first order (clause count as the work
    // proxy, name as the deterministic tie-break): the couple of heavy
    // equiv instances dominate the suite, and handing them to workers
    // at t=0 keeps the parallel makespan near max(instance) instead of
    // wherever they happen to land in the queue. Sequential wall time
    // is order-independent, and the differential zip below compares
    // like with like because both runs share this order.
    suite.sort_by(|a, b| {
        b.wcnf
            .num_clauses()
            .cmp(&a.wcnf.num_clauses())
            .then_with(|| a.name.cmp(&b.name))
    });
    eprintln!(
        "parallel_baseline: {} instances, solver {}, jobs {}, {} cores, {} ms budget",
        suite.len(),
        args.solver,
        args.jobs,
        cores,
        args.budget_ms
    );

    // ---- 1. Sequential reference ----
    eprintln!("sequential batch (jobs=1)...");
    let seq = run_batch(&suite, &args.solver, 1, args.budget_ms);
    // ---- 2. Parallel batch ----
    eprintln!("parallel batch (jobs={})...", args.jobs);
    let par = run_batch(&suite, &args.solver, args.jobs, args.budget_ms);

    let mut aborts = 0usize;
    let mut verify_failures = 0usize;
    let mut disagreements: Vec<String> = Vec::new();
    for (instance, (s, p)) in suite
        .iter()
        .zip(seq.outcomes.iter().zip(par.outcomes.iter()))
    {
        for (label, outcome) in [("seq", s), ("par", p)] {
            if outcome.solution.status == MaxSatStatus::Unknown {
                aborts += 1;
                eprintln!("  ABORT ({label}): {}", instance.name);
            }
            if !verify_solution(&instance.wcnf, &outcome.solution) {
                verify_failures += 1;
                eprintln!("  VERIFY FAIL ({label}): {}", instance.name);
            }
        }
        if disagrees(&s.solution, &p.solution) {
            disagreements.push(instance.name.clone());
            eprintln!(
                "  DISAGREEMENT: {} seq=({}, {:?}) par=({}, {:?})",
                instance.name,
                status_name(s.solution.status),
                s.solution.cost,
                status_name(p.solution.status),
                p.solution.cost
            );
        }
    }

    // ---- 3. Portfolio race per instance ----
    let mut portfolio_rows = String::new();
    let mut portfolio_disagreements = 0usize;
    let mut portfolio_ms_total = 0.0f64;
    if !args.skip_portfolio {
        eprintln!("portfolio race (jobs={})...", args.jobs);
        let mut portfolio = Portfolio::new(args.jobs);
        portfolio.set_budget(Budget::new().with_timeout(Duration::from_millis(args.budget_ms)));
        for (i, (instance, s)) in suite.iter().zip(seq.outcomes.iter()).enumerate() {
            let t = Instant::now();
            let outcome = portfolio.solve(&instance.wcnf);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            portfolio_ms_total += ms;
            if outcome.solution.status == MaxSatStatus::Unknown {
                aborts += 1;
                eprintln!("  ABORT (portfolio): {}", instance.name);
            }
            if !verify_solution(&instance.wcnf, &outcome.solution) {
                verify_failures += 1;
                eprintln!("  VERIFY FAIL (portfolio): {}", instance.name);
            }
            let agrees = !disagrees(&outcome.solution, &s.solution);
            if !agrees {
                portfolio_disagreements += 1;
                eprintln!("  PORTFOLIO DISAGREEMENT: {}", instance.name);
            }
            if i > 0 {
                portfolio_rows.push_str(",\n");
            }
            let _ = write!(
                portfolio_rows,
                "    {{\"instance\": \"{}\", \"winner\": {}, \"status\": \"{}\", \
                 \"cost\": {}, \"time_ms\": {:.3}, \"agrees\": {}}}",
                json_escape(&instance.name),
                outcome
                    .winner
                    .map_or("null".into(), |w| format!("\"{}\"", json_escape(w))),
                status_name(outcome.solution.status),
                outcome
                    .solution
                    .cost
                    .map_or("null".into(), |c| c.to_string()),
                ms,
                agrees,
            );
        }
    }

    let seq_wall_ms = seq.wall_time.as_secs_f64() * 1e3;
    let par_wall_ms = par.wall_time.as_secs_f64() * 1e3;
    let speedup = seq_wall_ms / par_wall_ms.max(1e-9);

    // ---- JSON trajectory ----
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"suite\": {{\"scale\": {}, \"seed\": {}, \"instances\": {}}},",
        args.scale,
        args.seed,
        suite.len()
    );
    let _ = writeln!(out, "  \"solver\": \"{}\",", json_escape(&args.solver));
    let _ = writeln!(out, "  \"budget_ms\": {},", args.budget_ms);
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"jobs\": {},", args.jobs);
    out.push_str("  \"batch_runs\": [\n");
    for (i, (instance, (s, p))) in suite
        .iter()
        .zip(seq.outcomes.iter().zip(par.outcomes.iter()))
        .enumerate()
    {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "    {{\"instance\": \"{}\", \"family\": \"{}\", \
             \"seq\": {{\"status\": \"{}\", \"cost\": {}, \"time_ms\": {:.3}}}, \
             \"par\": {{\"status\": \"{}\", \"cost\": {}, \"time_ms\": {:.3}}}, \
             \"agrees\": {}}}",
            json_escape(&instance.name),
            instance.family,
            status_name(s.solution.status),
            s.solution.cost.map_or("null".into(), |c| c.to_string()),
            s.solution.stats.wall_time.as_secs_f64() * 1e3,
            status_name(p.solution.status),
            p.solution.cost.map_or("null".into(), |c| c.to_string()),
            p.solution.stats.wall_time.as_secs_f64() * 1e3,
            !disagrees(&s.solution, &p.solution),
        );
    }
    out.push_str("\n  ],\n");
    if !args.skip_portfolio {
        out.push_str("  \"portfolio_runs\": [\n");
        out.push_str(&portfolio_rows);
        out.push_str("\n  ],\n");
        let _ = writeln!(
            out,
            "  \"portfolio\": {{\"total_ms\": {:.3}, \"disagreements\": {}}},",
            portfolio_ms_total, portfolio_disagreements
        );
    }
    let _ = writeln!(
        out,
        "  \"batch\": {{\"sequential_wall_ms\": {:.3}, \"parallel_wall_ms\": {:.3}, \
         \"speedup\": {:.3}, \"optimal\": {}, \"infeasible\": {}, \"unknown\": {}}},",
        seq_wall_ms, par_wall_ms, speedup, par.optimal, par.infeasible, par.unknown
    );
    let _ = writeln!(out, "  \"aborts\": {aborts},");
    let _ = writeln!(out, "  \"verify_failures\": {verify_failures},");
    let _ = writeln!(
        out,
        "  \"disagreements\": {}",
        disagreements.len() + portfolio_disagreements
    );
    out.push_str("}\n");
    std::fs::write(&args.out, &out).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));

    println!(
        "batch: seq {seq_wall_ms:.1} ms, par {par_wall_ms:.1} ms (jobs={}, cores={cores}), \
         speedup {speedup:.2}x",
        args.jobs
    );
    println!(
        "checks: {} disagreements, {aborts} aborts, {verify_failures} verify failures",
        disagreements.len() + portfolio_disagreements
    );
    println!("wrote {}", args.out);

    if verify_failures > 0 {
        eprintln!("FAIL: {verify_failures} solutions failed verification");
        std::process::exit(1);
    }
    if args.fail_on_disagreement && (!disagreements.is_empty() || portfolio_disagreements > 0) {
        eprintln!(
            "FAIL: {} sequential/parallel disagreements",
            disagreements.len() + portfolio_disagreements
        );
        std::process::exit(1);
    }
    if args.fail_on_abort && aborts > 0 {
        eprintln!("FAIL: {aborts} aborted runs (budget {} ms)", args.budget_ms);
        std::process::exit(1);
    }
    if args.min_speedup > 0.0 {
        if cores < 4 {
            eprintln!(
                "note: speedup floor {} not enforced on a {cores}-core host",
                args.min_speedup
            );
        } else if speedup < args.min_speedup {
            eprintln!(
                "FAIL: batch speedup {speedup:.2}x below the {:.2}x floor",
                args.min_speedup
            );
            std::process::exit(1);
        }
    }
}
