//! `anytime_baseline` — best-cost-at-timeout curves for the certified
//! anytime contract.
//!
//! Solves the generated suite under a ladder of shrinking wall-clock
//! budgets and records, for every (solver, instance, budget) point, the
//! certified interval `[lower_bound, cost]` the run returned, plus the
//! full anytime time-series `(elapsed_ms, lb, ub)` captured live from
//! the solver's bounds events. The JSON trajectory (`BENCH_pr8.json`
//! at the repo root by convention) plots how incumbent quality degrades
//! as the budget tightens — the graceful-degradation curve the anytime
//! contract promises — and how each run's certified interval tightened
//! over wall-clock time within a single budget.
//!
//! Soundness is enforced, not sampled: the run **fails** (exit 1) on
//! any solution that fails verification, any interval with
//! `lower_bound > cost`, any budget-monotonicity violation of the
//! *certificates* (a larger budget must never verify worse than a
//! smaller one… is timing-dependent, so that is NOT checked), and any
//! optimal verdict that disagrees with another solver's optimum on the
//! same instance.
//!
//! Usage:
//! `anytime_baseline [--out FILE] [--scale N] [--seed S]
//!                   [--budgets-ms A,B,C] [--solvers a,b]`

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Duration;

use coremax::MaxSatStatus;
use coremax_bench::{consistency_violations, run_solver_over_traced, RunRecord};
use coremax_instances::{debug_suite, Instance, SuiteConfig};

struct Args {
    out: String,
    scale: usize,
    seed: u64,
    budgets_ms: Vec<u64>,
    solvers: Vec<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            out: "BENCH_pr8.json".into(),
            scale: 1,
            seed: 42,
            // A ladder from comfortable to starved: the tail is where
            // the anytime interval does the work.
            budgets_ms: vec![2000, 200, 50, 10, 2],
            solvers: vec![
                "msu4v2".into(),
                "msu3".into(),
                "wmsu1".into(),
                "oll".into(),
                "maxsatz".into(),
            ],
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match arg.as_str() {
            "--out" => args.out = value("--out"),
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--budgets-ms" => {
                args.budgets_ms = value("--budgets-ms")
                    .split(',')
                    .map(|b| b.parse().expect("budgets-ms"))
                    .collect();
            }
            "--solvers" => {
                args.solvers = value("--solvers").split(',').map(str::to_string).collect();
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn status_name(status: MaxSatStatus) -> &'static str {
    match status {
        MaxSatStatus::Optimal => "optimal",
        MaxSatStatus::Infeasible => "infeasible",
        MaxSatStatus::Unknown => "unknown",
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The run's anytime staircase as a JSON array of
/// `[elapsed_ms, lb, ub|null]` triples.
fn samples_json(r: &RunRecord) -> String {
    r.samples
        .iter()
        .map(|s| {
            format!(
                "[{}, {}, {}]",
                s.elapsed_ms,
                s.lb,
                s.ub.map_or("null".into(), |u| u.to_string())
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// A soundness violation in one record, if any: the hard-fail
/// conditions of the anytime contract that need no oracle.
fn violation(r: &RunRecord) -> Option<String> {
    if !r.verified {
        return Some(format!(
            "{} on {}: solution failed verification",
            r.solver, r.instance
        ));
    }
    if let Some(cost) = r.cost {
        if r.lower_bound > cost {
            return Some(format!(
                "{} on {}: lower bound {} exceeds cost {}",
                r.solver, r.instance, r.lower_bound, cost
            ));
        }
    }
    if r.status == MaxSatStatus::Optimal && r.cost.is_none() {
        return Some(format!(
            "{} on {}: optimal verdict without a cost",
            r.solver, r.instance
        ));
    }
    // Every certified interval in the live time-series must be
    // well-formed, not just the final one.
    for s in &r.samples {
        if let Some(ub) = s.ub {
            if s.lb > ub {
                return Some(format!(
                    "{} on {}: anytime sample at {} ms has lb {} > ub {}",
                    r.solver, r.instance, s.elapsed_ms, s.lb, ub
                ));
            }
        }
    }
    None
}

fn main() {
    let args = parse_args();
    let suite: Vec<Instance> = debug_suite(&SuiteConfig {
        scale: args.scale,
        seed: args.seed,
    });
    assert!(!suite.is_empty(), "empty suite");
    eprintln!(
        "anytime_baseline: {} instances, budgets {:?} ms, solvers {:?}",
        suite.len(),
        args.budgets_ms,
        args.solvers
    );

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"suite\": {{\"scale\": {}, \"seed\": {}, \"instances\": {}}},",
        args.scale,
        args.seed,
        suite.len()
    );
    let _ = writeln!(
        out,
        "  \"budgets_ms\": [{}],",
        args.budgets_ms
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut violations: Vec<String> = Vec::new();
    let mut optimal_records: Vec<RunRecord> = Vec::new();
    // (solver, instance) → tightest lb certified at any budget; the
    // tightest lb must never exceed any optimum another run proved.
    let mut best_lb: HashMap<(String, String), u64> = HashMap::new();
    let mut proven_opt: HashMap<String, u64> = HashMap::new();

    out.push_str("  \"anytime_runs\": [\n");
    let mut first = true;
    for solver_name in &args.solvers {
        for &budget_ms in &args.budgets_ms {
            eprintln!("anytime layer: {solver_name} at {budget_ms} ms");
            let records = run_solver_over_traced(
                solver_name,
                &suite,
                Duration::from_millis(budget_ms),
                false,
            );
            for r in &records {
                if let Some(v) = violation(r) {
                    eprintln!("  SOUNDNESS VIOLATION: {v}");
                    violations.push(v);
                }
                if r.status == MaxSatStatus::Optimal {
                    optimal_records.push(r.clone());
                    if let Some(c) = r.cost {
                        proven_opt.insert(r.instance.clone(), c);
                    }
                }
                let key = (solver_name.clone(), r.instance.clone());
                let e = best_lb.entry(key).or_insert(0);
                *e = (*e).max(r.lower_bound);
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "    {{\"solver\": \"{}\", \"budget_ms\": {}, \"instance\": \"{}\", \
                     \"family\": \"{}\", \"status\": \"{}\", \"cost\": {}, \"lb\": {}, \
                     \"gap\": {}, \"verified\": {}, \"time_ms\": {:.3}, \"samples\": [{}]}}",
                    json_escape(solver_name),
                    budget_ms,
                    json_escape(&r.instance),
                    r.family,
                    status_name(r.status),
                    r.cost.map_or("null".into(), |c| c.to_string()),
                    r.lower_bound,
                    r.cost.map_or("null".into(), |c| c
                        .saturating_sub(r.lower_bound)
                        .to_string()),
                    r.verified,
                    r.time.as_secs_f64() * 1e3,
                    samples_json(r),
                );
            }
        }
    }
    out.push_str("\n  ],\n");

    // Cross-budget soundness: every lb certified at ANY budget must be
    // ≤ the optimum whenever some run proved it.
    for ((solver, instance), lb) in &best_lb {
        if let Some(&opt) = proven_opt.get(instance) {
            if *lb > opt {
                let v = format!(
                    "{solver} on {instance}: certified lb {lb} exceeds the proven optimum {opt}"
                );
                eprintln!("  SOUNDNESS VIOLATION: {v}");
                violations.push(v);
            }
        }
    }
    // Cross-solver soundness on exact verdicts.
    let disagreements = consistency_violations(&optimal_records);
    for instance in &disagreements {
        let v = format!("optimal verdicts disagree on {instance}");
        eprintln!("  SOUNDNESS VIOLATION: {v}");
        violations.push(v);
    }

    let _ = writeln!(out, "  \"soundness_violations\": {},", violations.len());
    let _ = writeln!(
        out,
        "  \"summary\": {{\"instances\": {}, \"solvers\": {}, \"budgets\": {}}}",
        suite.len(),
        args.solvers.len(),
        args.budgets_ms.len()
    );
    out.push_str("}\n");

    std::fs::write(&args.out, &out).expect("write output");
    eprintln!("anytime_baseline: wrote {}", args.out);

    if !violations.is_empty() {
        eprintln!(
            "anytime_baseline: {} soundness violation(s)",
            violations.len()
        );
        std::process::exit(1);
    }
}
