//! Cactus-plot data: instances solved (y) within a per-instance time
//! budget (x), the standard solver-competition presentation — an
//! extension beyond the paper's tables that makes the same comparison
//! visible as cumulative curves.
//!
//! Output: per solver, rows `solver k time_s` meaning "the k-th fastest
//! solved instance took time_s". Plot with gnuplot:
//! `plot 'data' using 3:2 with steps`.
//!
//! With `--anytime FILE` the binary instead renders the anytime curves
//! recorded by `anytime_baseline` (`BENCH_pr8.json`): one gnuplot block
//! per (solver, instance) with rows `elapsed_ms lb ub`, showing how the
//! certified interval tightened over wall-clock time. Missing incumbents
//! print as `-` (gnuplot: `set datafile missing "-"`). Blocks come from
//! the largest budget in the file unless `--budget-ms` selects another.
//!
//! Usage: `cactus [--scale N] [--budget-ms MS] [--seed S]
//!                [--anytime FILE] [SOLVER...]`

use std::time::Duration;

use coremax_bench::{run_solver_over, PAPER_SOLVERS};
use coremax_instances::{full_suite, SuiteConfig};
use coremax_obs::json::{self, Value};

/// Renders the anytime curves stored in an `anytime_baseline` JSON
/// file; returns an error string on malformed input.
fn render_anytime(path: &str, budget_ms: Option<u64>, solvers: &[String]) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let runs = doc
        .get("anytime_runs")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: no anytime_runs array"))?;

    // Default to the file's largest budget — the richest staircases.
    let budget = match budget_ms {
        Some(b) => b,
        None => runs
            .iter()
            .filter_map(|r| r.get("budget_ms").and_then(Value::as_u64))
            .max()
            .ok_or_else(|| format!("{path}: anytime_runs carry no budget_ms"))?,
    };

    println!(
        "# anytime curves from {path} at budget {budget} ms; \
         blocks: solver/instance, columns: elapsed_ms lb ub"
    );
    let mut blocks = 0usize;
    for run in runs {
        let solver = run.get("solver").and_then(Value::as_str).unwrap_or("?");
        if !solvers.is_empty() && !solvers.iter().any(|s| s == solver) {
            continue;
        }
        if run.get("budget_ms").and_then(Value::as_u64) != Some(budget) {
            continue;
        }
        let instance = run.get("instance").and_then(Value::as_str).unwrap_or("?");
        let samples = run
            .get("samples")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("{path}: run {solver}/{instance} has no samples"))?;
        if samples.is_empty() {
            continue;
        }
        println!("\n# solver={solver} instance={instance} budget_ms={budget}");
        for sample in samples {
            let triple = sample
                .as_array()
                .filter(|t| t.len() == 3)
                .ok_or_else(|| format!("{path}: malformed sample in {solver}/{instance}"))?;
            let t = triple[0].as_u64().unwrap_or(0);
            let lb = triple[1].as_u64().unwrap_or(0);
            let ub = triple[2]
                .as_u64()
                .map_or_else(|| "-".to_string(), |u| u.to_string());
            println!("{t} {lb} {ub}");
        }
        blocks += 1;
    }
    println!("\n# {blocks} curve(s)");
    Ok(())
}

fn main() {
    let mut scale = 1usize;
    let mut budget_ms: Option<u64> = None;
    let mut seed = 42u64;
    let mut anytime: Option<String> = None;
    let mut solvers: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--budget-ms" => {
                budget_ms = args.next().and_then(|v| v.parse().ok()).or(budget_ms);
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--anytime" => anytime = args.next(),
            other if !other.starts_with('-') => solvers.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = anytime {
        if let Err(e) = render_anytime(&path, budget_ms, &solvers) {
            eprintln!("{e}");
            std::process::exit(2);
        }
        return;
    }

    if solvers.is_empty() {
        solvers = PAPER_SOLVERS.iter().map(|s| s.to_string()).collect();
    }

    let suite = full_suite(&SuiteConfig { scale, seed });
    let budget_ms = budget_ms.unwrap_or(2_000);
    let budget = Duration::from_millis(budget_ms);
    println!(
        "# cactus data: {} instances, {budget_ms} ms budget; columns: solver k time_s",
        suite.len()
    );
    for solver in &solvers {
        eprintln!("running {solver}…");
        let records = run_solver_over(solver, &suite, budget);
        let mut times: Vec<f64> = records
            .iter()
            .filter(|r| !r.aborted())
            .map(|r| r.time.as_secs_f64())
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        for (k, t) in times.iter().enumerate() {
            println!("{solver} {} {t:.6}", k + 1);
        }
        println!("# {solver}: solved {} of {}", times.len(), suite.len());
    }
}
