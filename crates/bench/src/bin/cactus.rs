//! Cactus-plot data: instances solved (y) within a per-instance time
//! budget (x), the standard solver-competition presentation — an
//! extension beyond the paper's tables that makes the same comparison
//! visible as cumulative curves.
//!
//! Output: per solver, rows `solver k time_s` meaning "the k-th fastest
//! solved instance took time_s". Plot with gnuplot:
//! `plot 'data' using 3:2 with steps`.
//!
//! Usage: `cactus [--scale N] [--budget-ms MS] [--seed S] [SOLVER...]`

use std::time::Duration;

use coremax_bench::{run_solver_over, PAPER_SOLVERS};
use coremax_instances::{full_suite, SuiteConfig};

fn main() {
    let mut scale = 1usize;
    let mut budget_ms = 2_000u64;
    let mut seed = 42u64;
    let mut solvers: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--budget-ms" => {
                budget_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(budget_ms);
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            other if !other.starts_with('-') => solvers.push(other.to_string()),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if solvers.is_empty() {
        solvers = PAPER_SOLVERS.iter().map(|s| s.to_string()).collect();
    }

    let suite = full_suite(&SuiteConfig { scale, seed });
    let budget = Duration::from_millis(budget_ms);
    println!(
        "# cactus data: {} instances, {budget_ms} ms budget; columns: solver k time_s",
        suite.len()
    );
    for solver in &solvers {
        eprintln!("running {solver}…");
        let records = run_solver_over(solver, &suite, budget);
        let mut times: Vec<f64> = records
            .iter()
            .filter(|r| !r.aborted())
            .map(|r| r.time.as_secs_f64())
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        for (k, t) in times.iter().enumerate() {
            println!("{solver} {} {t:.6}", k + 1);
        }
        println!("# {solver}: solved {} of {}", times.len(), suite.len());
    }
}
