//! Regenerates **Table 1** of the paper: number of aborted instances
//! per solver over the full benchmark suite.
//!
//! Paper (691 industrial instances, 1000 s timeout):
//!
//! | maxsatz | pbo | msu4-v1 | msu4-v2 |
//! |---------|-----|---------|---------|
//! | 554     | 248 | 212     | 163     |
//!
//! The reproduction runs the generated suite (same families, laptop
//! scale) with a scaled timeout. The expected *shape*: maxsatz aborts
//! by far the most, pbo fewer, msu4 the least.
//!
//! Usage: `table1 [--scale N] [--budget-ms MS] [--seed S]`

use std::time::Duration;

use coremax_bench::{aborted_counts, consistency_violations, run_solver_over, PAPER_SOLVERS};
use coremax_instances::{full_suite, SuiteConfig};

fn main() {
    let mut scale = 1usize;
    let mut budget_ms = 2_000u64;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--budget-ms" => {
                budget_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(budget_ms);
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: table1 [--scale N] [--budget-ms MS] [--seed S]"
                );
                std::process::exit(2);
            }
        }
    }

    let suite = full_suite(&SuiteConfig { scale, seed });
    let budget = Duration::from_millis(budget_ms);
    println!(
        "c Table 1 reproduction: {} instances, {budget_ms} ms budget, scale {scale}",
        suite.len()
    );

    let mut all_records = Vec::new();
    for solver in PAPER_SOLVERS {
        eprintln!("running {solver} over {} instances…", suite.len());
        let records = run_solver_over(solver, &suite, budget);
        all_records.extend(records);
    }

    let bad = consistency_violations(&all_records);
    if !bad.is_empty() {
        eprintln!("WARNING: solvers disagree on {bad:?}");
    }

    println!();
    println!("Table 1: Number of aborted instances (of {})", suite.len());
    print!("{:<8}", "Total");
    for (name, _) in aborted_counts(&all_records, &PAPER_SOLVERS) {
        print!("{name:>9}");
    }
    println!();
    print!("{:<8}", suite.len());
    for (_, aborted) in aborted_counts(&all_records, &PAPER_SOLVERS) {
        print!("{aborted:>9}");
    }
    println!();
    println!();
    println!(
        "paper    {:>9}{:>9}{:>9}{:>9}  (of 691, 1000 s)",
        554, 248, 212, 163
    );

    // Per-family breakdown (extension beyond the paper's table).
    println!();
    println!("per-family aborted counts:");
    let mut families: Vec<&str> = all_records.iter().map(|r| r.family).collect();
    families.sort_unstable();
    families.dedup();
    print!("{:<8}", "family");
    for s in PAPER_SOLVERS {
        print!("{s:>9}");
    }
    println!("{:>7}", "n");
    for family in families {
        print!("{family:<8}");
        let n = all_records
            .iter()
            .filter(|r| r.family == family && r.solver == PAPER_SOLVERS[0])
            .count();
        for solver in PAPER_SOLVERS {
            let aborted = all_records
                .iter()
                .filter(|r| r.family == family && r.solver == solver && r.aborted())
                .count();
            print!("{aborted:>9}");
        }
        println!("{n:>7}");
    }
}
