//! `obs_overhead_check` — guards the observability stack's zero-cost
//! promise.
//!
//! Reads a `perf_baseline` JSON report (produced with every sink
//! disabled — the default), sums raw propagation counts and wall time
//! over the `maxsat_runs` and `sat_runs` sections into one overall
//! propagations-per-second figure, and compares it against a reference
//! figure measured before the event hooks were added. The run **fails**
//! (exit 1) if throughput regressed by more than the tolerance — i.e.
//! if the disabled-path atomic checks stopped being free.
//!
//! Usage:
//! `obs_overhead_check --perf FILE --ref-pps N [--tolerance-pct P]`
//!
//! Prints a one-object JSON verdict on stdout so CI logs and
//! `BENCH_pr8.json` can carry the numbers verbatim.

use coremax_obs::json::{self, Value};

fn value_of(args: &mut std::env::Args, name: &str) -> String {
    args.next()
        .unwrap_or_else(|| panic!("missing value for {name}"))
}

/// Sums `propagations` and `time_ms` over one array-of-runs section;
/// missing sections contribute nothing.
fn section_totals(doc: &Value, key: &str) -> (u64, f64) {
    let mut props = 0u64;
    let mut time_ms = 0.0f64;
    if let Some(runs) = doc.get(key).and_then(Value::as_array) {
        for run in runs {
            props += run.get("propagations").and_then(Value::as_u64).unwrap_or(0);
            time_ms += run.get("time_ms").and_then(Value::as_f64).unwrap_or(0.0);
        }
    }
    (props, time_ms)
}

fn main() {
    let mut perf: Option<String> = None;
    let mut ref_pps: Option<f64> = None;
    let mut tolerance_pct = 3.0f64;
    let mut args = std::env::args();
    args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--perf" => perf = Some(value_of(&mut args, "--perf")),
            "--ref-pps" => {
                ref_pps = Some(value_of(&mut args, "--ref-pps").parse().expect("ref-pps"));
            }
            "--tolerance-pct" => {
                tolerance_pct = value_of(&mut args, "--tolerance-pct")
                    .parse()
                    .expect("tolerance-pct");
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let perf = perf.expect("--perf FILE is required");
    let ref_pps = ref_pps.expect("--ref-pps N is required");

    let text = std::fs::read_to_string(&perf).unwrap_or_else(|e| panic!("cannot read {perf}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("{perf}: {e}"));

    let (maxsat_props, maxsat_ms) = section_totals(&doc, "maxsat_runs");
    let (sat_props, sat_ms) = section_totals(&doc, "sat_runs");
    let props = maxsat_props + sat_props;
    let time_ms = maxsat_ms + sat_ms;
    assert!(props > 0 && time_ms > 0.0, "{perf}: no runs to measure");

    let pps = props as f64 / (time_ms / 1e3);
    let ratio = pps / ref_pps;
    let floor = 1.0 - tolerance_pct / 100.0;
    let pass = ratio >= floor;

    println!(
        "{{\"propagations\": {props}, \"time_ms\": {time_ms:.3}, \
         \"props_per_sec\": {pps:.0}, \"ref_props_per_sec\": {ref_pps:.0}, \
         \"ratio\": {ratio:.4}, \"tolerance_pct\": {tolerance_pct}, \
         \"pass\": {pass}}}"
    );
    if !pass {
        eprintln!(
            "obs_overhead_check: throughput regressed to {:.1}% of the \
             reference (floor {:.1}%)",
            ratio * 100.0,
            floor * 100.0
        );
        std::process::exit(1);
    }
    eprintln!(
        "obs_overhead_check: {pps:.0} props/sec vs reference {ref_pps:.0} \
         ({:+.1}%) — within tolerance",
        (ratio - 1.0) * 100.0
    );
}
