//! Regenerates the scatter-plot data of **Figures 1–3**: per-instance
//! CPU time of one solver against another.
//!
//! - Figure 1: `scatter maxsatz msu4v2`
//! - Figure 2: `scatter pbo msu4v2`
//! - Figure 3: `scatter msu4v1 msu4v2`
//!
//! Output: one `instance  x_time_s  y_time_s` row per instance (aborted
//! runs are clamped to the budget, as in the paper where aborted points
//! sit on the timeout border), followed by a win/loss summary — the
//! machine-readable form of the figures, plottable with gnuplot:
//! `plot 'data' using 2:3`.
//!
//! Usage: `scatter X_SOLVER Y_SOLVER [--scale N] [--budget-ms MS] [--seed S]`

use std::time::Duration;

use coremax_bench::{run_solver_over, solver_by_name};
use coremax_instances::{full_suite, SuiteConfig};

fn main() {
    let mut positional = Vec::new();
    let mut scale = 1usize;
    let mut budget_ms = 2_000u64;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--budget-ms" => {
                budget_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(budget_ms);
            }
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        eprintln!("usage: scatter X_SOLVER Y_SOLVER [--scale N] [--budget-ms MS] [--seed S]");
        eprintln!("solvers: maxsatz pbo msu4v1 msu4v2 msu1 msu2 msu3 linear binary");
        std::process::exit(2);
    }
    let (x_name, y_name) = (positional[0].as_str(), positional[1].as_str());
    // Validate early for a clean error message.
    let _ = solver_by_name(x_name);
    let _ = solver_by_name(y_name);

    let suite = full_suite(&SuiteConfig { scale, seed });
    let budget = Duration::from_millis(budget_ms);
    eprintln!(
        "scatter {x_name} vs {y_name}: {} instances, {budget_ms} ms budget",
        suite.len()
    );

    let xs = run_solver_over(x_name, &suite, budget);
    let ys = run_solver_over(y_name, &suite, budget);

    let clamp = |r: &coremax_bench::RunRecord| -> f64 {
        if r.aborted() {
            budget.as_secs_f64()
        } else {
            r.time.as_secs_f64()
        }
    };

    println!(
        "# {x_name}(s)  {y_name}(s)  — timeout {} s",
        budget.as_secs_f64()
    );
    println!("# instance  {x_name}  {y_name}");
    let mut x_wins = 0usize;
    let mut y_wins = 0usize;
    let mut max_ratio: f64 = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        assert_eq!(x.instance, y.instance);
        let (tx, ty) = (clamp(x), clamp(y));
        println!("{} {:.6} {:.6}", x.instance, tx, ty);
        if tx < ty {
            x_wins += 1;
        } else if ty < tx {
            y_wins += 1;
        }
        if (ty > 0.0 && !x.aborted()) || (x.aborted() && !y.aborted()) {
            max_ratio = max_ratio.max(tx / ty.max(1e-6));
        }
    }
    println!(
        "# summary: {x_name} faster on {x_wins}, {y_name} faster on {y_wins} of {} instances",
        xs.len()
    );
    println!("# max speedup of {y_name} over {x_name}: {max_ratio:.1}x (timeout-clamped)");
    println!(
        "# aborted: {x_name}={} {y_name}={}",
        xs.iter().filter(|r| r.aborted()).count(),
        ys.iter().filter(|r| r.aborted()).count()
    );
}
