//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! The binaries (`table1`, `table2`, `scatter`) and Criterion benches
//! use these helpers to run every solver over the generated instance
//! suite under a per-instance budget and collect outcome/time rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fi;

use std::time::Duration;

use coremax::{
    verify_solution, BinarySearchSat, BranchBound, LinearSearchSat, MaxSatSolver, MaxSatStatus,
    Msu1, Msu2, Msu3, Msu4, Oll, PboBaseline, Preprocessed, Stratified, WeightedByReplication,
    Wmsu1,
};
use coremax_instances::Instance;
use coremax_sat::Budget;
use coremax_simp::SimpStats;

/// One solver run on one instance.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Instance name.
    pub instance: String,
    /// Instance family name.
    pub family: &'static str,
    /// Solver name.
    pub solver: &'static str,
    /// Whether the run went through the preprocessing pipeline.
    pub preprocess: bool,
    /// Outcome.
    pub status: MaxSatStatus,
    /// Proven (or best-known) cost.
    pub cost: Option<u64>,
    /// Certified lower bound — equals `cost` on optimal runs, a sound
    /// partial bound on aborted ones.
    pub lower_bound: u64,
    /// Wall-clock time.
    pub time: Duration,
    /// CDCL propagations aggregated over the run's SAT calls.
    pub sat_propagations: u64,
    /// CDCL conflicts aggregated over the run's SAT calls.
    pub sat_conflicts: u64,
    /// Incremental totalizer bound extensions (OLL-style solvers;
    /// zero for the rebuild-per-core drivers).
    pub totalizer_extensions: u64,
    /// Preprocessing counters (zeros when `preprocess` is false).
    pub simp: SimpStats,
    /// `verify_solution` verdict against the *original* instance —
    /// reconstructed models must check out exactly like direct ones.
    pub verified: bool,
    /// Anytime time-series: the certified `[lb, ub]` staircase sampled
    /// from the run's bounds/incumbent events, relative to the run's
    /// start. Empty unless the run was captured by
    /// [`run_solver_over_traced`].
    pub samples: Vec<coremax_obs::BoundSample>,
}

impl RunRecord {
    /// `true` when the paper would count the run as *aborted*.
    #[must_use]
    pub fn aborted(&self) -> bool {
        self.status == MaxSatStatus::Unknown
    }
}

/// Builds a solver by experiment name. The set matches the paper's
/// evaluation: `maxsatz`, `pbo`, `msu4v1`, `msu4v2`, plus the extended
/// family (`msu1`, `msu2`, `msu3`, `linear`, `binary`) and the weighted
/// line-up (`wmsu1`, `strat-msu3`, `strat-msu4`, `replication`).
///
/// # Panics
///
/// Panics on an unknown name (experiment configs are static).
#[must_use]
pub fn solver_by_name(name: &str) -> Box<dyn MaxSatSolver> {
    solver_by_name_send(name) as Box<dyn MaxSatSolver>
}

/// [`solver_by_name`] as a [`Send`] trait object — what the parallel
/// baseline moves across batch workers.
///
/// # Panics
///
/// Panics on an unknown name (experiment configs are static).
#[must_use]
pub fn solver_by_name_send(name: &str) -> Box<dyn MaxSatSolver + Send> {
    match name {
        "maxsatz" => Box::new(BranchBound::new()),
        "pbo" => Box::new(PboBaseline::new()),
        "msu4v1" => Box::new(Msu4::v1()),
        "msu4v2" => Box::new(Msu4::v2()),
        "msu4inc" => Box::new(coremax::Msu4Incremental::new()),
        "msu1" => Box::new(Msu1::new()),
        "msu2" => Box::new(Msu2::new()),
        "msu3" => Box::new(Msu3::new()),
        "linear" => Box::new(LinearSearchSat::new()),
        "binary" => Box::new(BinarySearchSat::new()),
        "wmsu1" => Box::new(Wmsu1::new()),
        "oll" => Box::new(Oll::new()),
        "strat-msu3" => Box::new(Stratified::new(Msu3::new())),
        "strat-msu4" => Box::new(Stratified::new(Msu4::v2())),
        "strat-oll" => Box::new(Stratified::new(Oll::new())),
        "replication" => Box::new(WeightedByReplication::new(Msu3::new())),
        other => panic!("unknown experiment solver `{other}`"),
    }
}

/// The paper's Table 1 / Table 2 solver line-up.
pub const PAPER_SOLVERS: [&str; 4] = ["maxsatz", "pbo", "msu4v1", "msu4v2"];

/// The weighted-evaluation line-up: the replication baseline against
/// the native weight-aware paths, including the OLL/RC2-class solver
/// bare and behind the stratified wrapper.
pub const WEIGHTED_SOLVERS: [&str; 6] = [
    "replication",
    "wmsu1",
    "strat-msu3",
    "strat-msu4",
    "oll",
    "strat-oll",
];

/// Runs `solver_name` over `instances` with `budget` per instance
/// (no preprocessing).
#[must_use]
pub fn run_solver_over(
    solver_name: &str,
    instances: &[Instance],
    budget: Duration,
) -> Vec<RunRecord> {
    run_solver_over_opts(solver_name, instances, budget, false)
}

/// Runs `solver_name` over `instances` with `budget` per instance,
/// optionally wrapping the solver in the [`Preprocessed`] pipeline.
/// Every solution — reconstructed or not — is verified against the
/// original instance and the verdict recorded.
#[must_use]
pub fn run_solver_over_opts(
    solver_name: &str,
    instances: &[Instance],
    budget: Duration,
    preprocess: bool,
) -> Vec<RunRecord> {
    let inner = solver_by_name(solver_name);
    let mut solver: Box<dyn MaxSatSolver> = if preprocess {
        Box::new(Preprocessed::new(inner))
    } else {
        inner
    };
    // Tables are keyed by the experiment alias, not the solver's own
    // `name()` (e.g. `msu4v2` instead of `msu4-v2`).
    let static_name: &'static str = experiment_alias(solver_name);
    instances
        .iter()
        .map(|instance| {
            solver.set_budget(Budget::new().with_timeout(budget));
            let solution = solver.solve(&instance.wcnf);
            let verified = verify_solution(&instance.wcnf, &solution);
            RunRecord {
                instance: instance.name.clone(),
                family: instance.family.name(),
                solver: static_name,
                preprocess,
                status: solution.status,
                cost: solution.cost,
                lower_bound: solution.lower_bound,
                time: solution.stats.wall_time,
                sat_propagations: solution.stats.sat.propagations,
                sat_conflicts: solution.stats.sat.conflicts,
                totalizer_extensions: solution.stats.totalizer_extensions,
                simp: solution.stats.simp,
                verified,
                samples: Vec::new(),
            }
        })
        .collect()
}

/// [`run_solver_over_opts`] with an observability collector attached to
/// every run: each record's [`RunRecord::samples`] holds the certified
/// anytime `(elapsed, lb, ub)` staircase reconstructed from the run's
/// bounds and incumbent events.
///
/// Installs the process-wide event sink for the duration of each solve,
/// so it must not run concurrently with other traced work.
#[must_use]
pub fn run_solver_over_traced(
    solver_name: &str,
    instances: &[Instance],
    budget: Duration,
    preprocess: bool,
) -> Vec<RunRecord> {
    let inner = solver_by_name(solver_name);
    let mut solver: Box<dyn MaxSatSolver> = if preprocess {
        Box::new(Preprocessed::new(inner))
    } else {
        inner
    };
    let static_name: &'static str = experiment_alias(solver_name);
    instances
        .iter()
        .map(|instance| {
            let collector = std::sync::Arc::new(coremax_obs::CollectorSink::new());
            let guard = coremax_obs::install(collector.clone(), false);
            solver.set_budget(Budget::new().with_timeout(budget));
            let solution = solver.solve(&instance.wcnf);
            drop(guard);
            let verified = verify_solution(&instance.wcnf, &solution);
            RunRecord {
                instance: instance.name.clone(),
                family: instance.family.name(),
                solver: static_name,
                preprocess,
                status: solution.status,
                cost: solution.cost,
                lower_bound: solution.lower_bound,
                time: solution.stats.wall_time,
                sat_propagations: solution.stats.sat.propagations,
                sat_conflicts: solution.stats.sat.conflicts,
                totalizer_extensions: solution.stats.totalizer_extensions,
                simp: solution.stats.simp,
                verified,
                samples: collector.bound_samples(),
            }
        })
        .collect()
}

fn experiment_alias(name: &str) -> &'static str {
    match name {
        "maxsatz" => "maxsatz",
        "pbo" => "pbo",
        "msu4v1" => "msu4v1",
        "msu4v2" => "msu4v2",
        "msu4inc" => "msu4inc",
        "msu1" => "msu1",
        "msu2" => "msu2",
        "msu3" => "msu3",
        "linear" => "linear",
        "binary" => "binary",
        "wmsu1" => "wmsu1",
        "oll" => "oll",
        "strat-msu3" => "strat-msu3",
        "strat-msu4" => "strat-msu4",
        "strat-oll" => "strat-oll",
        "replication" => "replication",
        _ => "unknown",
    }
}

/// Counts aborted instances per solver, in `solvers` order — the shape
/// of the paper's Table 1 and Table 2.
#[must_use]
pub fn aborted_counts(records: &[RunRecord], solvers: &[&str]) -> Vec<(String, usize)> {
    solvers
        .iter()
        .map(|&s| {
            let aborted = records
                .iter()
                .filter(|r| r.solver == s && r.aborted())
                .count();
            (s.to_string(), aborted)
        })
        .collect()
}

/// Checks that all solvers that finished an instance agree on its cost.
/// Returns the disagreeing instance names (empty = consistent).
#[must_use]
pub fn consistency_violations(records: &[RunRecord]) -> Vec<String> {
    use std::collections::HashMap;
    let mut by_instance: HashMap<&str, Vec<&RunRecord>> = HashMap::new();
    for r in records {
        if r.status == MaxSatStatus::Optimal {
            by_instance.entry(&r.instance).or_default().push(r);
        }
    }
    let mut bad = Vec::new();
    for (name, rs) in by_instance {
        let costs: Vec<Option<u64>> = rs.iter().map(|r| r.cost).collect();
        if costs.windows(2).any(|w| w[0] != w[1]) {
            bad.push(name.to_string());
        }
    }
    bad.sort();
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_instances::{full_suite, SuiteConfig};

    #[test]
    fn solver_registry_complete() {
        for name in PAPER_SOLVERS {
            let s = solver_by_name(name);
            assert!(!s.name().is_empty());
        }
        for name in WEIGHTED_SOLVERS {
            let s = solver_by_name(name);
            assert!(s.supports_weights(), "{name} must take weighted input");
        }
    }

    #[test]
    fn weighted_lineup_agrees_on_the_weighted_suite() {
        use coremax_instances::weighted_suite;
        let suite: Vec<_> = weighted_suite(&SuiteConfig::default())
            .into_iter()
            // Keep it quick: one instance per distribution, under the
            // replication cap so all four solvers finish.
            .filter(|i| i.wcnf.total_soft_weight() <= 100_000)
            .take(3)
            .collect();
        assert!(!suite.is_empty());
        let mut records = Vec::new();
        for name in WEIGHTED_SOLVERS {
            records.extend(run_solver_over_opts(
                name,
                &suite,
                Duration::from_secs(20),
                false,
            ));
        }
        assert!(records.iter().all(|r| r.verified), "all runs verified");
        assert!(
            consistency_violations(&records).is_empty(),
            "weighted solvers disagree"
        );
    }

    #[test]
    #[should_panic(expected = "unknown experiment solver")]
    fn unknown_solver_panics() {
        let _ = solver_by_name("does-not-exist");
    }

    #[test]
    fn run_and_count() {
        let suite = full_suite(&SuiteConfig::default());
        let small: Vec<_> = suite.into_iter().take(3).collect();
        let records = run_solver_over("msu4v2", &small, Duration::from_secs(20));
        assert_eq!(records.len(), 3);
        let counts = aborted_counts(&records, &["msu4v2"]);
        assert_eq!(counts[0].0, "msu4v2");
        assert!(counts[0].1 <= 3);
        assert!(records.iter().all(|r| !r.preprocess));
        assert!(records.iter().all(|r| r.verified));
    }

    #[test]
    fn preprocessed_runs_agree_and_verify() {
        let suite = full_suite(&SuiteConfig::default());
        // The debug family is partial MaxSAT: the simplifier has hard
        // clauses to chew on there.
        let small: Vec<_> = suite
            .into_iter()
            .filter(|i| i.family.name() == "debug")
            .take(2)
            .collect();
        assert!(!small.is_empty());
        let plain = run_solver_over_opts("msu4v2", &small, Duration::from_secs(20), false);
        let pre = run_solver_over_opts("msu4v2", &small, Duration::from_secs(20), true);
        for (a, b) in plain.iter().zip(&pre) {
            assert_eq!(a.instance, b.instance);
            assert!(b.preprocess);
            assert_eq!(a.cost, b.cost, "preprocessing changed the optimum");
            assert!(b.verified, "reconstructed model failed verification");
            assert!(b.simp.vars_in > 0, "simp counters populated");
        }
    }

    #[test]
    fn consistency_check_detects_disagreement() {
        let a = RunRecord {
            instance: "x".into(),
            family: "php",
            solver: "a",
            preprocess: false,
            status: MaxSatStatus::Optimal,
            cost: Some(1),
            lower_bound: 1,
            time: Duration::ZERO,
            sat_propagations: 0,
            sat_conflicts: 0,
            totalizer_extensions: 0,
            simp: SimpStats::default(),
            verified: true,
            samples: Vec::new(),
        };
        let mut b = a.clone();
        b.solver = "b";
        b.cost = Some(2);
        assert_eq!(
            consistency_violations(&[a.clone(), b]),
            vec!["x".to_string()]
        );
        let b2 = RunRecord {
            cost: Some(1),
            solver: "b",
            ..a.clone()
        };
        assert!(consistency_violations(&[a, b2]).is_empty());
    }
}
