//! `coremax_fi` — fault injection for the anytime-soundness contract.
//!
//! Graceful degradation is a *proven* property here, not a hoped-for
//! one: this module arms budget-level faults (stop flags raised from a
//! concurrent thread at a randomized instant, already-expired and
//! near-expired deadlines, conflict and propagation caps) against any
//! [`MaxSatSolver`] and checks the returned solution against the
//! soundness invariants every budget-exhausted solve must satisfy:
//!
//! 1. never a wrong exact verdict — `Optimal` must name the true
//!    optimum and `Infeasible` must only appear on truly infeasible
//!    instances, no matter where the fault landed;
//! 2. a returned incumbent satisfies the hard clauses at *exactly* its
//!    reported cost (an upper-bound certificate);
//! 3. the certified interval brackets the truth:
//!    `lower_bound ≤ optimum ≤ incumbent_cost`.
//!
//! The checks are driven by the proptest harness in
//! `tests/prop_fault_injection.rs` with the exhaustive oracle deciding
//! the ground truth on small instances; the helpers live in the
//! library so bench binaries (e.g. `anytime_baseline`) reuse them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use coremax::{verify_solution, MaxSatSolution, MaxSatStatus};
use coremax_cnf::{Assignment, WcnfFormula, Weight};
use coremax_sat::Budget;

/// One injectable fault, expressed as a budget restriction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Stop flag already raised when the solve starts: the solver must
    /// back off immediately (this is the path that exercises
    /// cancellation *before* preprocessing and mid-pipeline polls).
    StopImmediately,
    /// Stop flag raised from a concurrent thread after a randomized
    /// delay — lands at an arbitrary point of the run: mid-simplify,
    /// mid-GC, mid-search, or inside a portfolio worker.
    StopAfter(Duration),
    /// Wall-clock deadline this far in the future (possibly zero).
    Deadline(Duration),
    /// Per-SAT-call conflict cap.
    ConflictCap(u64),
    /// Per-SAT-call propagation cap — fires inside the propagation
    /// loop, the innermost injection point available.
    PropagationCap(u64),
}

/// Handle to the thread a [`Fault::StopAfter`] spawned; join it after
/// the solve so proptest iterations do not leak threads.
#[derive(Debug)]
pub struct FaultThread(JoinHandle<()>);

impl FaultThread {
    /// Waits for the flag-raising thread to finish.
    pub fn join(self) {
        let _ = self.0.join();
    }
}

/// Arms `fault` as a [`Budget`]. For [`Fault::StopAfter`] the returned
/// handle must be joined once the solve returns.
#[must_use]
pub fn armed_budget(fault: &Fault) -> (Budget, Option<FaultThread>) {
    match fault {
        Fault::StopImmediately => {
            let flag = Arc::new(AtomicBool::new(true));
            (Budget::new().with_stop_flag(flag), None)
        }
        Fault::StopAfter(delay) => {
            let flag = Arc::new(AtomicBool::new(false));
            let armed = flag.clone();
            let delay = *delay;
            let handle = std::thread::spawn(move || {
                std::thread::sleep(delay);
                armed.store(true, Ordering::Relaxed);
            });
            (
                Budget::new().with_stop_flag(flag),
                Some(FaultThread(handle)),
            )
        }
        Fault::Deadline(timeout) => (Budget::new().with_timeout(*timeout), None),
        Fault::ConflictCap(cap) => (Budget::new().with_max_conflicts(*cap), None),
        Fault::PropagationCap(cap) => (Budget::new().with_max_propagations(*cap), None),
    }
}

/// Exhaustive oracle: minimum cost over all assignments, `None` when
/// the hard clauses are unsatisfiable.
///
/// # Panics
///
/// Panics on more than 16 variables (the scan is `2^n`).
#[must_use]
pub fn exhaustive_optimum(w: &WcnfFormula) -> Option<Weight> {
    let n = w.num_vars();
    assert!(n <= 16, "oracle is exponential; keep instances small");
    let mut best: Option<Weight> = None;
    for bits in 0u32..(1 << n) {
        let values: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        if let Some(cost) = w.cost(&Assignment::from_bools(&values)) {
            best = Some(best.map_or(cost, |b: Weight| b.min(cost)));
        }
    }
    best
}

/// Checks the anytime-soundness invariants of `s` on `w` against the
/// oracle's `optimum` (`None` = hard-infeasible).
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_anytime_sound(
    w: &WcnfFormula,
    s: &MaxSatSolution,
    optimum: Option<Weight>,
) -> Result<(), String> {
    if !verify_solution(w, s) {
        return Err(format!(
            "solution failed verification: status={:?} cost={:?} lb={}",
            s.status, s.cost, s.lower_bound
        ));
    }
    match s.status {
        MaxSatStatus::Optimal => {
            if s.cost != optimum {
                return Err(format!(
                    "wrong Optimal: reported {:?}, oracle {:?}",
                    s.cost, optimum
                ));
            }
        }
        MaxSatStatus::Infeasible => {
            if optimum.is_some() {
                return Err(format!("wrong Infeasible: oracle optimum is {optimum:?}"));
            }
        }
        MaxSatStatus::Unknown => {
            if let Some(opt) = optimum {
                if s.lower_bound > opt {
                    return Err(format!(
                        "lower bound {} exceeds the true optimum {opt}",
                        s.lower_bound
                    ));
                }
                if let Some(cost) = s.cost {
                    if cost < opt {
                        return Err(format!(
                            "incumbent cost {cost} beats the true optimum {opt}"
                        ));
                    }
                }
            } else if s.model.is_some() {
                // verify_solution already rejects an incumbent that
                // violates a hard clause; on an infeasible instance no
                // model can cost anything, so this arm is defensive.
                return Err("incumbent reported on a hard-infeasible instance".into());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax::{MaxSatSolver, MaxSatStats, Wmsu1};
    use coremax_cnf::{dimacs, Lit};

    #[test]
    fn armed_stop_flag_interrupts() {
        let w = dimacs::parse_wcnf("p wcnf 2 4\n3 1 0\n4 -1 0\n2 2 0\n5 -2 0\n").unwrap();
        let (budget, thread) = armed_budget(&Fault::StopImmediately);
        assert!(thread.is_none());
        let mut solver = Wmsu1::new();
        solver.set_budget(budget);
        let s = solver.solve(&w);
        assert_eq!(s.status, MaxSatStatus::Unknown);
        check_anytime_sound(&w, &s, exhaustive_optimum(&w)).unwrap();
    }

    #[test]
    fn stop_after_joins_cleanly() {
        let (budget, thread) = armed_budget(&Fault::StopAfter(Duration::from_micros(50)));
        assert!(!budget.interrupted());
        thread.expect("StopAfter spawns a thread").join();
        assert!(budget.interrupted(), "flag raised after the delay");
    }

    #[test]
    fn checker_rejects_wrong_exact_verdicts() {
        let mut w = WcnfFormula::new();
        let x = w.new_var();
        w.add_soft([Lit::positive(x)], 1);
        w.add_soft([Lit::negative(x)], 1);
        // A (fabricated) claim that the optimum is 0: wrong Optimal.
        let lying = MaxSatSolution {
            status: MaxSatStatus::Optimal,
            cost: Some(0),
            model: Some(Assignment::from_bools(&[true])),
            lower_bound: 0,
            stats: MaxSatStats::default(),
        };
        assert!(check_anytime_sound(&w, &lying, Some(1)).is_err());
        // A fabricated Infeasible on a feasible instance.
        let infeasible = MaxSatSolution::infeasible(MaxSatStats::default());
        assert!(check_anytime_sound(&w, &infeasible, Some(1)).is_err());
        // An over-tight lower bound.
        let overtight = MaxSatSolution::interval(2, None, None, MaxSatStats::default());
        assert!(check_anytime_sound(&w, &overtight, Some(1)).is_err());
        // A sound certified interval.
        let sound = MaxSatSolution::interval(
            1,
            Some(1),
            Some(Assignment::from_bools(&[true])),
            MaxSatStats::default(),
        );
        check_anytime_sound(&w, &sound, Some(1)).unwrap();
    }
}
