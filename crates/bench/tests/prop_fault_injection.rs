//! Fault-injection harness: graceful degradation under randomized
//! resource faults.
//!
//! Random small weighted instances are solved with faults armed at
//! randomized points — a pre-raised stop flag, a stop flag raised from
//! a concurrent thread mid-run (lands mid-preprocessing, mid-GC,
//! mid-search, or inside portfolio workers), already-expired and
//! near-expired deadlines, and per-call conflict/propagation caps.
//! Every outcome must satisfy the anytime-soundness invariants checked
//! by [`coremax_bench::fi::check_anytime_sound`] against the exhaustive
//! oracle: never a wrong `Optimal`/`Infeasible`, incumbents certify
//! their cost exactly, and `lower_bound ≤ optimum ≤ incumbent_cost`.
//!
//! `PROPTEST_CASES` scales the case count (CI runs 256+).

#![recursion_limit = "256"]

use std::time::Duration;

use coremax::{
    BranchBound, MaxSatSolver, MaxSatStatus, Msu3, Msu4, Msu4Incremental, Oll, Preprocessed,
    Stratified, Wmsu1,
};
use coremax_bench::fi::{armed_budget, check_anytime_sound, exhaustive_optimum, Fault};
use coremax_cnf::WcnfFormula;
use coremax_instances::{random_weighted_wcnf, WeightDist, WeightedConfig};
use coremax_par::Portfolio;
use coremax_simp::Simplifier;
use proptest::prelude::*;

/// Solvers under fault injection: every anytime driver family plus the
/// preprocessing wrapper (reconstruction through the elimination
/// stack) and the parallel portfolio (faults land inside workers).
fn lineup() -> Vec<(&'static str, Box<dyn MaxSatSolver>)> {
    vec![
        ("wmsu1", Box::new(Wmsu1::new())),
        ("oll", Box::new(Oll::new())),
        ("stratified<msu3>", Box::new(Stratified::new(Msu3::new()))),
        ("stratified<msu4>", Box::new(Stratified::new(Msu4::v2()))),
        (
            "stratified<msu4-inc>",
            Box::new(Stratified::new(Msu4Incremental::new())),
        ),
        ("stratified<oll>", Box::new(Stratified::new(Oll::new()))),
        ("maxsatz-bb", Box::new(BranchBound::new())),
        ("pre(wmsu1)", Box::new(Preprocessed::new(Wmsu1::new()))),
        ("pre(oll)", Box::new(Preprocessed::new(Oll::new()))),
        (
            "pre(stratified<msu3>)",
            Box::new(Preprocessed::new(Stratified::new(Msu3::new()))),
        ),
        ("portfolio(2)", Box::new(Portfolio::new(2))),
    ]
}

fn arb_dist() -> impl Strategy<Value = WeightDist> {
    prop_oneof![
        (1u64..=3, 1u64..=8).prop_map(|(lo, extra)| WeightDist::Uniform { lo, hi: lo + extra }),
        (0u32..=3).prop_map(|max_exp| WeightDist::PowerOfTwo { max_exp }),
        (1u64..=3, 5u64..=30, 2usize..=4).prop_map(|(light, heavy, heavy_every)| {
            WeightDist::Skewed {
                light,
                heavy,
                heavy_every,
            }
        }),
    ]
}

fn arb_instance() -> impl Strategy<Value = WcnfFormula> {
    (
        3usize..=6, // vars
        0usize..=5, // hard
        2usize..=9, // soft
        arb_dist(),
        any::<u64>(), // seed
    )
        .prop_map(|(num_vars, num_hard, num_soft, dist, seed)| {
            random_weighted_wcnf(&WeightedConfig {
                num_vars,
                num_hard,
                num_soft,
                max_len: 3,
                dist,
                seed,
            })
        })
}

/// Faults at randomized severities. `StopAfter`/`Deadline` delays are
/// microsecond-scale so the fault lands *during* the run on these
/// small instances, not safely after it.
fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::StopImmediately),
        (0u64..=500).prop_map(|us| Fault::StopAfter(Duration::from_micros(us))),
        (0u64..=500).prop_map(|us| Fault::Deadline(Duration::from_micros(us))),
        (0u64..=40).prop_map(Fault::ConflictCap),
        (0u64..=200).prop_map(Fault::PropagationCap),
    ]
}

fn inject_and_check(w: &WcnfFormula, fault: &Fault) {
    let optimum = exhaustive_optimum(w);
    for (label, mut solver) in lineup() {
        let (budget, thread) = armed_budget(fault);
        solver.set_budget(budget);
        let s = solver.solve(w);
        if let Some(t) = thread {
            t.join();
        }
        check_anytime_sound(w, &s, optimum)
            .unwrap_or_else(|violation| panic!("{label} under {fault:?}: {violation}"));
    }
}

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    // The headline property: eight solver configurations, five fault
    // classes, zero tolerated soundness violations.
    #[test]
    fn faulted_solves_stay_anytime_sound(w in arb_instance(), fault in arb_fault()) {
        inject_and_check(&w, &fault);
    }

    // Cancellation at a random point inside preprocessing: simplify
    // under a delayed stop flag, then solve the (partially simplified)
    // residual fresh — cost_offset plus reconstruction must still land
    // exactly on the oracle optimum. Every applied rewrite is
    // individually sound, so a cancelled pipeline yields a correct,
    // merely less simplified, instance.
    #[test]
    fn cancelled_preprocessing_still_solves_exactly(
        w in arb_instance(),
        delay_us in 0u64..=200,
    ) {
        let optimum = exhaustive_optimum(&w);
        let (budget, thread) = armed_budget(&Fault::StopAfter(Duration::from_micros(delay_us)));
        let mut simp = Simplifier::new();
        simp.set_budget(budget);
        let result = simp.simplify(&w);
        if let Some(t) = thread {
            t.join();
        }
        if result.infeasible {
            prop_assert_eq!(optimum, None, "preprocessing refuted a feasible instance");
        } else {
            // Fresh, unfaulted solve of the residual.
            let s = Wmsu1::new().solve(&result.formula);
            match optimum {
                Some(opt) => {
                    prop_assert_eq!(s.status, MaxSatStatus::Optimal);
                    let residual = s.cost.expect("optimal has a cost");
                    prop_assert_eq!(residual + result.cost_offset, opt,
                        "residual {} + offset {} != oracle {}", residual, result.cost_offset, opt);
                    let model = result.reconstruct_model(&s.model.expect("optimal has a model"));
                    prop_assert_eq!(w.cost(&model), Some(opt), "reconstructed model lies");
                }
                None => {
                    prop_assert_eq!(s.status, MaxSatStatus::Infeasible);
                }
            }
        }
    }
}

/// Pre-raised stop flag: every solver must return a bare-but-sound
/// certified interval deterministically (no wall-clock involved).
#[test]
fn pre_raised_stop_flag_is_deterministic() {
    let w = random_weighted_wcnf(&WeightedConfig {
        num_vars: 6,
        num_hard: 3,
        num_soft: 8,
        max_len: 3,
        dist: WeightDist::Uniform { lo: 1, hi: 9 },
        seed: 7,
    });
    let optimum = exhaustive_optimum(&w);
    for (label, mut solver) in lineup() {
        let (budget, _) = armed_budget(&Fault::StopImmediately);
        solver.set_budget(budget);
        let first = solver.solve(&w);
        // A solver may still finish exactly if the instance is solved
        // before the first budget poll; what it must never do is lie.
        check_anytime_sound(&w, &first, optimum).unwrap_or_else(|e| panic!("{label}: {e}"));
        // Re-arming the same fault reproduces the same interval.
        let (budget, _) = armed_budget(&Fault::StopImmediately);
        let mut again = lineup()
            .into_iter()
            .find(|(l, _)| *l == label)
            .expect("lineup is stable")
            .1;
        again.set_budget(budget);
        let second = again.solve(&w);
        assert_eq!(first.status, second.status, "{label} status");
        assert_eq!(first.cost, second.cost, "{label} incumbent cost");
        assert_eq!(first.lower_bound, second.lower_bound, "{label} lower bound");
    }
}

/// Cancellation landing around an in-place totalizer bound raise. The
/// at-most-2-of-4 instance forces the OLL driver through at least one
/// `increase_bound` extension on the unfaulted path (every core has ≥ 3
/// members, and the optimum exceeds what the bound-1 outputs allow).
/// Sweeping the per-call conflict and propagation caps lands the stop
/// at every budget poll point — before the first core, between a core
/// and its extension, and right after the raised output becomes an
/// assumption — and each truncated run must still return a certified
/// interval, never a wrong verdict.
#[test]
fn cancellation_mid_totalizer_extension_keeps_the_interval_certified() {
    let w = coremax_cnf::dimacs::parse_wcnf(
        "p wcnf 4 8 9\n9 -1 -2 -3 0\n9 -1 -2 -4 0\n9 -1 -3 -4 0\n9 -2 -3 -4 0\n\
         1 1 0\n1 2 0\n1 3 0\n1 4 0\n",
    )
    .expect("instance parses");
    let optimum = exhaustive_optimum(&w);
    assert_eq!(optimum, Some(2));
    // Unfaulted control: this instance really drives the extension path.
    let control = Oll::new().solve(&w);
    assert_eq!(control.cost, Some(2));
    assert!(
        control.stats.totalizer_extensions >= 1,
        "instance must force a totalizer extension"
    );
    for cap in 0..=24u64 {
        for fault in [Fault::ConflictCap(cap), Fault::PropagationCap(cap)] {
            let (budget, thread) = armed_budget(&fault);
            let mut solver = Oll::new();
            solver.set_budget(budget);
            let s = solver.solve(&w);
            if let Some(t) = thread {
                t.join();
            }
            check_anytime_sound(&w, &s, optimum)
                .unwrap_or_else(|violation| panic!("oll under {fault:?}: {violation}"));
        }
    }
}
