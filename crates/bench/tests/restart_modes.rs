//! New-config-surface coverage on the generated instance suite: Luby
//! and glucose restart modes must reach the same verdicts on the small
//! families, the binary watch lists must actually carry propagations,
//! and the new `SolverStats` counters must move as designed.

use coremax_cnf::WcnfFormula;
use coremax_instances::{full_suite, SuiteConfig};
use coremax_sat::{RestartMode, SolveOutcome, Solver, SolverConfig, SolverStats};

/// Loads every clause of the instance (hard and soft alike) into a
/// plain SAT solver.
fn sat_solver_for(wcnf: &WcnfFormula, config: SolverConfig) -> Solver {
    let mut solver = Solver::with_config(config);
    solver.ensure_vars(wcnf.num_vars());
    for c in wcnf.hard_clauses() {
        solver.add_clause(c.lits().iter().copied());
    }
    for s in wcnf.soft_clauses() {
        solver.add_clause(s.clause.lits().iter().copied());
    }
    solver
}

fn small_suite() -> Vec<(String, WcnfFormula)> {
    full_suite(&SuiteConfig::default())
        .into_iter()
        .filter(|i| i.wcnf.num_vars() <= 120)
        .map(|i| (i.name, i.wcnf))
        .collect()
}

#[test]
fn luby_and_glucose_reach_the_same_outcomes() {
    let glucose_config = SolverConfig {
        restart_mode: RestartMode::Glucose,
        glucose_lbd_window: 10,
        ..SolverConfig::default()
    };
    let suite = small_suite();
    assert!(suite.len() >= 5, "suite filter too strict: {}", suite.len());
    let mut luby_stats = SolverStats::default();
    let mut glucose_stats = SolverStats::default();
    for (name, wcnf) in &suite {
        let mut luby = sat_solver_for(wcnf, SolverConfig::default());
        let mut glucose = sat_solver_for(wcnf, glucose_config.clone());
        let (a, b) = (luby.solve(), glucose.solve());
        assert_ne!(a, SolveOutcome::Unknown, "{name}: no budget set");
        assert_eq!(a, b, "{name}: restart modes disagree");
        if a == SolveOutcome::Unsat {
            assert!(luby.unsat_core().is_some(), "{name}: missing core");
            assert!(glucose.unsat_core().is_some(), "{name}: missing core");
        }
        luby_stats.absorb(luby.stats());
        glucose_stats.absorb(glucose.stats());
    }
    // The restart accounting must attribute restarts to the right mode.
    assert_eq!(luby_stats.restarts_glucose, 0);
    assert_eq!(luby_stats.restarts, luby_stats.restarts_luby);
    assert_eq!(glucose_stats.restarts_luby, 0);
    assert_eq!(glucose_stats.restarts, glucose_stats.restarts_glucose);
}

#[test]
fn new_counters_move_on_the_suite() {
    let mut total = SolverStats::default();
    for (_, wcnf) in small_suite() {
        let mut solver = sat_solver_for(&wcnf, SolverConfig::default());
        let _ = solver.solve();
        total.absorb(solver.stats());
    }
    assert!(total.propagations > 0);
    assert!(
        total.bin_propagations > 0,
        "binary watch lists never fired: {total}"
    );
    assert!(total.conflicts > 0);
    // Every conflict lands in exactly one LBD histogram bucket.
    assert_eq!(total.lbd_hist.iter().sum::<u64>(), total.conflicts);
    assert_eq!(total.learned_clauses, total.conflicts);
    assert!(total.peak_learned > 0);
}

#[test]
fn forced_gc_on_suite_instances_keeps_verdicts() {
    let gc_config = SolverConfig {
        learntsize_factor: 0.01,
        learntsize_inc: 1.01,
        min_learnts: 5.0,
        gc_frac: 0.0,
        ..SolverConfig::default()
    };
    let mut gc_seen = 0u64;
    for (name, wcnf) in small_suite() {
        let mut plain = sat_solver_for(&wcnf, SolverConfig::default());
        let mut stressed = sat_solver_for(&wcnf, gc_config.clone());
        assert_eq!(
            plain.solve(),
            stressed.solve(),
            "{name}: forced GC changed the verdict"
        );
        gc_seen += stressed.stats().gc_runs;
    }
    assert!(gc_seen > 0, "tiny learnt cap must trigger collections");
}
