//! The CDCL solver.

use std::time::Instant;

use coremax_cnf::{Assignment, CnfFormula, Lit, Var};

use crate::budget::Budget;
use crate::clause_db::{CRef, ClauseDb, ClauseId};
use crate::heap::ActivityHeap;
use crate::luby::luby;
use crate::stats::SolverStats;
use crate::trace::{Trace, TraceId};

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A satisfying assignment was found; see [`Solver::model`].
    Sat,
    /// The formula (or the formula under the given assumptions) is
    /// unsatisfiable; see [`Solver::unsat_core`] and
    /// [`Solver::failed_assumptions`].
    Unsat,
    /// The budget was exhausted before a verdict was reached.
    Unknown,
}

/// Tunable solver parameters.
///
/// The defaults mirror MiniSAT's classic configuration; they are exposed
/// so ablation benchmarks can vary them.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Multiplicative VSIDS decay (activity is divided by this each
    /// conflict); must be in `(0, 1]`.
    pub var_decay: f64,
    /// Learned-clause activity decay; must be in `(0, 1]`.
    pub clause_decay: f32,
    /// Base interval (in conflicts) of the Luby restart schedule.
    pub restart_base: u64,
    /// Initial cap on retained learned clauses, as a fraction of the
    /// number of original clauses.
    pub learntsize_factor: f64,
    /// Growth factor applied to the learned-clause cap at every
    /// database reduction.
    pub learntsize_inc: f64,
    /// Lower bound on the learned-clause cap (prevents thrashing on
    /// small formulas; lower it to stress database reduction in tests).
    pub min_learnts: f64,
    /// Default polarity used before a variable has a saved phase.
    pub default_phase: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            learntsize_factor: 1.0 / 3.0,
            learntsize_inc: 1.1,
            min_learnts: 1000.0,
            default_phase: false,
        }
    }
}

const VALUE_UNDEF: u8 = 0;
const VALUE_TRUE: u8 = 1;
const VALUE_FALSE: u8 = 2;

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: CRef,
    blocker: Lit,
}

/// A conflict-driven clause-learning SAT solver with unsatisfiable-core
/// extraction. See the [crate docs](crate) for an overview and example.
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    db: ClauseDb,
    trace: Trace,

    // Per-literal watch lists, indexed by `Lit::index`.
    watches: Vec<Vec<Watcher>>,

    // Per-variable state.
    assigns: Vec<u8>,
    levels: Vec<u32>,
    reasons: Vec<CRef>,
    activity: Vec<f64>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    // For variables fixed at decision level 0: the trace node deriving
    // that unit fact from original clauses. Conflict analysis skips
    // level-0 literals, so their derivations must be spliced into every
    // learned clause's antecedents for cores to stay exact.
    unit_trace: Vec<Option<TraceId>>,

    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    order: ActivityHeap,
    var_inc: f64,
    cla_inc: f32,

    max_learnts: f64,

    // Result state.
    ok: bool,
    unsat_core: Option<Vec<ClauseId>>,
    failed_assumptions: Vec<Lit>,
    model: Option<Assignment>,

    next_clause_id: u32,
    budget: Budget,
    stats: SolverStats,

    // Scratch buffers reused across conflicts.
    analyze_stack: Vec<Lit>,
    analyze_toclear: Vec<Lit>,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with default configuration.
    #[must_use]
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with the given configuration.
    #[must_use]
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            db: ClauseDb::new(),
            trace: Trace::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            activity: Vec::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            unit_trace: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            order: ActivityHeap::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            max_learnts: 0.0,
            ok: true,
            unsat_core: None,
            failed_assumptions: Vec::new(),
            model: None,
            next_clause_id: 0,
            budget: Budget::new(),
            stats: SolverStats::default(),
            analyze_stack: Vec::new(),
            analyze_toclear: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len() as u32);
        self.assigns.push(VALUE_UNDEF);
        self.levels.push(0);
        self.reasons.push(CRef::UNDEF);
        self.activity.push(0.0);
        self.phase.push(self.config.default_phase);
        self.seen.push(false);
        self.unit_trace.push(None);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    /// Ensures variables `0..num_vars` exist.
    pub fn ensure_vars(&mut self, num_vars: usize) {
        while self.num_vars() < num_vars {
            self.new_var();
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of original (problem) clauses added so far, including
    /// clauses discarded as tautologies.
    #[must_use]
    pub fn num_original_clauses(&self) -> usize {
        self.next_clause_id as usize
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Sets the resource budget applied to subsequent `solve` calls.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Adds every clause of `formula`, returning the assigned ids in order.
    pub fn add_formula(&mut self, formula: &CnfFormula) -> Vec<ClauseId> {
        self.ensure_vars(formula.num_vars());
        formula
            .iter()
            .map(|c| self.add_clause(c.lits().iter().copied()))
            .collect()
    }

    /// Adds a clause and returns its id.
    ///
    /// The clause is normalised (duplicate literals removed); tautologies
    /// are accepted but never participate in solving or cores. Variables
    /// are created on demand. Adding a clause that is falsified by the
    /// current level-0 state makes the solver permanently UNSAT and the
    /// core becomes available immediately.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> ClauseId {
        let id = ClauseId(self.next_clause_id);
        self.next_clause_id += 1;

        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for &l in &lits {
            self.ensure_vars(l.var().index() + 1);
        }
        lits.sort_unstable();
        lits.dedup();
        let tautology = lits.windows(2).any(|w| w[0].var() == w[1].var());

        let tid = self.trace.add_original(id);

        if !self.ok || tautology {
            return id;
        }

        debug_assert_eq!(self.decision_level(), 0);

        if lits.is_empty() {
            self.ok = false;
            self.unsat_core = Some(vec![id]);
            return id;
        }

        // Partition by current (level-0) value.
        if lits.iter().any(|&l| self.lit_value(l) == Some(true)) {
            // Satisfied at level 0 forever: store for completeness but do
            // not watch. It can never appear in a core.
            self.db.add(&lits, false, tid);
            return id;
        }
        let non_false: Vec<Lit> = lits
            .iter()
            .copied()
            .filter(|&l| self.lit_value(l).is_none())
            .collect();

        match non_false.len() {
            0 => {
                // All literals false at level 0: immediate refutation.
                let cref = self.db.add(&lits, false, tid);
                let core = self.final_conflict_core(cref);
                self.ok = false;
                self.unsat_core = Some(core);
            }
            1 => {
                // Reason clauses must keep their asserted literal at
                // position 0 (conflict analysis relies on it).
                let unit = non_false[0];
                let mut ordered = vec![unit];
                ordered.extend(lits.iter().copied().filter(|&x| x != unit));
                let cref = self.db.add(&ordered, false, tid);
                if ordered.len() >= 2 {
                    // Watch the unit literal plus an arbitrary (false,
                    // level-0, never-undone) literal: the invariant holds
                    // forever once `unit` is enqueued true.
                    self.watch(ordered[0], cref, ordered[1]);
                    self.watch(ordered[1], cref, ordered[0]);
                }
                self.enqueue(unit, cref);
                if let Some(confl) = self.propagate() {
                    let core = self.final_conflict_core(confl);
                    self.ok = false;
                    self.unsat_core = Some(core);
                }
            }
            _ => {
                // Order the clause so the first two literals are unassigned.
                let mut ordered = non_false.clone();
                ordered.extend(lits.iter().copied().filter(|l| !non_false.contains(l)));
                let cref = self.db.add(&ordered, false, tid);
                let (w0, w1) = (ordered[0], ordered[1]);
                self.watch(w0, cref, w1);
                self.watch(w1, cref, w0);
            }
        }
        id
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveOutcome {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// On [`SolveOutcome::Unsat`], either the formula itself was refuted
    /// ([`Solver::unsat_core`] returns `Some`) or the assumptions are
    /// inconsistent with it ([`Solver::failed_assumptions`] lists a
    /// subset of assumptions sufficient for unsatisfiability).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveOutcome {
        self.model = None;
        self.failed_assumptions.clear();
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        for &a in assumptions {
            assert!(
                a.var().index() < self.num_vars(),
                "assumption over unknown variable"
            );
        }

        let start = Instant::now();
        let deadline = self.budget.effective_deadline(start);
        let conflict_cap = self
            .budget
            .max_conflicts()
            .map(|c| self.stats.conflicts + c);
        let propagation_cap = self
            .budget
            .max_propagations()
            .map(|p| self.stats.propagations + p);

        if self.max_learnts == 0.0 {
            self.max_learnts = (self.db.num_clauses() as f64 * self.config.learntsize_factor)
                .max(self.config.min_learnts);
        }

        let mut restart_count: u64 = 0;
        let outcome = loop {
            restart_count += 1;
            let budget_this_restart = self.config.restart_base * luby(restart_count);
            match self.search(
                assumptions,
                budget_this_restart,
                deadline,
                conflict_cap,
                propagation_cap,
            ) {
                SearchResult::Sat => break SolveOutcome::Sat,
                SearchResult::Unsat => break SolveOutcome::Unsat,
                SearchResult::Restart => {
                    self.stats.restarts += 1;
                }
                SearchResult::BudgetExhausted => break SolveOutcome::Unknown,
            }
        };
        self.cancel_until(0);
        outcome
    }

    /// The satisfying assignment found by the last successful solve.
    #[must_use]
    pub fn model(&self) -> Option<&Assignment> {
        self.model.as_ref()
    }

    /// The clause-level unsatisfiable core, available once the formula
    /// has been refuted (independently of assumptions).
    ///
    /// The returned ids identify a subset of the original clauses whose
    /// conjunction is unsatisfiable. The core is *not* guaranteed to be
    /// minimal, matching the behaviour of proof-logging CDCL solvers.
    #[must_use]
    pub fn unsat_core(&self) -> Option<&[ClauseId]> {
        self.unsat_core.as_deref()
    }

    /// After UNSAT-under-assumptions, the subset of assumption literals
    /// that was used to derive the contradiction.
    #[must_use]
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed_assumptions
    }

    /// Returns `true` while the formula has not been refuted.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    #[inline]
    fn var_value(&self, v: Var) -> u8 {
        self.assigns[v.index()]
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> Option<bool> {
        match self.assigns[l.var().index()] {
            VALUE_UNDEF => None,
            VALUE_TRUE => Some(l.is_positive()),
            _ => Some(l.is_negative()),
        }
    }

    #[inline]
    fn watch(&mut self, lit: Lit, cref: CRef, blocker: Lit) {
        // Clause watches `lit`; the watcher must fire when `lit` becomes
        // false, i.e. when `!lit` is enqueued.
        self.watches[(!lit).index()].push(Watcher { cref, blocker });
    }

    fn enqueue(&mut self, lit: Lit, reason: CRef) {
        debug_assert!(self.lit_value(lit).is_none());
        let v = lit.var();
        self.assigns[v.index()] = if lit.is_positive() {
            VALUE_TRUE
        } else {
            VALUE_FALSE
        };
        self.levels[v.index()] = self.decision_level();
        self.reasons[v.index()] = reason;
        self.trail.push(lit);
        if self.decision_level() == 0 && !reason.is_undef() {
            // The unit fact `lit` is derived by resolving `reason` with
            // the unit derivations of its other (level-0 false) literals,
            // all of which were enqueued earlier.
            let mut ants = vec![self.db.trace(reason)];
            for k in 0..self.db.len(reason) {
                let l = self.db.lits(reason)[k];
                if l.var() != v {
                    if let Some(t) = self.unit_trace[l.var().index()] {
                        ants.push(t);
                    }
                }
            }
            self.unit_trace[v.index()] = Some(self.trace.add_learned(ants));
        }
    }

    fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut kept = 0usize;
            let mut conflict: Option<CRef> = None;
            let mut i = 0usize;
            while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.db.is_deleted(w.cref) {
                    continue; // lazily drop watchers of deleted clauses
                }
                if self.lit_value(w.blocker) == Some(true) {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                let false_lit = !p;
                // Normalise: the false literal sits at index 1.
                {
                    let lits = self.db.lits_mut(w.cref);
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.db.lits(w.cref)[0];
                if first != w.blocker && self.lit_value(first) == Some(true) {
                    ws[kept] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replacement = None;
                {
                    let lits = self.db.lits(w.cref);
                    for (k, &l) in lits.iter().enumerate().skip(2) {
                        if self.lit_value(l) != Some(false) {
                            replacement = Some(k);
                            break;
                        }
                    }
                }
                if let Some(k) = replacement {
                    let lits = self.db.lits_mut(w.cref);
                    lits.swap(1, k);
                    let new_watch = lits[1];
                    self.watch(new_watch, w.cref, first);
                    continue; // watcher moved to another list
                }
                // No replacement: clause is unit or conflicting.
                if self.lit_value(first) == Some(false) {
                    conflict = Some(w.cref);
                    // Keep the remaining watchers (including this one).
                    ws[kept] = w;
                    kept += 1;
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                } else {
                    ws[kept] = w;
                    kept += 1;
                    self.enqueue(first, w.cref);
                }
            }
            ws.truncate(kept);
            debug_assert!(self.watches[p.index()].is_empty());
            self.watches[p.index()] = ws;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn decide(&mut self, lit: Lit) {
        self.stats.decisions += 1;
        self.trail_lim.push(self.trail.len());
        self.enqueue(lit, CRef::UNDEF);
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for idx in (bound..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var();
            self.assigns[v.index()] = VALUE_UNDEF;
            self.phase[v.index()] = lit.is_positive();
            self.reasons[v.index()] = CRef::UNDEF;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay;
    }

    fn bump_clause(&mut self, c: CRef) {
        if self.db.bump_activity(c, self.cla_inc) {
            self.db.rescale_activities();
            self.cla_inc *= 1e-20_f32;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first), the backtrack level, and the antecedent trace ids.
    fn analyze(&mut self, mut confl: CRef) -> (Vec<Lit>, u32, Vec<TraceId>) {
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // placeholder for UIP
        let mut antecedents: Vec<TraceId> = Vec::new();
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            antecedents.push(self.db.trace(confl));
            if self.db.is_learned(confl) {
                self.bump_clause(confl);
            }
            let start = usize::from(p.is_some());
            for k in start..self.db.len(confl) {
                let q = self.db.lits(confl)[k];
                let v = q.var();
                if self.seen[v.index()] {
                    continue;
                }
                if self.levels[v.index()] == 0 {
                    // Skipped from the learned clause, but its unit
                    // derivation is part of the resolution proof.
                    if let Some(t) = self.unit_trace[v.index()] {
                        antecedents.push(t);
                    }
                    continue;
                }
                self.seen[v.index()] = true;
                self.bump_var(v);
                if self.levels[v.index()] >= self.decision_level() {
                    path_count += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Select next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var();
            self.seen[v.index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !lit;
                break;
            }
            p = Some(lit);
            confl = self.reasons[v.index()];
            debug_assert!(!confl.is_undef(), "resolved literal must have a reason");
        }

        self.stats.max_literals += learnt.len() as u64;

        // Recursive clause minimisation (MiniSAT ccmin deep mode). A kept
        // literal's removal resolves extra clauses into the derivation, so
        // the reasons visited by a *successful* redundancy proof join the
        // antecedents.
        self.analyze_toclear = learnt.clone();
        let levels_mask: u64 = learnt[1..]
            .iter()
            .fold(0u64, |m, l| m | 1u64 << (self.levels[l.var().index()] & 63));
        let mut j = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            let reason = self.reasons[l.var().index()];
            if reason.is_undef() || !self.lit_redundant(l, levels_mask, &mut antecedents) {
                learnt[j] = l;
                j += 1;
            }
        }
        learnt.truncate(j);
        for l in std::mem::take(&mut self.analyze_toclear) {
            self.seen[l.var().index()] = false;
        }

        self.stats.tot_literals += learnt.len() as u64;

        // Compute backtrack level and move the max-level literal to slot 1.
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().index()] > self.levels[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.levels[learnt[1].var().index()]
        };

        (learnt, backtrack, antecedents)
    }

    /// Checks whether `lit` is implied by the rest of the learned clause
    /// (so it can be dropped). On success the visited reasons are pushed
    /// into `antecedents`; on failure nothing is recorded.
    fn lit_redundant(
        &mut self,
        lit: Lit,
        levels_mask: u64,
        antecedents: &mut Vec<TraceId>,
    ) -> bool {
        let mut stack = std::mem::take(&mut self.analyze_stack);
        stack.clear();
        stack.push(lit);
        let mut visited_reasons: Vec<TraceId> = Vec::new();
        let top = self.analyze_toclear.len();
        let mut failed = false;

        while let Some(l) = stack.pop() {
            let reason = self.reasons[l.var().index()];
            debug_assert!(!reason.is_undef());
            visited_reasons.push(self.db.trace(reason));
            let lits: Vec<Lit> = self.db.lits(reason).to_vec();
            for q in lits {
                let v = q.var();
                if q == !l || self.seen[v.index()] {
                    continue;
                }
                if self.levels[v.index()] == 0 {
                    if let Some(t) = self.unit_trace[v.index()] {
                        visited_reasons.push(t);
                    }
                    continue;
                }
                // Abstraction check: the literal's level must appear in
                // the clause, and it must itself have a reason.
                if self.reasons[v.index()].is_undef()
                    || (1u64 << (self.levels[v.index()] & 63)) & levels_mask == 0
                {
                    failed = true;
                    break;
                }
                self.seen[v.index()] = true;
                self.analyze_toclear.push(q);
                stack.push(q);
            }
            if failed {
                break;
            }
        }

        if failed {
            // Undo the marks added during this (failed) probe.
            for l in self.analyze_toclear.drain(top..) {
                self.seen[l.var().index()] = false;
            }
        } else {
            antecedents.extend(visited_reasons);
        }
        self.analyze_stack = stack;
        !failed
    }

    /// Resolves a level-0 conflict back to original clause ids: the
    /// refutation core (Proposition: the returned clause set is UNSAT).
    fn final_conflict_core(&mut self, confl: CRef) -> Vec<ClauseId> {
        let mut roots = vec![self.db.trace(confl)];
        debug_assert_eq!(self.decision_level(), 0);
        let mut marked = vec![false; self.num_vars()];
        for &l in self.db.lits(confl) {
            marked[l.var().index()] = true;
        }
        for idx in (0..self.trail.len()).rev() {
            let v = self.trail[idx].var();
            if !marked[v.index()] {
                continue;
            }
            let reason = self.reasons[v.index()];
            debug_assert!(
                !reason.is_undef(),
                "level-0 assignments always have clause reasons"
            );
            roots.push(self.db.trace(reason));
            for &l in self.db.lits(reason) {
                marked[l.var().index()] = true;
            }
        }
        self.trace.expand_to_original(&roots)
    }

    /// MiniSAT `analyzeFinal`: collects a subset `S` of the assumption
    /// literals such that the formula conjoined with `S` is
    /// unsatisfiable. `a` is the assumption that was found false.
    fn analyze_final(&mut self, a: Lit) {
        self.failed_assumptions.clear();
        self.failed_assumptions.push(a);
        if self.decision_level() == 0 {
            return;
        }
        let mut marked = vec![false; self.num_vars()];
        marked[a.var().index()] = true;
        let bottom = self.trail_lim[0];
        for idx in (bottom..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var();
            if !marked[v.index()] {
                continue;
            }
            let reason = self.reasons[v.index()];
            if reason.is_undef() {
                // A decision: under assumption-driven search every
                // decision below the failing point is an assumption, and
                // `lit` is exactly the assumed literal.
                self.failed_assumptions.push(lit);
            } else {
                for &l in self.db.lits(reason) {
                    if self.levels[l.var().index()] > 0 {
                        marked[l.var().index()] = true;
                    }
                }
            }
        }
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>, antecedents: Vec<TraceId>) {
        self.stats.conflicts += 1;
        self.stats.learned_clauses += 1;
        let tid = self.trace.add_learned(antecedents);
        if learnt.len() == 1 {
            // Asserting unit: becomes a level-0 fact with the learned
            // clause as its reason.
            let cref = self.db.add(&learnt, true, tid);
            self.enqueue(learnt[0], cref);
        } else {
            let cref = self.db.add(&learnt, true, tid);
            let (w0, w1) = (learnt[0], learnt[1]);
            self.watch(w0, cref, w1);
            self.watch(w1, cref, w0);
            self.bump_clause(cref);
            self.enqueue(learnt[0], cref);
        }
        self.decay_activities();
    }

    fn reduce_db(&mut self) {
        let mut refs: Vec<CRef> = self.db.learned_refs().collect();
        refs.sort_by(|&a, &b| {
            self.db
                .activity(a)
                .partial_cmp(&self.db.activity(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let target = refs.len() / 2;
        let mut removed = 0usize;
        for &c in refs.iter() {
            if removed >= target {
                break;
            }
            if self.db.len(c) <= 2 || self.is_locked(c) {
                continue;
            }
            self.db.mark_deleted(c);
            self.stats.deleted_clauses += 1;
            removed += 1;
        }
    }

    fn is_locked(&self, c: CRef) -> bool {
        let first = self.db.lits(c)[0];
        self.reasons[first.var().index()] == c && self.lit_value(first) == Some(true)
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        conflicts_allowed: u64,
        deadline: Option<Instant>,
        conflict_cap: Option<u64>,
        propagation_cap: Option<u64>,
    ) -> SearchResult {
        let mut conflicts_here: u64 = 0;
        loop {
            if let Some(confl) = self.propagate() {
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    let core = self.final_conflict_core(confl);
                    self.ok = false;
                    self.unsat_core = Some(core);
                    return SearchResult::Unsat;
                }
                let (learnt, backtrack, antecedents) = self.analyze(confl);
                self.cancel_until(backtrack);
                self.record_learnt(learnt, antecedents);
                if let Some(cap) = conflict_cap {
                    if self.stats.conflicts >= cap {
                        return SearchResult::BudgetExhausted;
                    }
                }
                if conflicts_here >= conflicts_allowed {
                    self.cancel_until(0);
                    return SearchResult::Restart;
                }
                continue;
            }

            // Propagation fixpoint reached: bookkeeping, then decide.
            if let Some(cap) = propagation_cap {
                if self.stats.propagations >= cap {
                    return SearchResult::BudgetExhausted;
                }
            }
            if let Some(d) = deadline {
                // An Instant::now() per decision is measurable but cheap
                // relative to a propagation fixpoint; this keeps timeout
                // precision tight for the experiment harness.
                if Instant::now() >= d {
                    return SearchResult::BudgetExhausted;
                }
            }
            if self.db.num_learned() as f64 >= self.max_learnts {
                self.max_learnts *= self.config.learntsize_inc;
                self.reduce_db();
            }

            // Assumption handling.
            let mut next_decision: Option<Lit> = None;
            let level = self.decision_level() as usize;
            if level < assumptions.len() {
                let a = assumptions[level];
                match self.lit_value(a) {
                    Some(true) => {
                        // Already satisfied: open an (empty) level so the
                        // per-level assumption indexing stays aligned.
                        self.trail_lim.push(self.trail.len());
                        continue;
                    }
                    Some(false) => {
                        self.analyze_final(a);
                        return SearchResult::Unsat;
                    }
                    None => next_decision = Some(a),
                }
            }

            let lit = match next_decision {
                Some(l) => l,
                None => {
                    let mut picked = None;
                    while let Some(v) = self.order.pop(&self.activity) {
                        if self.var_value(v) == VALUE_UNDEF {
                            picked = Some(v);
                            break;
                        }
                    }
                    match picked {
                        Some(v) => Lit::new(v, self.phase[v.index()]),
                        None => {
                            // All variables assigned: a model.
                            let mut m = Assignment::for_vars(self.num_vars());
                            for (i, &a) in self.assigns.iter().enumerate() {
                                m.assign(Var::new(i as u32), a == VALUE_TRUE);
                            }
                            self.model = Some(m);
                            return SearchResult::Sat;
                        }
                    }
                }
            };
            self.decide(lit);
        }
    }
}

enum SearchResult {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(d: i32) -> Lit {
        Lit::from_dimacs(d).unwrap()
    }

    fn solver_with(clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        for c in clauses {
            s.add_clause(c.iter().map(|&d| l(d)));
        }
        s
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn single_unit_sat() {
        let mut s = solver_with(&[&[1]]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let m = s.model().unwrap();
        assert_eq!(m.value(Var::new(0)), Some(true));
    }

    #[test]
    fn contradictory_units_unsat_with_core() {
        let mut s = solver_with(&[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert_eq!(core, &[ClauseId(0), ClauseId(1)]);
    }

    #[test]
    fn unsat_detected_at_add_time() {
        let mut s = Solver::new();
        s.add_clause([l(1)]);
        s.add_clause([l(-1)]);
        assert!(!s.is_ok());
        assert!(s.unsat_core().is_some());
    }

    #[test]
    fn empty_clause_is_core() {
        let mut s = Solver::new();
        s.add_clause([l(1)]);
        let id = s.add_clause(std::iter::empty());
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.unsat_core().unwrap(), &[id]);
    }

    #[test]
    fn simple_3sat_sat() {
        let mut s = solver_with(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3], &[2]]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let m = s.model().unwrap();
        assert_eq!(m.value(Var::new(1)), Some(true));
        assert_eq!(m.value(Var::new(0)), Some(false));
        assert_eq!(m.value(Var::new(2)), Some(false));
    }

    #[test]
    fn paper_example1_unsat_core() {
        // (x1)(x2 ∨ ¬x1)(¬x2)
        let mut s = solver_with(&[&[1], &[2, -1], &[-2]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert_eq!(core.len(), 3);
    }

    #[test]
    fn core_excludes_irrelevant_clauses() {
        // Clauses 0-1 form the contradiction; 2-3 are satisfiable noise
        // over different variables.
        let mut s = solver_with(&[&[1], &[-1], &[2, 3], &[-2, 3]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert_eq!(core, &[ClauseId(0), ClauseId(1)]);
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole() {
        // p1h1, p2h1, ¬p1h1 ∨ ¬p2h1
        let mut s = solver_with(&[&[1], &[2], &[-1, -2]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.unsat_core().unwrap().len(), 3);
    }

    #[test]
    fn chain_implication_unsat() {
        // x1, x1→x2→…→x6, ¬x6.
        let mut s = solver_with(&[
            &[1],
            &[-1, 2],
            &[-2, 3],
            &[-3, 4],
            &[-4, 5],
            &[-5, 6],
            &[-6],
        ]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.unsat_core().unwrap().len(), 7);
    }

    #[test]
    fn core_is_subset_when_noise_present() {
        // An implication-chain contradiction plus 20 satisfiable clauses.
        let mut s = Solver::new();
        s.add_clause([l(1)]);
        s.add_clause([l(-1), l(2)]);
        s.add_clause([l(-2)]);
        for i in 0..20 {
            let base = 10 + 2 * i;
            s.add_clause([l(base), l(base + 1)]);
        }
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert_eq!(core, &[ClauseId(0), ClauseId(1), ClauseId(2)]);
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        s.add_clause([l(1), l(-1)]);
        s.add_clause([l(2)]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn duplicate_literals_deduped() {
        let mut s = Solver::new();
        s.add_clause([l(1), l(1), l(1)]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert_eq!(s.model().unwrap().value(Var::new(0)), Some(true));
    }

    #[test]
    fn assumptions_sat_and_unsat() {
        let mut s = solver_with(&[&[1, 2]]);
        assert_eq!(s.solve_with_assumptions(&[l(-1)]), SolveOutcome::Sat);
        assert_eq!(s.model().unwrap().value(Var::new(1)), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[l(-1), l(-2)]),
            SolveOutcome::Unsat
        );
        // Formula itself is satisfiable: no clause core, but failed
        // assumptions are reported.
        assert!(s.unsat_core().is_none());
        assert!(!s.failed_assumptions().is_empty());
        // Solver remains usable.
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn failed_assumptions_subset() {
        // x1→x2, assumption x1 and ¬x2 conflict; x3 assumption irrelevant.
        let mut s = solver_with(&[&[-1, 2]]);
        s.ensure_vars(3);
        let r = s.solve_with_assumptions(&[l(3), l(1), l(-2)]);
        assert_eq!(r, SolveOutcome::Unsat);
        let failed = s.failed_assumptions().to_vec();
        assert!(failed.contains(&l(1)) || failed.contains(&l(-2)));
        assert!(!failed.contains(&l(3)));
    }

    #[test]
    fn budget_conflicts_returns_unknown() {
        // A hard pigeonhole instance (5 pigeons, 4 holes) with a 1-conflict cap.
        let mut s = Solver::new();
        let php = php_clauses(5, 4);
        for c in &php {
            s.add_clause(c.iter().copied());
        }
        s.set_budget(Budget::new().with_max_conflicts(1));
        assert_eq!(s.solve(), SolveOutcome::Unknown);
        // With the cap lifted it is solved.
        s.set_budget(Budget::new());
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    /// Pigeonhole principle clauses: n pigeons, m holes. p(i,j) = var i*m+j.
    fn php_clauses(n: usize, m: usize) -> Vec<Vec<Lit>> {
        let var = |i: usize, j: usize| Var::new((i * m + j) as u32);
        let mut out = Vec::new();
        for i in 0..n {
            out.push((0..m).map(|j| Lit::positive(var(i, j))).collect());
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in i1 + 1..n {
                    out.push(vec![Lit::negative(var(i1, j)), Lit::negative(var(i2, j))]);
                }
            }
        }
        out
    }

    #[test]
    fn pigeonhole_unsat_and_core_covers_pigeons() {
        let mut s = Solver::new();
        let clauses = php_clauses(4, 3);
        let n_clauses = clauses.len();
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert!(!core.is_empty());
        assert!(core.len() <= n_clauses);
        // The core must be unsatisfiable on its own: re-solve it.
        let mut s2 = Solver::new();
        for &id in core {
            s2.add_clause(clauses[id.index()].iter().copied());
        }
        assert_eq!(s2.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: Vec<Vec<Lit>> = vec![
            vec![l(1), l(2), l(-3)],
            vec![l(-1), l(3)],
            vec![l(-2), l(-3)],
            vec![l(2), l(3)],
        ];
        let mut s = Solver::new();
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let m = s.model().unwrap();
        for c in &clauses {
            assert!(c.iter().any(|&lit| m.satisfies(lit)), "clause violated");
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = solver_with(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert!(s.stats().conflicts >= 1);
    }

    #[test]
    fn solver_reusable_after_sat() {
        let mut s = solver_with(&[&[1, 2]]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        s.add_clause([l(-1)]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        s.add_clause([l(-2)]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert!(s.unsat_core().is_some());
    }

    #[test]
    fn add_after_unsat_keeps_core() {
        let mut s = solver_with(&[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core: Vec<ClauseId> = s.unsat_core().unwrap().to_vec();
        s.add_clause([l(2)]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.unsat_core().unwrap(), core.as_slice());
    }
}
