//! The CDCL solver.

use std::time::Instant;

use coremax_cnf::{Assignment, CnfFormula, Lit, Var};
use coremax_obs::{Event, Phase};

use crate::budget::Budget;
use crate::clause_db::{CRef, ClauseDb, ClauseId};
use crate::heap::ActivityHeap;
use crate::luby::luby;
use crate::share::ExchangeEndpoint;
use crate::stats::SolverStats;
use crate::trace::{Trace, TraceId};

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A satisfying assignment was found; see [`Solver::model`].
    Sat,
    /// The formula (or the formula under the given assumptions) is
    /// unsatisfiable; see [`Solver::unsat_core`] and
    /// [`Solver::failed_assumptions`].
    Unsat,
    /// The budget was exhausted before a verdict was reached.
    Unknown,
}

/// Restart scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartMode {
    /// Luby-sequence restarts with base interval
    /// [`SolverConfig::restart_base`] (MiniSAT's classic schedule).
    #[default]
    Luby,
    /// Glucose-style adaptive restarts: restart as soon as the moving
    /// average of recent learned-clause LBDs exceeds the global average
    /// by the margin [`SolverConfig::glucose_margin`].
    Glucose,
}

/// Tunable solver parameters.
///
/// The defaults mirror MiniSAT's classic configuration; they are exposed
/// so ablation benchmarks can vary them.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Multiplicative VSIDS decay (activity is divided by this each
    /// conflict); must be in `(0, 1]`.
    pub var_decay: f64,
    /// Learned-clause activity decay; must be in `(0, 1]`.
    pub clause_decay: f32,
    /// Base interval (in conflicts) of the Luby restart schedule (only
    /// used when [`SolverConfig::restart_mode`] is [`RestartMode::Luby`]).
    pub restart_base: u64,
    /// Restart policy. Default: [`RestartMode::Luby`], which keeps runs
    /// reproducible against MiniSAT-lineage expectations; switch to
    /// [`RestartMode::Glucose`] for LBD-driven adaptive restarts.
    pub restart_mode: RestartMode,
    /// Window (in conflicts) of the recent-LBD moving average driving
    /// [`RestartMode::Glucose`]. Default 50, as in Glucose.
    pub glucose_lbd_window: usize,
    /// A glucose restart fires when `recent_lbd_avg * glucose_margin >
    /// global_lbd_avg`. Default 0.8, as in Glucose.
    pub glucose_margin: f64,
    /// Initial cap on retained learned clauses, as a fraction of the
    /// number of original clauses.
    pub learntsize_factor: f64,
    /// Growth factor applied to the learned-clause cap at every
    /// database reduction.
    pub learntsize_inc: f64,
    /// Lower bound on the learned-clause cap (prevents thrashing on
    /// small formulas; lower it to stress database reduction in tests).
    pub min_learnts: f64,
    /// Clause-arena garbage collection runs after a database reduction
    /// when at least this fraction of arena literals belongs to deleted
    /// clauses. Default 0.25; set to 0.0 to force a collection after
    /// every reduction (test hook).
    pub gc_frac: f64,
    /// Memory watermark on the clause arena, in 32-bit arena words
    /// (`None` = unlimited). When the *live* arena footprint
    /// (`total_words - wasted_words`) crosses the watermark, the solver
    /// runs an aggressive database reduction — every unprotected learned
    /// clause is shed, the learned-clause cap is clamped back down, and
    /// the arena is compacted unconditionally — so memory pressure
    /// degrades search quality gracefully instead of growing towards
    /// allocation failure. Original (problem) clauses are never shed, so
    /// a watermark below the problem's own footprint simply pins the
    /// learned database near empty.
    pub arena_watermark_words: Option<usize>,
    /// The wall-clock deadline is polled once per this many decisions
    /// (and once at the start of every restart). Default 64; raising it
    /// trades timeout precision for less `Instant::now` overhead in the
    /// decision loop.
    pub timeout_check_interval: u64,
    /// The stop flag, deadline and propagation cap are additionally
    /// polled once per this many propagations *inside* the propagation
    /// loop, so cancellation lands within a bounded amount of work even
    /// mid-way through a long implication chain (decision-based polling
    /// alone can lag by an entire chain). Default 1024 — cheap enough
    /// to be invisible at ~10M props/sec, tight enough for the parallel
    /// portfolio to halt losers promptly.
    pub propagation_check_interval: u64,
    /// Default polarity used before a variable has a saved phase.
    pub default_phase: bool,
    /// Branching-diversification seed for the VSIDS heap: 0 (the
    /// default) breaks activity ties by variable index, any other value
    /// breaks them by a seeded xorshift hash, so equal-activity
    /// variables are explored in a per-seed order. Portfolio workers
    /// get distinct seeds; a lone solver keeps 0 for the classic
    /// MiniSAT-reproducible order.
    pub branch_seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            restart_mode: RestartMode::Luby,
            glucose_lbd_window: 50,
            glucose_margin: 0.8,
            learntsize_factor: 1.0 / 3.0,
            learntsize_inc: 1.1,
            min_learnts: 1000.0,
            gc_frac: 0.25,
            arena_watermark_words: None,
            timeout_check_interval: 64,
            propagation_check_interval: 1024,
            default_phase: false,
            branch_seed: 0,
        }
    }
}

const VALUE_UNDEF: u8 = 0;
const VALUE_TRUE: u8 = 1;
const VALUE_FALSE: u8 = 2;

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: CRef,
    blocker: Lit,
}

/// Watcher for a binary clause: the other literal is stored inline, so
/// binary propagation never touches the clause arena and the watcher
/// never migrates. `cref` is only needed when the clause becomes a
/// reason or a conflict.
#[derive(Debug, Clone, Copy)]
struct BinWatcher {
    other: Lit,
    cref: CRef,
}

/// Assignment metadata of one variable: decision level and reason
/// clause. Stored together because conflict analysis almost always
/// reads both — one cache fetch instead of two.
#[derive(Debug, Clone, Copy)]
struct VarData {
    level: u32,
    reason: CRef,
}

/// Distinct non-zero decision levels among `lits` (the literal block
/// distance). Free function so callers can borrow disjoint solver
/// fields; `stamp` is a per-level generation mark reused across calls.
fn compute_lbd(var_data: &[VarData], stamp: &mut [u64], gen: &mut u64, lits: &[Lit]) -> u32 {
    *gen += 1;
    let g = *gen;
    let mut lbd = 0u32;
    for &l in lits {
        let lvl = var_data[l.var().index()].level as usize;
        if lvl != 0 && stamp[lvl] != g {
            stamp[lvl] = g;
            lbd += 1;
        }
    }
    lbd
}

/// A conflict-driven clause-learning SAT solver with unsatisfiable-core
/// extraction. See the [crate docs](crate) for an overview and example.
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    db: ClauseDb,
    trace: Trace,

    // Per-literal watch lists, indexed by `Lit::index`. Binary clauses
    // live exclusively in `bin_watches`; longer clauses in `watches`.
    watches: Vec<Vec<Watcher>>,
    bin_watches: Vec<Vec<BinWatcher>>,

    // Per-LITERAL truth values (two entries per variable, indexed by
    // `Lit::index`): `lit_value` is a single array load with no sign
    // decode, which matters on the propagation fast path.
    assigns: Vec<u8>,
    // Per-variable state.
    var_data: Vec<VarData>,
    activity: Vec<f64>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    // For variables fixed at decision level 0: the trace node deriving
    // that unit fact from original clauses. Conflict analysis skips
    // level-0 literals, so their derivations must be spliced into every
    // learned clause's antecedents for cores to stay exact.
    unit_trace: Vec<Option<TraceId>>,
    // Whether each level-0 unit fact is implied by the pure
    // (canonical-hard) clauses alone — the unit-level companion of the
    // clause arena's pure flag. Only meaningful for level-0-assigned
    // variables; see `crate::share` for the sharing soundness model.
    unit_pure: Vec<bool>,

    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    order: ActivityHeap,
    var_inc: f64,
    cla_inc: f32,

    max_learnts: f64,

    // Glucose restart state: ring buffer of the last `glucose_lbd_window`
    // learn-time LBDs plus running sums.
    lbd_queue: Vec<u32>,
    lbd_queue_pos: usize,
    lbd_queue_len: usize,
    lbd_recent_sum: u64,
    lbd_global_sum: u64,

    // Result state.
    ok: bool,
    unsat_core: Option<Vec<ClauseId>>,
    failed_assumptions: Vec<Lit>,
    model: Option<Assignment>,

    next_clause_id: u32,
    budget: Budget,
    stats: SolverStats,
    // Completed `solve*` calls; calls beyond the first reuse the
    // learned-clause database and heuristic state, which is what
    // `SolverStats::incremental_solves` / `clauses_retained` count.
    solve_calls: u64,

    // Cooperative-interruption state, armed only for the duration of a
    // `solve` call (propagation from `add_clause` / `probe_lit` is never
    // interrupted, so level-0 queues cannot be silently truncated).
    interrupt_armed: bool,
    interrupted: bool,
    active_deadline: Option<Instant>,
    active_prop_cap: Option<u64>,
    props_until_check: u64,

    // Scratch buffers reused across conflicts. Once their capacities
    // plateau, a conflict performs zero transient heap allocations
    // (`SolverStats::scratch_reallocs` counts the growth events).
    analyze_stack: Vec<Lit>,
    analyze_toclear: Vec<Lit>,
    learnt_buf: Vec<Lit>,
    antecedents_buf: Vec<TraceId>,
    redundant_buf: Vec<TraceId>,
    unit_ants_buf: Vec<TraceId>,
    reduce_scratch: Vec<CRef>,
    add_buf: Vec<Lit>,
    ordered_buf: Vec<Lit>,
    // Per-level generation stamps for LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_gen: u64,
    // LBD of the clause produced by the latest `analyze` call, computed
    // before backtracking (levels are only valid pre-backtrack).
    pending_lbd: u32,
    // Whether the latest `analyze` derivation used pure antecedents
    // only (making the learned clause exportable; see `crate::share`).
    pending_pure: bool,

    // Clause-exchange endpoint; `None` (the default) keeps every
    // sharing hook on the cold paths dormant.
    exchange: Option<ExchangeEndpoint>,

    // Conflicts/propagations already charged into the budget's shared
    // caps (the portfolio-wide pool), so each charge is a delta.
    shared_conflicts_charged: u64,
    shared_props_charged: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with default configuration.
    #[must_use]
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with the given configuration.
    #[must_use]
    pub fn with_config(config: SolverConfig) -> Self {
        let mut order = ActivityHeap::new();
        order.set_seed(config.branch_seed);
        Solver {
            config,
            db: ClauseDb::new(),
            trace: Trace::new(),
            watches: Vec::new(),
            bin_watches: Vec::new(),
            assigns: Vec::new(),
            var_data: Vec::new(),
            activity: Vec::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            unit_trace: Vec::new(),
            unit_pure: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            order,
            var_inc: 1.0,
            cla_inc: 1.0,
            max_learnts: 0.0,
            lbd_queue: Vec::new(),
            lbd_queue_pos: 0,
            lbd_queue_len: 0,
            lbd_recent_sum: 0,
            lbd_global_sum: 0,
            ok: true,
            unsat_core: None,
            failed_assumptions: Vec::new(),
            model: None,
            next_clause_id: 0,
            budget: Budget::new(),
            stats: SolverStats::default(),
            solve_calls: 0,
            interrupt_armed: false,
            interrupted: false,
            active_deadline: None,
            active_prop_cap: None,
            props_until_check: 0,
            analyze_stack: Vec::new(),
            analyze_toclear: Vec::new(),
            learnt_buf: Vec::new(),
            antecedents_buf: Vec::new(),
            redundant_buf: Vec::new(),
            unit_ants_buf: Vec::new(),
            reduce_scratch: Vec::new(),
            add_buf: Vec::new(),
            ordered_buf: Vec::new(),
            lbd_stamp: vec![0],
            lbd_gen: 0,
            pending_lbd: 0,
            pending_pure: false,
            exchange: None,
            shared_conflicts_charged: 0,
            shared_props_charged: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.var_data.len() as u32);
        self.assigns.push(VALUE_UNDEF);
        self.assigns.push(VALUE_UNDEF);
        self.var_data.push(VarData {
            level: 0,
            reason: CRef::UNDEF,
        });
        self.activity.push(0.0);
        self.phase.push(self.config.default_phase);
        self.seen.push(false);
        self.unit_trace.push(None);
        self.unit_pure.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.lbd_stamp.push(0);
        self.order.insert(v, &self.activity);
        v
    }

    /// Ensures variables `0..num_vars` exist.
    pub fn ensure_vars(&mut self, num_vars: usize) {
        while self.num_vars() < num_vars {
            self.new_var();
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.var_data.len()
    }

    /// Number of original (problem) clauses added so far, including
    /// clauses discarded as tautologies.
    #[must_use]
    pub fn num_original_clauses(&self) -> usize {
        self.next_clause_id as usize
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Sets the resource budget applied to subsequent `solve` calls.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Adds every clause of `formula`, returning the assigned ids in order.
    pub fn add_formula(&mut self, formula: &CnfFormula) -> Vec<ClauseId> {
        self.ensure_vars(formula.num_vars());
        formula
            .iter()
            .map(|c| self.add_clause(c.lits().iter().copied()))
            .collect()
    }

    /// Adds a clause and returns its id.
    ///
    /// The clause is normalised (duplicate literals removed); tautologies
    /// are accepted but never participate in solving or cores. Variables
    /// are created on demand. Adding a clause that is falsified by the
    /// current level-0 state makes the solver permanently UNSAT and the
    /// core becomes available immediately.
    ///
    /// Normalisation contract (uniform with the learned-clause path,
    /// which satisfies it by construction): no clause stored in the
    /// arena carries two literals of the same variable, and tautologies
    /// still consume a [`ClauseId`] — id assignment is positional, so
    /// core ids always index the caller's clause list unchanged.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> ClauseId {
        // Scratch buffers make clause loading allocation-free in steady
        // state — MaxSAT drivers rebuild solvers thousands of times, so
        // the per-clause `Vec`s used to dominate their setup cost.
        let mut buf = std::mem::take(&mut self.add_buf);
        buf.clear();
        buf.extend(lits);
        let mut ordered = std::mem::take(&mut self.ordered_buf);
        let id = self.add_clause_impl(&mut buf, &mut ordered, false);
        self.add_buf = buf;
        self.ordered_buf = ordered;
        id
    }

    /// Adds a clause and marks it *pure*: the caller asserts that it
    /// belongs to (or is implied by) the canonical instance's hard
    /// clauses, over canonical variables. Pure clauses seed the purity
    /// tracking that gates clause-exchange exports — learned clauses
    /// whose whole derivation bottoms out in pure clauses are
    /// themselves hard-implied and may be shared with other portfolio
    /// workers. Behaviourally identical to [`Solver::add_clause`]
    /// otherwise.
    pub fn add_clause_shared<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> ClauseId {
        let mut buf = std::mem::take(&mut self.add_buf);
        buf.clear();
        buf.extend(lits);
        let mut ordered = std::mem::take(&mut self.ordered_buf);
        let id = self.add_clause_impl(&mut buf, &mut ordered, true);
        self.add_buf = buf;
        self.ordered_buf = ordered;
        id
    }

    /// Attaches a clause-exchange endpoint (see [`crate::share`]).
    /// Subsequent `solve` calls publish staged exports and drain
    /// imports at restart boundaries. Calling again replaces the
    /// endpoint (rebuilt engines re-attach a fresh one).
    pub fn set_exchange(&mut self, endpoint: ExchangeEndpoint) {
        self.exchange = Some(endpoint);
    }

    /// Adopts the portfolio-diversification knobs of `cfg` — branching
    /// seed, default phase, restart mode and base — onto a live solver.
    /// Search-quality parameters only: verdicts are unaffected. Intended
    /// to run before the first solve call; unsaved phases are re-seeded
    /// when the default polarity changes.
    pub fn apply_diversification(&mut self, cfg: &SolverConfig) {
        if cfg.default_phase != self.config.default_phase {
            for p in &mut self.phase {
                *p = cfg.default_phase;
            }
        }
        self.config.default_phase = cfg.default_phase;
        self.config.branch_seed = cfg.branch_seed;
        self.order.set_seed(cfg.branch_seed);
        self.config.restart_mode = cfg.restart_mode;
        self.config.restart_base = cfg.restart_base;
    }

    /// Exchange epoch point (requires decision level 0): publishes the
    /// exports staged since the last sync and installs every pending
    /// import. May refute the formula (`is_ok` turns false) when an
    /// import conflicts with the level-0 trail.
    fn exchange_sync(&mut self) {
        let Some(mut ex) = self.exchange.take() else {
            return;
        };
        debug_assert_eq!(self.decision_level(), 0);
        self.stats.clauses_exported += ex.publish();
        let num_vars = self.num_vars();
        let (imported, duplicates) = ex.drain(num_vars, |lits, lbd| {
            self.install_import(lits, lbd);
        });
        self.stats.clauses_imported += imported;
        self.stats.import_duplicates += duplicates;
        self.exchange = Some(ex);
    }

    /// Installs one imported clause (already in local variable space) as
    /// a protected learned clause. Must run at decision level 0. The
    /// clause is pure by the exchange invariant — only hard-implied
    /// canonical clauses enter the rings — so it is both marked pure
    /// (transitive re-export is sound) and marked import (database
    /// reductions never delete it).
    fn install_import(&mut self, lits: &[Lit], lbd: u32) {
        if !self.ok {
            return; // already refuted; later imports change nothing
        }
        debug_assert_eq!(self.decision_level(), 0);
        let mut num_unassigned = 0usize;
        for &l in lits {
            match self.lit_value(l) {
                // Satisfied at level 0 forever: nothing to store.
                Some(true) => return,
                None => num_unassigned += 1,
                Some(false) => {}
            }
        }
        let tid = self.trace.add_imported();
        let mut ordered = std::mem::take(&mut self.ordered_buf);
        ordered.clear();
        // Unassigned literals first so slots 0/1 are valid watches; the
        // level-0 false remainder never changes value again.
        ordered.extend(
            lits.iter()
                .copied()
                .filter(|&l| self.lit_value(l).is_none()),
        );
        ordered.extend(
            lits.iter()
                .copied()
                .filter(|&l| self.lit_value(l).is_some()),
        );
        let cref = self.db.add(&ordered, true, tid);
        self.db.set_lbd(cref, lbd.clamp(1, ordered.len() as u32));
        // Flags go on before any enqueue: the unit-fact purity of an
        // asserting import is derived from the clause flag in `enqueue`.
        self.db.set_pure(cref);
        self.db.set_import(cref);
        match num_unassigned {
            0 => {
                // All literals false at level 0: the import refutes the
                // working formula (sound — imports are hard-implied, so
                // the canonical hard clauses are themselves UNSAT; the
                // trace's Imported node widens the reported core).
                let core = self.final_conflict_core(cref);
                self.ok = false;
                self.unsat_core = Some(core);
            }
            1 => {
                let unit = ordered[0];
                if ordered.len() == 2 {
                    self.watch_binary(ordered[0], ordered[1], cref);
                } else if ordered.len() > 2 {
                    self.watch(ordered[0], cref, ordered[1]);
                    self.watch(ordered[1], cref, ordered[0]);
                }
                self.enqueue(unit, cref);
                if let Some(confl) = self.propagate() {
                    let core = self.final_conflict_core(confl);
                    self.ok = false;
                    self.unsat_core = Some(core);
                }
            }
            _ => {
                if ordered.len() == 2 {
                    self.watch_binary(ordered[0], ordered[1], cref);
                } else {
                    let (w0, w1) = (ordered[0], ordered[1]);
                    self.watch(w0, cref, w1);
                    self.watch(w1, cref, w0);
                }
            }
        }
        self.ordered_buf = ordered;
    }

    /// Charges the conflicts/propagations performed since the last
    /// charge against the portfolio-shared caps (no-op without shared
    /// caps). Returns `true` when the shared pool is exhausted.
    fn charge_shared_budget(&mut self) -> bool {
        if !self.budget.has_shared_caps() {
            return false;
        }
        let dc = self.stats.conflicts - self.shared_conflicts_charged;
        let dp = self.stats.propagations - self.shared_props_charged;
        self.shared_conflicts_charged = self.stats.conflicts;
        self.shared_props_charged = self.stats.propagations;
        self.budget.charge_shared(dc, dp)
    }

    fn add_clause_impl(
        &mut self,
        lits: &mut Vec<Lit>,
        ordered: &mut Vec<Lit>,
        pure: bool,
    ) -> ClauseId {
        let id = ClauseId(self.next_clause_id);
        self.next_clause_id += 1;

        for &l in lits.iter() {
            self.ensure_vars(l.var().index() + 1);
        }
        lits.sort_unstable();
        lits.dedup();
        let tautology = lits.windows(2).any(|w| w[0].var() == w[1].var());

        let tid = self.trace.add_original(id);

        if !self.ok || tautology {
            return id;
        }

        debug_assert_eq!(self.decision_level(), 0);

        if lits.is_empty() {
            self.ok = false;
            self.unsat_core = Some(vec![id]);
            return id;
        }

        // Partition by current (level-0) value.
        let mut satisfied = false;
        let mut num_unassigned = 0usize;
        for &l in lits.iter() {
            match self.lit_value(l) {
                Some(true) => {
                    satisfied = true;
                    break;
                }
                None => num_unassigned += 1,
                Some(false) => {}
            }
        }
        if satisfied {
            // Satisfied at level 0 forever: store for completeness but do
            // not watch. It can never appear in a core.
            let cref = self.db.add(lits, false, tid);
            if pure {
                self.db.set_pure(cref);
            }
            return id;
        }

        match num_unassigned {
            0 => {
                // All literals false at level 0: immediate refutation.
                let cref = self.db.add(lits, false, tid);
                if pure {
                    self.db.set_pure(cref);
                }
                let core = self.final_conflict_core(cref);
                self.ok = false;
                self.unsat_core = Some(core);
            }
            1 => {
                // Reason clauses keep their asserted literal at
                // position 0 (cheapest for conflict analysis).
                ordered.clear();
                ordered.extend(
                    lits.iter()
                        .copied()
                        .filter(|&l| self.lit_value(l).is_none()),
                );
                let unit = ordered[0];
                ordered.extend(lits.iter().copied().filter(|&x| x != unit));
                let cref = self.db.add(ordered, false, tid);
                if pure {
                    // The stored clause (all literals) is pure; whether
                    // the *unit fact* is pure additionally depends on
                    // the purity of the level-0 facts that falsified
                    // the other literals — `enqueue` works that out.
                    self.db.set_pure(cref);
                }
                if ordered.len() == 2 {
                    // The invariant holds forever once `unit` is
                    // enqueued true, so a binary watcher is safe even
                    // though the other literal is already false.
                    self.watch_binary(ordered[0], ordered[1], cref);
                } else if ordered.len() > 2 {
                    // Watch the unit literal plus an arbitrary (false,
                    // level-0, never-undone) literal: the invariant holds
                    // forever once `unit` is enqueued true.
                    self.watch(ordered[0], cref, ordered[1]);
                    self.watch(ordered[1], cref, ordered[0]);
                }
                self.enqueue(unit, cref);
                if let Some(confl) = self.propagate() {
                    let core = self.final_conflict_core(confl);
                    self.ok = false;
                    self.unsat_core = Some(core);
                }
            }
            _ => {
                // Order the clause so unassigned literals come first
                // (stable partition: both halves keep the sorted order).
                ordered.clear();
                ordered.extend(
                    lits.iter()
                        .copied()
                        .filter(|&l| self.lit_value(l).is_none()),
                );
                ordered.extend(
                    lits.iter()
                        .copied()
                        .filter(|&l| self.lit_value(l).is_some()),
                );
                let cref = self.db.add(ordered, false, tid);
                if pure {
                    self.db.set_pure(cref);
                }
                if ordered.len() == 2 {
                    self.watch_binary(ordered[0], ordered[1], cref);
                } else {
                    let (w0, w1) = (ordered[0], ordered[1]);
                    self.watch(w0, cref, w1);
                    self.watch(w1, cref, w0);
                }
            }
        }
        id
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveOutcome {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// On [`SolveOutcome::Unsat`], either the formula itself was refuted
    /// ([`Solver::unsat_core`] returns `Some`) or the assumptions are
    /// inconsistent with it ([`Solver::failed_assumptions`] lists a
    /// subset of assumptions sufficient for unsatisfiability).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveOutcome {
        self.model = None;
        self.failed_assumptions.clear();
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        for &a in assumptions {
            assert!(
                a.var().index() < self.num_vars(),
                "assumption over unknown variable"
            );
        }
        // One coarse span per SAT call: every driver's invocations are
        // covered here, whichever entry path (bare solver, incremental
        // engine, probe-free solve) they use.
        let sat_span = coremax_obs::span(Phase::SatCall);
        let outcome = self.solve_inner(assumptions);
        sat_span.finish(&mut self.stats.phase);
        outcome
    }

    fn solve_inner(&mut self, assumptions: &[Lit]) -> SolveOutcome {
        self.solve_calls += 1;
        if self.solve_calls > 1 {
            self.stats.incremental_solves += 1;
            self.stats.clauses_retained += self.db.num_learned() as u64;
        }

        let start = Instant::now();
        let deadline = self.budget.effective_deadline(start);
        let conflict_cap = self
            .budget
            .max_conflicts()
            .map(|c| self.stats.conflicts + c);
        let propagation_cap = self
            .budget
            .max_propagations()
            .map(|p| self.stats.propagations + p);

        // Arm the in-propagation interruption checks for this solve.
        self.interrupted = false;
        self.active_deadline = deadline;
        self.active_prop_cap = propagation_cap;
        self.interrupt_armed = deadline.is_some()
            || propagation_cap.is_some()
            || self.budget.has_stop_flag()
            || self.budget.has_shared_caps();
        self.props_until_check = self.config.propagation_check_interval.max(1);
        self.shared_conflicts_charged = self.stats.conflicts;
        self.shared_props_charged = self.stats.propagations;
        if self.budget.stop_requested() || self.budget.shared_caps_exhausted() {
            self.interrupt_armed = false;
            return SolveOutcome::Unknown;
        }

        if self.max_learnts == 0.0 {
            self.max_learnts = (self.db.num_clauses() as f64 * self.config.learntsize_factor)
                .max(self.config.min_learnts);
        }

        // Exchange epoch at solve start: publish anything staged by a
        // previous call and install imports that arrived in between.
        self.exchange_sync();

        let mut restart_count: u64 = 0;
        let outcome = loop {
            // An exchange sync (here at solve start, or below at a
            // restart boundary) can refute the formula outright when an
            // imported clause conflicts with the level-0 state.
            if !self.ok {
                break SolveOutcome::Unsat;
            }
            restart_count += 1;
            let budget_this_restart = match self.config.restart_mode {
                RestartMode::Luby => self.config.restart_base * luby(restart_count),
                // Glucose restarts are triggered adaptively inside
                // `search`, not by a conflict budget.
                RestartMode::Glucose => u64::MAX,
            };
            match self.search(
                assumptions,
                budget_this_restart,
                deadline,
                conflict_cap,
                propagation_cap,
            ) {
                SearchResult::Sat => break SolveOutcome::Sat,
                SearchResult::Unsat => break SolveOutcome::Unsat,
                SearchResult::Restart => {
                    self.stats.restarts += 1;
                    match self.config.restart_mode {
                        RestartMode::Luby => self.stats.restarts_luby += 1,
                        RestartMode::Glucose => self.stats.restarts_glucose += 1,
                    }
                    if coremax_obs::tracing_enabled() {
                        coremax_obs::emit(Event::Restart {
                            restarts: self.stats.restarts,
                            conflicts: self.stats.conflicts,
                            learned: self.db.num_learned() as u64,
                        });
                    }
                    // A fresh restart starts a fresh recent-LBD window.
                    self.lbd_queue_len = 0;
                    self.lbd_queue_pos = 0;
                    self.lbd_recent_sum = 0;
                    // Restart boundary, trail at level 0: the exchange
                    // epoch point. Staged exports publish, pending
                    // imports install against the settled trail.
                    self.exchange_sync();
                }
                SearchResult::BudgetExhausted => break SolveOutcome::Unknown,
            }
        };
        // Flush the residual shared-cap charge so portfolio-wide
        // accounting stays exact, and publish any exports staged since
        // the last restart (imports wait for the next solve — the
        // verdict just produced must not be disturbed post hoc).
        let _ = self.charge_shared_budget();
        if let Some(ex) = self.exchange.as_mut() {
            self.stats.clauses_exported += ex.publish();
        }
        self.interrupt_armed = false;
        self.interrupted = false;
        self.active_deadline = None;
        self.active_prop_cap = None;
        self.cancel_until(0);
        outcome
    }

    /// The satisfying assignment found by the last successful solve.
    #[must_use]
    pub fn model(&self) -> Option<&Assignment> {
        self.model.as_ref()
    }

    /// The clause-level unsatisfiable core, available once the formula
    /// has been refuted (independently of assumptions).
    ///
    /// The returned ids identify a subset of the original clauses whose
    /// conjunction is unsatisfiable. The core is *not* guaranteed to be
    /// minimal, matching the behaviour of proof-logging CDCL solvers.
    #[must_use]
    pub fn unsat_core(&self) -> Option<&[ClauseId]> {
        self.unsat_core.as_deref()
    }

    /// After UNSAT-under-assumptions, the subset of assumption literals
    /// that was used to derive the contradiction.
    #[must_use]
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed_assumptions
    }

    /// Returns `true` while the formula has not been refuted.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    // ------------------------------------------------------------------
    // Preprocessing hooks
    //
    // Small, stable entry points used by the `coremax_simp` subsystem:
    // top-level probing rides on the solver's two-watched-literal
    // propagation instead of re-implementing it, and the facts the
    // solver accumulates at level 0 flow back to the simplifier.
    // ------------------------------------------------------------------

    /// The literals fixed at decision level 0 (facts), in trail order.
    ///
    /// Outside of a `solve` call the solver always sits at level 0, so
    /// this is the whole trail: original units plus everything unit
    /// propagation and probing derived from them.
    #[must_use]
    pub fn level0_literals(&self) -> &[Lit] {
        let end = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        &self.trail[..end]
    }

    /// Failed-literal probe: assumes `lit` at a fresh decision level,
    /// propagates to fixpoint, and backtracks to level 0 before
    /// returning.
    ///
    /// Returns `None` when the probe is vacuous (the literal is already
    /// assigned at level 0, or the solver is already UNSAT), otherwise
    /// `Some(conflicted)`. A `Some(true)` result means `¬lit` is implied
    /// by the clauses — callers typically follow up with
    /// [`Solver::import_units`].
    ///
    /// # Panics
    ///
    /// Panics if called mid-search (the solver must be at level 0).
    pub fn probe_lit(&mut self, lit: Lit) -> Option<bool> {
        assert_eq!(self.decision_level(), 0, "probe only at top level");
        if !self.ok {
            return None;
        }
        self.ensure_vars(lit.var().index() + 1);
        if self.lit_value(lit).is_some() {
            return None;
        }
        self.trail_lim.push(self.trail.len());
        self.enqueue(lit, CRef::UNDEF);
        let conflict = self.propagate().is_some();
        self.cancel_until(0);
        Some(conflict)
    }

    /// Imports unit facts as original clauses (the simplifier's unit
    /// import hook). Each unit propagates immediately at level 0;
    /// returns `false` if the solver became UNSAT along the way (the
    /// remaining units are still added, so cores stay exact).
    pub fn import_units<I: IntoIterator<Item = Lit>>(&mut self, units: I) -> bool {
        for l in units {
            self.add_clause([l]);
        }
        self.ok
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    #[inline]
    fn var_value(&self, v: Var) -> u8 {
        self.assigns[v.index() << 1]
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> Option<bool> {
        match self.assigns[l.index()] {
            VALUE_UNDEF => None,
            VALUE_TRUE => Some(true),
            _ => Some(false),
        }
    }

    #[inline]
    fn watch(&mut self, lit: Lit, cref: CRef, blocker: Lit) {
        // Clause watches `lit`; the watcher must fire when `lit` becomes
        // false, i.e. when `!lit` is enqueued.
        self.watches[(!lit).index()].push(Watcher { cref, blocker });
    }

    /// Registers both watchers of a binary clause `l0 ∨ l1`.
    #[inline]
    fn watch_binary(&mut self, l0: Lit, l1: Lit, cref: CRef) {
        self.bin_watches[(!l0).index()].push(BinWatcher { other: l1, cref });
        self.bin_watches[(!l1).index()].push(BinWatcher { other: l0, cref });
    }

    fn enqueue(&mut self, lit: Lit, reason: CRef) {
        debug_assert!(self.lit_value(lit).is_none());
        let v = lit.var();
        self.assigns[lit.index()] = VALUE_TRUE;
        self.assigns[(!lit).index()] = VALUE_FALSE;
        self.var_data[v.index()] = VarData {
            level: self.decision_level(),
            reason,
        };
        self.trail.push(lit);
        if self.decision_level() == 0 && !reason.is_undef() {
            // The unit fact `lit` is derived by resolving `reason` with
            // the unit derivations of its other (level-0 false) literals,
            // all of which were enqueued earlier. The fact is pure (hard-
            // implied over canonical variables) iff the reason and every
            // resolved-away unit fact are pure.
            let mut pure = self.db.is_pure(reason);
            let mut ants = std::mem::take(&mut self.unit_ants_buf);
            ants.clear();
            ants.push(self.db.trace(reason));
            for k in 0..self.db.len(reason) {
                let l = self.db.lits(reason)[k];
                if l.var() != v {
                    pure &= self.unit_pure[l.var().index()];
                    if let Some(t) = self.unit_trace[l.var().index()] {
                        ants.push(t);
                    }
                }
            }
            self.unit_trace[v.index()] = Some(self.trace.add_learned(&ants));
            self.unit_pure[v.index()] = pure;
            self.unit_ants_buf = ants;
        }
    }

    /// Interruption poll for the propagation loop: raised stop flag,
    /// expired deadline or exhausted propagation cap set
    /// `self.interrupted`. Out-of-line so the hot loop only pays a
    /// decrement-and-branch per propagation.
    #[cold]
    fn poll_interrupt(&mut self) -> bool {
        if self.charge_shared_budget()
            || self
                .active_prop_cap
                .is_some_and(|cap| self.stats.propagations >= cap)
            || self.budget.stop_requested()
            || self.active_deadline.is_some_and(|d| Instant::now() >= d)
        {
            self.interrupted = true;
            return true;
        }
        false
    }

    fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            // Observe stop flag / deadline / propagation cap *inside*
            // long implication chains (decision-loop polling alone can
            // lag by a whole chain). The poll runs BEFORE the next trail
            // literal is consumed: interrupting after the pop would skip
            // that literal's watch traversal, and at level 0 — where
            // `cancel_until(0)` is a no-op — the skip would be permanent
            // for a reused solver. Returning `None` here looks like a
            // fixpoint to `search`, which re-checks `self.interrupted`
            // before trusting it; the unpropagated queue suffix stays on
            // the trail, so a later resume picks up exactly here.
            if self.interrupt_armed {
                self.props_until_check -= 1;
                if self.props_until_check == 0 {
                    self.props_until_check = self.config.propagation_check_interval.max(1);
                    if self.poll_interrupt() {
                        return None;
                    }
                }
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            // Binary clauses first: the other literal is inline, the
            // clause arena is never touched, and watchers never move.
            let bins = std::mem::take(&mut self.bin_watches[p.index()]);
            for &w in &bins {
                match self.lit_value(w.other) {
                    Some(true) => {}
                    Some(false) => {
                        self.bin_watches[p.index()] = bins;
                        return Some(w.cref);
                    }
                    None => {
                        self.stats.bin_propagations += 1;
                        self.enqueue(w.other, w.cref);
                    }
                }
            }
            self.bin_watches[p.index()] = bins;

            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut kept = 0usize;
            let mut conflict: Option<CRef> = None;
            let mut i = 0usize;
            while i < ws.len() {
                let w = ws[i];
                i += 1;
                // Blocker first: it needs no clause-header access, and a
                // deleted clause parked behind a true blocker is
                // harmless until the next collection sweeps it.
                if self.lit_value(w.blocker) == Some(true) {
                    ws[kept] = w;
                    kept += 1;
                    continue;
                }
                if self.db.is_deleted(w.cref) {
                    continue; // lazily drop watchers of deleted clauses
                }
                let false_lit = !p;
                // One header read per watcher; everything below indexes
                // the literal arena directly.
                let (start, len) = self.db.span(w.cref);
                // Normalise: the false literal sits at index 1.
                if self.db.lit_at(start) == false_lit {
                    self.db.swap_lits(start, start + 1);
                }
                debug_assert_eq!(self.db.lit_at(start + 1), false_lit);
                let first = self.db.lit_at(start);
                if first != w.blocker && self.lit_value(first) == Some(true) {
                    ws[kept] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    kept += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replacement = None;
                for k in 2..len {
                    if self.lit_value(self.db.lit_at(start + k)) != Some(false) {
                        replacement = Some(k);
                        break;
                    }
                }
                if let Some(k) = replacement {
                    self.db.swap_lits(start + 1, start + k);
                    let new_watch = self.db.lit_at(start + 1);
                    self.watch(new_watch, w.cref, first);
                    continue; // watcher moved to another list
                }
                // No replacement: clause is unit or conflicting.
                if self.lit_value(first) == Some(false) {
                    conflict = Some(w.cref);
                    // Keep the remaining watchers (including this one).
                    ws[kept] = w;
                    kept += 1;
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                } else {
                    ws[kept] = w;
                    kept += 1;
                    self.enqueue(first, w.cref);
                }
            }
            ws.truncate(kept);
            debug_assert!(self.watches[p.index()].is_empty());
            self.watches[p.index()] = ws;
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn decide(&mut self, lit: Lit) {
        self.stats.decisions += 1;
        self.trail_lim.push(self.trail.len());
        self.enqueue(lit, CRef::UNDEF);
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for idx in (bound..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var();
            self.assigns[lit.index()] = VALUE_UNDEF;
            self.assigns[(!lit).index()] = VALUE_UNDEF;
            self.phase[v.index()] = lit.is_positive();
            self.var_data[v.index()].reason = CRef::UNDEF;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay;
    }

    fn bump_clause(&mut self, c: CRef) {
        if self.db.bump_activity(c, self.cla_inc) {
            self.db.rescale_activities();
            self.cla_inc *= 1e-20_f32;
        }
    }

    /// First-UIP conflict analysis. Fills [`Solver::learnt_buf`] with
    /// the learned clause (asserting literal first) and
    /// [`Solver::antecedents_buf`] with the antecedent trace ids, stores
    /// the learn-time LBD in `pending_lbd`, and returns the backtrack
    /// level. Allocation-free once the scratch capacities plateau.
    fn analyze(&mut self, mut confl: CRef) -> u32 {
        let caps = (
            self.learnt_buf.capacity(),
            self.antecedents_buf.capacity(),
            self.analyze_toclear.capacity(),
            self.analyze_stack.capacity(),
            self.redundant_buf.capacity(),
        );
        let mut learnt = std::mem::take(&mut self.learnt_buf);
        learnt.clear();
        learnt.push(Lit::from_code(0)); // placeholder for UIP
        let mut antecedents = std::mem::take(&mut self.antecedents_buf);
        antecedents.clear();
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        // The learned clause is pure — implied by the pure (hard,
        // canonical-variable) part of the formula alone — iff every
        // clause resolved into its derivation is pure.
        let mut pure = true;

        loop {
            antecedents.push(self.db.trace(confl));
            pure &= self.db.is_pure(confl);
            if self.db.is_learned(confl) {
                self.bump_clause(confl);
                // Keep the stored LBD current (it can only improve):
                // LBD-driven reduction and glue protection key off it.
                // Glue clauses are already maximally protected, so skip
                // the O(len) recomputation for them.
                if self.db.lbd(confl) > 2 {
                    let lbd = compute_lbd(
                        &self.var_data,
                        &mut self.lbd_stamp,
                        &mut self.lbd_gen,
                        self.db.lits(confl),
                    );
                    if lbd < self.db.lbd(confl) {
                        self.db.set_lbd(confl, lbd);
                    }
                }
            }
            for k in 0..self.db.len(confl) {
                let q = self.db.lits(confl)[k];
                // Skip the literal resolved on (binary reasons keep it
                // at an arbitrary position, so match by value).
                if p == Some(q) {
                    continue;
                }
                let v = q.var();
                if self.seen[v.index()] {
                    continue;
                }
                if self.var_data[v.index()].level == 0 {
                    // Skipped from the learned clause, but its unit
                    // derivation is part of the resolution proof.
                    pure &= self.unit_pure[v.index()];
                    if let Some(t) = self.unit_trace[v.index()] {
                        antecedents.push(t);
                    }
                    continue;
                }
                self.seen[v.index()] = true;
                self.bump_var(v);
                if self.var_data[v.index()].level >= self.decision_level() {
                    path_count += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Select next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            let v = lit.var();
            self.seen[v.index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !lit;
                break;
            }
            p = Some(lit);
            confl = self.var_data[v.index()].reason;
            debug_assert!(!confl.is_undef(), "resolved literal must have a reason");
        }

        self.stats.max_literals += learnt.len() as u64;

        // Recursive clause minimisation (MiniSAT ccmin deep mode). A kept
        // literal's removal resolves extra clauses into the derivation, so
        // the reasons visited by a *successful* redundancy proof join the
        // antecedents.
        self.analyze_toclear.clear();
        self.analyze_toclear.extend_from_slice(&learnt);
        let levels_mask: u64 = learnt[1..].iter().fold(0u64, |m, l| {
            m | 1u64 << (self.var_data[l.var().index()].level & 63)
        });
        let mut j = 1;
        for i in 1..learnt.len() {
            let l = learnt[i];
            let reason = self.var_data[l.var().index()].reason;
            if reason.is_undef() || !self.lit_redundant(l, levels_mask, &mut antecedents, &mut pure)
            {
                learnt[j] = l;
                j += 1;
            }
        }
        learnt.truncate(j);
        for i in 0..self.analyze_toclear.len() {
            let l = self.analyze_toclear[i];
            self.seen[l.var().index()] = false;
        }
        self.analyze_toclear.clear();

        self.stats.tot_literals += learnt.len() as u64;
        self.pending_pure = pure;

        // Learn-time LBD, while the literal levels are still valid.
        self.pending_lbd = compute_lbd(
            &self.var_data,
            &mut self.lbd_stamp,
            &mut self.lbd_gen,
            &learnt,
        )
        .max(1);

        // Compute backtrack level and move the max-level literal to slot 1.
        let backtrack = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.var_data[learnt[i].var().index()].level
                    > self.var_data[learnt[max_i].var().index()].level
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.var_data[learnt[1].var().index()].level
        };

        self.learnt_buf = learnt;
        self.antecedents_buf = antecedents;
        let caps_after = (
            self.learnt_buf.capacity(),
            self.antecedents_buf.capacity(),
            self.analyze_toclear.capacity(),
            self.analyze_stack.capacity(),
            self.redundant_buf.capacity(),
        );
        if caps_after != caps {
            self.stats.scratch_reallocs += u64::from(caps_after.0 != caps.0)
                + u64::from(caps_after.1 != caps.1)
                + u64::from(caps_after.2 != caps.2)
                + u64::from(caps_after.3 != caps.3)
                + u64::from(caps_after.4 != caps.4);
        }
        backtrack
    }

    /// Checks whether `lit` is implied by the rest of the learned clause
    /// (so it can be dropped). On success the visited reasons are pushed
    /// into `antecedents` (and `pure` is ANDed with their purity, since
    /// the removal resolves them into the derivation); on failure
    /// nothing is recorded.
    fn lit_redundant(
        &mut self,
        lit: Lit,
        levels_mask: u64,
        antecedents: &mut Vec<TraceId>,
        pure: &mut bool,
    ) -> bool {
        let mut stack = std::mem::take(&mut self.analyze_stack);
        stack.clear();
        stack.push(lit);
        let mut visited_reasons = std::mem::take(&mut self.redundant_buf);
        visited_reasons.clear();
        let top = self.analyze_toclear.len();
        let mut failed = false;
        let mut probe_pure = true;

        while let Some(l) = stack.pop() {
            let reason = self.var_data[l.var().index()].reason;
            debug_assert!(!reason.is_undef());
            visited_reasons.push(self.db.trace(reason));
            probe_pure &= self.db.is_pure(reason);
            for k in 0..self.db.len(reason) {
                let q = self.db.lits(reason)[k];
                let v = q.var();
                if q == !l || self.seen[v.index()] {
                    continue;
                }
                if self.var_data[v.index()].level == 0 {
                    probe_pure &= self.unit_pure[v.index()];
                    if let Some(t) = self.unit_trace[v.index()] {
                        visited_reasons.push(t);
                    }
                    continue;
                }
                // Abstraction check: the literal's level must appear in
                // the clause, and it must itself have a reason.
                if self.var_data[v.index()].reason.is_undef()
                    || (1u64 << (self.var_data[v.index()].level & 63)) & levels_mask == 0
                {
                    failed = true;
                    break;
                }
                self.seen[v.index()] = true;
                self.analyze_toclear.push(q);
                stack.push(q);
            }
            if failed {
                break;
            }
        }

        if failed {
            // Undo the marks added during this (failed) probe.
            for l in self.analyze_toclear.drain(top..) {
                self.seen[l.var().index()] = false;
            }
        } else {
            antecedents.extend_from_slice(&visited_reasons);
            *pure &= probe_pure;
        }
        self.analyze_stack = stack;
        self.redundant_buf = visited_reasons;
        !failed
    }

    /// Resolves a level-0 conflict back to original clause ids: the
    /// refutation core (Proposition: the returned clause set is UNSAT).
    fn final_conflict_core(&mut self, confl: CRef) -> Vec<ClauseId> {
        let mut roots = vec![self.db.trace(confl)];
        debug_assert_eq!(self.decision_level(), 0);
        let mut marked = vec![false; self.num_vars()];
        for &l in self.db.lits(confl) {
            marked[l.var().index()] = true;
        }
        for idx in (0..self.trail.len()).rev() {
            let v = self.trail[idx].var();
            if !marked[v.index()] {
                continue;
            }
            let reason = self.var_data[v.index()].reason;
            debug_assert!(
                !reason.is_undef(),
                "level-0 assignments always have clause reasons"
            );
            roots.push(self.db.trace(reason));
            for &l in self.db.lits(reason) {
                marked[l.var().index()] = true;
            }
        }
        self.trace.expand_to_original(&roots)
    }

    /// MiniSAT `analyzeFinal`: collects a subset `S` of the assumption
    /// literals such that the formula conjoined with `S` is
    /// unsatisfiable. `a` is the assumption that was found false.
    fn analyze_final(&mut self, a: Lit) {
        self.failed_assumptions.clear();
        self.failed_assumptions.push(a);
        if self.decision_level() == 0 {
            return;
        }
        let mut marked = vec![false; self.num_vars()];
        marked[a.var().index()] = true;
        let bottom = self.trail_lim[0];
        for idx in (bottom..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var();
            if !marked[v.index()] {
                continue;
            }
            let reason = self.var_data[v.index()].reason;
            if reason.is_undef() {
                // A decision: under assumption-driven search every
                // decision below the failing point is an assumption, and
                // `lit` is exactly the assumed literal.
                self.failed_assumptions.push(lit);
            } else {
                for &l in self.db.lits(reason) {
                    if self.var_data[l.var().index()].level > 0 {
                        marked[l.var().index()] = true;
                    }
                }
            }
        }
    }

    /// Records the clause prepared by [`Solver::analyze`] (in
    /// `learnt_buf` / `antecedents_buf` / `pending_lbd`) into the
    /// database, watches it, and asserts its first literal.
    ///
    /// Learned clauses satisfy the same arena invariant as normalised
    /// problem clauses — no duplicate literals, no tautologies — by
    /// construction: `analyze` admits each variable at most once via
    /// the `seen` marks, so no explicit normalisation pass is needed
    /// here (the invariant is asserted in [`ClauseDb::add`]).
    fn record_learnt(&mut self) {
        self.stats.conflicts += 1;
        self.stats.learned_clauses += 1;
        let lbd = self.pending_lbd;
        self.stats.lbd_hist[SolverStats::lbd_bucket(lbd)] += 1;
        if lbd <= 2 {
            self.stats.glue_clauses += 1;
        }
        self.note_learnt_lbd(lbd);
        let tid = self.trace.add_learned(&self.antecedents_buf);
        let cref = self.db.add(&self.learnt_buf, true, tid);
        self.db.set_lbd(cref, lbd);
        if self.pending_pure {
            // Every antecedent was pure, so this clause is implied by
            // the pure (hard, canonical-variable) clauses alone — it is
            // sound to hand to every other portfolio worker.
            self.db.set_pure(cref);
            if let Some(ex) = self.exchange.as_mut() {
                if ex.export_enabled()
                    && lbd <= ex.max_lbd()
                    && self.learnt_buf.len() <= ex.max_len()
                {
                    ex.stage(&self.learnt_buf, lbd);
                }
            }
        }
        let first = self.learnt_buf[0];
        match self.learnt_buf.len() {
            // Asserting unit: becomes a level-0 fact with the learned
            // clause as its reason.
            1 => {}
            2 => {
                let other = self.learnt_buf[1];
                self.watch_binary(first, other, cref);
                self.bump_clause(cref);
            }
            _ => {
                let (w0, w1) = (self.learnt_buf[0], self.learnt_buf[1]);
                self.watch(w0, cref, w1);
                self.watch(w1, cref, w0);
                self.bump_clause(cref);
            }
        }
        self.enqueue(first, cref);
        self.stats.peak_learned = self.stats.peak_learned.max(self.db.num_learned() as u64);
        self.decay_activities();
    }

    /// Feeds a learn-time LBD into the glucose restart bookkeeping.
    fn note_learnt_lbd(&mut self, lbd: u32) {
        self.lbd_global_sum += u64::from(lbd);
        let window = self.config.glucose_lbd_window;
        if window == 0 {
            return;
        }
        if self.lbd_queue.len() != window {
            self.lbd_queue.clear();
            self.lbd_queue.resize(window, 0);
            self.lbd_queue_len = 0;
            self.lbd_queue_pos = 0;
            self.lbd_recent_sum = 0;
        }
        if self.lbd_queue_len == window {
            self.lbd_recent_sum -= u64::from(self.lbd_queue[self.lbd_queue_pos]);
        } else {
            self.lbd_queue_len += 1;
        }
        self.lbd_queue[self.lbd_queue_pos] = lbd;
        self.lbd_recent_sum += u64::from(lbd);
        self.lbd_queue_pos = (self.lbd_queue_pos + 1) % window;
    }

    /// Glucose restart condition: the recent-LBD window is full and its
    /// average exceeds the global average by the configured margin.
    fn glucose_should_restart(&self) -> bool {
        let window = self.config.glucose_lbd_window;
        window > 0
            && self.lbd_queue_len == window
            && self.stats.conflicts > 0
            && (self.lbd_recent_sum as f64 / window as f64) * self.config.glucose_margin
                > self.lbd_global_sum as f64 / self.stats.conflicts as f64
    }

    /// Halves the learned-clause database. Ordering is LBD-primary
    /// (higher LBD deleted first), activity-secondary via a total order;
    /// glue clauses (LBD ≤ 2), binary clauses and reason clauses are
    /// never deleted. Runs the arena garbage collector afterwards when
    /// enough literals are reclaimable.
    fn reduce_db(&mut self) {
        let reduce_span = coremax_obs::span(Phase::ReduceDb);
        let learned_before = self.db.num_learned() as u64;
        let mut refs = std::mem::take(&mut self.reduce_scratch);
        let cap_before = refs.capacity();
        refs.clear();
        refs.extend(self.db.learned_refs());
        {
            let db = &self.db;
            refs.sort_unstable_by(|&a, &b| {
                db.lbd(b)
                    .cmp(&db.lbd(a))
                    .then_with(|| db.activity(a).total_cmp(&db.activity(b)))
            });
        }
        let target = refs.len() / 2;
        let mut removed = 0usize;
        for &c in refs.iter() {
            if removed >= target {
                break;
            }
            if self.db.len(c) <= 2
                || self.db.lbd(c) <= 2
                || self.db.is_import(c)
                || self.is_locked(c)
            {
                continue;
            }
            self.db.mark_deleted(c);
            self.stats.deleted_clauses += 1;
            removed += 1;
        }
        if refs.capacity() != cap_before {
            self.stats.scratch_reallocs += 1;
        }
        self.reduce_scratch = refs;
        reduce_span.finish(&mut self.stats.phase);
        if coremax_obs::tracing_enabled() {
            coremax_obs::emit(Event::ReduceDb {
                learned_before,
                learned_after: self.db.num_learned() as u64,
            });
        }
        self.maybe_collect_garbage();
    }

    fn is_locked(&self, c: CRef) -> bool {
        let first = self.db.lits(c)[0];
        self.var_data[first.var().index()].reason == c && self.lit_value(first) == Some(true)
    }

    /// Whether the live clause-arena footprint exceeds the configured
    /// memory watermark.
    fn over_watermark(&self) -> bool {
        self.config
            .arena_watermark_words
            .is_some_and(|w| self.db.total_words() - self.db.wasted_words() > w)
    }

    /// Memory-pressure response: sheds *every* unprotected learned
    /// clause (glue, binary and reason clauses survive), clamps the
    /// learned-clause cap back down so the database does not immediately
    /// regrow past the watermark, and compacts the arena
    /// unconditionally. Soundness is untouched — learned clauses are
    /// redundant by construction.
    fn reduce_db_aggressive(&mut self) {
        self.stats.watermark_reductions += 1;
        let reduce_span = coremax_obs::span(Phase::ReduceDb);
        let learned_before = self.db.num_learned() as u64;
        let mut refs = std::mem::take(&mut self.reduce_scratch);
        refs.clear();
        refs.extend(self.db.learned_refs());
        for &c in refs.iter() {
            if self.db.len(c) <= 2
                || self.db.lbd(c) <= 2
                || self.db.is_import(c)
                || self.is_locked(c)
            {
                continue;
            }
            self.db.mark_deleted(c);
            self.stats.deleted_clauses += 1;
        }
        self.reduce_scratch = refs;
        self.max_learnts = (self.db.num_learned() as f64).max(self.config.min_learnts);
        reduce_span.finish(&mut self.stats.phase);
        if coremax_obs::tracing_enabled() {
            coremax_obs::emit(Event::WatermarkReduction {
                learned_before,
                learned_after: self.db.num_learned() as u64,
            });
        }
        self.collect_garbage_now();
    }

    /// Compacts the clause arena when at least `gc_frac` of its literals
    /// belongs to deleted clauses, remapping every stored `CRef`
    /// (watchers, reasons). The resolution trace holds no `CRef`s, so
    /// cores remain exact across collections.
    fn maybe_collect_garbage(&mut self) {
        let wasted = self.db.wasted_words();
        if wasted == 0 || (wasted as f64) < self.config.gc_frac * self.db.total_words() as f64 {
            return;
        }
        self.collect_garbage_now();
    }

    /// Compacts the clause arena unconditionally (the memory-pressure
    /// path cannot wait for `gc_frac` to be reached).
    fn collect_garbage_now(&mut self) {
        if self.db.wasted_words() == 0 {
            return;
        }
        let gc_span = coremax_obs::span(Phase::Gc);
        let remap = self.db.collect_garbage();
        for ws in &mut self.watches {
            ws.retain_mut(|w| {
                let n = remap.remap(w.cref);
                w.cref = n;
                !n.is_undef()
            });
        }
        for ws in &mut self.bin_watches {
            for w in ws.iter_mut() {
                w.cref = remap.remap(w.cref);
                debug_assert!(!w.cref.is_undef(), "binary clauses are never deleted");
            }
        }
        for vd in &mut self.var_data {
            if !vd.reason.is_undef() {
                let n = remap.remap(vd.reason);
                debug_assert!(!n.is_undef(), "reason clauses are never deleted");
                vd.reason = n;
            }
        }
        self.stats.gc_runs += 1;
        self.stats.gc_bytes_reclaimed += remap.bytes_reclaimed;
        gc_span.finish(&mut self.stats.phase);
        coremax_obs::emit(Event::Gc {
            bytes_reclaimed: remap.bytes_reclaimed,
        });
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        conflicts_allowed: u64,
        deadline: Option<Instant>,
        conflict_cap: Option<u64>,
        propagation_cap: Option<u64>,
    ) -> SearchResult {
        let mut conflicts_here: u64 = 0;
        // One deadline/stop poll per restart keeps long restarts honest
        // even when the per-decision counter below rarely fires.
        if self.budget.stop_requested() {
            return SearchResult::BudgetExhausted;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return SearchResult::BudgetExhausted;
            }
        }
        let check_interval = self.config.timeout_check_interval.max(1);
        let mut until_time_check = check_interval;
        loop {
            // Phase spans in the hot loop are inert (one relaxed load,
            // no clock read) unless `coremax_obs` timing is enabled.
            let prop_span = coremax_obs::span(Phase::Propagate);
            let propagated = self.propagate();
            prop_span.finish(&mut self.stats.phase);
            if let Some(confl) = propagated {
                conflicts_here += 1;
                if self.decision_level() == 0 {
                    let core = self.final_conflict_core(confl);
                    self.ok = false;
                    self.unsat_core = Some(core);
                    return SearchResult::Unsat;
                }
                let analyze_span = coremax_obs::span(Phase::Analyze);
                let backtrack = self.analyze(confl);
                self.cancel_until(backtrack);
                self.record_learnt();
                analyze_span.finish(&mut self.stats.phase);
                if self.stats.conflicts.is_multiple_of(1024) && coremax_obs::tracing_enabled() {
                    coremax_obs::emit(Event::ConflictRate {
                        conflicts: self.stats.conflicts,
                        propagations: self.stats.propagations,
                    });
                }
                if let Some(cap) = conflict_cap {
                    if self.stats.conflicts >= cap {
                        return SearchResult::BudgetExhausted;
                    }
                }
                // Conflict-heavy search (short chains, constant
                // conflicts) must observe cancellation too: one relaxed
                // atomic load per conflict, free when no flag is set.
                if self.budget.stop_requested() {
                    return SearchResult::BudgetExhausted;
                }
                // Portfolio-wide caps are charged per conflict so no
                // member can overrun the shared pool by a whole restart.
                if self.charge_shared_budget() {
                    return SearchResult::BudgetExhausted;
                }
                if conflicts_here >= conflicts_allowed
                    || (self.config.restart_mode == RestartMode::Glucose
                        && self.glucose_should_restart())
                {
                    self.cancel_until(0);
                    return SearchResult::Restart;
                }
                continue;
            }

            // `propagate` returns `None` both at a true fixpoint and
            // when it was interrupted mid-chain; only the former may
            // proceed to the model check below.
            if self.interrupted {
                return SearchResult::BudgetExhausted;
            }

            // Propagation fixpoint reached: bookkeeping, then decide.
            if let Some(cap) = propagation_cap {
                if self.stats.propagations >= cap {
                    return SearchResult::BudgetExhausted;
                }
            }
            if let Some(d) = deadline {
                // An Instant::now() per decision is measurable, so the
                // deadline is polled once per `timeout_check_interval`
                // decisions instead.
                until_time_check -= 1;
                if until_time_check == 0 {
                    until_time_check = check_interval;
                    if Instant::now() >= d {
                        return SearchResult::BudgetExhausted;
                    }
                }
            }
            if self.over_watermark() {
                self.reduce_db_aggressive();
            } else if self.db.num_learned() as f64 >= self.max_learnts {
                self.max_learnts *= self.config.learntsize_inc;
                self.reduce_db();
            }

            // Assumption handling.
            let mut next_decision: Option<Lit> = None;
            let level = self.decision_level() as usize;
            if level < assumptions.len() {
                let a = assumptions[level];
                match self.lit_value(a) {
                    Some(true) => {
                        // Already satisfied: open an (empty) level so the
                        // per-level assumption indexing stays aligned.
                        self.trail_lim.push(self.trail.len());
                        continue;
                    }
                    Some(false) => {
                        self.analyze_final(a);
                        return SearchResult::Unsat;
                    }
                    None => next_decision = Some(a),
                }
            }

            let lit = match next_decision {
                Some(l) => l,
                None => {
                    let mut picked = None;
                    while let Some(v) = self.order.pop(&self.activity) {
                        if self.var_value(v) == VALUE_UNDEF {
                            picked = Some(v);
                            break;
                        }
                    }
                    match picked {
                        Some(v) => Lit::new(v, self.phase[v.index()]),
                        None => {
                            // All variables assigned: a model.
                            let mut m = Assignment::for_vars(self.num_vars());
                            for i in 0..self.num_vars() {
                                m.assign(Var::new(i as u32), self.assigns[i << 1] == VALUE_TRUE);
                            }
                            self.model = Some(m);
                            return SearchResult::Sat;
                        }
                    }
                }
            };
            self.decide(lit);
        }
    }
}

enum SearchResult {
    Sat,
    Unsat,
    Restart,
    BudgetExhausted,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(d: i32) -> Lit {
        Lit::from_dimacs(d).unwrap()
    }

    fn solver_with(clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        for c in clauses {
            s.add_clause(c.iter().map(|&d| l(d)));
        }
        s
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn single_unit_sat() {
        let mut s = solver_with(&[&[1]]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let m = s.model().unwrap();
        assert_eq!(m.value(Var::new(0)), Some(true));
    }

    #[test]
    fn contradictory_units_unsat_with_core() {
        let mut s = solver_with(&[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert_eq!(core, &[ClauseId(0), ClauseId(1)]);
    }

    #[test]
    fn unsat_detected_at_add_time() {
        let mut s = Solver::new();
        s.add_clause([l(1)]);
        s.add_clause([l(-1)]);
        assert!(!s.is_ok());
        assert!(s.unsat_core().is_some());
    }

    #[test]
    fn empty_clause_is_core() {
        let mut s = Solver::new();
        s.add_clause([l(1)]);
        let id = s.add_clause(std::iter::empty());
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.unsat_core().unwrap(), &[id]);
    }

    #[test]
    fn simple_3sat_sat() {
        let mut s = solver_with(&[&[1, 2, 3], &[-1, -2], &[-2, -3], &[-1, -3], &[2]]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let m = s.model().unwrap();
        assert_eq!(m.value(Var::new(1)), Some(true));
        assert_eq!(m.value(Var::new(0)), Some(false));
        assert_eq!(m.value(Var::new(2)), Some(false));
    }

    #[test]
    fn paper_example1_unsat_core() {
        // (x1)(x2 ∨ ¬x1)(¬x2)
        let mut s = solver_with(&[&[1], &[2, -1], &[-2]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert_eq!(core.len(), 3);
    }

    #[test]
    fn core_excludes_irrelevant_clauses() {
        // Clauses 0-1 form the contradiction; 2-3 are satisfiable noise
        // over different variables.
        let mut s = solver_with(&[&[1], &[-1], &[2, 3], &[-2, 3]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert_eq!(core, &[ClauseId(0), ClauseId(1)]);
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole() {
        // p1h1, p2h1, ¬p1h1 ∨ ¬p2h1
        let mut s = solver_with(&[&[1], &[2], &[-1, -2]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.unsat_core().unwrap().len(), 3);
    }

    #[test]
    fn chain_implication_unsat() {
        // x1, x1→x2→…→x6, ¬x6.
        let mut s = solver_with(&[
            &[1],
            &[-1, 2],
            &[-2, 3],
            &[-3, 4],
            &[-4, 5],
            &[-5, 6],
            &[-6],
        ]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.unsat_core().unwrap().len(), 7);
    }

    #[test]
    fn core_is_subset_when_noise_present() {
        // An implication-chain contradiction plus 20 satisfiable clauses.
        let mut s = Solver::new();
        s.add_clause([l(1)]);
        s.add_clause([l(-1), l(2)]);
        s.add_clause([l(-2)]);
        for i in 0..20 {
            let base = 10 + 2 * i;
            s.add_clause([l(base), l(base + 1)]);
        }
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert_eq!(core, &[ClauseId(0), ClauseId(1), ClauseId(2)]);
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        s.add_clause([l(1), l(-1)]);
        s.add_clause([l(2)]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn duplicate_literals_deduped() {
        let mut s = Solver::new();
        s.add_clause([l(1), l(1), l(1)]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert_eq!(s.model().unwrap().value(Var::new(0)), Some(true));
    }

    #[test]
    fn assumptions_sat_and_unsat() {
        let mut s = solver_with(&[&[1, 2]]);
        assert_eq!(s.solve_with_assumptions(&[l(-1)]), SolveOutcome::Sat);
        assert_eq!(s.model().unwrap().value(Var::new(1)), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[l(-1), l(-2)]),
            SolveOutcome::Unsat
        );
        // Formula itself is satisfiable: no clause core, but failed
        // assumptions are reported.
        assert!(s.unsat_core().is_none());
        assert!(!s.failed_assumptions().is_empty());
        // Solver remains usable.
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn failed_assumptions_subset() {
        // x1→x2, assumption x1 and ¬x2 conflict; x3 assumption irrelevant.
        let mut s = solver_with(&[&[-1, 2]]);
        s.ensure_vars(3);
        let r = s.solve_with_assumptions(&[l(3), l(1), l(-2)]);
        assert_eq!(r, SolveOutcome::Unsat);
        let failed = s.failed_assumptions().to_vec();
        assert!(failed.contains(&l(1)) || failed.contains(&l(-2)));
        assert!(!failed.contains(&l(3)));
    }

    #[test]
    fn budget_conflicts_returns_unknown() {
        // A hard pigeonhole instance (5 pigeons, 4 holes) with a 1-conflict cap.
        let mut s = Solver::new();
        let php = php_clauses(5, 4);
        for c in &php {
            s.add_clause(c.iter().copied());
        }
        s.set_budget(Budget::new().with_max_conflicts(1));
        assert_eq!(s.solve(), SolveOutcome::Unknown);
        // With the cap lifted it is solved.
        s.set_budget(Budget::new());
        assert_eq!(s.solve(), SolveOutcome::Unsat);
    }

    /// A solver whose only work is one huge binary implication chain,
    /// triggered by the first *decision* (default phase true), so the
    /// entire chain runs inside a single `propagate` call during search
    /// — the exact scenario decision-based budget polling cannot see.
    fn chain_solver(chain: i32) -> Solver {
        let mut s = Solver::with_config(SolverConfig {
            default_phase: true,
            ..SolverConfig::default()
        });
        for i in 1..chain {
            s.add_clause([l(-i), l(i + 1)]);
        }
        s
    }

    #[test]
    fn propagation_cap_observed_mid_chain() {
        // The cap must bind *inside* the implication chain: overshoot is
        // bounded by one `propagation_check_interval`, not by the chain
        // length (the pre-PR behaviour only re-checked at the next
        // decision, i.e. ~50_000 propagations too late here).
        let mut s = chain_solver(50_000);
        s.set_budget(Budget::new().with_max_propagations(2_000));
        assert_eq!(s.solve(), SolveOutcome::Unknown);
        let interval = SolverConfig::default().propagation_check_interval;
        assert!(
            s.stats().propagations <= 2_000 + interval,
            "cap overshoot bounded by one check interval: {}",
            s.stats().propagations
        );
        s.set_budget(Budget::new());
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn level0_interrupt_resumes_without_losing_implications() {
        // A conflict at level 1 learns unit x1; the backjump to level 0
        // then propagates the whole chain inside search. The cap
        // interrupts mid-chain at level 0 — where `cancel_until(0)` is
        // a no-op, so the queue suffix (including the literal the poll
        // fired on) must survive for the next solve to finish exactly.
        const CHAIN: i32 = 30_000;
        let mut s = Solver::new();
        for i in 1..CHAIN {
            s.add_clause([l(-i), l(i + 1)]);
        }
        // Deciding ¬x1 (default phase false) conflicts immediately.
        let aux = CHAIN;
        s.add_clause([l(1), l(aux)]);
        s.add_clause([l(1), l(-aux)]);
        s.set_budget(Budget::new().with_max_propagations(2_000));
        assert_eq!(s.solve(), SolveOutcome::Unknown);
        s.set_budget(Budget::new());
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let m = s.model().unwrap();
        for v in 0..CHAIN as u32 {
            assert_eq!(m.value(Var::new(v)), Some(true), "x{} lost", v + 1);
        }
    }

    #[test]
    fn stop_flag_cancels_and_solver_stays_usable() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let mut s = chain_solver(10_000);
        let stop = Arc::new(AtomicBool::new(true));
        s.set_budget(Budget::new().with_stop_flag(stop.clone()));
        // A raised flag is observed before any search work begins.
        assert_eq!(s.solve(), SolveOutcome::Unknown);
        assert_eq!(s.stats().decisions, 0);
        // Lowering the flag makes the same solver finish the instance:
        // cancellation never corrupts the trail or the watch lists.
        stop.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let m = s.model().unwrap();
        assert_eq!(m.value(Var::new(9_999)), Some(true), "chain completed");
    }

    #[test]
    fn stop_flag_raised_mid_chain_interrupts_within_one_interval() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // Raise the flag from a second thread while the solver is deep
        // inside the chain. The outcome is either Unknown (flag seen
        // mid-run) or Sat (solver finished first) — but never a hang,
        // and an interrupted solver remains resumable.
        let mut s = chain_solver(200_000);
        let stop = Arc::new(AtomicBool::new(false));
        s.set_budget(Budget::new().with_stop_flag(stop.clone()));
        let outcome = std::thread::scope(|scope| {
            let setter = scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                stop.store(true, Ordering::Relaxed);
            });
            let outcome = s.solve();
            setter.join().unwrap();
            outcome
        });
        assert_ne!(outcome, SolveOutcome::Unsat);
        if outcome == SolveOutcome::Unknown {
            stop.store(false, Ordering::Relaxed);
            assert_eq!(s.solve(), SolveOutcome::Sat, "resumable after cancel");
        }
        assert!(s.model().is_some());
    }

    /// Pigeonhole principle clauses: n pigeons, m holes. p(i,j) = var i*m+j.
    fn php_clauses(n: usize, m: usize) -> Vec<Vec<Lit>> {
        let var = |i: usize, j: usize| Var::new((i * m + j) as u32);
        let mut out = Vec::new();
        for i in 0..n {
            out.push((0..m).map(|j| Lit::positive(var(i, j))).collect());
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in i1 + 1..n {
                    out.push(vec![Lit::negative(var(i1, j)), Lit::negative(var(i2, j))]);
                }
            }
        }
        out
    }

    #[test]
    fn pigeonhole_unsat_and_core_covers_pigeons() {
        let mut s = Solver::new();
        let clauses = php_clauses(4, 3);
        let n_clauses = clauses.len();
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert!(!core.is_empty());
        assert!(core.len() <= n_clauses);
        // The core must be unsatisfiable on its own: re-solve it.
        let mut s2 = Solver::new();
        for &id in core {
            s2.add_clause(clauses[id.index()].iter().copied());
        }
        assert_eq!(s2.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: Vec<Vec<Lit>> = vec![
            vec![l(1), l(2), l(-3)],
            vec![l(-1), l(3)],
            vec![l(-2), l(-3)],
            vec![l(2), l(3)],
        ];
        let mut s = Solver::new();
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let m = s.model().unwrap();
        for c in &clauses {
            assert!(c.iter().any(|&lit| m.satisfies(lit)), "clause violated");
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = solver_with(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert!(s.stats().conflicts >= 1);
    }

    #[test]
    fn binary_propagations_counted() {
        // An implication chain of binary clauses: deciding x1 propagates
        // the rest through the binary watch lists.
        let mut s = solver_with(&[&[-1, 2], &[-2, 3], &[-3, 4], &[1]]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        assert!(
            s.stats().bin_propagations >= 3,
            "expected binary propagations: {}",
            s.stats()
        );
    }

    #[test]
    fn binary_conflict_yields_core() {
        // All-binary UNSAT formula: conflicts must surface through the
        // binary watch lists with valid clause references.
        let mut s = solver_with(&[&[1, 2], &[1, -2], &[-1, 2], &[-1, -2]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert_eq!(core.len(), 4);
    }

    #[test]
    fn lbd_histogram_moves() {
        let mut s = Solver::new();
        for c in php_clauses(5, 4) {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let hist_total: u64 = s.stats().lbd_hist.iter().sum();
        assert_eq!(hist_total, s.stats().conflicts);
    }

    #[test]
    fn glucose_mode_agrees_and_counts_restarts() {
        let clauses = php_clauses(6, 5);
        let mut glucose = Solver::with_config(SolverConfig {
            restart_mode: RestartMode::Glucose,
            glucose_lbd_window: 10,
            ..SolverConfig::default()
        });
        for c in &clauses {
            glucose.add_clause(c.iter().copied());
        }
        assert_eq!(glucose.solve(), SolveOutcome::Unsat);
        assert_eq!(glucose.stats().restarts_luby, 0);
        assert_eq!(glucose.stats().restarts, glucose.stats().restarts_glucose);
    }

    #[test]
    fn forced_gc_preserves_soundness_and_core() {
        let clauses = php_clauses(6, 5);
        let mut s = Solver::with_config(SolverConfig {
            learntsize_factor: 0.01,
            learntsize_inc: 1.001,
            min_learnts: 5.0,
            gc_frac: 0.0,
            ..SolverConfig::default()
        });
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert!(s.stats().gc_runs > 0, "GC forced: {}", s.stats());
        assert!(s.stats().gc_bytes_reclaimed > 0);
        // Core survives compaction and is still UNSAT.
        let core = s.unsat_core().unwrap().to_vec();
        let mut s2 = Solver::new();
        for &id in &core {
            s2.add_clause(clauses[id.index()].iter().copied());
        }
        assert_eq!(s2.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn memory_watermark_sheds_learnts_without_changing_the_verdict() {
        // A watermark far below what the learnt database would normally
        // grow to: the guard must fire (aggressive reductions counted)
        // while the verdict matches an unconstrained run — learned
        // clauses are redundant, so shedding them cannot flip UNSAT.
        let clauses = php_clauses(6, 5);
        let mut unlimited = Solver::new();
        let mut guarded = Solver::with_config(SolverConfig {
            arena_watermark_words: Some(600),
            ..SolverConfig::default()
        });
        for c in &clauses {
            unlimited.add_clause(c.iter().copied());
            guarded.add_clause(c.iter().copied());
        }
        assert_eq!(unlimited.solve(), SolveOutcome::Unsat);
        assert_eq!(guarded.solve(), SolveOutcome::Unsat);
        assert!(
            guarded.stats().watermark_reductions > 0,
            "watermark never fired: {}",
            guarded.stats()
        );
        // The guard holds the live arena near the watermark after every
        // aggressive reduction (original clauses alone may exceed it,
        // but this instance's originals fit comfortably).
        assert!(unlimited.stats().watermark_reductions == 0);
    }

    #[test]
    fn watermark_guard_leaves_sat_models_intact() {
        // A satisfiable chain with enough conflicts to learn clauses;
        // the guard must not break model extraction.
        let mut clauses = php_clauses(5, 5);
        clauses.truncate(clauses.len() - 1);
        let mut s = Solver::with_config(SolverConfig {
            arena_watermark_words: Some(400),
            ..SolverConfig::default()
        });
        for c in &clauses {
            s.add_clause(c.iter().copied());
        }
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let m = s.model().unwrap();
        for c in &clauses {
            assert!(c.iter().any(|&lit| m.satisfies(lit)), "clause violated");
        }
    }

    #[test]
    fn steady_state_conflicts_do_not_allocate() {
        // Scratch capacities plateau: the number of growth events stays
        // bounded (and tiny) while conflicts keep accumulating, i.e.
        // steady-state conflicts perform zero transient allocations.
        let mut s = Solver::new();
        for c in php_clauses(7, 6) {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let stats = *s.stats();
        assert!(stats.conflicts > 200, "want many conflicts: {stats}");
        assert!(
            stats.scratch_reallocs <= 64,
            "scratch buffers must plateau: {stats}"
        );
    }

    #[test]
    fn solver_reusable_after_sat() {
        let mut s = solver_with(&[&[1, 2]]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        s.add_clause([l(-1)]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        s.add_clause([l(-2)]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert!(s.unsat_core().is_some());
    }

    #[test]
    fn tautology_never_in_core_and_ids_stay_positional() {
        // Clause 0 is a tautology, clauses 1-2 the contradiction: the
        // core must reference positions 1 and 2 — tautologies consume
        // an id but can never be cited.
        let mut s = Solver::new();
        let t = s.add_clause([l(1), l(-1)]);
        let a = s.add_clause([l(2)]);
        let b = s.add_clause([l(-2)]);
        assert_eq!((t.index(), a.index(), b.index()), (0, 1, 2));
        assert_eq!(s.num_original_clauses(), 3);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core = s.unsat_core().unwrap();
        assert!(!core.contains(&t), "tautology cited in core");
        assert_eq!(core, &[a, b]);
    }

    #[test]
    fn duplicate_literals_uniform_across_lengths() {
        // Dedup must apply whether the clause collapses to a unit, a
        // binary, or stays long — all three load paths differ.
        let mut s = Solver::new();
        s.add_clause([l(1), l(1)]); // unit after dedup
        s.add_clause([l(-1), l(2), l(2)]); // binary after dedup
        s.add_clause([l(-2), l(3), l(3), l(4), l(4)]); // long after dedup
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let m = s.model().unwrap();
        assert_eq!(m.value(Var::new(0)), Some(true));
        assert_eq!(m.value(Var::new(1)), Some(true));
        // The deduped long clause is satisfied by the model.
        assert!(m.satisfies(l(3)) || m.satisfies(l(4)) || m.satisfies(l(-2)));
    }

    #[test]
    fn duplicated_contradiction_core_is_exact() {
        // Duplicate literals inside core clauses must not distort the
        // core: it still cites exactly the two contradicting units.
        let mut s = Solver::new();
        let a = s.add_clause([l(1), l(1)]);
        let b = s.add_clause([l(-1), l(-1), l(-1)]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.unsat_core().unwrap(), &[a, b]);
    }

    #[test]
    fn probe_lit_detects_failed_literal() {
        // x1 → x2, x1 → ¬x2: probing x1 conflicts, x2/¬x1 are facts.
        let mut s = solver_with(&[&[-1, 2], &[-1, -2]]);
        assert_eq!(s.probe_lit(l(1)), Some(true));
        assert_eq!(s.probe_lit(l(2)), Some(false));
        assert!(s.level0_literals().is_empty(), "probe must backtrack");
        assert!(s.import_units([l(-1)]));
        assert!(s.level0_literals().contains(&l(-1)));
        assert_eq!(s.solve(), SolveOutcome::Sat);
    }

    #[test]
    fn probe_lit_vacuous_cases() {
        let mut s = solver_with(&[&[1]]);
        assert_eq!(s.probe_lit(l(1)), None, "already fixed at level 0");
        assert_eq!(s.probe_lit(l(-1)), None);
        s.add_clause([l(-1)]);
        assert!(!s.is_ok());
        assert_eq!(s.probe_lit(l(2)), None, "UNSAT solver never probes");
    }

    #[test]
    fn import_units_reports_refutation() {
        let mut s = solver_with(&[&[1, 2]]);
        assert!(!s.import_units([l(-1), l(-2)]));
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert!(s.unsat_core().is_some());
    }

    #[test]
    fn level0_literals_accumulate_facts() {
        // A unit cascading through an implication chain: all derived
        // facts are visible to the preprocessing hook.
        let mut s = solver_with(&[&[1], &[-1, 2], &[-2, 3]]);
        assert_eq!(s.solve(), SolveOutcome::Sat);
        let facts = s.level0_literals();
        assert!(facts.contains(&l(1)));
        assert!(facts.contains(&l(2)));
        assert!(facts.contains(&l(3)));
    }

    #[test]
    fn add_after_unsat_keeps_core() {
        let mut s = solver_with(&[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        let core: Vec<ClauseId> = s.unsat_core().unwrap().to_vec();
        s.add_clause([l(2)]);
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.unsat_core().unwrap(), core.as_slice());
    }

    use crate::share::{ClauseExchange, SharingConfig};

    #[test]
    fn cross_solver_sharing_round_trip() {
        // Worker 0 refutes a pigeonhole instance, exporting its pure
        // low-LBD learnts; worker 1 then solves the same instance with
        // the imports installed. Both verdicts must agree and the
        // exchange counters must show real traffic.
        let clauses = php_clauses(6, 5);
        let ex = ClauseExchange::new(2, SharingConfig::default());
        let mut a = Solver::new();
        a.set_exchange(ex.context(0, SolverConfig::default()).endpoint());
        for c in &clauses {
            a.add_clause_shared(c.iter().copied());
        }
        assert_eq!(a.solve(), SolveOutcome::Unsat);
        assert!(
            a.stats().clauses_exported > 0,
            "expected exports: {}",
            a.stats()
        );

        let mut b = Solver::new();
        b.set_exchange(ex.context(1, SolverConfig::default()).endpoint());
        for c in &clauses {
            b.add_clause_shared(c.iter().copied());
        }
        assert_eq!(b.solve(), SolveOutcome::Unsat);
        assert!(
            b.stats().clauses_imported > 0,
            "expected imports: {}",
            b.stats()
        );
        // Both workers export (b publishes its own learnts too), so the
        // exchange-wide total covers at least a's contribution.
        let totals = ex.totals();
        assert!(totals.exported >= a.stats().clauses_exported);
        assert!(totals.imported >= b.stats().clauses_imported);
    }

    #[test]
    fn imported_clauses_survive_forced_reductions() {
        // The forced-GC stress config sheds learnts constantly; imports
        // are exempt. After the solve every import-flagged clause must
        // still be live.
        let clauses = php_clauses(6, 5);
        let ex = ClauseExchange::new(2, SharingConfig::default());
        let mut donor = Solver::new();
        donor.set_exchange(ex.context(0, SolverConfig::default()).endpoint());
        for c in &clauses {
            donor.add_clause_shared(c.iter().copied());
        }
        assert_eq!(donor.solve(), SolveOutcome::Unsat);

        let mut s = Solver::with_config(SolverConfig {
            learntsize_factor: 0.01,
            learntsize_inc: 1.001,
            min_learnts: 5.0,
            gc_frac: 0.0,
            ..SolverConfig::default()
        });
        s.set_exchange(ex.context(1, SolverConfig::default()).endpoint());
        for c in &clauses {
            s.add_clause_shared(c.iter().copied());
        }
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert!(s.stats().clauses_imported > 0, "no imports: {}", s.stats());
    }

    #[test]
    fn adversarial_imports_never_change_the_verdict() {
        // An adversary worker floods the exchange with supersets of the
        // instance's own clauses (trivially implied, so exchange-legal)
        // before every solve of a forced-GC/glucose stress solver. The
        // verdict must match a clean solver on both an UNSAT and a SAT
        // variant of the instance.
        for drop_last in [false, true] {
            let mut clauses = php_clauses(5, 4);
            if drop_last {
                clauses.truncate(clauses.len() - 1); // SAT variant
            }
            let mut clean = Solver::new();
            for c in &clauses {
                clean.add_clause(c.iter().copied());
            }
            let expected = clean.solve();

            let ex = ClauseExchange::new(2, SharingConfig::default());
            let mut adversary = ex.context(0, SolverConfig::default()).endpoint();
            // Supersets: clause ∪ {extra literal drawn from the clause
            // after it in the list} — implied by the base clause alone.
            for (i, c) in clauses.iter().enumerate() {
                let extra = clauses[(i + 1) % clauses.len()][0];
                let mut sup: Vec<Lit> = c.clone();
                sup.push(extra);
                adversary.stage(&sup, 2);
            }
            assert!(adversary.publish() > 0);

            let mut s = Solver::with_config(SolverConfig {
                learntsize_factor: 0.01,
                learntsize_inc: 1.001,
                min_learnts: 5.0,
                gc_frac: 0.0,
                restart_mode: RestartMode::Glucose,
                ..SolverConfig::default()
            });
            s.set_exchange(ex.context(1, SolverConfig::default()).endpoint());
            for c in &clauses {
                s.add_clause_shared(c.iter().copied());
            }
            assert_eq!(s.solve(), expected, "drop_last={drop_last}");
            assert!(s.stats().clauses_imported > 0, "imports: {}", s.stats());
            if expected == SolveOutcome::Sat {
                let m = s.model().unwrap();
                for c in &clauses {
                    assert!(c.iter().any(|&lit| m.satisfies(lit)));
                }
            }
        }
    }

    #[test]
    fn import_refuting_the_level0_trail_reports_unsat() {
        // Units x1 and x2 are level-0 facts; an imported (¬x1 ∨ ¬x2)
        // is all-false at install time and must refute the formula.
        let ex = ClauseExchange::new(2, SharingConfig::default());
        let mut donor = ex.context(0, SolverConfig::default()).endpoint();
        assert!(donor.stage(&[l(-1), l(-2)], 2));
        donor.publish();

        let mut s = solver_with(&[&[1], &[2]]);
        s.set_exchange(ex.context(1, SolverConfig::default()).endpoint());
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        // The trace's Imported node widens the core to all originals.
        let core = s.unsat_core().unwrap();
        assert_eq!(core.len(), 2);
    }

    #[test]
    fn shared_caps_stop_the_search_jointly() {
        // Two solvers drawing on one shared conflict pool: the second
        // gets only what the first left over, unlike per-solver caps
        // which would grant the full amount again.
        let budget = Budget::new().with_shared_caps(Some(200), None);
        let mut a = Solver::new();
        a.set_budget(budget.child(Instant::now()));
        for c in php_clauses(8, 7) {
            a.add_clause(c);
        }
        assert_eq!(a.solve(), SolveOutcome::Unknown);
        let spent_a = budget.shared_conflicts_spent();
        assert!(spent_a >= 200, "pool must be exhausted: {spent_a}");
        assert!(
            spent_a <= 200 + 64,
            "per-conflict charging keeps overshoot small: {spent_a}"
        );

        let mut b = Solver::new();
        b.set_budget(budget.child(Instant::now()));
        for c in php_clauses(8, 7) {
            b.add_clause(c);
        }
        assert_eq!(
            b.solve(),
            SolveOutcome::Unknown,
            "exhausted pool stops later members before they search"
        );
        assert_eq!(b.stats().conflicts, 0);
    }

    #[test]
    fn exports_require_purity() {
        // Clauses added via plain `add_clause` are impure; nothing may
        // be exported even with an exchange attached.
        let ex = ClauseExchange::new(2, SharingConfig::default());
        let mut s = Solver::new();
        s.set_exchange(ex.context(0, SolverConfig::default()).endpoint());
        for c in php_clauses(6, 5) {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveOutcome::Unsat);
        assert_eq!(s.stats().clauses_exported, 0, "{}", s.stats());
        assert_eq!(ex.totals().exported, 0);
    }
}
