//! Resolution trace for clause-level unsatisfiable-core extraction.
//!
//! Every clause the solver ever owns — original or learned — has a
//! [`TraceId`]. Original clauses map to their external [`ClauseId`];
//! learned clauses record the multiset of antecedent trace ids that were
//! resolved to derive them (the conflicting clause, every reason clause
//! used during first-UIP analysis, and every reason used while
//! minimising the learned clause).
//!
//! Antecedent lists are pooled in one flat arena (`antecedents`) and
//! referenced by offset/length, so recording a learned clause performs
//! no per-clause boxed allocation — in steady state an `add_learned`
//! call is two amortised `Vec` appends.
//!
//! When the solver refutes the formula, the final (level-0) conflict is
//! itself a resolution of some clauses; expanding those antecedents
//! through the learned-clause DAG yields the set of original clauses
//! that participate in the refutation — an unsatisfiable core. This is
//! the same mechanism as MiniSAT 1.14's proof logger, which the paper's
//! msu4 implementation used for core extraction.
//!
//! Trace ids are independent of clause-arena positions, so clause-arena
//! garbage collection ([`crate::Solver`]'s `collect_garbage`) never
//! invalidates the trace: cores stay exact across compactions.

use crate::clause_db::ClauseId;

/// Identifier of a node in the resolution trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct TraceId(pub(crate) u32);

impl TraceId {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy)]
enum TraceEntry {
    /// An original clause with its external id.
    Original(ClauseId),
    /// A learned clause; its antecedent trace ids live at
    /// `antecedents[start..start + len]` in the shared arena.
    Learned { start: u32, len: u32 },
    /// A clause imported from the clause exchange. Its derivation lives
    /// in another solver, but the exchange invariant guarantees it is
    /// implied by the instance's hard clauses; expansion therefore
    /// over-approximates to *every* original clause (sound, non-minimal
    /// — the solver already documents core non-minimality).
    Imported,
}

/// The resolution DAG. Entries are append-only: learned clauses may be
/// deleted from the clause database, but other learned clauses may have
/// been derived from them, so their derivations must survive.
#[derive(Debug, Clone, Default)]
pub(crate) struct Trace {
    entries: Vec<TraceEntry>,
    /// Flat arena holding every learned clause's antecedent list.
    antecedents: Vec<TraceId>,
}

impl Trace {
    pub(crate) fn new() -> Self {
        Trace::default()
    }

    /// Registers an original clause, returning its trace id.
    pub(crate) fn add_original(&mut self, id: ClauseId) -> TraceId {
        self.entries.push(TraceEntry::Original(id));
        TraceId((self.entries.len() - 1) as u32)
    }

    /// Registers a learned clause with its antecedents (copied into the
    /// shared arena, so the caller can reuse its buffer).
    pub(crate) fn add_learned(&mut self, antecedents: &[TraceId]) -> TraceId {
        let start = self.antecedents.len() as u32;
        self.antecedents.extend_from_slice(antecedents);
        self.entries.push(TraceEntry::Learned {
            start,
            len: antecedents.len() as u32,
        });
        TraceId((self.entries.len() - 1) as u32)
    }

    /// Registers a clause imported from the clause exchange.
    pub(crate) fn add_imported(&mut self) -> TraceId {
        self.entries.push(TraceEntry::Imported);
        TraceId((self.entries.len() - 1) as u32)
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn antecedents_of(&self, start: u32, len: u32) -> &[TraceId] {
        &self.antecedents[start as usize..(start + len) as usize]
    }

    /// Expands a set of trace roots to the sorted, deduplicated set of
    /// original clause ids reachable through the antecedent DAG.
    ///
    /// If an [`TraceEntry::Imported`] node is reachable, the derivation
    /// crossed into another solver and cannot be attributed to specific
    /// original clauses; the expansion then over-approximates to every
    /// original clause ever added. This is sound (the full clause set
    /// certainly contains the refuted subset) and only arises in
    /// clause-sharing mode, where cores are already non-minimal.
    pub(crate) fn expand_to_original(&self, roots: &[TraceId]) -> Vec<ClauseId> {
        let mut seen = vec![false; self.entries.len()];
        let mut stack: Vec<TraceId> = Vec::with_capacity(roots.len());
        for &r in roots {
            if !seen[r.index()] {
                seen[r.index()] = true;
                stack.push(r);
            }
        }
        let mut core = Vec::new();
        let mut crossed_import = false;
        while let Some(t) = stack.pop() {
            match self.entries[t.index()] {
                TraceEntry::Original(id) => core.push(id),
                TraceEntry::Learned { start, len } => {
                    for &a in self.antecedents_of(start, len) {
                        if !seen[a.index()] {
                            seen[a.index()] = true;
                            stack.push(a);
                        }
                    }
                }
                TraceEntry::Imported => crossed_import = true,
            }
        }
        if crossed_import {
            core.clear();
            core.extend(self.entries.iter().filter_map(|e| match e {
                TraceEntry::Original(id) => Some(*id),
                _ => None,
            }));
        }
        core.sort_unstable();
        core.dedup();
        core
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_expansion_is_identity() {
        let mut t = Trace::new();
        let a = t.add_original(ClauseId(0));
        let b = t.add_original(ClauseId(1));
        assert_eq!(
            t.expand_to_original(&[b, a]),
            vec![ClauseId(0), ClauseId(1)]
        );
    }

    #[test]
    fn learned_chain_expands_to_leaves() {
        let mut t = Trace::new();
        let a = t.add_original(ClauseId(0));
        let b = t.add_original(ClauseId(1));
        let c = t.add_original(ClauseId(2));
        let l1 = t.add_learned(&[a, b]);
        let l2 = t.add_learned(&[l1, c]);
        assert_eq!(
            t.expand_to_original(&[l2]),
            vec![ClauseId(0), ClauseId(1), ClauseId(2)]
        );
    }

    #[test]
    fn shared_antecedents_deduplicated() {
        let mut t = Trace::new();
        let a = t.add_original(ClauseId(5));
        let l1 = t.add_learned(&[a, a]);
        let l2 = t.add_learned(&[l1, a]);
        assert_eq!(t.expand_to_original(&[l2, l1]), vec![ClauseId(5)]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn unreachable_entries_excluded() {
        let mut t = Trace::new();
        let a = t.add_original(ClauseId(0));
        let _b = t.add_original(ClauseId(1));
        assert_eq!(t.expand_to_original(&[a]), vec![ClauseId(0)]);
    }

    #[test]
    fn empty_roots_empty_core() {
        let mut t = Trace::new();
        t.add_original(ClauseId(0));
        assert!(t.expand_to_original(&[]).is_empty());
    }

    #[test]
    fn empty_antecedent_list_allowed() {
        let mut t = Trace::new();
        let l = t.add_learned(&[]);
        assert!(t.expand_to_original(&[l]).is_empty());
    }

    #[test]
    fn imported_nodes_over_approximate_to_all_originals() {
        let mut t = Trace::new();
        let a = t.add_original(ClauseId(0));
        let b = t.add_original(ClauseId(1));
        let _unused = t.add_original(ClauseId(2));
        let imp = t.add_imported();
        let l1 = t.add_learned(&[a, imp]);
        // Derivations that never touch the import stay exact…
        assert_eq!(t.expand_to_original(&[b]), vec![ClauseId(1)]);
        // …but reaching the import widens to every original clause.
        assert_eq!(
            t.expand_to_original(&[l1]),
            vec![ClauseId(0), ClauseId(1), ClauseId(2)]
        );
    }
}
