//! Cooperative clause exchange between diversified portfolio workers.
//!
//! Real parallel SAT solvers (ManySAT, Plingeling, Glucose-syrup) beat
//! pure racing by letting workers exchange low-LBD learned clauses.
//! This module is the exchange layer for the `coremax_par` portfolio:
//!
//! - [`ClauseExchange`] — one per race: a per-worker *export ring*
//!   (appended by its owner under a short lock, read by everyone else)
//!   plus global exchange counters.
//! - [`SharedContext`] — the cloneable handle a portfolio member's
//!   solver stack carries: worker identity, the diversified
//!   [`SolverConfig`] for that worker, and an optional variable
//!   translation between the *canonical* (original instance) variable
//!   space and the solver's local space (used under preprocessing,
//!   where variables are renamed).
//! - [`ExchangeEndpoint`] — the per-[`crate::Solver`] state: staged
//!   exports, per-ring read cursors, and a seen-set for deduplication.
//!
//! # Soundness model
//!
//! Portfolio members run *different algorithms with different auxiliary
//! variables* (soft-clause selectors, cardinality encodings, preprocessor
//! renamings), so arbitrary learned clauses are **not** interchangeable.
//! The invariant that makes sharing sound is:
//!
//! > every clause placed in the exchange is implied by the canonical
//! > instance's **hard clauses alone**, expressed over canonical
//! > variables.
//!
//! Exporters guarantee this with purity tracking: a learned clause is
//! exported only when its entire resolution derivation bottoms out in
//! clauses marked *pure* (the canonical hard clauses, loaded via
//! [`crate::Solver::add_clause_shared`]). Importers may then install any
//! exchanged clause: it is implied by their own hard clauses too, so it
//! can never change a verdict — only speed one up. Imports are drained
//! at restart boundaries exclusively, so the trail is never disturbed
//! mid-propagation.
//!
//! Epoch buffering keeps the hot path lock-free: exports are staged in
//! a worker-local buffer during search and published to the worker's
//! own ring (one short lock) at the same restart boundary that drains
//! imports.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use coremax_cnf::{Lit, Var};

use crate::solver::SolverConfig;

/// Gates on what the exchange accepts from exporters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingConfig {
    /// Only learned clauses with learn-time LBD at or below this are
    /// exported (glue-ish clauses travel, noise stays local).
    pub max_lbd: u32,
    /// Only clauses with at most this many literals are exported.
    pub max_len: usize,
}

impl Default for SharingConfig {
    fn default() -> Self {
        SharingConfig {
            max_lbd: 4,
            max_len: 8,
        }
    }
}

/// A clause in canonical variable space, ready for import.
#[derive(Debug, Clone)]
struct SharedClause {
    /// Sorted, duplicate-free canonical literals.
    lits: Arc<[Lit]>,
    /// The exporter's learn-time LBD (importers clamp it).
    lbd: u32,
}

/// Aggregate exchange counters, for benchmarks and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeTotals {
    /// Clauses published into the exchange across all workers.
    pub exported: u64,
    /// Clauses delivered to an importing solver (per receiving worker:
    /// one exported clause can be imported by many workers).
    pub imported: u64,
    /// Deliveries dropped because the receiver had already seen an
    /// identical clause (its own export or an earlier import).
    pub duplicates: u64,
}

/// Bound on one worker's export ring; beyond it further exports from
/// that worker are dropped (sharing is best-effort, never a memory
/// liability).
const MAX_RING_CLAUSES: usize = 1 << 16;

/// The shared side of the exchange: one export ring per worker plus
/// global counters. Created once per portfolio race.
#[derive(Debug)]
pub struct ClauseExchange {
    config: SharingConfig,
    /// `rings[w]` is appended only by worker `w` (publish) and read by
    /// every other worker (drain); entries are immutable once pushed.
    rings: Vec<Mutex<Vec<SharedClause>>>,
    exported: AtomicU64,
    imported: AtomicU64,
    duplicates: AtomicU64,
}

impl ClauseExchange {
    /// An exchange for `workers` participants.
    #[must_use]
    pub fn new(workers: usize, config: SharingConfig) -> Arc<ClauseExchange> {
        Arc::new(ClauseExchange {
            config,
            rings: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            exported: AtomicU64::new(0),
            imported: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
        })
    }

    /// Number of participating workers.
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.rings.len()
    }

    /// The export gates.
    #[must_use]
    pub fn config(&self) -> SharingConfig {
        self.config
    }

    /// Builds worker `worker`'s context, carrying the (diversified)
    /// solver configuration its whole solver stack should use.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    #[must_use]
    pub fn context(self: &Arc<Self>, worker: usize, solver_config: SolverConfig) -> SharedContext {
        assert!(worker < self.num_workers(), "worker index out of range");
        SharedContext {
            exchange: Arc::clone(self),
            worker,
            export_enabled: true,
            solver_config,
            to_canon: None,
            from_canon: None,
        }
    }

    /// Snapshot of the global exchange counters.
    #[must_use]
    pub fn totals(&self) -> ExchangeTotals {
        ExchangeTotals {
            exported: self.exported.load(Ordering::Relaxed),
            imported: self.imported.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
        }
    }
}

/// The handle a portfolio member's solver stack carries: exchange +
/// worker identity + diversified solver configuration + (optional)
/// canonical↔local variable translation.
///
/// Wrappers compose it downwards: [`import_only`](Self::import_only)
/// disables exporting (used by stratification, whose sub-instances add
/// hard clauses that are *not* canonical-hard-implied), and
/// [`with_var_map`](Self::with_var_map) layers a preprocessor renaming
/// on top.
#[derive(Debug, Clone)]
pub struct SharedContext {
    exchange: Arc<ClauseExchange>,
    worker: usize,
    export_enabled: bool,
    solver_config: SolverConfig,
    /// Local variable → canonical variable (`None` = identity: local
    /// vars 0..n *are* the canonical vars, a property every driver
    /// maintains by loading the instance before allocating selectors).
    to_canon: Option<Arc<Vec<Option<Var>>>>,
    /// Canonical variable → local variable (`None` entry: the variable
    /// was eliminated locally, clauses over it cannot be imported).
    from_canon: Option<Arc<Vec<Option<Var>>>>,
}

impl SharedContext {
    /// This worker's index in the exchange.
    #[must_use]
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Whether solvers under this context may export.
    #[must_use]
    pub fn export_enabled(&self) -> bool {
        self.export_enabled
    }

    /// The diversified solver configuration for this worker.
    #[must_use]
    pub fn solver_config(&self) -> SolverConfig {
        self.solver_config.clone()
    }

    /// A copy of this context with exporting disabled. Importing stays
    /// sound in any solver whose hard clauses *include* consequences of
    /// the canonical hard clauses (e.g. stratification sub-instances);
    /// exporting from such a solver would not be, hence this switch.
    #[must_use]
    pub fn import_only(&self) -> SharedContext {
        let mut ctx = self.clone();
        ctx.export_enabled = false;
        ctx
    }

    /// Layers a preprocessor variable renaming onto the context:
    /// `new_to_old[v]` is the previous-space variable behind local
    /// variable `v`, and `old_to_new[u]` is the local variable a
    /// previous-space variable survived as (`None` = eliminated).
    #[must_use]
    pub fn with_var_map(&self, new_to_old: &[Var], old_to_new: &[Option<Var>]) -> SharedContext {
        // Compose with any translation already present (identity when
        // this context sits directly on the canonical space).
        let to_canon: Vec<Option<Var>> = new_to_old
            .iter()
            .map(|&old| match &self.to_canon {
                None => Some(old),
                Some(map) => map.get(old.index()).copied().flatten(),
            })
            .collect();
        let canon_len = match &self.from_canon {
            Some(map) => map.len(),
            None => old_to_new.len(),
        };
        let from_canon: Vec<Option<Var>> = (0..canon_len)
            .map(|c| {
                let old = match &self.from_canon {
                    None => Some(Var::new(c as u32)),
                    Some(map) => map[c],
                };
                old.and_then(|o| old_to_new.get(o.index()).copied().flatten())
            })
            .collect();
        let mut ctx = self.clone();
        ctx.to_canon = Some(Arc::new(to_canon));
        ctx.from_canon = Some(Arc::new(from_canon));
        ctx
    }

    /// Builds the per-solver endpoint for this context.
    #[must_use]
    pub fn endpoint(&self) -> ExchangeEndpoint {
        ExchangeEndpoint {
            exchange: Arc::clone(&self.exchange),
            worker: self.worker,
            export_enabled: self.export_enabled,
            to_canon: self.to_canon.clone(),
            from_canon: self.from_canon.clone(),
            cursors: vec![0; self.exchange.num_workers()],
            staged: Vec::new(),
            seen: HashSet::new(),
            scratch: Vec::new(),
        }
    }
}

/// FNV-1a over the (sorted) canonical literal codes.
fn clause_hash(lits: &[Lit]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in lits {
        h ^= u64::from(l.code());
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// One solver's private view of the exchange: staged exports, per-ring
/// read cursors and the dedup seen-set. Not thread-shared — the solver
/// owns it; all cross-thread traffic goes through the rings.
#[derive(Debug)]
pub struct ExchangeEndpoint {
    exchange: Arc<ClauseExchange>,
    worker: usize,
    export_enabled: bool,
    to_canon: Option<Arc<Vec<Option<Var>>>>,
    from_canon: Option<Arc<Vec<Option<Var>>>>,
    /// Next unread index per source ring (own ring is never read).
    cursors: Vec<usize>,
    /// Exports staged since the last publish (worker-local, lock-free).
    staged: Vec<SharedClause>,
    /// Canonical clause hashes already exported or imported here.
    seen: HashSet<u64>,
    scratch: Vec<Lit>,
}

impl ExchangeEndpoint {
    /// Whether this endpoint exports ([`SharedContext::import_only`]
    /// and rebuild-mode engines disable it).
    #[must_use]
    pub fn export_enabled(&self) -> bool {
        self.export_enabled
    }

    /// Export LBD gate (from the exchange's [`SharingConfig`]).
    #[must_use]
    pub fn max_lbd(&self) -> u32 {
        self.exchange.config.max_lbd
    }

    /// Export length gate.
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.exchange.config.max_len
    }

    /// Stages a clause (in *local* variable space) for export at the
    /// next publish. Returns `false` when the clause is dropped: export
    /// disabled, untranslatable, a tautology after normalisation, or
    /// already seen. LBD/length gating is the caller's job — the
    /// staging path only guarantees well-formedness and novelty.
    pub fn stage(&mut self, local_lits: &[Lit], lbd: u32) -> bool {
        if !self.export_enabled {
            return false;
        }
        let mut canon = std::mem::take(&mut self.scratch);
        canon.clear();
        for &l in local_lits {
            let v = match &self.to_canon {
                None => Some(l.var()),
                Some(map) => map.get(l.var().index()).copied().flatten(),
            };
            match v {
                Some(v) => canon.push(Lit::new(v, l.is_positive())),
                None => {
                    self.scratch = canon;
                    return false;
                }
            }
        }
        canon.sort_unstable();
        canon.dedup();
        let tautology = canon.windows(2).any(|w| w[0].var() == w[1].var());
        if tautology || canon.is_empty() || !self.seen.insert(clause_hash(&canon)) {
            self.scratch = canon;
            return false;
        }
        self.staged.push(SharedClause {
            lits: canon.as_slice().into(),
            lbd,
        });
        self.scratch = canon;
        true
    }

    /// Publishes every staged clause to this worker's ring (one short
    /// lock) and returns how many entered the exchange. Call at restart
    /// boundaries.
    pub fn publish(&mut self) -> u64 {
        if self.staged.is_empty() {
            return 0;
        }
        let mut ring = self.exchange.rings[self.worker]
            .lock()
            .expect("exchange ring poisoned");
        let room = MAX_RING_CLAUSES.saturating_sub(ring.len());
        let take = self.staged.len().min(room);
        ring.extend(self.staged.drain(..take));
        drop(ring);
        self.staged.clear(); // anything beyond the ring cap is dropped
        let published = take as u64;
        self.exchange
            .exported
            .fetch_add(published, Ordering::Relaxed);
        published
    }

    /// Drains every other worker's ring from this endpoint's cursors,
    /// translating each clause into local variable space and invoking
    /// `deliver(local_lits, lbd)` for clauses that survive translation
    /// (all variables present locally, index < `num_local_vars`) and
    /// deduplication. Returns `(delivered, duplicates)`. Call only at
    /// restart boundaries (decision level 0).
    pub fn drain<F: FnMut(&[Lit], u32)>(
        &mut self,
        num_local_vars: usize,
        mut deliver: F,
    ) -> (u64, u64) {
        let mut delivered = 0u64;
        let mut duplicates = 0u64;
        let mut batch: Vec<SharedClause> = Vec::new();
        for (ring_idx, ring) in self.exchange.rings.iter().enumerate() {
            if ring_idx == self.worker {
                continue;
            }
            {
                let ring = ring.lock().expect("exchange ring poisoned");
                let cursor = &mut self.cursors[ring_idx];
                if *cursor < ring.len() {
                    batch.extend(ring[*cursor..].iter().cloned());
                    *cursor = ring.len();
                }
            }
            // Translate and deliver outside the lock.
            for clause in batch.drain(..) {
                if !self.seen.insert(clause_hash(&clause.lits)) {
                    duplicates += 1;
                    continue;
                }
                let mut ok = true;
                self.scratch.clear();
                for &l in clause.lits.iter() {
                    let v = match &self.from_canon {
                        None => Some(l.var()),
                        Some(map) => map.get(l.var().index()).copied().flatten(),
                    };
                    match v {
                        Some(v) if v.index() < num_local_vars => {
                            self.scratch.push(Lit::new(v, l.is_positive()));
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                delivered += 1;
                deliver(&self.scratch, clause.lbd);
            }
        }
        if delivered > 0 {
            self.exchange
                .imported
                .fetch_add(delivered, Ordering::Relaxed);
        }
        if duplicates > 0 {
            self.exchange
                .duplicates
                .fetch_add(duplicates, Ordering::Relaxed);
        }
        (delivered, duplicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(d: i32) -> Lit {
        Lit::from_dimacs(d).unwrap()
    }

    fn ctx(ex: &Arc<ClauseExchange>, worker: usize) -> SharedContext {
        ex.context(worker, SolverConfig::default())
    }

    #[test]
    fn export_then_import_round_trip() {
        let ex = ClauseExchange::new(2, SharingConfig::default());
        let mut a = ctx(&ex, 0).endpoint();
        let mut b = ctx(&ex, 1).endpoint();
        assert!(a.stage(&[l(2), l(-1)], 2));
        assert_eq!(a.publish(), 1);
        let mut got = Vec::new();
        let (n, d) = b.drain(4, |lits, lbd| got.push((lits.to_vec(), lbd)));
        assert_eq!((n, d), (1, 0));
        assert_eq!(got, vec![(vec![l(-1), l(2)], 2)]);
        // Draining again delivers nothing new.
        let (n, d) = b.drain(4, |_, _| panic!("no new clauses"));
        assert_eq!((n, d), (0, 0));
        let totals = ex.totals();
        assert_eq!(totals.exported, 1);
        assert_eq!(totals.imported, 1);
    }

    #[test]
    fn own_ring_is_never_drained_and_duplicates_are_counted() {
        let ex = ClauseExchange::new(3, SharingConfig::default());
        let mut a = ctx(&ex, 0).endpoint();
        let mut b = ctx(&ex, 1).endpoint();
        let mut c = ctx(&ex, 2).endpoint();
        assert!(a.stage(&[l(1), l(2)], 2));
        a.publish();
        assert!(b.stage(&[l(2), l(1)], 2), "same clause, other worker");
        b.publish();
        // A never re-imports its own export, but the copy from B is a
        // duplicate of what it already exported.
        let (n, d) = a.drain(4, |_, _| {});
        assert_eq!((n, d), (0, 1));
        // C sees the clause once, the second copy is a duplicate.
        let mut count = 0;
        let (n, d) = c.drain(4, |_, _| count += 1);
        assert_eq!((n, d), (1, 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn staging_normalises_and_rejects_tautologies() {
        let ex = ClauseExchange::new(2, SharingConfig::default());
        let mut a = ctx(&ex, 0).endpoint();
        assert!(!a.stage(&[l(1), l(-1)], 1), "tautology dropped");
        assert!(a.stage(&[l(3), l(3), l(-2)], 1), "duplicates collapse");
        assert!(!a.stage(&[l(-2), l(3)], 1), "identical clause deduped");
        a.publish();
        let mut b = ctx(&ex, 1).endpoint();
        let mut got = Vec::new();
        b.drain(3, |lits, _| got.push(lits.to_vec()));
        assert_eq!(got, vec![vec![l(-2), l(3)]]);
    }

    #[test]
    fn import_only_context_stages_nothing() {
        let ex = ClauseExchange::new(2, SharingConfig::default());
        let mut a = ctx(&ex, 0).import_only().endpoint();
        assert!(!a.export_enabled());
        assert!(!a.stage(&[l(1)], 1));
        assert_eq!(a.publish(), 0);
        assert_eq!(ex.totals().exported, 0);
    }

    #[test]
    fn var_map_translates_both_directions() {
        let ex = ClauseExchange::new(2, SharingConfig::default());
        // Local space: v0 ↔ canonical v2, v1 ↔ canonical v0; canonical
        // v1 was eliminated.
        let new_to_old = [Var::new(2), Var::new(0)];
        let old_to_new = [Some(Var::new(1)), None, Some(Var::new(0))];
        let mapped = ctx(&ex, 0).with_var_map(&new_to_old, &old_to_new);
        let mut a = mapped.endpoint();
        // Local clause (v0 ∨ ¬v1) exports as canonical (v2 ∨ ¬v0).
        assert!(a.stage(&[l(1), l(-2)], 1));
        a.publish();
        let mut b = ctx(&ex, 1).endpoint();
        let mut got = Vec::new();
        b.drain(3, |lits, _| got.push(lits.to_vec()));
        assert_eq!(got, vec![vec![l(-1), l(3)]]);

        // And canonical clauses flow back into the mapped space.
        let mut c = ctx(&ex, 1).endpoint();
        assert!(c.stage(&[l(3)], 1)); // canonical v2
        c.publish();
        let mut mapped_in = mapped.endpoint();
        let mut got = Vec::new();
        mapped_in.drain(2, |lits, _| got.push(lits.to_vec()));
        assert_eq!(got, vec![vec![l(1)]], "canonical v2 is local v0");

        // Clauses over eliminated canonical vars are skipped (reuse the
        // endpoint so its cursor sits past the clauses drained above).
        let mut d = ctx(&ex, 1).endpoint();
        assert!(d.stage(&[l(2)], 1)); // canonical v1: eliminated locally
        d.publish();
        let (n, _) = mapped_in.drain(2, |_, _| panic!("untranslatable"));
        assert_eq!(n, 0);
    }
}
