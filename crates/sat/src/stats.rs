//! Solver statistics.

use std::fmt;

/// Counters describing the work a [`crate::Solver`] has performed.
///
/// All counters are cumulative over the lifetime of the solver (across
/// multiple `solve` calls).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses currently retained.
    pub learned_clauses: u64,
    /// Number of learned clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Total literals in learned clauses (before minimisation).
    pub max_literals: u64,
    /// Total literals in learned clauses (after minimisation).
    pub tot_literals: u64,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} restarts={} learned={} deleted={}",
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learned_clauses,
            self.deleted_clauses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = SolverStats::default();
        assert_eq!(s.decisions, 0);
        assert_eq!(s.conflicts, 0);
    }

    #[test]
    fn display_contains_fields() {
        let s = SolverStats {
            decisions: 3,
            conflicts: 2,
            ..SolverStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("decisions=3"));
        assert!(text.contains("conflicts=2"));
    }
}
