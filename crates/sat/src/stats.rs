//! Solver statistics.

use std::fmt;

use coremax_obs::PhaseTimes;

/// Number of buckets in the learned-clause LBD histogram:
/// `[1..=2, 3..=5, 6..=9, 10..]`.
pub const LBD_HIST_BUCKETS: usize = 4;

/// Counters describing the work a [`crate::Solver`] has performed.
///
/// All counters are cumulative over the lifetime of the solver (across
/// multiple `solve` calls).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of literals enqueued by the dedicated binary-clause watch
    /// lists (a subset of the implications behind `propagations`).
    pub bin_propagations: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Restarts triggered by the Luby schedule.
    pub restarts_luby: u64,
    /// Restarts triggered by the glucose-style adaptive LBD policy.
    pub restarts_glucose: u64,
    /// Number of learned clauses currently retained.
    pub learned_clauses: u64,
    /// Number of learned clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Peak number of simultaneously retained learned clauses.
    pub peak_learned: u64,
    /// Learned glue clauses (LBD ≤ 2; protected from deletion).
    pub glue_clauses: u64,
    /// Histogram of learn-time LBD values; buckets are
    /// `[1..=2, 3..=5, 6..=9, 10..]`.
    pub lbd_hist: [u64; LBD_HIST_BUCKETS],
    /// Clause-arena garbage collections performed.
    pub gc_runs: u64,
    /// Bytes of clause-arena storage reclaimed by garbage collection.
    pub gc_bytes_reclaimed: u64,
    /// Capacity-growth events of the conflict-analysis scratch buffers.
    /// Stays flat once the solver reaches steady state: conflicts then
    /// perform zero transient heap allocations.
    pub scratch_reallocs: u64,
    /// Total literals in learned clauses (before minimisation).
    pub max_literals: u64,
    /// Total literals in learned clauses (after minimisation).
    pub tot_literals: u64,
    /// Solve calls beyond the first on the same solver instance — the
    /// calls that reuse learned clauses, activities and phases instead
    /// of starting cold.
    pub incremental_solves: u64,
    /// Learned clauses already in the database at the start of each
    /// incremental solve call, summed over calls: the work carried over
    /// instead of being re-derived.
    pub clauses_retained: u64,
    /// Times a fresh solver was built and reloaded from scratch where a
    /// persistent engine could have been reused (counted by the
    /// rebuilding engine mode; always 0 for a bare solver).
    pub solver_rebuilds: u64,
    /// Aggressive database reductions triggered by the clause-arena
    /// memory watermark ([`crate::SolverConfig::arena_watermark_words`]):
    /// memory pressure handled by shedding learned clauses instead of
    /// growing towards allocation failure.
    pub watermark_reductions: u64,
    /// Learned clauses this solver published to the portfolio clause
    /// exchange (0 when sharing is off).
    pub clauses_exported: u64,
    /// Clauses this solver received from the clause exchange.
    pub clauses_imported: u64,
    /// Exchange deliveries dropped as duplicates of clauses this solver
    /// already exported or imported.
    pub import_duplicates: u64,
    /// Per-phase wall-time breakdown (propagate / analyze / reduce_db
    /// / gc / sat_call). All zero unless `coremax_obs` timing was
    /// enabled while the solver ran.
    pub phase: PhaseTimes,
}

impl SolverStats {
    /// Bucket index in [`SolverStats::lbd_hist`] for an LBD value.
    #[must_use]
    pub fn lbd_bucket(lbd: u32) -> usize {
        match lbd {
            0..=2 => 0,
            3..=5 => 1,
            6..=9 => 2,
            _ => 3,
        }
    }

    /// Accumulates another stats snapshot into `self` (histogram buckets
    /// and peaks included). Used by the MaxSAT layer to aggregate the
    /// counters of the many SAT solvers one optimisation run creates.
    pub fn absorb(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.bin_propagations += other.bin_propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.restarts_luby += other.restarts_luby;
        self.restarts_glucose += other.restarts_glucose;
        self.learned_clauses += other.learned_clauses;
        self.deleted_clauses += other.deleted_clauses;
        self.peak_learned = self.peak_learned.max(other.peak_learned);
        self.glue_clauses += other.glue_clauses;
        for (a, b) in self.lbd_hist.iter_mut().zip(other.lbd_hist.iter()) {
            *a += b;
        }
        self.gc_runs += other.gc_runs;
        self.gc_bytes_reclaimed += other.gc_bytes_reclaimed;
        self.scratch_reallocs += other.scratch_reallocs;
        self.max_literals += other.max_literals;
        self.tot_literals += other.tot_literals;
        self.incremental_solves += other.incremental_solves;
        self.clauses_retained += other.clauses_retained;
        self.solver_rebuilds += other.solver_rebuilds;
        self.watermark_reductions += other.watermark_reductions;
        self.clauses_exported += other.clauses_exported;
        self.clauses_imported += other.clauses_imported;
        self.import_duplicates += other.import_duplicates;
        self.phase.absorb(&other.phase);
    }

    /// Appends the full counter tree as a JSON object (hand-rolled, no
    /// serde; used by `--stats-json` and the bench artifacts).
    pub fn to_json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"decisions\": {}, \"propagations\": {}, \"bin_propagations\": {}, \
             \"conflicts\": {}, \"restarts\": {}, \"restarts_luby\": {}, \
             \"restarts_glucose\": {}, \"learned_clauses\": {}, \"deleted_clauses\": {}, \
             \"peak_learned\": {}, \"glue_clauses\": {}, \"lbd_hist\": [{}, {}, {}, {}], \
             \"gc_runs\": {}, \"gc_bytes_reclaimed\": {}, \"scratch_reallocs\": {}, \
             \"max_literals\": {}, \"tot_literals\": {}, \"incremental_solves\": {}, \
             \"clauses_retained\": {}, \"solver_rebuilds\": {}, \"watermark_reductions\": {}, \
             \"clauses_exported\": {}, \"clauses_imported\": {}, \"import_duplicates\": {}, \
             \"phase_times\": ",
            self.decisions,
            self.propagations,
            self.bin_propagations,
            self.conflicts,
            self.restarts,
            self.restarts_luby,
            self.restarts_glucose,
            self.learned_clauses,
            self.deleted_clauses,
            self.peak_learned,
            self.glue_clauses,
            self.lbd_hist[0],
            self.lbd_hist[1],
            self.lbd_hist[2],
            self.lbd_hist[3],
            self.gc_runs,
            self.gc_bytes_reclaimed,
            self.scratch_reallocs,
            self.max_literals,
            self.tot_literals,
            self.incremental_solves,
            self.clauses_retained,
            self.solver_rebuilds,
            self.watermark_reductions,
            self.clauses_exported,
            self.clauses_imported,
            self.import_duplicates,
        );
        self.phase.to_json_into(out);
        out.push('}');
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} bin_props={} conflicts={} \
             restarts={} (luby={} glucose={}) learned={} deleted={} peak_learned={} \
             glue={} lbd_hist=[{},{},{},{}] gc_runs={} gc_bytes={} scratch_reallocs={} \
             inc_solves={} clauses_retained={} rebuilds={} watermark_reductions={} \
             exported={} imported={} import_dups={}",
            self.decisions,
            self.propagations,
            self.bin_propagations,
            self.conflicts,
            self.restarts,
            self.restarts_luby,
            self.restarts_glucose,
            self.learned_clauses,
            self.deleted_clauses,
            self.peak_learned,
            self.glue_clauses,
            self.lbd_hist[0],
            self.lbd_hist[1],
            self.lbd_hist[2],
            self.lbd_hist[3],
            self.gc_runs,
            self.gc_bytes_reclaimed,
            self.scratch_reallocs,
            self.incremental_solves,
            self.clauses_retained,
            self.solver_rebuilds,
            self.watermark_reductions,
            self.clauses_exported,
            self.clauses_imported,
            self.import_duplicates
        )?;
        if !self.phase.is_zero() {
            write!(f, " phase=[{}]", self.phase)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let s = SolverStats::default();
        assert_eq!(s.decisions, 0);
        assert_eq!(s.conflicts, 0);
        assert_eq!(s.bin_propagations, 0);
        assert_eq!(s.lbd_hist, [0; LBD_HIST_BUCKETS]);
    }

    #[test]
    fn display_contains_fields() {
        let s = SolverStats {
            decisions: 3,
            conflicts: 2,
            ..SolverStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("decisions=3"));
        assert!(text.contains("conflicts=2"));
        assert!(text.contains("gc_runs=0"));
        assert!(text.contains("inc_solves=0"));
        assert!(text.contains("clauses_retained=0"));
        assert!(text.contains("rebuilds=0"));
    }

    #[test]
    fn lbd_buckets_cover_ranges() {
        assert_eq!(SolverStats::lbd_bucket(1), 0);
        assert_eq!(SolverStats::lbd_bucket(2), 0);
        assert_eq!(SolverStats::lbd_bucket(3), 1);
        assert_eq!(SolverStats::lbd_bucket(5), 1);
        assert_eq!(SolverStats::lbd_bucket(6), 2);
        assert_eq!(SolverStats::lbd_bucket(9), 2);
        assert_eq!(SolverStats::lbd_bucket(10), 3);
        assert_eq!(SolverStats::lbd_bucket(1000), 3);
    }

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = SolverStats {
            decisions: 1,
            peak_learned: 5,
            lbd_hist: [1, 0, 0, 0],
            ..SolverStats::default()
        };
        let b = SolverStats {
            decisions: 2,
            peak_learned: 3,
            lbd_hist: [0, 2, 0, 1],
            ..SolverStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.decisions, 3);
        assert_eq!(a.peak_learned, 5);
        assert_eq!(a.lbd_hist, [1, 2, 0, 1]);
    }
}
