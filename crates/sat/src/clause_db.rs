//! Arena storage for original and learned clauses.

use coremax_cnf::Lit;

use crate::trace::TraceId;

/// Identifier of an *original* clause, in order of addition.
///
/// This is the currency of unsatisfiable cores: [`crate::Solver::unsat_core`]
/// returns the ids of the original clauses whose conjunction was refuted.
///
/// # Examples
///
/// ```
/// use coremax_sat::{Solver, ClauseId};
/// use coremax_cnf::{Lit, Var};
/// let mut s = Solver::new();
/// let v = s.new_var();
/// let id: ClauseId = s.add_clause([Lit::positive(v)]);
/// assert_eq!(id.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClauseId(pub(crate) u32);

impl ClauseId {
    /// The position of the clause in add order (0-based).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ClauseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Internal reference to a clause in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CRef(pub(crate) u32);

impl CRef {
    pub(crate) const UNDEF: CRef = CRef(u32::MAX);

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    pub(crate) fn is_undef(self) -> bool {
        self.0 == u32::MAX
    }
}

#[derive(Debug, Clone)]
struct Header {
    start: u32,
    len: u32,
    activity: f32,
    learned: bool,
    deleted: bool,
    trace: TraceId,
}

/// Flat clause arena. Literals of all clauses live in one `Vec<Lit>`;
/// a header per clause records the slice, activity and bookkeeping.
/// Deleted clauses leave their literals in place (no GC) but are marked
/// and skipped everywhere; their trace entries remain valid, which is
/// essential for core extraction.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClauseDb {
    lits: Vec<Lit>,
    headers: Vec<Header>,
    num_learned: usize,
}

impl ClauseDb {
    pub(crate) fn new() -> Self {
        ClauseDb::default()
    }

    /// Adds a clause; `len >= 1` expected (empty clauses are handled
    /// before reaching the arena).
    pub(crate) fn add(&mut self, lits: &[Lit], learned: bool, trace: TraceId) -> CRef {
        debug_assert!(!lits.is_empty());
        let start = self.lits.len() as u32;
        self.lits.extend_from_slice(lits);
        self.headers.push(Header {
            start,
            len: lits.len() as u32,
            activity: 0.0,
            learned,
            deleted: false,
            trace,
        });
        if learned {
            self.num_learned += 1;
        }
        CRef((self.headers.len() - 1) as u32)
    }

    #[inline]
    pub(crate) fn lits(&self, c: CRef) -> &[Lit] {
        let h = &self.headers[c.index()];
        &self.lits[h.start as usize..(h.start + h.len) as usize]
    }

    #[inline]
    pub(crate) fn lits_mut(&mut self, c: CRef) -> &mut [Lit] {
        let h = &self.headers[c.index()];
        let (s, e) = (h.start as usize, (h.start + h.len) as usize);
        &mut self.lits[s..e]
    }

    #[inline]
    pub(crate) fn len(&self, c: CRef) -> usize {
        self.headers[c.index()].len as usize
    }

    #[inline]
    pub(crate) fn trace(&self, c: CRef) -> TraceId {
        self.headers[c.index()].trace
    }

    #[inline]
    pub(crate) fn is_learned(&self, c: CRef) -> bool {
        self.headers[c.index()].learned
    }

    #[inline]
    pub(crate) fn is_deleted(&self, c: CRef) -> bool {
        self.headers[c.index()].deleted
    }

    pub(crate) fn mark_deleted(&mut self, c: CRef) {
        let h = &mut self.headers[c.index()];
        debug_assert!(!h.deleted);
        h.deleted = true;
        if h.learned {
            self.num_learned -= 1;
        }
    }

    #[inline]
    pub(crate) fn activity(&self, c: CRef) -> f32 {
        self.headers[c.index()].activity
    }

    pub(crate) fn bump_activity(&mut self, c: CRef, inc: f32) -> bool {
        let h = &mut self.headers[c.index()];
        h.activity += inc;
        h.activity > 1e20
    }

    pub(crate) fn rescale_activities(&mut self) {
        for h in &mut self.headers {
            h.activity *= 1e-20;
        }
    }

    pub(crate) fn num_clauses(&self) -> usize {
        self.headers.len()
    }

    pub(crate) fn num_learned(&self) -> usize {
        self.num_learned
    }

    /// Iterates over live learned clause references.
    pub(crate) fn learned_refs(&self) -> impl Iterator<Item = CRef> + '_ {
        self.headers
            .iter()
            .enumerate()
            .filter_map(|(i, h)| (h.learned && !h.deleted).then_some(CRef(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::{Lit, Var};

    fn l(d: i32) -> Lit {
        Lit::from_dimacs(d).unwrap()
    }

    #[test]
    fn add_and_read_back() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2)], false, TraceId(0));
        let b = db.add(&[l(-1)], false, TraceId(1));
        assert_eq!(db.lits(a), &[l(1), l(2)]);
        assert_eq!(db.lits(b), &[l(-1)]);
        assert_eq!(db.len(a), 2);
        assert_eq!(db.num_clauses(), 2);
        assert!(!db.is_learned(a));
        assert_eq!(db.trace(b), TraceId(1));
    }

    #[test]
    fn learned_bookkeeping() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2)], true, TraceId(0));
        let _b = db.add(&[l(3), l(4)], false, TraceId(1));
        assert_eq!(db.num_learned(), 1);
        assert!(db.is_learned(a));
        let learned: Vec<CRef> = db.learned_refs().collect();
        assert_eq!(learned, vec![a]);
        db.mark_deleted(a);
        assert_eq!(db.num_learned(), 0);
        assert!(db.is_deleted(a));
        assert_eq!(db.learned_refs().count(), 0);
    }

    #[test]
    fn activity_bump_and_rescale() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2)], true, TraceId(0));
        assert!(!db.bump_activity(a, 1.0));
        assert!((db.activity(a) - 1.0).abs() < 1e-6);
        assert!(db.bump_activity(a, 1e20_f32 * 2.0));
        db.rescale_activities();
        assert!(db.activity(a) < 1e6);
    }

    #[test]
    fn lits_mut_allows_reordering() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2), l(3)], false, TraceId(0));
        db.lits_mut(a).swap(0, 2);
        assert_eq!(db.lits(a), &[l(3), l(2), l(1)]);
    }

    #[test]
    fn cref_undef() {
        assert!(CRef::UNDEF.is_undef());
        assert!(!CRef(0).is_undef());
    }

    #[test]
    fn clause_id_display_and_index() {
        let id = ClauseId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "c7");
        let _ = Var::new(0); // silence unused import on some cfgs
    }
}
