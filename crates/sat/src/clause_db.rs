//! Arena storage for original and learned clauses.

use coremax_cnf::Lit;

use crate::trace::TraceId;

/// Identifier of an *original* clause, in order of addition.
///
/// This is the currency of unsatisfiable cores: [`crate::Solver::unsat_core`]
/// returns the ids of the original clauses whose conjunction was refuted.
///
/// # Examples
///
/// ```
/// use coremax_sat::{Solver, ClauseId};
/// use coremax_cnf::{Lit, Var};
/// let mut s = Solver::new();
/// let v = s.new_var();
/// let id: ClauseId = s.add_clause([Lit::positive(v)]);
/// assert_eq!(id.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClauseId(pub(crate) u32);

impl ClauseId {
    /// The position of the clause in add order (0-based).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ClauseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Internal reference to a clause: the word offset of its header in the
/// arena (MiniSAT's region-allocator `CRef`).
///
/// `CRef`s are *positional*: garbage collection compacts the arena and
/// remaps every live reference through the table returned by
/// [`ClauseDb::collect_garbage`]. Holding a `CRef` across a collection
/// without remapping it is a bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CRef(pub(crate) u32);

impl CRef {
    pub(crate) const UNDEF: CRef = CRef(u32::MAX);

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    pub(crate) fn is_undef(self) -> bool {
        self.0 == u32::MAX
    }
}

// Header layout, in arena words relative to the clause's `CRef`:
// `[len][flags|lbd<<4][activity bits][trace id][lit 0]…[lit len-1]`.
// Headers are stored through `Lit::from_code`/`Lit::code` round-trips:
// the arena is a single `Vec<Lit>`, so a clause's header and literals
// share cache lines — one memory fetch serves the whole propagation
// visit. No word is ever *used* as a literal unless it is one.
const HDR_LEN: usize = 0;
const HDR_FLAGS: usize = 1;
const HDR_ACT: usize = 2;
const HDR_TRACE: usize = 3;
const HDR_SIZE: usize = 4;

const FLAG_LEARNED: u32 = 1;
const FLAG_DELETED: u32 = 2;
/// The clause is implied by the *pure* (hard, canonical-variable) part
/// of the instance alone: either loaded through the shared add path, or
/// learned from an all-pure derivation. Only pure clauses may be
/// exported to the clause exchange (see `crate::share`).
const FLAG_PURE: u32 = 4;
/// The clause was imported from the clause exchange; import-flagged
/// clauses are never deleted by clause-DB reductions (their transmitted
/// LBD is honest but foreign, so they get explicit protection).
const FLAG_IMPORT: u32 = 8;
const FLAG_MASK: u32 = FLAG_LEARNED | FLAG_DELETED | FLAG_PURE | FLAG_IMPORT;
const LBD_SHIFT: u32 = 4;

/// Flat clause arena in the MiniSAT region-allocator style. Deleted
/// clauses stay in place (marked and skipped everywhere) until
/// [`ClauseDb::collect_garbage`] compacts the arena. Trace entries are
/// independent of arena positions, so core extraction survives any
/// number of collections.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClauseDb {
    arena: Vec<Lit>,
    /// Refs of learned clauses; may contain deleted entries between a
    /// reduction and the next collection ([`Self::learned_refs`] filters).
    learnts: Vec<CRef>,
    num_clauses: usize,
    num_learned: usize,
    /// Arena words (headers + literals) held by deleted clauses.
    wasted_words: usize,
}

/// Outcome of a garbage collection: a sorted old-offset → new-offset
/// table, plus the bytes returned to the allocator's working set.
pub(crate) struct GcRemap {
    /// `(old_cref, new_cref)` for every surviving clause, sorted by old.
    pairs: Vec<(u32, u32)>,
    pub(crate) bytes_reclaimed: u64,
}

impl GcRemap {
    /// New position of `old`, or `CRef::UNDEF` if it was collected.
    #[inline]
    pub(crate) fn remap(&self, old: CRef) -> CRef {
        if old.is_undef() {
            return CRef::UNDEF;
        }
        match self.pairs.binary_search_by_key(&old.0, |&(o, _)| o) {
            Ok(i) => CRef(self.pairs[i].1),
            Err(_) => CRef::UNDEF,
        }
    }
}

impl ClauseDb {
    pub(crate) fn new() -> Self {
        ClauseDb::default()
    }

    #[inline]
    fn word(&self, idx: usize) -> u32 {
        self.arena[idx].code()
    }

    #[inline]
    fn set_word(&mut self, idx: usize, value: u32) {
        self.arena[idx] = Lit::from_code(value);
    }

    /// Adds a clause; `len >= 1` expected (empty clauses are handled
    /// before reaching the arena).
    ///
    /// Arena invariant, uniform across the level-0 and learned load
    /// paths: stored clauses never contain two literals of the same
    /// variable. Problem clauses are sorted and deduplicated (and
    /// tautologies discarded) by `Solver::add_clause` before they get
    /// here; learned clauses satisfy it by construction of first-UIP
    /// analysis.
    pub(crate) fn add(&mut self, lits: &[Lit], learned: bool, trace: TraceId) -> CRef {
        debug_assert!(!lits.is_empty());
        debug_assert!(
            lits.iter()
                .enumerate()
                .all(|(i, a)| lits[i + 1..].iter().all(|b| b.var() != a.var())),
            "arena clauses must be duplicate- and tautology-free"
        );
        let cref = CRef(self.arena.len() as u32);
        self.arena.push(Lit::from_code(lits.len() as u32));
        self.arena
            .push(Lit::from_code(if learned { FLAG_LEARNED } else { 0 }));
        self.arena.push(Lit::from_code(0.0f32.to_bits()));
        self.arena.push(Lit::from_code(trace.0));
        self.arena.extend_from_slice(lits);
        self.num_clauses += 1;
        if learned {
            self.num_learned += 1;
            self.learnts.push(cref);
        }
        cref
    }

    #[inline]
    pub(crate) fn lits(&self, c: CRef) -> &[Lit] {
        let len = self.word(c.index() + HDR_LEN) as usize;
        &self.arena[c.index() + HDR_SIZE..c.index() + HDR_SIZE + len]
    }

    #[inline]
    pub(crate) fn len(&self, c: CRef) -> usize {
        self.word(c.index() + HDR_LEN) as usize
    }

    /// `(start, len)` of the clause's literal slice in absolute arena
    /// indices: one header read for callers that then index the arena
    /// directly (hot propagation path).
    #[inline]
    pub(crate) fn span(&self, c: CRef) -> (usize, usize) {
        (
            c.index() + HDR_SIZE,
            self.word(c.index() + HDR_LEN) as usize,
        )
    }

    /// Direct arena access by absolute literal index (from [`Self::span`]).
    #[inline]
    pub(crate) fn lit_at(&self, idx: usize) -> Lit {
        self.arena[idx]
    }

    /// Swaps two literals by absolute arena index.
    #[inline]
    pub(crate) fn swap_lits(&mut self, a: usize, b: usize) {
        self.arena.swap(a, b);
    }

    #[inline]
    pub(crate) fn trace(&self, c: CRef) -> TraceId {
        TraceId(self.word(c.index() + HDR_TRACE))
    }

    #[inline]
    pub(crate) fn is_learned(&self, c: CRef) -> bool {
        self.word(c.index() + HDR_FLAGS) & FLAG_LEARNED != 0
    }

    #[inline]
    pub(crate) fn is_deleted(&self, c: CRef) -> bool {
        self.word(c.index() + HDR_FLAGS) & FLAG_DELETED != 0
    }

    /// Whether the clause is implied by the pure (canonical-hard) part
    /// of the instance alone.
    #[inline]
    pub(crate) fn is_pure(&self, c: CRef) -> bool {
        self.word(c.index() + HDR_FLAGS) & FLAG_PURE != 0
    }

    pub(crate) fn set_pure(&mut self, c: CRef) {
        let flags = self.word(c.index() + HDR_FLAGS);
        self.set_word(c.index() + HDR_FLAGS, flags | FLAG_PURE);
    }

    /// Whether the clause was imported from the clause exchange.
    #[inline]
    pub(crate) fn is_import(&self, c: CRef) -> bool {
        self.word(c.index() + HDR_FLAGS) & FLAG_IMPORT != 0
    }

    pub(crate) fn set_import(&mut self, c: CRef) {
        let flags = self.word(c.index() + HDR_FLAGS);
        self.set_word(c.index() + HDR_FLAGS, flags | FLAG_IMPORT);
    }

    pub(crate) fn mark_deleted(&mut self, c: CRef) {
        debug_assert!(!self.is_deleted(c));
        let flags = self.word(c.index() + HDR_FLAGS);
        self.set_word(c.index() + HDR_FLAGS, flags | FLAG_DELETED);
        self.wasted_words += HDR_SIZE + self.len(c);
        self.num_clauses -= 1;
        if flags & FLAG_LEARNED != 0 {
            self.num_learned -= 1;
        }
    }

    #[inline]
    pub(crate) fn activity(&self, c: CRef) -> f32 {
        f32::from_bits(self.word(c.index() + HDR_ACT))
    }

    #[inline]
    pub(crate) fn lbd(&self, c: CRef) -> u32 {
        self.word(c.index() + HDR_FLAGS) >> LBD_SHIFT
    }

    /// Records a (new or improved) LBD for a clause.
    #[inline]
    pub(crate) fn set_lbd(&mut self, c: CRef, lbd: u32) {
        let flags = self.word(c.index() + HDR_FLAGS) & FLAG_MASK;
        self.set_word(c.index() + HDR_FLAGS, flags | (lbd << LBD_SHIFT));
    }

    pub(crate) fn bump_activity(&mut self, c: CRef, inc: f32) -> bool {
        let act = self.activity(c) + inc;
        self.set_word(c.index() + HDR_ACT, act.to_bits());
        act > 1e20
    }

    pub(crate) fn rescale_activities(&mut self) {
        let mut off = 0usize;
        while off < self.arena.len() {
            let len = self.word(off + HDR_LEN) as usize;
            let act = f32::from_bits(self.word(off + HDR_ACT)) * 1e-20;
            self.set_word(off + HDR_ACT, act.to_bits());
            off += HDR_SIZE + len;
        }
    }

    /// Number of live clauses.
    pub(crate) fn num_clauses(&self) -> usize {
        self.num_clauses
    }

    pub(crate) fn num_learned(&self) -> usize {
        self.num_learned
    }

    /// Arena words currently held by deleted clauses.
    #[inline]
    pub(crate) fn wasted_words(&self) -> usize {
        self.wasted_words
    }

    /// Total arena words (live and deleted).
    #[inline]
    pub(crate) fn total_words(&self) -> usize {
        self.arena.len()
    }

    /// Iterates over live learned clause references.
    pub(crate) fn learned_refs(&self) -> impl Iterator<Item = CRef> + '_ {
        self.learnts
            .iter()
            .copied()
            .filter(|&c| !self.is_deleted(c))
    }

    /// Compacts the arena: drops deleted clauses, slides live clauses
    /// (header and literals) down in place, and returns the remap table
    /// the owner must apply to every stored `CRef` (watch lists,
    /// reasons). Trace ids are untouched.
    pub(crate) fn collect_garbage(&mut self) -> GcRemap {
        let old_words = self.arena.len();
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(self.num_clauses);
        let mut read = 0usize;
        let mut write = 0usize;
        while read < old_words {
            let words = HDR_SIZE + self.word(read + HDR_LEN) as usize;
            if self.word(read + HDR_FLAGS) & FLAG_DELETED == 0 {
                self.arena.copy_within(read..read + words, write);
                pairs.push((read as u32, write as u32));
                write += words;
            }
            read += words;
        }
        self.arena.truncate(write);
        self.wasted_words = 0;
        self.learnts.clear();
        for &(_, new) in &pairs {
            let c = CRef(new);
            if self.is_learned(c) {
                self.learnts.push(c);
            }
        }
        GcRemap {
            pairs,
            bytes_reclaimed: ((old_words - write) * std::mem::size_of::<Lit>()) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::{Lit, Var};

    fn l(d: i32) -> Lit {
        Lit::from_dimacs(d).unwrap()
    }

    #[test]
    fn add_and_read_back() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2)], false, TraceId(0));
        let b = db.add(&[l(-1)], false, TraceId(1));
        assert_eq!(db.lits(a), &[l(1), l(2)]);
        assert_eq!(db.lits(b), &[l(-1)]);
        assert_eq!(db.len(a), 2);
        assert_eq!(db.num_clauses(), 2);
        assert!(!db.is_learned(a));
        assert_eq!(db.trace(b), TraceId(1));
        let (start, len) = db.span(a);
        assert_eq!(len, 2);
        assert_eq!(db.lit_at(start), l(1));
        assert_eq!(db.lit_at(start + 1), l(2));
    }

    #[test]
    fn learned_bookkeeping() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2)], true, TraceId(0));
        let _b = db.add(&[l(3), l(4)], false, TraceId(1));
        assert_eq!(db.num_learned(), 1);
        assert!(db.is_learned(a));
        let learned: Vec<CRef> = db.learned_refs().collect();
        assert_eq!(learned, vec![a]);
        db.mark_deleted(a);
        assert_eq!(db.num_learned(), 0);
        assert!(db.is_deleted(a));
        assert_eq!(db.learned_refs().count(), 0);
        assert_eq!(db.wasted_words(), 6);
    }

    #[test]
    fn activity_bump_and_rescale() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2)], true, TraceId(0));
        assert!(!db.bump_activity(a, 1.0));
        assert!((db.activity(a) - 1.0).abs() < 1e-6);
        assert!(db.bump_activity(a, 1e20_f32 * 2.0));
        db.rescale_activities();
        assert!(db.activity(a) < 1e6);
    }

    #[test]
    fn lbd_stored_and_updated() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2), l(3)], true, TraceId(0));
        assert_eq!(db.lbd(a), 0);
        db.set_lbd(a, 3);
        assert_eq!(db.lbd(a), 3);
        assert!(db.is_learned(a));
        db.set_lbd(a, 2);
        assert_eq!(db.lbd(a), 2);
        assert!(!db.is_deleted(a));
    }

    #[test]
    fn pure_and_import_flags_survive_lbd_updates_and_gc() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2)], true, TraceId(0));
        let junk = db.add(&[l(4), l(5)], true, TraceId(1));
        assert!(!db.is_pure(a) && !db.is_import(a));
        db.set_pure(a);
        db.set_import(a);
        db.set_lbd(a, 9);
        assert!(db.is_pure(a));
        assert!(db.is_import(a));
        assert!(db.is_learned(a));
        assert_eq!(db.lbd(a), 9);
        db.mark_deleted(junk);
        let remap = db.collect_garbage();
        let na = remap.remap(a);
        assert!(db.is_pure(na) && db.is_import(na));
        assert_eq!(db.lbd(na), 9);
    }

    #[test]
    fn lits_are_mutable_via_swap() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2), l(3)], false, TraceId(0));
        let (start, _) = db.span(a);
        db.swap_lits(start, start + 2);
        assert_eq!(db.lits(a), &[l(3), l(2), l(1)]);
    }

    #[test]
    fn gc_compacts_and_remaps() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2)], false, TraceId(0));
        let b = db.add(&[l(3), l(4), l(5)], true, TraceId(1));
        let c = db.add(&[l(-1), l(-2)], true, TraceId(2));
        db.set_lbd(c, 2);
        db.mark_deleted(b);
        assert_eq!(db.wasted_words(), 7);
        let remap = db.collect_garbage();
        assert_eq!(db.num_clauses(), 2);
        assert_eq!(db.wasted_words(), 0);
        let (na, nb, nc) = (remap.remap(a), remap.remap(b), remap.remap(c));
        assert!(nb.is_undef());
        assert_eq!(db.lits(na), &[l(1), l(2)]);
        assert_eq!(db.lits(nc), &[l(-1), l(-2)]);
        assert_eq!(db.trace(nc), TraceId(2));
        assert!(db.is_learned(nc));
        assert_eq!(db.lbd(nc), 2);
        assert_eq!(db.num_learned(), 1);
        let learned: Vec<CRef> = db.learned_refs().collect();
        assert_eq!(learned, vec![nc]);
        assert!(remap.bytes_reclaimed > 0);
        assert_eq!(remap.remap(CRef::UNDEF), CRef::UNDEF);
    }

    #[test]
    fn gc_noop_when_nothing_deleted() {
        let mut db = ClauseDb::new();
        let a = db.add(&[l(1), l(2)], false, TraceId(0));
        let remap = db.collect_garbage();
        assert_eq!(remap.remap(a), a);
        assert_eq!(db.lits(a), &[l(1), l(2)]);
    }

    #[test]
    fn cref_undef() {
        assert!(CRef::UNDEF.is_undef());
        assert!(!CRef(0).is_undef());
    }

    #[test]
    fn clause_id_display_and_index() {
        let id = ClauseId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "c7");
        let _ = Var::new(0); // silence unused import on some cfgs
    }
}
