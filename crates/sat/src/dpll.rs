//! A tiny reference DPLL solver and exhaustive MaxSAT oracle.
//!
//! These are deliberately simple (and slow) implementations used to
//! cross-validate the CDCL solver and the MaxSAT algorithms on small
//! formulas in tests and property checks. They are part of the public
//! API because downstream test suites (and the paper's B&B baseline
//! tests) reuse them.

use coremax_cnf::{Assignment, CnfFormula, Var};

/// Decides satisfiability of `formula` by plain DPLL (unit propagation +
/// chronological backtracking, first-unassigned-variable branching).
///
/// Intended for formulas with up to a few dozen variables; use
/// [`crate::Solver`] for anything serious.
#[must_use]
pub fn dpll_is_satisfiable(formula: &CnfFormula) -> bool {
    let mut assignment = Assignment::for_vars(formula.num_vars());
    dpll(formula, &mut assignment, 0)
}

fn dpll(formula: &CnfFormula, assignment: &mut Assignment, next_var: usize) -> bool {
    let mut propagated: Vec<Var> = Vec::new();
    let satisfiable = dpll_step(formula, assignment, next_var, &mut propagated);
    if !satisfiable {
        // Undo this frame's unit propagations before backtracking.
        for &v in &propagated {
            assignment.unassign(v);
        }
    }
    satisfiable
}

fn dpll_step(
    formula: &CnfFormula,
    assignment: &mut Assignment,
    mut next_var: usize,
    propagated: &mut Vec<Var>,
) -> bool {
    // Unit propagation to fixpoint.
    loop {
        let mut changed = false;
        for clause in formula.iter() {
            match clause.eval(assignment) {
                Some(true) => continue,
                Some(false) => return false,
                None => {}
            }
            let mut unassigned = None;
            let mut count = 0;
            for &l in clause.lits() {
                if assignment.lit_value(l).is_none() {
                    count += 1;
                    unassigned = Some(l);
                }
            }
            if count == 1 {
                let l = unassigned.expect("counted one unassigned literal");
                assignment.assign_lit(l);
                propagated.push(l.var());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    match formula.eval(assignment) {
        Some(true) => return true,
        Some(false) => return false,
        None => {}
    }

    while next_var < formula.num_vars() && assignment.value(Var::new(next_var as u32)).is_some() {
        next_var += 1;
    }
    if next_var == formula.num_vars() {
        return formula.eval(assignment) == Some(true);
    }
    let var = Var::new(next_var as u32);
    for value in [true, false] {
        assignment.assign(var, value);
        if dpll(formula, assignment, next_var + 1) {
            return true;
        }
        assignment.unassign(var);
    }
    false
}

/// Computes the exact MaxSAT optimum of `formula` — the maximum number
/// of simultaneously satisfiable clauses — by exhaustive enumeration.
///
/// Exponential in the number of variables; the oracle for test suites.
///
/// # Panics
///
/// Panics if the formula has more than 24 variables.
#[must_use]
pub fn dpll_max_satisfiable(formula: &CnfFormula) -> usize {
    let n = formula.num_vars();
    assert!(n <= 24, "exhaustive MaxSAT oracle limited to 24 variables");
    let mut best = 0;
    let mut assignment = Assignment::for_vars(n);
    for bits in 0u64..(1u64 << n) {
        for i in 0..n {
            assignment.assign(Var::new(i as u32), bits >> i & 1 == 1);
        }
        let sat = formula.num_satisfied(&assignment);
        if sat > best {
            best = sat;
            if best == formula.num_clauses() {
                break;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_cnf::Lit;

    fn cnf(clauses: &[&[i32]]) -> CnfFormula {
        let mut f = CnfFormula::new();
        for c in clauses {
            f.add_clause(c.iter().map(|&d| Lit::from_dimacs(d).unwrap()));
        }
        f
    }

    #[test]
    fn sat_simple() {
        assert!(dpll_is_satisfiable(&cnf(&[&[1, 2], &[-1], &[2]])));
    }

    #[test]
    fn unsat_simple() {
        assert!(!dpll_is_satisfiable(&cnf(&[&[1], &[-1]])));
        assert!(!dpll_is_satisfiable(&cnf(&[
            &[1, 2],
            &[-1, 2],
            &[1, -2],
            &[-1, -2]
        ])));
    }

    #[test]
    fn empty_formula_sat() {
        assert!(dpll_is_satisfiable(&CnfFormula::new()));
    }

    #[test]
    fn empty_clause_unsat() {
        let mut f = CnfFormula::new();
        f.add_clause(std::iter::empty());
        assert!(!dpll_is_satisfiable(&f));
    }

    #[test]
    fn maxsat_oracle_paper_example1() {
        // (x1)(x2 ∨ ¬x1)(¬x2): 2 of 3 satisfiable.
        assert_eq!(dpll_max_satisfiable(&cnf(&[&[1], &[2, -1], &[-2]])), 2);
    }

    #[test]
    fn maxsat_oracle_paper_example2() {
        // Example 2 of the paper: optimum is 6 of 8.
        let f = cnf(&[
            &[1],
            &[-1, -2],
            &[2],
            &[-1, -3],
            &[3],
            &[-2, -3],
            &[1, -4],
            &[-1, 4],
        ]);
        assert_eq!(dpll_max_satisfiable(&f), 6);
    }

    #[test]
    fn maxsat_oracle_all_satisfiable() {
        let f = cnf(&[&[1, 2], &[-1, 2]]);
        assert_eq!(dpll_max_satisfiable(&f), 2);
    }

    #[test]
    fn dpll_agrees_with_oracle_on_small_formulas() {
        // Deterministic pseudo-random 3-CNFs over 6 vars.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..50 {
            let mut f = CnfFormula::with_vars(6);
            let clauses = 8 + (next() % 12) as usize;
            for _ in 0..clauses {
                let mut lits = Vec::new();
                for _ in 0..3 {
                    let v = (next() % 6) as i32 + 1;
                    let s = if next() & 1 == 0 { 1 } else { -1 };
                    lits.push(Lit::from_dimacs(v * s).unwrap());
                }
                f.add_clause(lits);
            }
            let sat = dpll_is_satisfiable(&f);
            let opt = dpll_max_satisfiable(&f);
            assert_eq!(sat, opt == f.num_clauses());
        }
    }
}
