//! Resource budgets for bounded solving.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Conflict/propagation caps metered *jointly* across every solver a
/// budget (and its children) reaches: each solver charges its work into
/// the shared counters, and once a cap is crossed every participant
/// observes exhaustion. This is how a K-member portfolio race respects
/// the caller's cap as a whole instead of spending it K times over.
#[derive(Debug, Default)]
pub struct SharedCaps {
    conflicts: AtomicU64,
    propagations: AtomicU64,
    max_conflicts: Option<u64>,
    max_propagations: Option<u64>,
    exhausted: AtomicBool,
}

impl SharedCaps {
    fn new(max_conflicts: Option<u64>, max_propagations: Option<u64>) -> Self {
        SharedCaps {
            conflicts: AtomicU64::new(0),
            propagations: AtomicU64::new(0),
            max_conflicts,
            max_propagations,
            exhausted: AtomicBool::new(false),
        }
    }

    /// Charges a work delta and returns `true` once the pool is
    /// exhausted (sticky: stays `true` for every later caller).
    fn charge(&self, conflicts: u64, propagations: u64) -> bool {
        let c = self.conflicts.fetch_add(conflicts, Ordering::Relaxed) + conflicts;
        let p = self.propagations.fetch_add(propagations, Ordering::Relaxed) + propagations;
        if self.max_conflicts.is_some_and(|m| c >= m)
            || self.max_propagations.is_some_and(|m| p >= m)
        {
            self.exhausted.store(true, Ordering::Relaxed);
        }
        self.exhausted.load(Ordering::Relaxed)
    }

    fn is_exhausted(&self) -> bool {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Total conflicts charged so far.
    fn conflicts_spent(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }
}

/// Limits on how much work a [`crate::Solver`] may perform before giving
/// up with [`crate::SolveOutcome::Unknown`].
///
/// A default budget is unlimited. Budgets make "aborted instances"
/// (Table 1 / Table 2 of the paper) measurable and deterministic when
/// expressed in conflicts rather than seconds.
///
/// Besides the passive caps, a budget may carry a **cooperative stop
/// flag** ([`Budget::with_stop_flag`]): a shared [`AtomicBool`] that any
/// thread can raise to interrupt the solve. The solver polls it inside
/// the propagation loop (every
/// [`crate::SolverConfig::propagation_check_interval`] propagations), so
/// cancellation lands within a bounded amount of work even in the middle
/// of a long implication chain — the mechanism the parallel portfolio
/// uses to halt losing configurations the moment a winner commits.
///
/// # Examples
///
/// ```
/// use coremax_sat::Budget;
/// use std::time::Duration;
/// let b = Budget::new()
///     .with_max_conflicts(10_000)
///     .with_timeout(Duration::from_secs(5));
/// assert_eq!(b.max_conflicts(), Some(10_000));
/// ```
///
/// Cooperative cancellation:
///
/// ```
/// use coremax_sat::Budget;
/// use std::sync::atomic::{AtomicBool, Ordering};
/// use std::sync::Arc;
/// let stop = Arc::new(AtomicBool::new(false));
/// let b = Budget::new().with_stop_flag(stop.clone());
/// assert!(!b.stop_requested());
/// stop.store(true, Ordering::Relaxed);
/// assert!(b.stop_requested());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_conflicts: Option<u64>,
    max_propagations: Option<u64>,
    timeout: Option<Duration>,
    deadline: Option<Instant>,
    // Cooperative stop flags. More than one can accumulate when budgets
    // are layered (a caller's flag plus the portfolio's race flag);
    // `stop_requested` honours any of them.
    stop: Vec<Arc<AtomicBool>>,
    // Caps shared across every solver this budget reaches (portfolio
    // races); unlike the per-call caps above, these survive `child`.
    shared: Option<Arc<SharedCaps>>,
}

impl Budget {
    /// An unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        Budget::default()
    }

    /// Caps the number of conflicts.
    #[must_use]
    pub fn with_max_conflicts(mut self, conflicts: u64) -> Self {
        self.max_conflicts = Some(conflicts);
        self
    }

    /// Caps the number of propagations.
    #[must_use]
    pub fn with_max_propagations(mut self, propagations: u64) -> Self {
        self.max_propagations = Some(propagations);
        self
    }

    /// Caps wall-clock time. The clock starts at the next `solve` call.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Caps wall-clock time with an absolute deadline (shared across
    /// several solver invocations, e.g. one MaxSAT run).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cooperative stop flag: raising it (from any thread)
    /// interrupts the solve with [`crate::SolveOutcome::Unknown`] within
    /// a bounded number of propagations. Flags accumulate — a budget
    /// layered by several owners (caller timeout + portfolio race)
    /// honours every attached flag.
    #[must_use]
    pub fn with_stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop.push(flag);
        self
    }

    /// Attaches conflict/propagation caps metered jointly across every
    /// solver this budget (or any clone / [`Budget::child`]) reaches.
    /// A no-op when both caps are `None`.
    ///
    /// This is the portfolio's answer to per-member cap re-attachment:
    /// K racing members charging one shared pool spend at most the
    /// caller's cap collectively (give or take one polling interval per
    /// member), not K× it. Note the flip side: with shared caps, *which*
    /// member runs out of budget first is a thread-timing artifact, so
    /// capped races certify their result intervals but are not
    /// bit-reproducible across runs.
    #[must_use]
    pub fn with_shared_caps(
        mut self,
        max_conflicts: Option<u64>,
        max_propagations: Option<u64>,
    ) -> Self {
        if max_conflicts.is_some() || max_propagations.is_some() {
            self.shared = Some(Arc::new(SharedCaps::new(max_conflicts, max_propagations)));
        }
        self
    }

    /// The conflict cap, if any.
    #[must_use]
    pub fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The propagation cap, if any.
    #[must_use]
    pub fn max_propagations(&self) -> Option<u64> {
        self.max_propagations
    }

    /// The relative timeout, if any.
    #[must_use]
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The absolute deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Returns `true` if any attached stop flag has been raised.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        self.stop.iter().any(|f| f.load(Ordering::Relaxed))
    }

    /// Returns `true` if at least one stop flag is attached.
    #[must_use]
    pub fn has_stop_flag(&self) -> bool {
        !self.stop.is_empty()
    }

    /// Returns `true` if shared conflict/propagation caps are attached.
    #[must_use]
    pub fn has_shared_caps(&self) -> bool {
        self.shared.is_some()
    }

    /// Charges a work delta against the shared caps (if any) and
    /// returns `true` once the shared pool is exhausted. Solvers call
    /// this at their interrupt-polling points with the work done since
    /// their previous charge.
    #[must_use]
    pub fn charge_shared(&self, conflicts: u64, propagations: u64) -> bool {
        match &self.shared {
            Some(caps) => caps.charge(conflicts, propagations),
            None => false,
        }
    }

    /// Returns `true` if attached shared caps have been exhausted (by
    /// any participant).
    #[must_use]
    pub fn shared_caps_exhausted(&self) -> bool {
        self.shared.as_ref().is_some_and(|c| c.is_exhausted())
    }

    /// Total conflicts charged into the shared caps so far (0 when no
    /// shared caps are attached). Diagnostic / test hook.
    #[must_use]
    pub fn shared_conflicts_spent(&self) -> u64 {
        self.shared.as_ref().map_or(0, |c| c.conflicts_spent())
    }

    /// The attached stop flags (empty when none).
    #[must_use]
    pub fn stop_flags(&self) -> &[Arc<AtomicBool>] {
        &self.stop
    }

    /// Returns `true` if no limit is set at all (and no stop flag is
    /// attached).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_conflicts.is_none()
            && self.max_propagations.is_none()
            && self.timeout.is_none()
            && self.deadline.is_none()
            && self.stop.is_empty()
            && self.shared.is_none()
    }

    /// Resolves the effective deadline given a solve start time: the
    /// earlier of `start + timeout` and the absolute deadline.
    #[must_use]
    pub fn effective_deadline(&self, start: Instant) -> Option<Instant> {
        match (self.timeout.map(|t| start + t), self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Returns `true` when a stop flag has been raised or the absolute
    /// deadline has passed — the between-SAT-calls poll MaxSAT drivers
    /// use to abort a run without starting another sub-solve. Only the
    /// *absolute* deadline is consulted (resolve a relative timeout
    /// with [`Budget::child`] first); conflict and propagation caps are
    /// metered by the solver itself.
    #[must_use]
    pub fn interrupted(&self) -> bool {
        self.stop_requested()
            || self.shared_caps_exhausted()
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Derives the budget a sub-solver of one run should receive: the
    /// wall-clock limits collapse to an absolute deadline anchored at
    /// `start` (so every SAT call of a MaxSAT run shares one clock) and
    /// the stop flags and shared caps are carried over (both meter the
    /// whole run, wherever it executes), while per-call conflict and
    /// propagation caps are dropped (they meter a single `solve`, not
    /// the whole run).
    ///
    /// This is the one way child budgets should be built — constructing
    /// `Budget::new().with_deadline(..)` by hand silently severs the
    /// cancellation chain.
    #[must_use]
    pub fn child(&self, start: Instant) -> Budget {
        Budget {
            max_conflicts: None,
            max_propagations: None,
            timeout: None,
            deadline: self.effective_deadline(start),
            stop: self.stop.clone(),
            shared: self.shared.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        assert!(Budget::new().is_unlimited());
        assert_eq!(Budget::new().max_conflicts(), None);
        assert!(!Budget::new().stop_requested());
        assert!(!Budget::new().has_stop_flag());
    }

    #[test]
    fn builders_set_fields() {
        let b = Budget::new()
            .with_max_conflicts(5)
            .with_max_propagations(7)
            .with_timeout(Duration::from_millis(100));
        assert!(!b.is_unlimited());
        assert_eq!(b.max_conflicts(), Some(5));
        assert_eq!(b.max_propagations(), Some(7));
        assert_eq!(b.timeout(), Some(Duration::from_millis(100)));
    }

    #[test]
    fn effective_deadline_takes_minimum() {
        let start = Instant::now();
        let d1 = start + Duration::from_secs(10);
        let b = Budget::new()
            .with_timeout(Duration::from_secs(60))
            .with_deadline(d1);
        assert_eq!(b.effective_deadline(start), Some(d1));

        let b2 = Budget::new().with_timeout(Duration::from_secs(1));
        assert_eq!(
            b2.effective_deadline(start),
            Some(start + Duration::from_secs(1))
        );

        assert_eq!(Budget::new().effective_deadline(start), None);
    }

    #[test]
    fn stop_flag_is_shared_and_budget_not_unlimited() {
        let stop = Arc::new(AtomicBool::new(false));
        let b = Budget::new().with_stop_flag(stop.clone());
        assert!(!b.is_unlimited(), "a stop flag is a limit");
        assert!(b.has_stop_flag());
        let clone = b.clone();
        stop.store(true, Ordering::Relaxed);
        assert!(b.stop_requested());
        assert!(clone.stop_requested(), "clones share the flag");
    }

    #[test]
    fn multiple_stop_flags_accumulate() {
        let a = Arc::new(AtomicBool::new(false));
        let b = Arc::new(AtomicBool::new(false));
        let budget = Budget::new()
            .with_stop_flag(a.clone())
            .with_stop_flag(b.clone());
        assert!(!budget.stop_requested());
        b.store(true, Ordering::Relaxed);
        assert!(budget.stop_requested(), "any raised flag interrupts");
    }

    #[test]
    fn shared_caps_meter_jointly_and_survive_child() {
        let b = Budget::new().with_shared_caps(Some(10), None);
        assert!(b.has_shared_caps());
        assert!(!b.is_unlimited());
        let child = b.child(Instant::now());
        assert!(child.has_shared_caps(), "shared caps cascade to children");
        // Two participants (the budget and its child) charge one pool.
        assert!(!b.charge_shared(6, 100));
        assert!(child.charge_shared(4, 0), "joint total hits the cap");
        assert!(b.shared_caps_exhausted(), "exhaustion is visible to all");
        assert!(b.interrupted());
        assert_eq!(b.shared_conflicts_spent(), 10);
        // Exhaustion is sticky.
        assert!(b.charge_shared(0, 0));
    }

    #[test]
    fn shared_caps_noop_when_both_none() {
        let b = Budget::new().with_shared_caps(None, None);
        assert!(!b.has_shared_caps());
        assert!(b.is_unlimited());
        assert!(!b.charge_shared(1_000_000, 1_000_000));
    }

    #[test]
    fn child_resolves_deadline_and_keeps_stop_flags() {
        let stop = Arc::new(AtomicBool::new(false));
        let start = Instant::now();
        let b = Budget::new()
            .with_timeout(Duration::from_secs(3))
            .with_max_conflicts(99)
            .with_stop_flag(stop.clone());
        let child = b.child(start);
        assert_eq!(child.deadline(), Some(start + Duration::from_secs(3)));
        assert_eq!(child.max_conflicts(), None, "per-call caps do not cascade");
        assert_eq!(child.max_propagations(), None);
        stop.store(true, Ordering::Relaxed);
        assert!(child.stop_requested(), "child budgets share the flag");

        let unlimited = Budget::new().child(start);
        assert!(unlimited.is_unlimited());
    }
}
