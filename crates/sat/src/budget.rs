//! Resource budgets for bounded solving.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Limits on how much work a [`crate::Solver`] may perform before giving
/// up with [`crate::SolveOutcome::Unknown`].
///
/// A default budget is unlimited. Budgets make "aborted instances"
/// (Table 1 / Table 2 of the paper) measurable and deterministic when
/// expressed in conflicts rather than seconds.
///
/// Besides the passive caps, a budget may carry a **cooperative stop
/// flag** ([`Budget::with_stop_flag`]): a shared [`AtomicBool`] that any
/// thread can raise to interrupt the solve. The solver polls it inside
/// the propagation loop (every
/// [`crate::SolverConfig::propagation_check_interval`] propagations), so
/// cancellation lands within a bounded amount of work even in the middle
/// of a long implication chain — the mechanism the parallel portfolio
/// uses to halt losing configurations the moment a winner commits.
///
/// # Examples
///
/// ```
/// use coremax_sat::Budget;
/// use std::time::Duration;
/// let b = Budget::new()
///     .with_max_conflicts(10_000)
///     .with_timeout(Duration::from_secs(5));
/// assert_eq!(b.max_conflicts(), Some(10_000));
/// ```
///
/// Cooperative cancellation:
///
/// ```
/// use coremax_sat::Budget;
/// use std::sync::atomic::{AtomicBool, Ordering};
/// use std::sync::Arc;
/// let stop = Arc::new(AtomicBool::new(false));
/// let b = Budget::new().with_stop_flag(stop.clone());
/// assert!(!b.stop_requested());
/// stop.store(true, Ordering::Relaxed);
/// assert!(b.stop_requested());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_conflicts: Option<u64>,
    max_propagations: Option<u64>,
    timeout: Option<Duration>,
    deadline: Option<Instant>,
    // Cooperative stop flags. More than one can accumulate when budgets
    // are layered (a caller's flag plus the portfolio's race flag);
    // `stop_requested` honours any of them.
    stop: Vec<Arc<AtomicBool>>,
}

impl Budget {
    /// An unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        Budget::default()
    }

    /// Caps the number of conflicts.
    #[must_use]
    pub fn with_max_conflicts(mut self, conflicts: u64) -> Self {
        self.max_conflicts = Some(conflicts);
        self
    }

    /// Caps the number of propagations.
    #[must_use]
    pub fn with_max_propagations(mut self, propagations: u64) -> Self {
        self.max_propagations = Some(propagations);
        self
    }

    /// Caps wall-clock time. The clock starts at the next `solve` call.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Caps wall-clock time with an absolute deadline (shared across
    /// several solver invocations, e.g. one MaxSAT run).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cooperative stop flag: raising it (from any thread)
    /// interrupts the solve with [`crate::SolveOutcome::Unknown`] within
    /// a bounded number of propagations. Flags accumulate — a budget
    /// layered by several owners (caller timeout + portfolio race)
    /// honours every attached flag.
    #[must_use]
    pub fn with_stop_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.stop.push(flag);
        self
    }

    /// The conflict cap, if any.
    #[must_use]
    pub fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The propagation cap, if any.
    #[must_use]
    pub fn max_propagations(&self) -> Option<u64> {
        self.max_propagations
    }

    /// The relative timeout, if any.
    #[must_use]
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The absolute deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Returns `true` if any attached stop flag has been raised.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        self.stop.iter().any(|f| f.load(Ordering::Relaxed))
    }

    /// Returns `true` if at least one stop flag is attached.
    #[must_use]
    pub fn has_stop_flag(&self) -> bool {
        !self.stop.is_empty()
    }

    /// The attached stop flags (empty when none).
    #[must_use]
    pub fn stop_flags(&self) -> &[Arc<AtomicBool>] {
        &self.stop
    }

    /// Returns `true` if no limit is set at all (and no stop flag is
    /// attached).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_conflicts.is_none()
            && self.max_propagations.is_none()
            && self.timeout.is_none()
            && self.deadline.is_none()
            && self.stop.is_empty()
    }

    /// Resolves the effective deadline given a solve start time: the
    /// earlier of `start + timeout` and the absolute deadline.
    #[must_use]
    pub fn effective_deadline(&self, start: Instant) -> Option<Instant> {
        match (self.timeout.map(|t| start + t), self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Returns `true` when a stop flag has been raised or the absolute
    /// deadline has passed — the between-SAT-calls poll MaxSAT drivers
    /// use to abort a run without starting another sub-solve. Only the
    /// *absolute* deadline is consulted (resolve a relative timeout
    /// with [`Budget::child`] first); conflict and propagation caps are
    /// metered by the solver itself.
    #[must_use]
    pub fn interrupted(&self) -> bool {
        self.stop_requested() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Derives the budget a sub-solver of one run should receive: the
    /// wall-clock limits collapse to an absolute deadline anchored at
    /// `start` (so every SAT call of a MaxSAT run shares one clock) and
    /// the stop flags are carried over, while per-call conflict and
    /// propagation caps are dropped (they meter a single `solve`, not
    /// the whole run).
    ///
    /// This is the one way child budgets should be built — constructing
    /// `Budget::new().with_deadline(..)` by hand silently severs the
    /// cancellation chain.
    #[must_use]
    pub fn child(&self, start: Instant) -> Budget {
        Budget {
            max_conflicts: None,
            max_propagations: None,
            timeout: None,
            deadline: self.effective_deadline(start),
            stop: self.stop.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        assert!(Budget::new().is_unlimited());
        assert_eq!(Budget::new().max_conflicts(), None);
        assert!(!Budget::new().stop_requested());
        assert!(!Budget::new().has_stop_flag());
    }

    #[test]
    fn builders_set_fields() {
        let b = Budget::new()
            .with_max_conflicts(5)
            .with_max_propagations(7)
            .with_timeout(Duration::from_millis(100));
        assert!(!b.is_unlimited());
        assert_eq!(b.max_conflicts(), Some(5));
        assert_eq!(b.max_propagations(), Some(7));
        assert_eq!(b.timeout(), Some(Duration::from_millis(100)));
    }

    #[test]
    fn effective_deadline_takes_minimum() {
        let start = Instant::now();
        let d1 = start + Duration::from_secs(10);
        let b = Budget::new()
            .with_timeout(Duration::from_secs(60))
            .with_deadline(d1);
        assert_eq!(b.effective_deadline(start), Some(d1));

        let b2 = Budget::new().with_timeout(Duration::from_secs(1));
        assert_eq!(
            b2.effective_deadline(start),
            Some(start + Duration::from_secs(1))
        );

        assert_eq!(Budget::new().effective_deadline(start), None);
    }

    #[test]
    fn stop_flag_is_shared_and_budget_not_unlimited() {
        let stop = Arc::new(AtomicBool::new(false));
        let b = Budget::new().with_stop_flag(stop.clone());
        assert!(!b.is_unlimited(), "a stop flag is a limit");
        assert!(b.has_stop_flag());
        let clone = b.clone();
        stop.store(true, Ordering::Relaxed);
        assert!(b.stop_requested());
        assert!(clone.stop_requested(), "clones share the flag");
    }

    #[test]
    fn multiple_stop_flags_accumulate() {
        let a = Arc::new(AtomicBool::new(false));
        let b = Arc::new(AtomicBool::new(false));
        let budget = Budget::new()
            .with_stop_flag(a.clone())
            .with_stop_flag(b.clone());
        assert!(!budget.stop_requested());
        b.store(true, Ordering::Relaxed);
        assert!(budget.stop_requested(), "any raised flag interrupts");
    }

    #[test]
    fn child_resolves_deadline_and_keeps_stop_flags() {
        let stop = Arc::new(AtomicBool::new(false));
        let start = Instant::now();
        let b = Budget::new()
            .with_timeout(Duration::from_secs(3))
            .with_max_conflicts(99)
            .with_stop_flag(stop.clone());
        let child = b.child(start);
        assert_eq!(child.deadline(), Some(start + Duration::from_secs(3)));
        assert_eq!(child.max_conflicts(), None, "per-call caps do not cascade");
        assert_eq!(child.max_propagations(), None);
        stop.store(true, Ordering::Relaxed);
        assert!(child.stop_requested(), "child budgets share the flag");

        let unlimited = Budget::new().child(start);
        assert!(unlimited.is_unlimited());
    }
}
