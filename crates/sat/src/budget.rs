//! Resource budgets for bounded solving.

use std::time::{Duration, Instant};

/// Limits on how much work a [`crate::Solver`] may perform before giving
/// up with [`crate::SolveOutcome::Unknown`].
///
/// A default budget is unlimited. Budgets make "aborted instances"
/// (Table 1 / Table 2 of the paper) measurable and deterministic when
/// expressed in conflicts rather than seconds.
///
/// # Examples
///
/// ```
/// use coremax_sat::Budget;
/// use std::time::Duration;
/// let b = Budget::new()
///     .with_max_conflicts(10_000)
///     .with_timeout(Duration::from_secs(5));
/// assert_eq!(b.max_conflicts(), Some(10_000));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    max_conflicts: Option<u64>,
    max_propagations: Option<u64>,
    timeout: Option<Duration>,
    deadline: Option<Instant>,
}

impl Budget {
    /// An unlimited budget.
    #[must_use]
    pub fn new() -> Self {
        Budget::default()
    }

    /// Caps the number of conflicts.
    #[must_use]
    pub fn with_max_conflicts(mut self, conflicts: u64) -> Self {
        self.max_conflicts = Some(conflicts);
        self
    }

    /// Caps the number of propagations.
    #[must_use]
    pub fn with_max_propagations(mut self, propagations: u64) -> Self {
        self.max_propagations = Some(propagations);
        self
    }

    /// Caps wall-clock time. The clock starts at the next `solve` call.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Caps wall-clock time with an absolute deadline (shared across
    /// several solver invocations, e.g. one MaxSAT run).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The conflict cap, if any.
    #[must_use]
    pub fn max_conflicts(&self) -> Option<u64> {
        self.max_conflicts
    }

    /// The propagation cap, if any.
    #[must_use]
    pub fn max_propagations(&self) -> Option<u64> {
        self.max_propagations
    }

    /// The relative timeout, if any.
    #[must_use]
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The absolute deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Returns `true` if no limit is set at all.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_conflicts.is_none()
            && self.max_propagations.is_none()
            && self.timeout.is_none()
            && self.deadline.is_none()
    }

    /// Resolves the effective deadline given a solve start time: the
    /// earlier of `start + timeout` and the absolute deadline.
    #[must_use]
    pub fn effective_deadline(&self, start: Instant) -> Option<Instant> {
        match (self.timeout.map(|t| start + t), self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        assert!(Budget::new().is_unlimited());
        assert_eq!(Budget::new().max_conflicts(), None);
    }

    #[test]
    fn builders_set_fields() {
        let b = Budget::new()
            .with_max_conflicts(5)
            .with_max_propagations(7)
            .with_timeout(Duration::from_millis(100));
        assert!(!b.is_unlimited());
        assert_eq!(b.max_conflicts(), Some(5));
        assert_eq!(b.max_propagations(), Some(7));
        assert_eq!(b.timeout(), Some(Duration::from_millis(100)));
    }

    #[test]
    fn effective_deadline_takes_minimum() {
        let start = Instant::now();
        let d1 = start + Duration::from_secs(10);
        let b = Budget::new()
            .with_timeout(Duration::from_secs(60))
            .with_deadline(d1);
        assert_eq!(b.effective_deadline(start), Some(d1));

        let b2 = Budget::new().with_timeout(Duration::from_secs(1));
        assert_eq!(
            b2.effective_deadline(start),
            Some(start + Duration::from_secs(1))
        );

        assert_eq!(Budget::new().effective_deadline(start), None);
    }
}
