//! The Luby restart sequence.

/// Returns the `i`-th element (1-based) of the Luby sequence
/// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
///
/// Restart intervals are `base * luby(i)` conflicts, the schedule used
/// by MiniSAT and shown optimal (up to constants) for Las Vegas restarts.
#[must_use]
pub fn luby(i: u64) -> u64 {
    debug_assert!(i >= 1);
    // MiniSAT's closed-form walk: find the finite subsequence that
    // contains index `x` (0-based) and its size, then descend.
    let mut x = i - 1;
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_terms_match_reference() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1];
        let got: Vec<u64> = (1..=expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn powers_of_two_appear_at_sequence_ends() {
        // Element 2^k - 1 equals 2^(k-1).
        for k in 1..=10u32 {
            assert_eq!(luby((1u64 << k) - 1), 1u64 << (k - 1));
        }
    }

    #[test]
    fn values_are_powers_of_two() {
        for i in 1..2000u64 {
            let v = luby(i);
            assert!(v.is_power_of_two(), "luby({i}) = {v}");
        }
    }
}
