//! Indexed binary max-heap ordered by variable activity (VSIDS order).

use coremax_cnf::Var;

/// A binary max-heap over variables keyed by externally stored
/// activities, with O(log n) increase-key via an index map.
///
/// This is the classic MiniSAT `order_heap`: the heap holds candidate
/// decision variables, `decay`/`bump` operations live in the solver, and
/// the heap is told to sift entries whose activity changed.
#[derive(Debug, Clone, Default)]
pub struct ActivityHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    index: Vec<usize>,
    /// Branching-diversification seed: 0 (default) ties break by
    /// variable index; nonzero ties break by a seeded xorshift hash of
    /// the index, giving each portfolio worker a distinct exploration
    /// order at equal activities.
    seed: u64,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    /// Creates an empty heap.
    #[must_use]
    pub fn new() -> Self {
        ActivityHeap::default()
    }

    /// Sets the tie-break seed (see the `seed` field; 0 disables).
    /// Affects only future comparisons; call before populating.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Grows the index map to cover `num_vars` variables.
    pub fn grow(&mut self, num_vars: usize) {
        if self.index.len() < num_vars {
            self.index.resize(num_vars, ABSENT);
        }
    }

    /// Returns `true` if the heap has no elements.
    #[cfg(test)]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of enqueued variables.
    #[cfg(test)]
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if `var` is currently in the heap.
    #[must_use]
    pub fn contains(&self, var: Var) -> bool {
        self.index
            .get(var.index())
            .is_some_and(|&pos| pos != ABSENT)
    }

    /// Inserts `var` if absent.
    pub fn insert(&mut self, var: Var, activity: &[f64]) {
        self.grow(var.index() + 1);
        if self.contains(var) {
            return;
        }
        self.heap.push(var);
        self.index[var.index()] = self.heap.len() - 1;
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with maximal activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.index[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores the heap property for `var` after its activity increased.
    pub fn update(&mut self, var: Var, activity: &[f64]) {
        if let Some(&pos) = self.index.get(var.index()) {
            if pos != ABSENT {
                self.sift_up(pos, activity);
            }
        }
    }

    fn less(&self, a: Var, b: Var, activity: &[f64]) -> bool {
        // Max-heap on activity; tie-break on the seeded hash when
        // diversification is on, then on index for determinism.
        let (aa, ab) = (activity[a.index()], activity[b.index()]);
        if aa != ab {
            return aa > ab;
        }
        if self.seed != 0 {
            let (ha, hb) = (
                xorshift_mix(self.seed, a.index() as u64),
                xorshift_mix(self.seed, b.index() as u64),
            );
            if ha != hb {
                return ha < hb;
            }
        }
        a.index() < b.index()
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.less(self.heap[pos], self.heap[parent], activity) {
                self.swap(pos, parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        loop {
            let left = 2 * pos + 1;
            let right = left + 1;
            let mut best = pos;
            if left < self.heap.len() && self.less(self.heap[left], self.heap[best], activity) {
                best = left;
            }
            if right < self.heap.len() && self.less(self.heap[right], self.heap[best], activity) {
                best = right;
            }
            if best == pos {
                break;
            }
            self.swap(pos, best);
            pos = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.index[self.heap[a].index()] = a;
        self.index[self.heap[b].index()] = b;
    }
}

/// Stateless mix of a seed and a variable index (the splitmix64
/// finaliser): cheap, deterministic per seed, and — thanks to full
/// avalanche — even adjacent seeds permute equal-activity variables
/// differently.
#[inline]
fn xorshift_mix(seed: u64, x: u64) -> u64 {
    let mut z = x
        .wrapping_add(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Var {
        Var::new(i)
    }

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0];
        let mut h = ActivityHeap::new();
        for i in 0..4 {
            h.insert(v(i), &activity);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop(&activity))
            .map(|x| x.index() as u32)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let activity = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(v(0), &activity);
        h.insert(v(0), &activity);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn update_after_bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for i in 0..3 {
            h.insert(v(i), &activity);
        }
        activity[0] = 10.0;
        h.update(v(0), &activity);
        assert_eq!(h.pop(&activity), Some(v(0)));
    }

    #[test]
    fn ties_break_by_index() {
        let activity = vec![1.0, 1.0, 1.0];
        let mut h = ActivityHeap::new();
        h.insert(v(2), &activity);
        h.insert(v(0), &activity);
        h.insert(v(1), &activity);
        assert_eq!(h.pop(&activity), Some(v(0)));
        assert_eq!(h.pop(&activity), Some(v(1)));
        assert_eq!(h.pop(&activity), Some(v(2)));
        assert!(h.pop(&activity).is_none());
        assert!(h.is_empty());
    }

    #[test]
    fn seeded_ties_are_deterministic_and_seed_dependent() {
        let activity = vec![1.0; 16];
        let order_for = |seed: u64| -> Vec<u32> {
            let mut h = ActivityHeap::new();
            h.set_seed(seed);
            for i in 0..16 {
                h.insert(v(i), &activity);
            }
            std::iter::from_fn(|| h.pop(&activity))
                .map(|x| x.index() as u32)
                .collect()
        };
        let baseline: Vec<u32> = (0..16).collect();
        assert_eq!(order_for(0), baseline, "seed 0 keeps index order");
        let a = order_for(7);
        assert_eq!(a, order_for(7), "same seed, same order");
        assert_ne!(a, baseline, "nonzero seed permutes ties");
        assert_ne!(a, order_for(8), "different seeds differ");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, baseline, "still a permutation");
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0];
        let mut h = ActivityHeap::new();
        assert!(!h.contains(v(0)));
        h.insert(v(0), &activity);
        assert!(h.contains(v(0)));
        h.pop(&activity);
        assert!(!h.contains(v(0)));
    }
}
