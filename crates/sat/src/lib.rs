//! A CDCL SAT solver with clause-level unsatisfiable-core extraction.
//!
//! This crate provides the SAT substrate required by the core-guided
//! MaxSAT algorithms of Marques-Silva & Planes (DATE 2008). It is a
//! from-scratch conflict-driven clause-learning solver in the MiniSAT
//! lineage:
//!
//! - two-watched-literal propagation with dedicated binary-clause watch
//!   lists (the other literal is stored inline, so binary propagation
//!   never touches the clause arena),
//! - first-UIP conflict analysis with recursive clause minimisation,
//!   allocation-free in steady state,
//! - VSIDS variable activities with phase saving,
//! - Luby-sequence restarts, plus an optional glucose-style adaptive
//!   restart mode ([`RestartMode`]),
//! - learned-clause database reduction ordered by literal block
//!   distance (LBD) first and activity second, with glue-clause
//!   protection, followed by clause-arena garbage collection,
//! - solving under assumptions with failed-assumption extraction,
//! - **resolution-trace unsatisfiable cores**: every clause carries an
//!   id, learned clauses record their antecedents, and when the formula
//!   is refuted the final conflict is resolved back to a set of
//!   *original* clause ids — exactly the facility MiniSAT 1.14's proof
//!   logger gave the paper's msu4 implementation,
//! - cooperative **clause sharing** between diversified portfolio
//!   workers (the [`share`] module): purity-tracked export of low-LBD
//!   learned clauses implied by the instance's hard clauses alone, with
//!   imports drained at restart boundaries.
//!
//! # Examples
//!
//! ```
//! use coremax_cnf::{Lit, Var};
//! use coremax_sat::{Solver, SolveOutcome};
//!
//! let mut solver = Solver::new();
//! let x = solver.new_var();
//! let y = solver.new_var();
//! // (x ∨ y) ∧ (¬x) ∧ (¬y): unsatisfiable.
//! let c0 = solver.add_clause([Lit::positive(x), Lit::positive(y)]);
//! let c1 = solver.add_clause([Lit::negative(x)]);
//! let c2 = solver.add_clause([Lit::negative(y)]);
//! assert_eq!(solver.solve(), SolveOutcome::Unsat);
//! let core = solver.unsat_core().expect("core available after UNSAT");
//! // The whole formula is the (only) core here.
//! assert_eq!(core, &[c0, c1, c2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod clause_db;
mod dpll;
mod heap;
mod incremental;
mod luby;
pub mod share;
mod solver;
mod stats;
mod trace;

pub use budget::Budget;
pub use clause_db::ClauseId;
pub use dpll::{dpll_is_satisfiable, dpll_max_satisfiable};
pub use incremental::{EngineMode, IncrementalSolver, SoftId};
pub use share::{ClauseExchange, ExchangeEndpoint, ExchangeTotals, SharedContext, SharingConfig};
pub use solver::{RestartMode, SolveOutcome, Solver, SolverConfig};
pub use stats::{SolverStats, LBD_HIST_BUCKETS};
