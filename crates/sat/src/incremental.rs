//! IPASIR-style persistent incremental solving.
//!
//! [`IncrementalSolver`] is the assumption-based engine the core-guided
//! MaxSAT drivers run on. One instance lives for a whole optimisation
//! run: learned clauses, VSIDS activities, saved phases and the clause
//! arena all carry over from one `solve` call to the next, so each
//! iteration of an MSU loop starts where the previous one stopped
//! instead of re-deriving everything from a cold solver.
//!
//! On top of the raw [`Solver`] it adds *selector-variable soft-clause
//! management*: a soft clause `ω` is stored once as `ω ∨ s` with a
//! fresh selector variable `s`, and its lifecycle is driven purely
//! through that selector —
//!
//! - **active**: assume `¬s`, so the clause is enforced;
//! - **deactivated** (relaxed): drop the assumption — `s` doubles as
//!   the clause's blocking variable, free for cardinality constraints;
//! - **hardened**: add the unit `¬s`, making the clause permanent;
//! - **retired**: add the unit `s`, satisfying the stored clause
//!   forever (used when a driver replaces a soft with an extended
//!   copy, e.g. Fu–Malik relaxation rounds).
//!
//! After an UNSAT answer, [`IncrementalSolver::failed_softs`] maps the
//! solver's failed assumptions straight back to soft-clause handles —
//! the unsatisfiable core, with no clause-id bookkeeping.
//!
//! # Engine modes
//!
//! [`EngineMode::Persistent`] is the real engine. [`EngineMode::Rebuild`]
//! answers every query identically but deliberately reconstructs a
//! fresh [`Solver`] from a mirrored clause list on every `solve` call —
//! the historic per-iteration-`Solver::new()` behaviour. It exists so
//! benchmarks can measure exactly what persistence buys
//! ([`SolverStats::solver_rebuilds`] vs
//! [`SolverStats::incremental_solves`]) and so differential tests can
//! prove the persistent engine agrees with a from-scratch solver after
//! any sequence of operations.
//!
//! # Examples
//!
//! ```
//! use coremax_cnf::{Lit, Var};
//! use coremax_sat::{IncrementalSolver, SolveOutcome};
//!
//! let mut engine = IncrementalSolver::new();
//! let x = engine.new_var();
//! // Hard: x. Softs: ¬x (contradicts the hard clause) and x.
//! engine.add_clause([Lit::positive(x)]);
//! let s0 = engine.add_soft([Lit::negative(x)]);
//! let s1 = engine.add_soft([Lit::positive(x)]);
//! assert_eq!(engine.solve(&[]), SolveOutcome::Unsat);
//! assert_eq!(engine.failed_softs(), vec![s0]);
//! // Relax the core's soft clause and the formula becomes satisfiable.
//! engine.deactivate(s0);
//! assert_eq!(engine.solve(&[]), SolveOutcome::Sat);
//! assert!(engine.is_active(s1));
//! ```

use std::collections::HashMap;

use coremax_cnf::{Assignment, Lit, Var};

use crate::budget::Budget;
use crate::share::SharedContext;
use crate::solver::{SolveOutcome, Solver, SolverConfig};
use crate::stats::SolverStats;

/// Handle for a soft clause registered with
/// [`IncrementalSolver::add_soft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SoftId(pub usize);

/// How the engine services its solve calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// One long-lived [`Solver`]: learned clauses, activities, phases
    /// and the clause arena persist across calls.
    #[default]
    Persistent,
    /// A fresh [`Solver`] is built and reloaded from a mirrored clause
    /// list on every solve call — the pre-incremental behaviour, kept
    /// for benchmarking and differential testing.
    Rebuild,
}

/// Lifecycle of a registered soft clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SoftState {
    /// `¬s` is assumed on every solve: the clause is enforced.
    Active,
    /// No assumption: the selector is a free blocking variable.
    Inactive,
    /// Unit `¬s` added: permanently enforced, no assumption needed.
    Hardened,
    /// Unit `s` added: the stored clause is satisfied forever.
    Retired,
}

/// A persistent assumption-based SAT engine with selector-variable
/// soft-clause management. See the [module docs](self) for the model.
#[derive(Debug)]
pub struct IncrementalSolver {
    mode: EngineMode,
    config: SolverConfig,
    solver: Solver,
    budget: Budget,
    num_vars: usize,
    selectors: Vec<Lit>,
    states: Vec<SoftState>,
    /// Selector-variable index → soft id, for failed-assumption mapping.
    selector_index: HashMap<u32, SoftId>,
    /// All clauses ever added (with their shared/pure marking), kept
    /// only in [`EngineMode::Rebuild`] so each solve call can reload a
    /// fresh solver.
    mirror: Vec<(Vec<Lit>, bool)>,
    /// Portfolio clause-exchange context, when sharing is on. Rebuild
    /// mode stores the import-only restriction and re-attaches a fresh
    /// endpoint to every reconstructed solver.
    shared: Option<SharedContext>,
    /// Stats of solvers already discarded by rebuilds.
    retired_stats: SolverStats,
    /// Fresh solvers constructed beyond the first.
    rebuilds: u64,
    assumption_buf: Vec<Lit>,
}

impl Default for IncrementalSolver {
    fn default() -> Self {
        IncrementalSolver::new()
    }
}

impl IncrementalSolver {
    /// A persistent engine with default solver configuration.
    #[must_use]
    pub fn new() -> Self {
        IncrementalSolver::with_mode_and_config(EngineMode::Persistent, SolverConfig::default())
    }

    /// An engine in the given mode with default solver configuration.
    #[must_use]
    pub fn with_mode(mode: EngineMode) -> Self {
        IncrementalSolver::with_mode_and_config(mode, SolverConfig::default())
    }

    /// An engine with explicit mode and solver configuration.
    #[must_use]
    pub fn with_mode_and_config(mode: EngineMode, config: SolverConfig) -> Self {
        IncrementalSolver {
            mode,
            config: config.clone(),
            solver: Solver::with_config(config),
            budget: Budget::new(),
            num_vars: 0,
            selectors: Vec::new(),
            states: Vec::new(),
            selector_index: HashMap::new(),
            mirror: Vec::new(),
            shared: None,
            retired_stats: SolverStats::default(),
            rebuilds: 0,
            assumption_buf: Vec::new(),
        }
    }

    /// An engine with explicit mode, wired into a portfolio clause
    /// exchange when `shared` is present (drivers thread the context
    /// they were handed through here).
    #[must_use]
    pub fn with_mode_and_shared(mode: EngineMode, shared: Option<SharedContext>) -> Self {
        let mut engine = IncrementalSolver::with_mode(mode);
        if let Some(ctx) = shared {
            engine.set_shared_context(ctx);
        }
        engine
    }

    /// The engine's mode.
    #[must_use]
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Connects the engine to the portfolio clause exchange: learned
    /// clauses whose derivations bottom out in shared
    /// ([`IncrementalSolver::add_clause_shared`]) clauses are exported,
    /// and other workers' clauses are imported at restart boundaries.
    /// Also adopts the context's diversification knobs (branch seed,
    /// phase, restart policy). In [`EngineMode::Rebuild`] the context is
    /// restricted to import-only — each rebuild re-derives the same
    /// clauses, and re-exporting them would flood the rings — and every
    /// reconstructed solver gets a fresh endpoint.
    pub fn set_shared_context(&mut self, ctx: SharedContext) {
        let ctx = match self.mode {
            EngineMode::Persistent => ctx,
            EngineMode::Rebuild => ctx.import_only(),
        };
        self.config.branch_seed = ctx.solver_config().branch_seed;
        self.config.default_phase = ctx.solver_config().default_phase;
        self.config.restart_mode = ctx.solver_config().restart_mode;
        self.config.restart_base = ctx.solver_config().restart_base;
        self.solver.apply_diversification(&self.config);
        self.solver.set_exchange(ctx.endpoint());
        self.shared = Some(ctx);
    }

    /// Sets the budget applied to subsequent solve calls. Callers
    /// typically pass a [`Budget::child`] anchored at the start of the
    /// whole optimisation run so every iteration shares one deadline.
    pub fn set_budget(&mut self, budget: Budget) {
        self.solver.set_budget(budget.clone());
        self.budget = budget;
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars as u32);
        self.num_vars += 1;
        self.solver.ensure_vars(self.num_vars);
        v
    }

    /// Grows the variable table to at least `num_vars` variables.
    pub fn ensure_vars(&mut self, num_vars: usize) {
        self.num_vars = self.num_vars.max(num_vars);
        self.solver.ensure_vars(self.num_vars);
    }

    /// Number of variables (problem + selectors + auxiliaries).
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds a hard clause.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.add_clause_impl(lits, false);
    }

    /// Adds a hard clause and marks it *shareable*: the caller asserts
    /// it belongs to (or is implied by) the canonical instance's hard
    /// clauses over this engine's variable space, seeding the purity
    /// tracking that gates clause-exchange exports (see
    /// [`crate::Solver::add_clause_shared`]). Behaviourally identical
    /// to [`IncrementalSolver::add_clause`] otherwise — in particular,
    /// safe to call with no exchange attached.
    pub fn add_clause_shared<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.add_clause_impl(lits, true);
    }

    fn add_clause_impl<I: IntoIterator<Item = Lit>>(&mut self, lits: I, shared: bool) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for &l in &clause {
            self.num_vars = self.num_vars.max(l.var().index() + 1);
        }
        if shared {
            self.solver.add_clause_shared(clause.iter().copied());
        } else {
            self.solver.add_clause(clause.iter().copied());
        }
        if self.mode == EngineMode::Rebuild {
            self.mirror.push((clause, shared));
        }
    }

    /// Registers a soft clause: stores `lits ∨ s` for a fresh selector
    /// `s` and returns its handle. The clause starts *active* (enforced
    /// via the assumption `¬s` on every solve).
    pub fn add_soft<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> SoftId {
        let sel = Lit::positive(self.new_var());
        let id = SoftId(self.selectors.len());
        self.selectors.push(sel);
        self.states.push(SoftState::Active);
        self.selector_index.insert(sel.var().index_u32(), id);
        self.add_clause(lits.into_iter().chain(std::iter::once(sel)));
        id
    }

    /// The positive selector literal of a soft clause (`s` in `ω ∨ s`).
    /// True models that set it "pay" for the clause; while deactivated
    /// it is exactly the clause's blocking variable.
    #[must_use]
    pub fn selector(&self, id: SoftId) -> Lit {
        self.selectors[id.0]
    }

    /// The assumption literal (`¬s`) that enforces a soft clause.
    #[must_use]
    pub fn assumption(&self, id: SoftId) -> Lit {
        !self.selectors[id.0]
    }

    /// Whether the soft clause is currently enforced by assumption.
    #[must_use]
    pub fn is_active(&self, id: SoftId) -> bool {
        self.states[id.0] == SoftState::Active
    }

    /// Number of registered soft clauses (any state).
    #[must_use]
    pub fn num_softs(&self) -> usize {
        self.selectors.len()
    }

    /// Stops enforcing a soft clause: its `¬s` assumption is dropped,
    /// leaving `s` free — the incremental equivalent of attaching a
    /// blocking variable. No-op unless the clause is active.
    pub fn deactivate(&mut self, id: SoftId) {
        if self.states[id.0] == SoftState::Active {
            self.states[id.0] = SoftState::Inactive;
        }
    }

    /// Re-enforces a previously deactivated soft clause.
    ///
    /// # Panics
    ///
    /// Panics if the clause was hardened or retired — those transitions
    /// added a unit clause and cannot be undone.
    pub fn activate(&mut self, id: SoftId) {
        match self.states[id.0] {
            SoftState::Active | SoftState::Inactive => self.states[id.0] = SoftState::Active,
            s => panic!("cannot re-activate a {s:?} soft clause"),
        }
    }

    /// Makes a soft clause permanently hard by adding the unit `¬s`.
    ///
    /// # Panics
    ///
    /// Panics if the clause was retired: retiring added the unit `s`,
    /// so hardening would assert the contradictory `¬s` and silently
    /// refute the whole formula.
    pub fn harden(&mut self, id: SoftId) {
        match self.states[id.0] {
            SoftState::Hardened => {}
            SoftState::Retired => panic!("cannot harden a retired soft clause"),
            SoftState::Active | SoftState::Inactive => {
                self.states[id.0] = SoftState::Hardened;
                let unit = !self.selectors[id.0];
                self.add_clause([unit]);
            }
        }
    }

    /// Permanently satisfies the *stored* clause by adding the unit
    /// `s`, removing it from the problem. Drivers use this to replace a
    /// soft clause with an extended copy (relaxation rounds append
    /// blocking variables by retiring the old clause and registering
    /// `ω ∨ b` as a new soft).
    pub fn retire(&mut self, id: SoftId) {
        if self.states[id.0] != SoftState::Retired {
            self.states[id.0] = SoftState::Retired;
            let unit = self.selectors[id.0];
            self.add_clause([unit]);
        }
    }

    /// Solves under the active softs' assumptions plus
    /// `extra_assumptions` (bound-encoding gates, probe literals, …).
    ///
    /// In [`EngineMode::Rebuild`] a fresh solver is constructed and
    /// reloaded first; answers are identical, only the carried-over
    /// state differs.
    pub fn solve(&mut self, extra_assumptions: &[Lit]) -> SolveOutcome {
        // Budget-aware backoff: an already-interrupted budget (stop flag
        // raised, deadline passed) makes the whole call a no-op instead
        // of entering — and paying the setup of — a doomed search. In
        // rebuild mode this also skips the full solver reconstruction.
        if self.budget.interrupted() {
            return SolveOutcome::Unknown;
        }
        if self.mode == EngineMode::Rebuild {
            self.rebuild_solver();
        }
        let mut assumptions = std::mem::take(&mut self.assumption_buf);
        assumptions.clear();
        for (sel, state) in self.selectors.iter().zip(&self.states) {
            if *state == SoftState::Active {
                assumptions.push(!*sel);
            }
        }
        assumptions.extend_from_slice(extra_assumptions);
        let outcome = self.solver.solve_with_assumptions(&assumptions);
        self.assumption_buf = assumptions;
        outcome
    }

    /// Solves under *exactly* the given assumptions, ignoring soft
    /// activation state. Used for assumption-set core minimisation:
    /// re-solving with a candidate subset of a failed-assumption core
    /// checks whether the dropped literal was necessary.
    pub fn solve_exact(&mut self, assumptions: &[Lit]) -> SolveOutcome {
        if self.budget.interrupted() {
            return SolveOutcome::Unknown;
        }
        if self.mode == EngineMode::Rebuild {
            self.rebuild_solver();
        }
        self.solver.solve_with_assumptions(assumptions)
    }

    fn rebuild_solver(&mut self) {
        self.retired_stats.absorb(self.solver.stats());
        self.rebuilds += 1;
        let mut fresh = Solver::with_config(self.config.clone());
        fresh.ensure_vars(self.num_vars);
        fresh.set_budget(self.budget.clone());
        for (clause, shared) in &self.mirror {
            if *shared {
                fresh.add_clause_shared(clause.iter().copied());
            } else {
                fresh.add_clause(clause.iter().copied());
            }
        }
        if let Some(ctx) = &self.shared {
            // Fresh endpoint, cursors at zero: the rebuilt solver
            // re-imports the full exchange history it just lost.
            fresh.set_exchange(ctx.endpoint());
        }
        self.solver = fresh;
    }

    /// The satisfying assignment of the last successful solve.
    #[must_use]
    pub fn model(&self) -> Option<&Assignment> {
        self.solver.model()
    }

    /// After UNSAT: the subset of assumption literals used to derive
    /// the contradiction (soft assumptions and extras alike).
    #[must_use]
    pub fn failed_assumptions(&self) -> &[Lit] {
        self.solver.failed_assumptions()
    }

    /// After UNSAT: the soft clauses among the failed assumptions — the
    /// unsatisfiable core, in registration order. Failed extra
    /// assumptions (e.g. bound gates) are not included; inspect
    /// [`IncrementalSolver::failed_assumptions`] for those.
    #[must_use]
    pub fn failed_softs(&self) -> Vec<SoftId> {
        let mut ids: Vec<SoftId> = self
            .solver
            .failed_assumptions()
            .iter()
            .filter_map(|a| self.selector_index.get(&a.var().index_u32()).copied())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Whether the last UNSAT refuted the clauses *independently of the
    /// assumptions*. With every soft selector free this can only cite
    /// hard clauses (and any permanently added constraints), which is
    /// how drivers separate "infeasible" from "core found".
    #[must_use]
    pub fn formula_refuted(&self) -> bool {
        self.solver.unsat_core().is_some()
    }

    /// Returns `false` once the clauses have been refuted outright
    /// (every further solve is trivially UNSAT).
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.solver.is_ok()
    }

    /// Cumulative statistics: the live solver's counters plus
    /// everything absorbed from solvers discarded by rebuilds, with
    /// [`SolverStats::solver_rebuilds`] reporting the rebuild count.
    #[must_use]
    pub fn stats(&self) -> SolverStats {
        let mut stats = self.retired_stats;
        stats.absorb(self.solver.stats());
        stats.solver_rebuilds += self.rebuilds;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(engine_var: Var, positive: bool) -> Lit {
        Lit::new(engine_var, positive)
    }

    /// One engine per mode, driven identically.
    fn both_modes() -> [IncrementalSolver; 2] {
        [
            IncrementalSolver::new(),
            IncrementalSolver::with_mode(EngineMode::Rebuild),
        ]
    }

    #[test]
    fn soft_lifecycle_and_cores() {
        for mut e in both_modes() {
            let x = e.new_var();
            e.add_clause([lit(x, true)]);
            let s0 = e.add_soft([lit(x, false)]);
            let s1 = e.add_soft([lit(x, true)]);
            assert_eq!(e.solve(&[]), SolveOutcome::Unsat);
            assert!(!e.formula_refuted(), "assumption-level core only");
            assert_eq!(e.failed_softs(), vec![s0]);
            e.deactivate(s0);
            assert_eq!(e.solve(&[]), SolveOutcome::Sat);
            let m = e.model().unwrap();
            assert_eq!(m.value(x), Some(true));
            // Re-activating restores the contradiction.
            e.activate(s0);
            assert_eq!(e.solve(&[]), SolveOutcome::Unsat);
            e.deactivate(s0);
            // Hardening s1 is consistent; retiring s0 removes it.
            e.harden(s1);
            e.retire(s0);
            assert_eq!(e.solve(&[]), SolveOutcome::Sat);
            assert!(!e.is_active(s1) && e.is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "cannot harden a retired soft clause")]
    fn harden_after_retire_is_a_contract_violation() {
        // Retiring added the unit `s`; hardening would add `¬s` and
        // silently refute the formula — the engine must refuse.
        let mut e = IncrementalSolver::new();
        let x = e.new_var();
        let s = e.add_soft([lit(x, true)]);
        e.retire(s);
        e.harden(s);
    }

    #[test]
    fn formula_refutation_is_mode_independent() {
        for mut e in both_modes() {
            let x = e.new_var();
            e.add_clause([lit(x, true)]);
            e.add_clause([lit(x, false)]);
            let _s = e.add_soft([lit(x, true)]);
            assert_eq!(e.solve(&[]), SolveOutcome::Unsat);
            assert!(e.formula_refuted());
            assert!(!e.is_ok());
        }
    }

    #[test]
    fn extra_assumptions_gate_constraints() {
        for mut e in both_modes() {
            let x = e.new_var();
            let y = e.new_var();
            e.add_clause([lit(x, true), lit(y, true)]);
            // Gated constraint ¬x: active while assuming ¬t.
            let t = Lit::positive(e.new_var());
            e.add_clause([lit(x, false), t]);
            assert_eq!(e.solve(&[!t]), SolveOutcome::Sat);
            assert_eq!(e.model().unwrap().value(y), Some(true));
            // Add the conflicting gated constraint ¬y under the same gate.
            e.add_clause([lit(y, false), t]);
            assert_eq!(e.solve(&[!t]), SolveOutcome::Unsat);
            assert_eq!(e.failed_assumptions(), &[!t]);
            assert!(e.failed_softs().is_empty());
            // Retire the gate: both constraints vanish.
            e.add_clause([t]);
            assert_eq!(e.solve(&[]), SolveOutcome::Sat);
        }
    }

    #[test]
    fn rebuild_mode_counts_rebuilds_and_persistent_counts_reuse() {
        let mut reb = IncrementalSolver::with_mode(EngineMode::Rebuild);
        let mut per = IncrementalSolver::new();
        for e in [&mut reb, &mut per] {
            let x = e.new_var();
            let y = e.new_var();
            e.add_clause([lit(x, true), lit(y, true)]);
            let _ = e.add_soft([lit(x, false)]);
            for _ in 0..3 {
                assert_eq!(e.solve(&[]), SolveOutcome::Sat);
            }
        }
        let rs = reb.stats();
        assert_eq!(rs.solver_rebuilds, 3);
        assert_eq!(rs.incremental_solves, 0, "fresh solver every call");
        let ps = per.stats();
        assert_eq!(ps.solver_rebuilds, 0);
        assert_eq!(ps.incremental_solves, 2, "calls beyond the first");
    }

    #[test]
    fn budget_survives_rebuilds() {
        use std::time::Duration;
        let mut e = IncrementalSolver::with_mode(EngineMode::Rebuild);
        let x = e.new_var();
        e.add_clause([lit(x, true)]);
        e.set_budget(Budget::new().with_timeout(Duration::from_nanos(1)));
        assert_eq!(e.solve(&[]), SolveOutcome::Unknown);
        assert_eq!(e.solve(&[]), SolveOutcome::Unknown);
    }
}
