//! Property tests: the CDCL solver agrees with the reference DPLL on
//! random small formulas, models satisfy every clause, and extracted
//! cores are themselves unsatisfiable.

use coremax_cnf::{CnfFormula, Lit};
use coremax_sat::{dpll_is_satisfiable, RestartMode, SolveOutcome, Solver, SolverConfig};
use proptest::prelude::*;

/// A configuration that stresses every new hot-path mechanism at once:
/// a tiny learned-clause cap forces database reductions, `gc_frac: 0.0`
/// forces an arena collection after every reduction, and glucose-mode
/// restarts exercise the adaptive schedule.
fn stress_config() -> SolverConfig {
    SolverConfig {
        learntsize_factor: 0.01,
        learntsize_inc: 1.01,
        min_learnts: 3.0,
        gc_frac: 0.0,
        restart_mode: RestartMode::Glucose,
        glucose_lbd_window: 5,
        ..SolverConfig::default()
    }
}

/// Strategy: random CNF over `max_vars` variables with clauses of length
/// 1..=4. Produces a mix of SAT and UNSAT formulas.
fn arb_cnf(max_vars: i32, max_clauses: usize) -> impl Strategy<Value = CnfFormula> {
    let lit = (1..=max_vars).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=4);
    prop::collection::vec(clause, 1..=max_clauses).prop_map(|clauses| {
        let mut f = CnfFormula::new();
        for c in clauses {
            f.add_clause(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()));
        }
        f
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn cdcl_agrees_with_dpll(f in arb_cnf(8, 30)) {
        let expected = dpll_is_satisfiable(&f);
        let mut s = Solver::new();
        s.add_formula(&f);
        let outcome = s.solve();
        let got = match outcome {
            SolveOutcome::Sat => true,
            SolveOutcome::Unsat => false,
            SolveOutcome::Unknown => unreachable!("no budget set"),
        };
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn models_satisfy_every_clause(f in arb_cnf(10, 40)) {
        let mut s = Solver::new();
        s.add_formula(&f);
        if s.solve() == SolveOutcome::Sat {
            let m = s.model().expect("model after SAT");
            for c in f.iter() {
                prop_assert!(c.is_satisfied_by(m), "violated clause {c}");
            }
        }
    }

    #[test]
    fn cores_are_unsatisfiable(f in arb_cnf(7, 25)) {
        let mut s = Solver::new();
        let ids = s.add_formula(&f);
        if s.solve() == SolveOutcome::Unsat {
            let core = s.unsat_core().expect("core after UNSAT").to_vec();
            prop_assert!(!core.is_empty());
            // Every id must be one we added.
            for id in &core {
                prop_assert!(ids.contains(id));
            }
            // The core alone must be UNSAT (checked by the reference DPLL).
            let mut sub = CnfFormula::with_vars(f.num_vars());
            for id in &core {
                sub.add_clause(f.clause(id.index()).lits().iter().copied());
            }
            prop_assert!(!dpll_is_satisfiable(&sub), "core was satisfiable");
        }
    }

    #[test]
    fn solving_under_assumptions_consistent(f in arb_cnf(6, 20), polarity in any::<bool>()) {
        // φ ∧ a is SAT iff DPLL says φ with the unit a added is SAT.
        let a = Lit::new(coremax_cnf::Var::new(0), polarity);
        let mut s = Solver::new();
        s.add_formula(&f);
        s.ensure_vars(1);
        let outcome = s.solve_with_assumptions(&[a]);
        let mut g = f.clone();
        g.ensure_var(coremax_cnf::Var::new(0));
        g.add_clause([a]);
        let expected = dpll_is_satisfiable(&g);
        match outcome {
            SolveOutcome::Sat => prop_assert!(expected),
            SolveOutcome::Unsat => prop_assert!(!expected),
            SolveOutcome::Unknown => unreachable!("no budget set"),
        }
    }

    #[test]
    fn stressed_cdcl_agrees_with_dpll(f in arb_cnf(8, 35)) {
        // The optimized engine (binary watches, LBD reduction, forced
        // arena GC, glucose restarts) must agree with the reference DPLL
        // and keep its models valid.
        let expected = dpll_is_satisfiable(&f);
        let mut s = Solver::with_config(stress_config());
        s.add_formula(&f);
        match s.solve() {
            SolveOutcome::Sat => {
                prop_assert!(expected);
                let m = s.model().expect("model after SAT");
                for c in f.iter() {
                    prop_assert!(c.is_satisfied_by(m), "violated clause {c}");
                }
            }
            SolveOutcome::Unsat => prop_assert!(!expected),
            SolveOutcome::Unknown => unreachable!("no budget set"),
        }
    }

    #[test]
    fn cores_survive_arena_gc(f in arb_cnf(7, 30)) {
        // Cores extracted after (possibly many) arena compactions must
        // still be genuinely unsatisfiable subsets of the input.
        let mut s = Solver::with_config(stress_config());
        let ids = s.add_formula(&f);
        if s.solve() == SolveOutcome::Unsat {
            let core = s.unsat_core().expect("core after UNSAT").to_vec();
            prop_assert!(!core.is_empty());
            for id in &core {
                prop_assert!(ids.contains(id));
            }
            let mut sub = CnfFormula::with_vars(f.num_vars());
            for id in &core {
                sub.add_clause(f.clause(id.index()).lits().iter().copied());
            }
            prop_assert!(!dpll_is_satisfiable(&sub), "core was satisfiable after GC");
        }
    }

    #[test]
    fn incremental_addition_matches_batch(f in arb_cnf(6, 16)) {
        // Adding clauses one by one with intermediate solves must agree
        // with solving the whole formula at once.
        let mut incremental = Solver::new();
        let mut all_sat = true;
        for c in f.iter() {
            incremental.add_clause(c.lits().iter().copied());
            let o = incremental.solve();
            all_sat = o == SolveOutcome::Sat;
        }
        prop_assert_eq!(all_sat, dpll_is_satisfiable(&f));
    }
}
