//! Robustness of the CDCL solver across configuration extremes: every
//! configuration must stay sound (agree with the reference DPLL) even
//! when heuristics are handicapped.

use coremax_cnf::{CnfFormula, Lit, Var};
use coremax_sat::{dpll_is_satisfiable, RestartMode, SolveOutcome, Solver, SolverConfig};

fn random_cnf(seed: &mut u64, num_vars: usize, num_clauses: usize) -> CnfFormula {
    let mut next = move || {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    };
    let mut f = CnfFormula::with_vars(num_vars);
    for _ in 0..num_clauses {
        let len = 1 + (next() % 3) as usize;
        let lits: Vec<Lit> = (0..len)
            .map(|_| {
                let v = Var::new((next() % num_vars as u64) as u32);
                Lit::new(v, next() & 1 == 0)
            })
            .collect();
        f.add_clause(lits);
    }
    f
}

fn configs() -> Vec<(&'static str, SolverConfig)> {
    vec![
        ("default", SolverConfig::default()),
        (
            "restart-every-conflict",
            SolverConfig {
                restart_base: 1,
                ..SolverConfig::default()
            },
        ),
        (
            "no-decay",
            SolverConfig {
                var_decay: 1.0,
                clause_decay: 1.0,
                ..SolverConfig::default()
            },
        ),
        (
            "aggressive-decay",
            SolverConfig {
                var_decay: 0.5,
                ..SolverConfig::default()
            },
        ),
        (
            "tiny-learnt-db",
            SolverConfig {
                learntsize_factor: 0.01,
                learntsize_inc: 1.01,
                min_learnts: 3.0,
                ..SolverConfig::default()
            },
        ),
        (
            "positive-phase",
            SolverConfig {
                default_phase: true,
                ..SolverConfig::default()
            },
        ),
        (
            "glucose-restarts",
            SolverConfig {
                restart_mode: RestartMode::Glucose,
                glucose_lbd_window: 8,
                ..SolverConfig::default()
            },
        ),
        (
            "gc-every-reduce",
            SolverConfig {
                learntsize_factor: 0.01,
                learntsize_inc: 1.01,
                min_learnts: 3.0,
                gc_frac: 0.0,
                ..SolverConfig::default()
            },
        ),
    ]
}

#[test]
fn all_configs_agree_with_dpll() {
    let mut seed = 0x853C49E6748FEA9Bu64;
    for round in 0..30 {
        let f = random_cnf(&mut seed, 7, 10 + round % 18);
        let expected = dpll_is_satisfiable(&f);
        for (name, config) in configs() {
            let mut solver = Solver::with_config(config);
            solver.add_formula(&f);
            let got = match solver.solve() {
                SolveOutcome::Sat => true,
                SolveOutcome::Unsat => false,
                SolveOutcome::Unknown => unreachable!("no budget"),
            };
            assert_eq!(got, expected, "config {name} wrong on round {round}");
        }
    }
}

#[test]
fn all_configs_extract_sound_cores() {
    let mut seed = 0xDA3E39CB94B95BDBu64;
    for _ in 0..20 {
        let f = random_cnf(&mut seed, 6, 22);
        for (name, config) in configs() {
            let mut solver = Solver::with_config(config);
            solver.add_formula(&f);
            if solver.solve() == SolveOutcome::Unsat {
                let core = solver.unsat_core().expect("core").to_vec();
                let mut sub = CnfFormula::with_vars(f.num_vars());
                for id in &core {
                    sub.add_clause(f.clause(id.index()).lits().iter().copied());
                }
                assert!(
                    !dpll_is_satisfiable(&sub),
                    "config {name} produced a satisfiable core"
                );
            }
        }
    }
}

#[test]
fn tiny_learnt_db_forces_deletions() {
    // Drive the reduce-DB path hard and re-verify soundness on a
    // pigeonhole instance (many conflicts).
    let mut f = CnfFormula::new();
    let holes = 5;
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| Var::new((p * holes + h) as u32);
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| Lit::positive(var(p, h))));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                f.add_clause([Lit::negative(var(p1, h)), Lit::negative(var(p2, h))]);
            }
        }
    }
    let mut solver = Solver::with_config(SolverConfig {
        learntsize_factor: 0.01,
        learntsize_inc: 1.001,
        min_learnts: 5.0,
        ..SolverConfig::default()
    });
    solver.add_formula(&f);
    assert_eq!(solver.solve(), SolveOutcome::Unsat);
    assert!(
        solver.stats().deleted_clauses > 0,
        "expected database reductions: {}",
        solver.stats()
    );
    // Core must still be sound after deletions.
    let core = solver.unsat_core().expect("core").to_vec();
    let mut sub = CnfFormula::with_vars(f.num_vars());
    for id in &core {
        sub.add_clause(f.clause(id.index()).lits().iter().copied());
    }
    let mut check = Solver::new();
    check.add_formula(&sub);
    assert_eq!(check.solve(), SolveOutcome::Unsat);
}

#[test]
fn determinism_across_runs() {
    let mut seed = 0x9E3779B97F4A7C15u64;
    let f = random_cnf(&mut seed, 8, 30);
    let run = || {
        let mut solver = Solver::new();
        solver.add_formula(&f);
        let outcome = solver.solve();
        (outcome, solver.stats().conflicts, solver.stats().decisions)
    };
    let first = run();
    for _ in 0..3 {
        assert_eq!(run(), first, "solver must be deterministic");
    }
}
