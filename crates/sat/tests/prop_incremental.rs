//! Property tests for the persistent incremental engine: interleaved
//! add-clause / solve-under-assumptions rounds on one long-lived solver
//! must agree with a fresh solver built from scratch for every round —
//! learned clauses, saved phases, and arena compactions may change the
//! *search*, never the *answer*.

use coremax_cnf::{CnfFormula, Lit, Var};
use coremax_sat::{
    dpll_is_satisfiable, EngineMode, IncrementalSolver, RestartMode, SolveOutcome, Solver,
    SolverConfig,
};
use proptest::prelude::*;

/// Case count, overridable via `PROPTEST_CASES` (the CI incremental
/// job raises it to 256).
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(128)
}

const MAX_VARS: u32 = 7;

/// Forces learned-clause reductions and an arena collection after every
/// reduction, so persistence is exercised across GC compactions too.
fn stress_config() -> SolverConfig {
    SolverConfig {
        learntsize_factor: 0.01,
        learntsize_inc: 1.01,
        min_learnts: 3.0,
        gc_frac: 0.0,
        restart_mode: RestartMode::Glucose,
        glucose_lbd_window: 5,
        ..SolverConfig::default()
    }
}

/// One round: a batch of clauses to add, then a solve under assumptions.
/// Assumptions are (variable index, polarity) pairs; duplicates are
/// deduplicated by variable in the test body so the set is consistent.
type Round = (Vec<Vec<i32>>, Vec<(u32, bool)>);

fn arb_rounds() -> impl Strategy<Value = Vec<Round>> {
    let lit = (1..=MAX_VARS as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=4);
    let batch = prop::collection::vec(clause, 0..=8);
    let assumption = (0..MAX_VARS, any::<bool>());
    let assumptions = prop::collection::vec(assumption, 0..=3);
    prop::collection::vec((batch, assumptions), 1..=5)
}

fn dedup_assumptions(raw: &[(u32, bool)]) -> Vec<Lit> {
    let mut seen = [false; MAX_VARS as usize];
    let mut out = Vec::new();
    for &(v, pol) in raw {
        if !seen[v as usize] {
            seen[v as usize] = true;
            out.push(Lit::new(Var::new(v), pol));
        }
    }
    out
}

/// Reference answer for "formula so far ∧ assumptions" via the DPLL
/// oracle: each assumption becomes a unit clause.
fn oracle(clauses: &[Vec<i32>], assumptions: &[Lit]) -> bool {
    let mut f = CnfFormula::with_vars(MAX_VARS as usize);
    for c in clauses {
        f.add_clause(c.iter().map(|&d| Lit::from_dimacs(d).unwrap()));
    }
    for &a in assumptions {
        f.add_clause([a]);
    }
    dpll_is_satisfiable(&f)
}

fn check_rounds(rounds: Vec<Round>, config: SolverConfig) {
    let mut persistent = Solver::with_config(config.clone());
    persistent.ensure_vars(MAX_VARS as usize);
    let mut so_far: Vec<Vec<i32>> = Vec::new();

    for (batch, raw_assumptions) in rounds {
        for c in &batch {
            persistent.add_clause(c.iter().map(|&d| Lit::from_dimacs(d).unwrap()));
        }
        so_far.extend(batch);
        let assumptions = dedup_assumptions(&raw_assumptions);

        let persistent_outcome = persistent.solve_with_assumptions(&assumptions);

        // A fresh solver over the same clauses and assumptions.
        let mut fresh = Solver::with_config(config.clone());
        fresh.ensure_vars(MAX_VARS as usize);
        for c in &so_far {
            fresh.add_clause(c.iter().map(|&d| Lit::from_dimacs(d).unwrap()));
        }
        let fresh_outcome = fresh.solve_with_assumptions(&assumptions);

        prop_assert_eq!(
            persistent_outcome,
            fresh_outcome,
            "persistent and fresh disagree"
        );
        prop_assert_eq!(
            persistent_outcome == SolveOutcome::Sat,
            oracle(&so_far, &assumptions)
        );

        match persistent_outcome {
            SolveOutcome::Sat => {
                let m = persistent.model().expect("model after SAT");
                let mut f = CnfFormula::with_vars(MAX_VARS as usize);
                for c in &so_far {
                    f.add_clause(c.iter().map(|&d| Lit::from_dimacs(d).unwrap()));
                }
                for c in f.iter() {
                    prop_assert!(c.is_satisfied_by(m), "violated clause {}", c);
                }
                for &a in &assumptions {
                    prop_assert!(m.satisfies(a), "violated assumption {}", a);
                }
            }
            SolveOutcome::Unsat => {
                // Failed assumptions are a *sound* core (a subset of the
                // given assumptions whose conjunction with the formula
                // is unsatisfiable) — not necessarily the minimal one a
                // fresh solver would report.
                if persistent.unsat_core().is_none() {
                    let failed = persistent.failed_assumptions().to_vec();
                    for a in &failed {
                        prop_assert!(assumptions.contains(a), "{} was never assumed", a);
                    }
                    prop_assert!(
                        !oracle(&so_far, &failed),
                        "failed-assumption core was satisfiable"
                    );
                }
            }
            SolveOutcome::Unknown => unreachable!("no budget set"),
        }

        if !persistent.is_ok() {
            // The formula itself is refuted: every later round is UNSAT
            // regardless of assumptions, which the fresh comparison
            // would confirm round by round. Stop early.
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn persistent_engine_agrees_with_fresh_per_round(rounds in arb_rounds()) {
        check_rounds(rounds, SolverConfig::default());
    }

    #[test]
    fn persistent_engine_agrees_across_gc_compaction(rounds in arb_rounds()) {
        check_rounds(rounds, stress_config());
    }

    #[test]
    fn engine_modes_agree_on_soft_lifecycles(rounds in arb_rounds()) {
        // Same rounds driven through the selector-managed soft-clause
        // engine: the persistent and rebuild-per-call modes must report
        // identical statuses, and on UNSAT both cores must be sound.
        // Each round's batch becomes soft clauses; each round solves,
        // then deactivates the failed softs (a miniature core-guided
        // driver).
        let mut engines = [
            IncrementalSolver::with_mode_and_config(EngineMode::Persistent, stress_config()),
            IncrementalSolver::with_mode_and_config(EngineMode::Rebuild, stress_config()),
        ];
        for e in &mut engines {
            e.ensure_vars(MAX_VARS as usize);
        }
        let mut all_clauses: Vec<Vec<i32>> = Vec::new();
        let mut handle_clause: Vec<Vec<i32>> = Vec::new();

        for (batch, raw_assumptions) in rounds {
            let assumptions = dedup_assumptions(&raw_assumptions);
            for c in &batch {
                all_clauses.push(c.clone());
                handle_clause.push(c.clone());
                for e in &mut engines {
                    let id = e.add_soft(c.iter().map(|&d| Lit::from_dimacs(d).unwrap()));
                    prop_assert_eq!(id.0, handle_clause.len() - 1);
                }
            }
            let [ref mut p, ref mut r] = engines;
            let po = p.solve(&assumptions);
            let ro = r.solve(&assumptions);
            prop_assert_eq!(po, ro, "engine modes disagree");
            if po == SolveOutcome::Unsat && !p.formula_refuted() {
                for e in &mut engines {
                    // The failed softs plus the formula-level failed
                    // assumptions must form a genuinely UNSAT subset.
                    let failed = e.failed_softs();
                    let failed_clauses: Vec<Vec<i32>> = failed
                        .iter()
                        .map(|&id| handle_clause[id.0].clone())
                        .collect();
                    let extra: Vec<Lit> = e
                        .failed_assumptions()
                        .iter()
                        .copied()
                        .filter(|a| assumptions.contains(a))
                        .collect();
                    prop_assert!(
                        !oracle(&failed_clauses, &extra),
                        "soft core was satisfiable"
                    );
                    for &id in &failed {
                        e.deactivate(id);
                    }
                }
            }
        }
    }
}
