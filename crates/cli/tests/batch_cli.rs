//! Batch-mode integration test: `--generate` a suite, solve the
//! directory with `--jobs 4`, and assert the per-instance `r` summary
//! lines match sequential single-file runs of the same binary.

use std::collections::HashMap;
use std::process::Command;

fn binary() -> &'static str {
    env!("CARGO_BIN_EXE_coremax-solve")
}

/// Parses `o`/`s` lines of a single-instance run into (status, cost).
fn parse_single(stdout: &str) -> (String, Option<u64>) {
    let mut cost = None;
    let mut status = String::new();
    for line in stdout.lines() {
        if let Some(c) = line.strip_prefix("o ") {
            cost = Some(c.trim().parse().expect("numeric o line"));
        }
        if let Some(s) = line.strip_prefix("s ") {
            status = match s.trim() {
                "OPTIMUM FOUND" => "OPTIMAL".to_string(),
                "UNSATISFIABLE" => "INFEASIBLE".to_string(),
                other => other.to_string(),
            };
        }
    }
    (status, cost)
}

#[test]
fn batch_jobs4_matches_sequential_single_file_runs() {
    let dir = std::env::temp_dir().join("coremax-batch-cli-test");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.display().to_string();

    // Generate a small suite (pigeonhole: a handful of quick UNSAT
    // instances with known structure).
    let generate = Command::new(binary())
        .args(["--generate", &dir_s, "--family", "php"])
        .output()
        .expect("run generator");
    assert!(generate.status.success(), "generate failed: {generate:?}");

    // Batch-solve the directory with 4 workers.
    let batch = Command::new(binary())
        .args(["--jobs", "4", &dir_s])
        .output()
        .expect("run batch");
    assert!(batch.status.success(), "batch failed: {batch:?}");
    let stdout = String::from_utf8(batch.stdout).expect("utf8 stdout");

    // Collect the per-instance summaries: `r FILE STATUS COST`.
    let mut batch_results: HashMap<String, (String, Option<u64>)> = HashMap::new();
    for line in stdout.lines().filter(|l| l.starts_with("r ")) {
        let mut parts = line.split_whitespace();
        let _r = parts.next();
        let file = parts.next().expect("file column").to_string();
        let status = parts.next().expect("status column").to_string();
        let cost = match parts.next().expect("cost column") {
            "-" => None,
            c => Some(c.parse().expect("numeric cost")),
        };
        batch_results.insert(file, (status, cost));
    }
    assert!(
        batch_results.len() >= 2,
        "expected several instances, got: {stdout}"
    );
    assert!(stdout.contains("c batch:"), "summary line present");

    // Every file solved sequentially (fresh process, no --jobs) must
    // report the same status and cost.
    for (file, (batch_status, batch_cost)) in &batch_results {
        let path = dir.join(file).display().to_string();
        let single = Command::new(binary())
            .args(["--verify", &path])
            .output()
            .expect("run single");
        let (status, cost) = parse_single(&String::from_utf8(single.stdout).expect("utf8"));
        assert_eq!(&status, batch_status, "{file}: status diverged");
        assert_eq!(&cost, batch_cost, "{file}: cost diverged");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_file_hard_abort_exits_30() {
    // A zero-millisecond budget is exhausted before the first SAT
    // call: no incumbent exists, only the (trivial) lower bound — the
    // hard-abort exit code, not the incumbent-carrying 10.
    let dir = std::env::temp_dir().join("coremax-abort-cli-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("example2.cnf");
    std::fs::write(
        &path,
        "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n",
    )
    .unwrap();
    let output = Command::new(binary())
        .args(["--timeout-ms", "0"])
        .arg(path.display().to_string())
        .output()
        .expect("run single with exhausted budget");
    assert_eq!(
        output.status.code(),
        Some(30),
        "hard abort must exit 30: {output:?}"
    );
    let (status, cost) = parse_single(&String::from_utf8(output.stdout).expect("utf8"));
    assert_eq!(status, "UNKNOWN");
    assert_eq!(cost, None, "no o line without an incumbent");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_hard_abort_exits_30_not_10() {
    // Batch counterpart of the single-file distinction: an aborted
    // instance with no incumbent anywhere in the directory must exit
    // 30 (previously any abort exited 10, claiming a certified
    // incumbent that does not exist).
    let dir = std::env::temp_dir().join("coremax-batch-abort-cli-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("a.cnf"),
        "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n",
    )
    .unwrap();
    std::fs::write(dir.join("b.cnf"), "p cnf 1 2\n1 0\n-1 0\n").unwrap();
    let output = Command::new(binary())
        .args(["--timeout-ms", "0", "--jobs", "2"])
        .arg(dir.display().to_string())
        .output()
        .expect("run batch with exhausted budget");
    assert_eq!(
        output.status.code(),
        Some(30),
        "batch hard abort must exit 30: {output:?}"
    );
    let stdout = String::from_utf8(output.stdout).expect("utf8 stdout");
    for line in stdout.lines().filter(|l| l.starts_with("r ")) {
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some("r"));
        let _file = parts.next().expect("file column");
        assert_eq!(parts.next(), Some("UNKNOWN"), "{line}");
        assert_eq!(parts.next(), Some("-"), "no incumbent column: {line}");
        assert!(
            parts.next().is_some_and(|p| p.starts_with("lb=")),
            "aborted rows carry their certified lower bound: {line}"
        );
    }
    assert!(
        stdout.contains("aborted (2 without incumbent)"),
        "summary counts hard aborts: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn portfolio_flag_solves_single_instance() {
    let dir = std::env::temp_dir().join("coremax-portfolio-cli-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("example2.cnf");
    std::fs::write(
        &path,
        "p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n",
    )
    .unwrap();
    let output = Command::new(binary())
        .args(["--portfolio", "--jobs", "2", "--verify"])
        .arg(path.display().to_string())
        .output()
        .expect("run portfolio");
    assert!(output.status.success(), "portfolio run failed: {output:?}");
    let (status, cost) = parse_single(&String::from_utf8(output.stdout).expect("utf8"));
    assert_eq!(status, "OPTIMAL");
    assert_eq!(cost, Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
