//! Shared plumbing for the `coremax` command-line MaxSAT solver.
//!
//! The binary lives in `src/main.rs`; this library holds the argument
//! parsing and solver dispatch so the logic is unit-testable and
//! reusable from the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use coremax::{
    BinarySearchSat, BranchBound, LinearSearchSat, MaxSatSolution, MaxSatSolver, MaxSatStatus,
    Msu1, Msu2, Msu3, Msu4, Msu4Incremental, Oll, PboBaseline, Preprocessed, Stratified,
    WeightedByReplication, Wmsu1,
};
use coremax_cnf::{dimacs, WcnfFormula, Weight};
use coremax_instances::{debug_suite, full_suite, weighted_suite, InstanceStats, SuiteConfig};
use coremax_par::{solve_batch, BatchOptions, Portfolio};
use coremax_sat::{Budget, SharingConfig};

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Solver name (see [`make_solver`]).
    pub algorithm: String,
    /// Optional wall-clock limit in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Re-check the solution before reporting.
    pub verify: bool,
    /// Run the `coremax_simp` preprocessing pipeline before solving
    /// (default on; `--no-preprocess` disables it).
    pub preprocess: bool,
    /// Print preprocessing statistics.
    pub simp_stats: bool,
    /// Print solver statistics.
    pub stats: bool,
    /// Print the model (`v` line).
    pub print_model: bool,
    /// Print live anytime progress (`o` lines as incumbents improve,
    /// throttled `c bounds` lines as the interval tightens).
    pub progress: bool,
    /// Write a JSONL event trace of the whole solve to this file.
    pub trace: Option<String>,
    /// Write a JSON snapshot of the full statistics tree (MaxSAT,
    /// SAT-engine, preprocessing counters and per-phase times) to this
    /// file after solving.
    pub stats_json: Option<String>,
    /// Worker threads for batch-directory input and `--portfolio`
    /// racing (1 = sequential).
    pub jobs: usize,
    /// Race the full portfolio (all algorithms × preprocessing) instead
    /// of a single algorithm; the winner is reported deterministically.
    pub portfolio: bool,
    /// Enable cooperative clause sharing between portfolio members
    /// (requires `--portfolio`; answers stay exact, wall-clock winner
    /// timing stops being bit-reproducible).
    pub share: bool,
    /// Export LBD gate for `--share` (learned clauses above this LBD
    /// stay local); `None` uses the [`SharingConfig`] default.
    pub share_lbd: Option<u32>,
    /// Input path (`-` = stdin; a directory selects batch mode).
    pub input: String,
    /// When set, generate the benchmark suite into this directory
    /// instead of solving (`input` is unused).
    pub generate_dir: Option<String>,
    /// Restrict `--generate` to one family name.
    pub family: Option<String>,
    /// Suite scale for `--generate`.
    pub scale: usize,
    /// Suite seed for `--generate`.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            algorithm: "msu4-v2".into(),
            timeout_ms: None,
            verify: false,
            preprocess: true,
            simp_stats: false,
            stats: false,
            progress: false,
            trace: None,
            stats_json: None,
            print_model: false,
            jobs: 1,
            portfolio: false,
            share: false,
            share_lbd: None,
            input: "-".into(),
            generate_dir: None,
            family: None,
            scale: 1,
            seed: 42,
        }
    }
}

/// Parses CLI arguments (without the program name).
///
/// # Errors
///
/// Returns a human-readable message on unknown flags, missing values or
/// missing input.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
    let mut options = Options::default();
    let mut input: Option<String> = None;
    let mut algorithm_set = false;
    let mut no_preprocess_set = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-a" | "--algorithm" => {
                options.algorithm = iter
                    .next()
                    .ok_or_else(|| "missing value for --algorithm".to_string())?;
                algorithm_set = true;
            }
            "-t" | "--timeout-ms" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "missing value for --timeout-ms".to_string())?;
                options.timeout_ms = Some(v.parse().map_err(|_| format!("invalid timeout `{v}`"))?);
            }
            "--generate" => {
                options.generate_dir = Some(
                    iter.next()
                        .ok_or_else(|| "missing directory for --generate".to_string())?,
                );
            }
            "--family" => {
                options.family = Some(
                    iter.next()
                        .ok_or_else(|| "missing value for --family".to_string())?,
                );
            }
            "--scale" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "missing value for --scale".to_string())?;
                options.scale = v.parse().map_err(|_| format!("invalid scale `{v}`"))?;
            }
            "--seed" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "missing value for --seed".to_string())?;
                options.seed = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
            }
            "-j" | "--jobs" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "missing value for --jobs".to_string())?;
                options.jobs = v.parse().map_err(|_| format!("invalid jobs `{v}`"))?;
                if options.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--portfolio" => options.portfolio = true,
            "--share" => options.share = true,
            "--share-lbd" => {
                let v = iter
                    .next()
                    .ok_or_else(|| "missing value for --share-lbd".to_string())?;
                let lbd: u32 = v.parse().map_err(|_| format!("invalid share LBD `{v}`"))?;
                if lbd == 0 {
                    return Err("--share-lbd must be at least 1".into());
                }
                options.share_lbd = Some(lbd);
                options.share = true; // the gate only means something shared
            }
            "--verify" => options.verify = true,
            "--preprocess" => options.preprocess = true,
            "--no-preprocess" => {
                options.preprocess = false;
                no_preprocess_set = true;
            }
            "--simp-stats" => options.simp_stats = true,
            "--stats" => options.stats = true,
            "--progress" => options.progress = true,
            "--trace" => {
                options.trace = Some(
                    iter.next()
                        .ok_or_else(|| "missing file for --trace".to_string())?,
                );
            }
            "--stats-json" => {
                options.stats_json = Some(
                    iter.next()
                        .ok_or_else(|| "missing file for --stats-json".to_string())?,
                );
            }
            "-m" | "--model" => options.print_model = true,
            "-h" | "--help" => return Err(usage()),
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown flag `{other}`\n{}", usage()));
            }
            other => {
                if input.is_some() {
                    return Err("multiple input files given".into());
                }
                input = Some(other.to_string());
            }
        }
    }
    // The portfolio races its own fixed line-up (every algorithm, bare
    // and preprocessed); silently ignoring an explicit -a or
    // --no-preprocess would mislead, so the combination is an error.
    if options.portfolio && (algorithm_set || no_preprocess_set) {
        return Err("--portfolio races all algorithms (bare and preprocessed); \
             it cannot be combined with -a/--algorithm or --no-preprocess"
            .into());
    }
    // Clause sharing is a property of the portfolio race; on a single
    // solver there is nobody to share with.
    if options.share && !options.portfolio {
        return Err("--share/--share-lbd require --portfolio".into());
    }
    if options.generate_dir.is_some() {
        options.input = input.unwrap_or_else(|| "-".into());
    } else {
        options.input = input.ok_or_else(usage)?;
    }
    Ok(options)
}

/// The usage string shown by `--help` and on argument errors.
#[must_use]
pub fn usage() -> String {
    "usage: coremax-solve [-a ALGO] [-t MS] [--verify] [--stats] [-m]\n\
     \x20                    [--no-preprocess] [--simp-stats]\n\
     \x20                    [--progress] [--trace FILE] [--stats-json FILE]\n\
     \x20                    [-j N] [--portfolio] [--share] [--share-lbd N] FILE|DIR\n\
     \x20      coremax-solve --generate DIR [--family NAME] [--scale N] [--seed S]\n\
     \n\
     ALGO: msu4-v2 (default), msu4-v1, msu4-inc, msu1, msu2, msu3, pbo,\n\
     \x20      maxsatz-bb, linear-sat, binary-sat,\n\
     \x20      oll, wmsu1, strat-msu3 (alias: stratified), strat-msu4,\n\
     \x20      strat-oll, strat-wmsu1, replication\n\
     \x20      Weighted input is solved natively: unweighted-only\n\
     \x20      algorithms are stratified automatically (never replicated).\n\
     FILE: DIMACS .cnf (treated as unweighted MaxSAT) or .wcnf (classic\n\
     \x20     `p wcnf` or the post-2022 `h`-prefixed format);\n\
     \x20     `-` reads stdin (format sniffed)\n\
     DIR:  batch mode — every .cnf/.wcnf file in the directory is solved\n\
     \x20     across -j N workers; per-instance `r` summary lines match\n\
     \x20     sequential runs of the same files exactly\n\
     -j/--jobs N      worker threads (batch instances, portfolio race)\n\
     --portfolio      race every algorithm (bare and preprocessed) and\n\
     \x20                report the deterministic fixed-priority winner\n\
     --share          let portfolio members exchange hard-implied learned\n\
     \x20                clauses (exact answers; winner timing no longer\n\
     \x20                bit-reproducible). Requires --portfolio\n\
     --share-lbd N    export only learned clauses with LBD <= N\n\
     \x20                (default 4; implies --share)\n\
     --no-preprocess skips the simplifier (BVE/subsumption/probing);\n\
     --simp-stats prints its reduction counters\n\
     --progress       live anytime output: `o <cost>` on every improved\n\
     \x20                incumbent, throttled `c bounds lb=.. ub=..` lines\n\
     --trace FILE     write every solve event as one JSON object per\n\
     \x20                line (JSONL) with microsecond timestamps\n\
     --stats-json FILE  write the full statistics tree (driver, SAT\n\
     \x20                engine, preprocessing, per-phase times) as JSON\n\
     --generate writes the benchmark suite as .wcnf files into DIR\n\
     (families: bmc equiv atpg php xor rand3 debug weighted; `debug29`\n\
     for the Table-2 suite)"
        .to_string()
}

/// Instantiates a solver by name.
///
/// # Errors
///
/// Returns an error message for unknown names.
pub fn make_solver(name: &str) -> Result<Box<dyn MaxSatSolver>, String> {
    make_solver_send(name).map(|s| s as Box<dyn MaxSatSolver>)
}

/// Instantiates a solver by name as a [`Send`] trait object (what the
/// batch driver moves across worker threads). Every algorithm in the
/// suite is `Send`; [`make_solver`] delegates here.
///
/// # Errors
///
/// Returns an error message for unknown names.
pub fn make_solver_send(name: &str) -> Result<Box<dyn MaxSatSolver + Send>, String> {
    Ok(match name {
        "msu4" | "msu4-v2" => Box::new(Msu4::v2()),
        "msu4-v1" => Box::new(Msu4::v1()),
        "msu4-inc" => Box::new(Msu4Incremental::new()),
        "msu1" => Box::new(Msu1::new()),
        "msu2" => Box::new(Msu2::new()),
        "msu3" => Box::new(Msu3::new()),
        "oll" => Box::new(Oll::new()),
        "wmsu1" => Box::new(Wmsu1::new()),
        "stratified" | "strat-msu3" => Box::new(Stratified::new(Msu3::new())),
        "strat-msu4" => Box::new(Stratified::new(Msu4::v2())),
        "strat-oll" => Box::new(Stratified::new(Oll::new())),
        "strat-wmsu1" => Box::new(Stratified::new(Wmsu1::new())),
        "replication" => Box::new(WeightedByReplication::new(Msu3::new())),
        "pbo" => Box::new(PboBaseline::new()),
        "maxsatz" | "maxsatz-bb" | "bb" => Box::new(BranchBound::new()),
        "linear-sat" | "linear" => Box::new(LinearSearchSat::new()),
        "binary-sat" | "binary" => Box::new(BinarySearchSat::new()),
        other => return Err(format!("unknown algorithm `{other}`")),
    })
}

/// Parses problem text as WCNF or CNF (sniffing the format) into a
/// MaxSAT instance.
///
/// A `p cnf` header selects CNF (treated as unweighted MaxSAT); a
/// `p wcnf` header selects classic WCNF; anything else — including the
/// headerless post-2022 MaxSAT-Evaluation format with `h`-prefixed hard
/// clauses — is handed to the WCNF parser, which auto-detects the
/// dialect.
///
/// # Errors
///
/// Propagates DIMACS parse failures as display strings.
pub fn parse_problem(text: &str) -> Result<WcnfFormula, String> {
    let header = text
        .lines()
        .map(str::trim_start)
        .find(|l| l.starts_with("p ") || *l == "p");
    let is_cnf = header.is_some_and(|l| !l.contains("wcnf"));
    if is_cnf {
        let cnf = dimacs::parse_cnf(text).map_err(|e| e.to_string())?;
        Ok(WcnfFormula::from_cnf_all_soft(&cnf))
    } else {
        dimacs::parse_wcnf(text).map_err(|e| e.to_string())
    }
}

/// Runs `options.algorithm` on `wcnf` and returns the solution.
///
/// Weighted input is never routed through clause replication any more:
/// when the selected algorithm only handles unweighted soft clauses
/// (`!supports_weights()`), it is wrapped in [`Stratified`], which
/// delegates unweighted strata to it and keeps the run exact on
/// arbitrary weights. Pick `replication` explicitly to get the old
/// baseline behaviour.
///
/// Unless `options.preprocess` is off, the solver is wrapped in
/// [`Preprocessed`]: the formula is simplified once (soft variables
/// frozen), the residual instance solved, and the model reconstructed —
/// so the returned solution always refers to `wcnf` itself.
///
/// # Errors
///
/// Returns an error for unknown algorithm names.
pub fn run(options: &Options, wcnf: &WcnfFormula) -> Result<MaxSatSolution, String> {
    let mut solver = single_instance_solver(options)?;
    if let Some(ms) = options.timeout_ms {
        solver.set_budget(Budget::new().with_timeout(Duration::from_millis(ms)));
    }
    Ok(solver.solve(wcnf))
}

/// Builds the solver `run` uses for one instance: the selected
/// algorithm behind the stratification/preprocessing routers, or the
/// full [`Portfolio`] when `--portfolio` is set (the portfolio manages
/// weighted wrapping and preprocessing variants itself, racing
/// `options.jobs` threads).
fn single_instance_solver(options: &Options) -> Result<Box<dyn MaxSatSolver + Send>, String> {
    if options.portfolio {
        let mut portfolio = Portfolio::new(options.jobs);
        if options.share {
            let mut config = SharingConfig::default();
            if let Some(lbd) = options.share_lbd {
                config.max_lbd = lbd;
            }
            portfolio = portfolio.with_sharing(config);
        }
        return Ok(Box::new(portfolio));
    }
    let inner = make_solver_send(&options.algorithm)?;
    let inner: Box<dyn MaxSatSolver + Send> = if !inner.supports_weights() {
        // Router, not replication: on unweighted input the stratifier
        // passes straight through, on weighted input it keeps the run
        // exact — so it is safe to wrap unconditionally, which lets one
        // factory serve every instance of a mixed batch.
        Box::new(Stratified::new(inner))
    } else {
        inner
    };
    Ok(if options.preprocess {
        Box::new(Preprocessed::new(inner))
    } else {
        inner
    })
}

/// One file's outcome within a batch run.
#[derive(Debug, Clone)]
pub struct BatchFileOutcome {
    /// File name (relative to the batch directory).
    pub file: String,
    /// Solve status.
    pub status: MaxSatStatus,
    /// Proven (or best-known) cost.
    pub cost: Option<Weight>,
    /// Certified lower bound (equals cost on `Optimal`).
    pub lower_bound: Weight,
    /// Independent `verify_solution` verdict.
    pub verified: bool,
    /// Per-instance wall-clock milliseconds.
    pub time_ms: f64,
    /// The instance's full solve statistics (driver, SAT engine,
    /// preprocessing, per-phase times).
    pub stats: coremax::MaxSatStats,
}

/// Results of a batch-directory run (input files in sorted order).
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Per-file outcomes, sorted by file name — the order is stable
    /// across worker counts.
    pub outcomes: Vec<BatchFileOutcome>,
    /// Wall-clock milliseconds for the whole batch.
    pub wall_ms: f64,
    /// Sum of per-instance solve times (sequential-equivalent cost).
    pub cpu_ms: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Append a `stats=[..]` field to every `r` row and an aggregated
    /// `c batch-stats:` block to the summary (`--stats`).
    pub show_stats: bool,
    /// Append a `simp=[..]` field to every `r` row and an aggregated
    /// `c batch-simp-stats:` line to the summary (`--simp-stats`).
    pub show_simp_stats: bool,
}

impl BatchRun {
    /// Number of instances that aborted (status `UNKNOWN`).
    #[must_use]
    pub fn unknown(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == MaxSatStatus::Unknown)
            .count()
    }

    /// Number of instances that aborted without an incumbent: no `o`
    /// value was ever certified, only the lower bound. These are the
    /// batch counterpart of single-file exit code 30 (hard abort), as
    /// opposed to 10 (abort with a certified incumbent).
    #[must_use]
    pub fn hard_aborts(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.status == MaxSatStatus::Unknown && o.cost.is_none())
            .count()
    }
}

/// Solves every `.cnf`/`.wcnf` file in `dir` across `options.jobs`
/// workers (work stealing, per-instance budgets). Each instance is
/// solved by the same configuration regardless of worker count, so the
/// per-file outcomes match sequential runs of the same files exactly.
///
/// # Errors
///
/// Propagates I/O and parse failures (with the offending file named)
/// and unknown algorithm names as display strings.
pub fn run_batch_dir(options: &Options, dir: &str) -> Result<BatchRun, String> {
    // Batch output is the per-instance `r` summary; flags that promise
    // extra per-run output that cannot be attached to a summary row are
    // rejected (the same rule `--portfolio` applies to -a). `--stats`
    // and `--simp-stats` DO apply: they add a per-row `stats=`/`simp=`
    // field and an aggregated block to the `c batch` summary. `--verify`
    // is fine: batch mode verifies every solution unconditionally.
    if options.print_model {
        return Err(
            "batch (directory) mode prints per-instance summaries only; \
             -m/--model does not apply"
                .into(),
        );
    }
    if options.stats_json.is_some() {
        return Err(
            "batch (directory) mode prints per-instance summaries only; \
             --stats-json does not apply (use --stats for per-row and \
             aggregated counters)"
                .into(),
        );
    }
    let mut files: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            (name.ends_with(".cnf") || name.ends_with(".wcnf")).then_some(name)
        })
        .collect();
    files.sort_unstable();
    if files.is_empty() {
        return Err(format!("no .cnf/.wcnf files in {dir}"));
    }

    let mut formulas: Vec<(String, WcnfFormula)> = Vec::with_capacity(files.len());
    for name in files {
        let path = std::path::Path::new(dir).join(&name);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let wcnf = parse_problem(&text).map_err(|e| format!("{name}: {e}"))?;
        formulas.push((name, wcnf));
    }

    let items: Vec<(&str, &WcnfFormula)> = formulas
        .iter()
        .map(|(name, wcnf)| (name.as_str(), wcnf))
        .collect();
    let mut budget = Budget::new();
    if let Some(ms) = options.timeout_ms {
        budget = budget.with_timeout(Duration::from_millis(ms));
    }
    // Batch parallelism lives at the instance level: a `--portfolio`
    // batch races members sequentially inside each worker, otherwise
    // `--jobs` workers × `--jobs`-thread portfolios would oversubscribe
    // the host jobs² ways.
    let solver_options = Options {
        jobs: 1,
        ..options.clone()
    };
    // Validate the configuration once up front, so a bad algorithm name
    // fails before any solving instead of panicking inside a worker.
    let _ = single_instance_solver(&solver_options)?;
    let report = solve_batch(
        &items,
        || single_instance_solver(&solver_options).expect("configuration validated above"),
        &BatchOptions {
            jobs: options.jobs,
            budget,
        },
    );

    let outcomes: Vec<BatchFileOutcome> = report
        .outcomes
        .iter()
        .zip(&formulas)
        .map(|(outcome, (_, wcnf))| BatchFileOutcome {
            file: outcome.name.clone(),
            status: outcome.solution.status,
            cost: outcome.solution.cost,
            lower_bound: outcome.solution.lower_bound,
            verified: coremax::verify_solution(wcnf, &outcome.solution),
            time_ms: outcome.solution.stats.wall_time.as_secs_f64() * 1e3,
            stats: outcome.solution.stats,
        })
        .collect();
    Ok(BatchRun {
        outcomes,
        wall_ms: report.wall_time.as_secs_f64() * 1e3,
        cpu_ms: report.cpu_time().as_secs_f64() * 1e3,
        jobs: options.jobs,
        show_stats: options.stats,
        show_simp_stats: options.simp_stats,
    })
}

/// Formats a batch run: one `r FILE STATUS COST` line per instance
/// (`-` for no cost; aborted instances append their certified
/// `lb=<lower bound>`) plus a `c batch:` summary. With `--stats` /
/// `--simp-stats` each `r` row carries a `stats=[..]` / `simp=[..]`
/// field and the summary gains aggregated counter lines (every
/// per-instance [`coremax::MaxSatStats`] absorbed into one).
#[must_use]
pub fn format_batch(run: &BatchRun) -> String {
    let mut out = String::new();
    let mut counts = [0usize; 3];
    let mut aggregate = coremax::MaxSatStats::default();
    for o in &run.outcomes {
        counts[match o.status {
            MaxSatStatus::Optimal => 0,
            MaxSatStatus::Infeasible => 1,
            MaxSatStatus::Unknown => 2,
        }] += 1;
        aggregate.absorb(&o.stats);
        out.push_str(&format!(
            "r {} {} {}",
            o.file,
            o.status,
            o.cost.map_or("-".to_string(), |c| c.to_string()),
        ));
        if o.status == MaxSatStatus::Unknown {
            out.push_str(&format!(" lb={}", o.lower_bound));
        }
        if run.show_stats {
            out.push_str(&format!(" stats=[{}]", o.stats));
        }
        if run.show_simp_stats {
            out.push_str(&format!(" simp=[{}]", o.stats.simp));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "c batch: {} instances, {} optimal, {} infeasible, {} aborted \
         ({} without incumbent), jobs={}, wall {:.1} ms, cpu {:.1} ms\n",
        run.outcomes.len(),
        counts[0],
        counts[1],
        counts[2],
        run.hard_aborts(),
        run.jobs,
        run.wall_ms,
        run.cpu_ms,
    ));
    if run.show_stats {
        out.push_str(&format!("c batch-stats: {aggregate}\n"));
        out.push_str(&format!("c batch-sat-stats: {}\n", aggregate.sat));
    }
    if run.show_simp_stats {
        out.push_str(&format!("c batch-simp-stats: {}\n", aggregate.simp));
    }
    out
}

/// Writes the generated benchmark suite into `dir` as WCNF files.
/// Returns the file names written.
///
/// # Errors
///
/// Propagates I/O failures as display strings.
pub fn generate_suite(options: &Options, dir: &str) -> Result<Vec<String>, String> {
    let config = SuiteConfig {
        scale: options.scale,
        seed: options.seed,
    };
    let instances = match options.family.as_deref() {
        Some("debug29") => debug_suite(&config),
        Some("weighted") => weighted_suite(&config),
        Some(name) => full_suite(&config)
            .into_iter()
            .filter(|i| i.family.name() == name)
            .collect(),
        None => {
            let mut all = full_suite(&config);
            all.extend(weighted_suite(&config));
            all
        }
    };
    if instances.is_empty() {
        return Err(format!(
            "no instances for family {:?}",
            options.family.as_deref().unwrap_or("<all>")
        ));
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let mut written = Vec::with_capacity(instances.len());
    let mut index = String::from("# name family stats\n");
    for instance in instances {
        let name = format!("{}.wcnf", instance.name);
        let path = std::path::Path::new(dir).join(&name);
        std::fs::write(&path, dimacs::write_wcnf(&instance.wcnf))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        index.push_str(&format!(
            "{} {} {}\n",
            instance.name,
            instance.family,
            InstanceStats::of(&instance.wcnf)
        ));
        written.push(name);
    }
    let index_path = std::path::Path::new(dir).join("INDEX.txt");
    std::fs::write(&index_path, index)
        .map_err(|e| format!("cannot write {}: {e}", index_path.display()))?;
    Ok(written)
}

/// Installs the observability sinks the options ask for and returns the
/// guard keeping them alive (`None` when no event sink is needed —
/// timing-only runs just raise the timing flag).
///
/// `--progress` attaches a live printer (`o <cost>` on every improved
/// incumbent, `c bounds lb=.. ub=..` throttled to four lines a second),
/// `--trace FILE` a JSONL trace writer; both at once fan out. `--stats`
/// and `--stats-json` turn per-phase timing on so the phase breakdown
/// in the reports is populated.
///
/// # Errors
///
/// Returns a message when the trace file cannot be created.
pub fn install_observability(options: &Options) -> Result<Option<coremax_obs::SinkGuard>, String> {
    use std::sync::Arc;
    let mut sinks: Vec<Arc<dyn coremax_obs::EventSink>> = Vec::new();
    if options.progress {
        sinks.push(Arc::new(coremax_obs::ProgressSink::stdout(
            Duration::from_millis(250),
        )));
    }
    if let Some(path) = &options.trace {
        let sink = coremax_obs::JsonlTraceSink::create(path)
            .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
        sinks.push(Arc::new(sink));
    }
    let timing = options.stats || options.stats_json.is_some();
    if sinks.is_empty() {
        if timing {
            coremax_obs::set_timing(true);
        }
        return Ok(None);
    }
    let sink: Arc<dyn coremax_obs::EventSink> = if sinks.len() == 1 {
        sinks.pop().expect("one sink")
    } else {
        Arc::new(coremax_obs::FanoutSink::new(sinks))
    };
    Ok(Some(coremax_obs::install(sink, timing)))
}

/// Serializes a solution's verdict and full statistics tree (driver
/// counters, SAT-engine counters, preprocessing counters, per-phase
/// wall times) as a single JSON object — what `--stats-json FILE`
/// writes.
#[must_use]
pub fn solution_stats_json(solution: &MaxSatSolution) -> String {
    let mut out = String::from("{\"status\": \"");
    out.push_str(match solution.status {
        MaxSatStatus::Optimal => "optimal",
        MaxSatStatus::Infeasible => "infeasible",
        MaxSatStatus::Unknown => "unknown",
    });
    out.push_str("\", \"cost\": ");
    match solution.cost {
        Some(c) => out.push_str(&c.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(&format!(", \"lower_bound\": {}", solution.lower_bound));
    out.push_str(", \"stats\": ");
    solution.stats.to_json_into(&mut out);
    out.push_str("}\n");
    out
}

/// Formats a solution in MaxSAT-evaluation style (`o` cost line, `s`
/// status line, optional `v` model line). Budget-exhausted solves also
/// print their certified interval as a `c bounds` comment — `lb` is
/// the core-derived lower bound, `ub` the incumbent's exact cost (`-`
/// when no incumbent was found).
#[must_use]
pub fn format_solution(wcnf: &WcnfFormula, solution: &MaxSatSolution, print_model: bool) -> String {
    use coremax::MaxSatStatus;
    let mut out = String::new();
    if let Some(cost) = solution.cost {
        out.push_str(&format!("o {cost}\n"));
    }
    if solution.status == MaxSatStatus::Unknown {
        let ub = solution
            .cost
            .map_or_else(|| "-".to_string(), |c| c.to_string());
        out.push_str(&format!("c bounds lb={} ub={ub}\n", solution.lower_bound));
    }
    out.push_str(match solution.status {
        MaxSatStatus::Optimal => "s OPTIMUM FOUND\n",
        MaxSatStatus::Infeasible => "s UNSATISFIABLE\n",
        MaxSatStatus::Unknown => "s UNKNOWN\n",
    });
    if print_model {
        if let Some(model) = &solution.model {
            out.push('v');
            for i in 0..wcnf.num_vars() {
                let v = coremax_cnf::Var::new(i as u32);
                let val = model.value(v).unwrap_or(false);
                out.push(' ');
                if !val {
                    out.push('-');
                }
                out.push_str(&(i + 1).to_string());
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let o = parse_args(["file.cnf".to_string()]).unwrap();
        assert_eq!(o.algorithm, "msu4-v2");
        assert_eq!(o.input, "file.cnf");
        assert!(!o.verify);
    }

    #[test]
    fn parse_all_flags() {
        let o = parse_args(
            [
                "-a",
                "msu1",
                "-t",
                "500",
                "--verify",
                "--stats",
                "--no-preprocess",
                "--simp-stats",
                "-m",
                "x.wcnf",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(o.algorithm, "msu1");
        assert_eq!(o.timeout_ms, Some(500));
        assert!(o.verify && o.stats && o.print_model && o.simp_stats);
        assert!(!o.preprocess);
        assert_eq!(o.input, "x.wcnf");
    }

    #[test]
    fn preprocess_defaults_on_and_can_be_forced() {
        let o = parse_args(["f.cnf".to_string()]).unwrap();
        assert!(o.preprocess);
        let o = parse_args(["--preprocess".to_string(), "f.cnf".to_string()]).unwrap();
        assert!(o.preprocess);
    }

    #[test]
    fn parse_jobs_and_portfolio() {
        let o = parse_args(
            ["-j", "4", "--portfolio", "x.wcnf"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(o.jobs, 4);
        assert!(o.portfolio);
        let o = parse_args(["--jobs", "2", "y.cnf"].into_iter().map(String::from)).unwrap();
        assert_eq!(o.jobs, 2);
        assert!(!o.portfolio);
        assert!(parse_args(["--jobs", "0", "y.cnf"].into_iter().map(String::from)).is_err());
        assert!(parse_args(["--jobs", "x", "y.cnf"].into_iter().map(String::from)).is_err());
    }

    #[test]
    fn portfolio_rejects_contradictory_flags() {
        // The portfolio races every algorithm, bare and preprocessed:
        // an explicit -a or --no-preprocess would be silently ignored,
        // so both combinations are errors.
        for args in [
            vec!["--portfolio", "-a", "msu1", "f.cnf"],
            vec!["-a", "msu1", "--portfolio", "f.cnf"],
            vec!["--portfolio", "--no-preprocess", "f.cnf"],
        ] {
            let parsed = parse_args(args.iter().map(|s| s.to_string()));
            assert!(parsed.is_err(), "{args:?} must be rejected");
        }
        // --preprocess (the default, a no-op) and -t remain fine.
        let o = parse_args(
            ["--portfolio", "--preprocess", "-t", "100", "f.cnf"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert!(o.portfolio);
    }

    #[test]
    fn parse_share_flags() {
        let o = parse_args(
            ["--portfolio", "--share", "x.wcnf"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert!(o.share);
        assert_eq!(o.share_lbd, None);
        let o = parse_args(
            ["--portfolio", "--share-lbd", "6", "x.wcnf"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert!(o.share, "--share-lbd implies --share");
        assert_eq!(o.share_lbd, Some(6));
        // Sharing without a portfolio has nobody to share with.
        assert!(parse_args(["--share", "x.wcnf"].into_iter().map(String::from)).is_err());
        assert!(parse_args(
            ["--share-lbd", "0", "--portfolio", "x.wcnf"]
                .into_iter()
                .map(String::from)
        )
        .is_err());
        assert!(parse_args(
            ["--portfolio", "--share-lbd", "x.wcnf"]
                .into_iter()
                .map(String::from)
        )
        .is_err());
    }

    #[test]
    fn sharing_portfolio_run_matches_plain_portfolio() {
        let wcnf =
            parse_problem("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n")
                .unwrap();
        for jobs in [1, 4] {
            let options = Options {
                portfolio: true,
                share: true,
                share_lbd: Some(5),
                jobs,
                ..Options::default()
            };
            let s = run(&options, &wcnf).unwrap();
            assert_eq!(s.status, coremax::MaxSatStatus::Optimal, "jobs={jobs}");
            assert_eq!(s.cost, Some(2), "jobs={jobs}");
            assert!(coremax::verify_solution(&wcnf, &s));
        }
    }

    #[test]
    fn portfolio_run_matches_single_solver() {
        let wcnf =
            parse_problem("p cnf 4 8\n1 0\n-1 -2 0\n2 0\n-1 -3 0\n3 0\n-2 -3 0\n1 -4 0\n-1 4 0\n")
                .unwrap();
        for jobs in [1, 4] {
            let options = Options {
                portfolio: true,
                jobs,
                ..Options::default()
            };
            let s = run(&options, &wcnf).unwrap();
            assert_eq!(s.status, coremax::MaxSatStatus::Optimal, "jobs={jobs}");
            assert_eq!(s.cost, Some(2), "jobs={jobs}");
            assert!(coremax::verify_solution(&wcnf, &s));
        }
    }

    #[test]
    fn batch_dir_solves_generated_suite_and_is_job_invariant() {
        let dir = std::env::temp_dir().join("coremax-batch-lib-test");
        let _ = std::fs::remove_dir_all(&dir);
        let gen = Options {
            generate_dir: Some(dir.display().to_string()),
            family: Some("php".into()),
            ..Options::default()
        };
        let files = generate_suite(&gen, &dir.display().to_string()).unwrap();
        assert!(files.len() >= 2);

        let run_with = |jobs: usize| {
            run_batch_dir(
                &Options {
                    jobs,
                    ..Options::default()
                },
                &dir.display().to_string(),
            )
            .unwrap()
        };
        let seq = run_with(1);
        assert_eq!(seq.outcomes.len(), files.len());
        assert!(seq.outcomes.iter().all(|o| o.verified));
        assert_eq!(seq.unknown(), 0);
        let par = run_with(4);
        for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_eq!(a.file, b.file, "sorted order is worker-invariant");
            assert_eq!(a.status, b.status, "{}", a.file);
            assert_eq!(a.cost, b.cost, "{}", a.file);
        }
        let text = format_batch(&par);
        assert!(text.contains("c batch:"));
        assert!(text.lines().filter(|l| l.starts_with("r ")).count() == files.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_dir_rejects_per_run_output_flags() {
        // -m and --stats-json have no per-row form; --stats and
        // --simp-stats are accepted (they become row fields and an
        // aggregated summary block).
        for options in [
            Options {
                print_model: true,
                ..Options::default()
            },
            Options {
                stats_json: Some("/tmp/never.json".into()),
                ..Options::default()
            },
        ] {
            let err = run_batch_dir(&options, "/tmp").unwrap_err();
            assert!(err.contains("does not apply"), "{err}");
        }
    }

    #[test]
    fn batch_dir_stats_flags_add_row_fields_and_aggregate_block() {
        let dir = std::env::temp_dir().join("coremax-batch-stats-test");
        let _ = std::fs::remove_dir_all(&dir);
        let gen = Options {
            generate_dir: Some(dir.display().to_string()),
            family: Some("php".into()),
            ..Options::default()
        };
        generate_suite(&gen, &dir.display().to_string()).unwrap();
        let batch = run_batch_dir(
            &Options {
                stats: true,
                simp_stats: true,
                ..Options::default()
            },
            &dir.display().to_string(),
        )
        .unwrap();
        let text = format_batch(&batch);
        for line in text.lines().filter(|l| l.starts_with("r ")) {
            assert!(line.contains(" stats=["), "{line}");
            assert!(line.contains(" simp=["), "{line}");
        }
        assert!(text.contains("c batch-stats: "), "{text}");
        assert!(text.contains("c batch-sat-stats: "), "{text}");
        assert!(text.contains("c batch-simp-stats: "), "{text}");
        // The aggregated counters are the absorb of every row's stats.
        let mut aggregate = coremax::MaxSatStats::default();
        for o in &batch.outcomes {
            aggregate.absorb(&o.stats);
        }
        assert!(aggregate.sat_calls >= batch.outcomes.len() as u64);
        assert!(text.contains(&format!("c batch-stats: {aggregate}")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_dir_rejects_empty_and_missing_dirs() {
        let dir = std::env::temp_dir().join("coremax-batch-empty-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let options = Options::default();
        assert!(run_batch_dir(&options, &dir.display().to_string()).is_err());
        assert!(run_batch_dir(&options, "/nonexistent/coremax").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_observability_flags() {
        let o = parse_args(
            [
                "--progress",
                "--trace",
                "/tmp/t.jsonl",
                "--stats-json",
                "/tmp/s.json",
                "f.cnf",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert!(o.progress);
        assert_eq!(o.trace.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(o.stats_json.as_deref(), Some("/tmp/s.json"));
        assert!(parse_args(["--trace".to_string()]).is_err());
        assert!(parse_args(["--stats-json".to_string()]).is_err());
    }

    #[test]
    fn stats_json_snapshot_is_wellformed_and_carries_the_tree() {
        let wcnf = parse_problem("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let solution = run(&Options::default(), &wcnf).unwrap();
        let text = solution_stats_json(&solution);
        let value = coremax_obs::json::parse(&text).expect("snapshot parses");
        assert_eq!(
            value.get("status").and_then(|v| v.as_str()),
            Some("optimal")
        );
        assert_eq!(value.get("cost").and_then(|v| v.as_u64()), Some(1));
        let stats = value.get("stats").expect("stats subtree");
        assert!(stats.get("sat_calls").is_some());
        assert!(stats.get("phase_times").is_some());
        assert!(stats.get("sat").and_then(|s| s.get("conflicts")).is_some());
        assert!(stats.get("simp").and_then(|s| s.get("rounds")).is_some());
    }

    #[test]
    fn parse_rejects_unknown_flag() {
        assert!(parse_args(["--bogus".to_string(), "f".to_string()]).is_err());
    }

    #[test]
    fn parse_requires_input() {
        assert!(parse_args(Vec::<String>::new()).is_err());
    }

    #[test]
    fn stdin_marker_accepted() {
        let o = parse_args(["-".to_string()]).unwrap();
        assert_eq!(o.input, "-");
    }

    #[test]
    fn all_advertised_solvers_constructible() {
        for name in [
            "msu4-v1",
            "msu4-v2",
            "msu4-inc",
            "msu1",
            "msu2",
            "msu3",
            "oll",
            "wmsu1",
            "stratified",
            "strat-msu3",
            "strat-msu4",
            "strat-oll",
            "strat-wmsu1",
            "replication",
            "pbo",
            "maxsatz-bb",
            "linear-sat",
            "binary-sat",
        ] {
            assert!(make_solver(name).is_ok(), "{name}");
        }
        assert!(make_solver("nope").is_err());
    }

    #[test]
    fn weighted_capability_flags() {
        for (name, expected) in [
            ("msu4-v2", false),
            ("msu1", false),
            ("oll", true),
            ("strat-oll", true),
            ("wmsu1", true),
            ("stratified", true),
            ("strat-msu4", true),
            ("replication", true),
            ("maxsatz-bb", true),
            ("pbo", true),
        ] {
            assert_eq!(
                make_solver(name).unwrap().supports_weights(),
                expected,
                "{name}"
            );
        }
    }

    #[test]
    fn weighted_input_is_stratified_not_replicated_or_panicking() {
        // msu4-v2 (the default) alone panics on weighted soft clauses;
        // the run() router must stratify it transparently, with and
        // without preprocessing.
        let wcnf = parse_problem("p wcnf 2 3 99\n99 1 2 0\n100 -1 0\n3 -2 0\n").unwrap();
        for preprocess in [true, false] {
            let options = Options {
                preprocess,
                ..Options::default()
            };
            let s = run(&options, &wcnf).unwrap();
            assert_eq!(s.status, coremax::MaxSatStatus::Optimal);
            assert_eq!(s.cost, Some(3));
            assert!(coremax::verify_solution(&wcnf, &s));
            assert!(s.stats.strata >= 1, "stratified router engaged");
        }
    }

    #[test]
    fn weighted_solvers_run_unwrapped() {
        let wcnf = parse_problem("p wcnf 1 2\n4 1 0\n9 -1 0\n").unwrap();
        for algo in ["wmsu1", "strat-msu3", "maxsatz-bb", "replication"] {
            let options = Options {
                algorithm: algo.into(),
                ..Options::default()
            };
            let s = run(&options, &wcnf).unwrap();
            assert_eq!(s.cost, Some(4), "{algo}");
            assert!(coremax::verify_solution(&wcnf, &s), "{algo}");
        }
    }

    #[test]
    fn weighted_roundtrip_preserves_optimum_across_dialects() {
        // parse → solve → serialize → reparse → solve, classic and
        // post-2022 dialects, through the CLI entry points.
        let classic = "p wcnf 3 5 99\n99 -1 2 0\n10 1 0\n9 -1 0\n1 -2 0\n2 3 0\n";
        let wcnf = parse_problem(classic).unwrap();
        let options = Options {
            algorithm: "wmsu1".into(),
            ..Options::default()
        };
        let first = run(&options, &wcnf).unwrap();
        assert_eq!(first.status, coremax::MaxSatStatus::Optimal);
        for text in [dimacs::write_wcnf(&wcnf), dimacs::write_wcnf_new(&wcnf)] {
            let reparsed = parse_problem(&text).unwrap();
            assert_eq!(reparsed.num_hard(), wcnf.num_hard());
            let again = run(&options, &reparsed).unwrap();
            assert_eq!(again.cost, first.cost);
            assert!(coremax::verify_solution(&reparsed, &again));
            let formatted = format_solution(&reparsed, &again, false);
            assert!(formatted.contains("s OPTIMUM FOUND"));
        }
    }

    #[test]
    fn problem_sniffing() {
        let cnf = parse_problem("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert!(cnf.is_plain_maxsat());
        assert_eq!(cnf.num_soft(), 2);
        let wcnf = parse_problem("p wcnf 1 2 5\n5 1 0\n1 -1 0\n").unwrap();
        assert_eq!(wcnf.num_hard(), 1);
        // Headerless post-2022 WCNF is sniffed as WCNF too.
        let modern = parse_problem("c no header\nh 1 0\n3 -1 0\n").unwrap();
        assert_eq!(modern.num_hard(), 1);
        assert_eq!(modern.num_soft(), 1);
        assert_eq!(modern.soft_clauses()[0].weight, 3);
    }

    #[test]
    fn preprocessing_preserves_answers_end_to_end() {
        // Partial MaxSAT where the simplifier has real work: a hard
        // implication chain with soft endpoints.
        let wcnf =
            parse_problem("p wcnf 4 5 9\n9 -1 2 0\n9 -2 3 0\n9 -3 4 0\n1 -4 0\n1 1 0\n").unwrap();
        let on = run(&Options::default(), &wcnf).unwrap();
        let off = run(
            &Options {
                preprocess: false,
                ..Options::default()
            },
            &wcnf,
        )
        .unwrap();
        assert_eq!(on.status, off.status);
        assert_eq!(on.cost, off.cost);
        assert!(coremax::verify_solution(&wcnf, &on));
        assert!(on.stats.simp.vars_in > 0, "simp counters populated");
        assert_eq!(off.stats.simp, coremax_simp::SimpStats::default());
    }

    #[test]
    fn end_to_end_solve_and_format() {
        let wcnf = parse_problem("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let options = Options {
            algorithm: "msu4-v2".into(),
            ..Options::default()
        };
        let solution = run(&options, &wcnf).unwrap();
        assert_eq!(solution.cost, Some(1));
        let text = format_solution(&wcnf, &solution, true);
        assert!(text.contains("o 1"));
        assert!(text.contains("s OPTIMUM FOUND"));
        assert!(text.contains('v'));
    }

    #[test]
    fn generate_mode_parses() {
        let o = parse_args(
            [
                "--generate",
                "/tmp/x",
                "--family",
                "php",
                "--scale",
                "2",
                "--seed",
                "7",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(o.generate_dir.as_deref(), Some("/tmp/x"));
        assert_eq!(o.family.as_deref(), Some("php"));
        assert_eq!(o.scale, 2);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn generate_writes_parseable_files() {
        let dir = std::env::temp_dir().join("coremax-gen-test");
        let _ = std::fs::remove_dir_all(&dir);
        let options = Options {
            generate_dir: Some(dir.display().to_string()),
            family: Some("xor".into()),
            ..Options::default()
        };
        let files = generate_suite(&options, &dir.display().to_string()).unwrap();
        assert!(!files.is_empty());
        for f in &files {
            let text = std::fs::read_to_string(dir.join(f)).unwrap();
            let w = dimacs::parse_wcnf(&text).expect("generated file parses");
            assert!(w.num_soft() > 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generate_rejects_unknown_family() {
        let options = Options {
            generate_dir: Some("/tmp/never".into()),
            family: Some("nonexistent".into()),
            ..Options::default()
        };
        assert!(generate_suite(&options, "/tmp/never").is_err());
    }

    #[test]
    fn hard_aborts_exclude_incumbent_carrying_unknowns() {
        let outcome = |status, cost| BatchFileOutcome {
            file: "f.cnf".into(),
            status,
            cost,
            lower_bound: 1,
            verified: true,
            time_ms: 0.0,
            stats: coremax::MaxSatStats::default(),
        };
        let run = BatchRun {
            outcomes: vec![
                outcome(MaxSatStatus::Optimal, Some(2)),
                outcome(MaxSatStatus::Unknown, Some(5)), // exit-10 class
                outcome(MaxSatStatus::Unknown, None),    // exit-30 class
            ],
            wall_ms: 0.0,
            cpu_ms: 0.0,
            jobs: 1,
            show_stats: false,
            show_simp_stats: false,
        };
        assert_eq!(run.unknown(), 2);
        assert_eq!(
            run.hard_aborts(),
            1,
            "an abort with a certified incumbent is not a hard abort"
        );
        let text = format_batch(&run);
        assert!(text.contains("2 aborted (1 without incumbent)"), "{text}");
    }

    #[test]
    fn format_unknown_without_model() {
        use coremax::{MaxSatSolution, MaxSatStats, MaxSatStatus};
        let wcnf = parse_problem("p cnf 1 1\n1 0\n").unwrap();
        let s = MaxSatSolution {
            status: MaxSatStatus::Unknown,
            cost: None,
            model: None,
            lower_bound: 0,
            stats: MaxSatStats::default(),
        };
        let text = format_solution(&wcnf, &s, true);
        assert_eq!(text, "c bounds lb=0 ub=-\ns UNKNOWN\n");
    }

    #[test]
    fn format_unknown_with_incumbent_prints_interval() {
        use coremax::{MaxSatSolution, MaxSatStats, MaxSatStatus};
        use coremax_cnf::Assignment;
        let wcnf = parse_problem("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let s = MaxSatSolution {
            status: MaxSatStatus::Unknown,
            cost: Some(1),
            model: Some(Assignment::from_bools(&[true])),
            lower_bound: 1,
            stats: MaxSatStats::default(),
        };
        let text = format_solution(&wcnf, &s, false);
        assert!(text.contains("o 1\n"), "{text}");
        assert!(text.contains("c bounds lb=1 ub=1\n"), "{text}");
        assert!(text.ends_with("s UNKNOWN\n"), "{text}");
    }
}
