//! `coremax-solve` — command-line MaxSAT solver.
//!
//! Reads DIMACS CNF (treated as unweighted MaxSAT) or WCNF and solves
//! it with any algorithm of the suite. See `coremax-solve --help`.

use std::io::Read;
use std::process::ExitCode;

use coremax::verify_solution;
use coremax_cli::{
    format_batch, format_solution, generate_suite, install_observability, parse_args,
    parse_problem, run, run_batch_dir, solution_stats_json,
};

fn main() -> ExitCode {
    let options = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };

    // Keep the sink guard alive for the whole run; dropping it flushes
    // the trace file and restores the disabled state.
    let _obs_guard = match install_observability(&options) {
        Ok(guard) => guard,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if let Some(dir) = options.generate_dir.clone() {
        return match generate_suite(&options, &dir) {
            Ok(files) => {
                println!("c wrote {} instances to {dir}", files.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        };
    }

    // A directory input selects batch mode: every .cnf/.wcnf inside is
    // solved across --jobs workers.
    if options.input != "-" && std::path::Path::new(&options.input).is_dir() {
        return match run_batch_dir(&options, &options.input.clone()) {
            Ok(batch) => {
                // Print the summary even on verification failure: the
                // per-file lines are what identifies the bad run.
                print!("{}", format_batch(&batch));
                let bad: Vec<&str> = batch
                    .outcomes
                    .iter()
                    .filter(|o| !o.verified)
                    .map(|o| o.file.as_str())
                    .collect();
                if !bad.is_empty() {
                    eprintln!(
                        "INTERNAL ERROR: {} solution(s) failed verification: {}",
                        bad.len(),
                        bad.join(", ")
                    );
                    return ExitCode::from(3);
                }
                // Mirror the single-file exit codes: 30 when some
                // instance aborted with no incumbent at all (nothing
                // but its lower bound is certified), 10 when every
                // abort still carries a certified incumbent.
                if batch.hard_aborts() > 0 {
                    ExitCode::from(30)
                } else if batch.unknown() > 0 {
                    ExitCode::from(10)
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::from(2)
            }
        };
    }

    let text = if options.input == "-" {
        let mut buffer = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buffer) {
            eprintln!("error reading stdin: {e}");
            return ExitCode::from(2);
        }
        buffer
    } else {
        match std::fs::read_to_string(&options.input) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error reading {}: {e}", options.input);
                return ExitCode::from(2);
            }
        }
    };

    let wcnf = match parse_problem(&text) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "c coremax: {} vars, {} hard, {} soft",
        wcnf.num_vars(),
        wcnf.num_hard(),
        wcnf.num_soft()
    );

    let solution = match run(&options, &wcnf) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if options.verify && !verify_solution(&wcnf, &solution) {
        eprintln!("INTERNAL ERROR: solution failed verification");
        return ExitCode::from(3);
    }
    if options.simp_stats {
        println!("c simp-stats: {}", solution.stats.simp);
    }
    if options.stats {
        println!("c stats: {}", solution.stats);
        println!("c sat-stats: {}", solution.stats.sat);
    }
    if let Some(path) = &options.stats_json {
        if let Err(e) = std::fs::write(path, solution_stats_json(&solution)) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::from(2);
        }
    }
    print!("{}", format_solution(&wcnf, &solution, options.print_model));

    // Exit codes: 0 optimum proven, 20 infeasible hard clauses, 10
    // budget exhausted with a certified incumbent (an `o` line was
    // printed), 30 hard abort — budget exhausted before any feasible
    // model was found (only the `c bounds` lower bound is certified).
    match solution.status {
        coremax::MaxSatStatus::Optimal => ExitCode::SUCCESS,
        coremax::MaxSatStatus::Infeasible => ExitCode::from(20),
        coremax::MaxSatStatus::Unknown if solution.cost.is_some() => ExitCode::from(10),
        coremax::MaxSatStatus::Unknown => ExitCode::from(30),
    }
}
