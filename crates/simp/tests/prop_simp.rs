//! Property tests for the preprocessing pipeline: `simplify → solve →
//! reconstruct` answers exactly like solving the original directly —
//! same satisfiability, same MaxSAT optimum — and every reconstructed
//! model checks out against the *untouched* input, including under
//! stressed SAT-solver configurations (forced GC, glucose restarts).

use coremax_cnf::{dimacs, Assignment, Lit, WcnfFormula, Weight};
use coremax_sat::{RestartMode, SolveOutcome, Solver, SolverConfig};
use coremax_simp::{SimpConfig, Simplifier};
use proptest::prelude::*;

/// Exhaustive MaxSAT oracle (≤ 16 variables): minimum cost and a model
/// attaining it, or `None` when the hard clauses are unsatisfiable.
fn optimum(w: &WcnfFormula) -> Option<(Weight, Assignment)> {
    let n = w.num_vars();
    assert!(n <= 16, "oracle is exhaustive");
    let mut best: Option<(Weight, Assignment)> = None;
    for mask in 0u32..1 << n {
        let bools: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
        let a = Assignment::from_bools(&bools);
        if let Some(c) = w.cost(&a) {
            if best.as_ref().is_none_or(|(b, _)| c < *b) {
                best = Some((c, a));
            }
        }
    }
    best
}

/// A configuration stressing the SAT engine: tiny learned cap forces
/// reductions, `gc_frac: 0.0` forces arena collections, glucose mode
/// exercises adaptive restarts.
fn stress_config() -> SolverConfig {
    SolverConfig {
        learntsize_factor: 0.01,
        learntsize_inc: 1.01,
        min_learnts: 3.0,
        gc_frac: 0.0,
        restart_mode: RestartMode::Glucose,
        glucose_lbd_window: 5,
        ..SolverConfig::default()
    }
}

fn solve_hard(wcnf: &WcnfFormula, config: SolverConfig) -> (SolveOutcome, Option<Assignment>) {
    let mut s = Solver::with_config(config);
    s.ensure_vars(wcnf.num_vars());
    for c in wcnf.hard_clauses() {
        s.add_clause(c.lits().iter().copied());
    }
    let outcome = s.solve();
    (outcome, s.model().cloned())
}

/// Random weighted partial MaxSAT instance over `max_vars` variables.
fn arb_wcnf(max_vars: i32) -> impl Strategy<Value = WcnfFormula> {
    let lit = (1..=max_vars).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=3);
    let weighted = (clause.clone(), 1u64..=4);
    (
        prop::collection::vec(clause, 0..10),
        prop::collection::vec(weighted, 0..8),
    )
        .prop_map(move |(hard, soft)| {
            let mut w = WcnfFormula::with_vars(max_vars as usize);
            for c in hard {
                w.add_hard(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()));
            }
            for (c, weight) in soft {
                w.add_soft(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()), weight);
            }
            w
        })
}

/// Random hard-only instance (every variable eligible for elimination).
fn arb_hard_only(max_vars: i32, max_clauses: usize) -> impl Strategy<Value = WcnfFormula> {
    let lit = (1..=max_vars).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=4);
    prop::collection::vec(clause, 1..=max_clauses).prop_map(move |hard| {
        let mut w = WcnfFormula::with_vars(max_vars as usize);
        for c in hard {
            w.add_hard(c.into_iter().map(|d| Lit::from_dimacs(d).unwrap()));
        }
        w
    })
}

fn configs() -> Vec<SimpConfig> {
    vec![
        SimpConfig::default(),
        SimpConfig {
            probing: false,
            ..SimpConfig::default()
        },
        SimpConfig {
            grow_limit: 4,
            ..SimpConfig::default()
        },
        SimpConfig {
            subsumption: false,
            bve: true,
            ..SimpConfig::default()
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn maxsat_optimum_preserved(w in arb_wcnf(7)) {
        let reference = optimum(&w);
        for config in configs() {
            let mut simp = Simplifier::with_config(config.clone());
            let result = simp.simplify(&w);
            if result.infeasible {
                prop_assert!(reference.is_none(), "simplifier refuted a feasible instance");
                continue;
            }
            let simplified = optimum(&result.formula);
            match (&reference, &simplified) {
                (None, None) => {}
                (Some((ref_cost, _)), Some((simp_cost, simp_model))) => {
                    prop_assert_eq!(
                        *ref_cost,
                        simp_cost.saturating_add(result.cost_offset),
                        "optimum changed under {:?}", config
                    );
                    // The reconstructed optimal model attains the
                    // optimum on the ORIGINAL formula.
                    let full = result.reconstruct_model(simp_model);
                    prop_assert_eq!(
                        w.cost(&full),
                        Some(*ref_cost),
                        "reconstructed model does not attain the optimum"
                    );
                }
                _ => prop_assert!(false, "feasibility disagreement under {:?}", config),
            }
        }
    }

    #[test]
    fn sat_equivalence_with_stressed_solvers(w in arb_hard_only(8, 30)) {
        let (direct, _) = solve_hard(&w, SolverConfig::default());
        let mut simp = Simplifier::new();
        let result = simp.simplify(&w);
        if result.infeasible {
            prop_assert_eq!(direct, SolveOutcome::Unsat);
        } else {
            for config in [SolverConfig::default(), stress_config()] {
                let (outcome, model) = solve_hard(&result.formula, config);
                prop_assert_eq!(outcome, direct, "SAT verdict changed by preprocessing");
                if let Some(m) = model {
                    let full = result.reconstruct_model(&m);
                    for c in w.hard_clauses() {
                        prop_assert!(
                            c.is_satisfied_by(&full),
                            "reconstructed model violates original clause {c}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn simplification_is_idempotent_on_output(w in arb_wcnf(6)) {
        // Simplifying an already-simplified formula must not change the
        // optimum again (offsets accumulate correctly).
        let mut simp = Simplifier::new();
        let once = simp.simplify(&w);
        if !once.infeasible {
            let mut simp2 = Simplifier::new();
            let twice = simp2.simplify(&once.formula);
            if twice.infeasible {
                prop_assert!(optimum(&once.formula).is_none());
            } else {
                match (optimum(&once.formula), optimum(&twice.formula)) {
                    (None, None) => {}
                    (Some((a, _)), Some((b, _))) => {
                        prop_assert_eq!(a, b.saturating_add(twice.cost_offset));
                    }
                    _ => prop_assert!(false, "feasibility flip on re-simplification"),
                }
            }
        }
    }

    #[test]
    fn reconstructed_models_are_total(w in arb_wcnf(6)) {
        let mut simp = Simplifier::new();
        let result = simp.simplify(&w);
        if !result.infeasible {
            if let Some((_, m)) = optimum(&result.formula) {
                let full = result.reconstruct_model(&m);
                prop_assert!(full.is_total());
                prop_assert_eq!(full.num_vars(), w.num_vars());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic pipeline tests
// ---------------------------------------------------------------------

#[test]
fn unit_facts_flow_into_soft_clauses() {
    // Hard unit x1; soft (¬x1) is doomed, soft (x1 ∨ x2) is free.
    let w = dimacs::parse_wcnf("p wcnf 2 3 9\n9 1 0\n3 -1 0\n2 1 2 0\n").unwrap();
    let mut simp = Simplifier::new();
    let result = simp.simplify(&w);
    assert!(!result.infeasible);
    assert_eq!(result.cost_offset, 3, "falsified soft weight charged");
    assert_eq!(result.formula.num_soft(), 0);
    assert_eq!(result.formula.num_hard(), 0);
    let model = result.reconstruct_model(&Assignment::for_vars(0));
    assert_eq!(w.cost(&model), Some(3));
}

#[test]
fn chain_elimination_shrinks_to_nothing() {
    // x1→x2→x3→x4, all vars hard-only: everything resolves away.
    let w = dimacs::parse_wcnf("p wcnf 4 3 9\n9 -1 2 0\n9 -2 3 0\n9 -3 4 0\n").unwrap();
    let mut simp = Simplifier::new();
    let result = simp.simplify(&w);
    assert!(!result.infeasible);
    assert_eq!(result.formula.num_hard(), 0);
    assert_eq!(result.formula.num_vars(), 0);
    let model = result.reconstruct_model(&Assignment::for_vars(0));
    assert_eq!(
        w.cost(&model),
        Some(0),
        "reconstruction satisfies the chain"
    );
}

#[test]
fn frozen_soft_variables_survive() {
    // x2 bridges two hard clauses but also appears in a soft clause:
    // it must not be eliminated.
    let w = dimacs::parse_wcnf("p wcnf 3 4 9\n9 1 2 0\n9 -2 3 0\n1 2 0\n1 -3 0\n").unwrap();
    let mut simp = Simplifier::new();
    let result = simp.simplify(&w);
    assert!(!result.infeasible);
    let x2 = coremax_cnf::Var::new(1);
    assert!(
        result.var_map.map_var(x2).is_some(),
        "soft variable was eliminated"
    );
    assert_eq!(result.formula.num_soft(), 2);
}

#[test]
fn extra_frozen_variables_survive() {
    // Same chain as above but hard-only; freezing x2 manually keeps it.
    let w = dimacs::parse_wcnf("p wcnf 3 2 9\n9 1 2 0\n9 -2 3 0\n").unwrap();
    let x2 = coremax_cnf::Var::new(1);
    let mut simp = Simplifier::new();
    let result = simp.simplify_frozen(&w, &[x2]);
    assert!(!result.infeasible);
    assert!(result.var_map.map_var(x2).is_some());
}

#[test]
fn subsumption_and_strengthening() {
    // (x1 ∨ x2) subsumes (x1 ∨ x2 ∨ x3); (¬x1 ∨ x2) self-subsumes the
    // pair down to the unit (x2).
    let w = dimacs::parse_wcnf("p wcnf 3 3 9\n9 1 2 0\n9 1 2 3 0\n9 -1 2 0\n").unwrap();
    let mut simp = Simplifier::with_config(SimpConfig {
        bve: false,
        probing: false,
        ..SimpConfig::default()
    });
    let result = simp.simplify(&w);
    assert!(!result.infeasible);
    assert!(simp.stats().subsumed >= 1, "{}", simp.stats());
    assert!(simp.stats().strengthened >= 1, "{}", simp.stats());
    // (x2) became a fact, so nothing is left.
    assert_eq!(result.formula.num_hard(), 0);
    let model = result.reconstruct_model(&Assignment::for_vars(0));
    assert_eq!(w.cost(&model), Some(0));
}

#[test]
fn probing_finds_failed_literals() {
    // x1 → x2 and x1 → ¬x2: probing x1 fails, ¬x1 becomes a fact.
    let w = dimacs::parse_wcnf("p wcnf 3 3 9\n9 -1 2 0\n9 -1 -2 0\n9 1 3 0\n").unwrap();
    let mut simp = Simplifier::with_config(SimpConfig {
        bve: false,
        subsumption: false,
        ..SimpConfig::default()
    });
    let result = simp.simplify(&w);
    assert!(!result.infeasible);
    assert!(simp.stats().failed_literals >= 1, "{}", simp.stats());
    // ¬x1 forces x3; everything collapses to facts.
    assert_eq!(result.formula.num_hard(), 0);
    let model = result.reconstruct_model(&Assignment::for_vars(result.formula.num_vars()));
    assert_eq!(w.cost(&model), Some(0));
}

#[test]
fn infeasible_hard_clauses_detected() {
    let w = dimacs::parse_wcnf("p wcnf 1 3 9\n9 1 0\n9 -1 0\n1 1 0\n").unwrap();
    let mut simp = Simplifier::new();
    let result = simp.simplify(&w);
    assert!(result.infeasible);
}

#[test]
fn hard_subsumed_soft_clause_dropped() {
    // Hard (x1 ∨ x2) subsumes soft (x1 ∨ x2 ∨ x3): the soft clause can
    // never cost anything in a feasible model.
    let w = dimacs::parse_wcnf("p wcnf 3 2 9\n9 1 2 0\n4 1 2 3 0\n").unwrap();
    let mut simp = Simplifier::with_config(SimpConfig {
        bve: false,
        probing: false,
        ..SimpConfig::default()
    });
    let result = simp.simplify(&w);
    assert!(!result.infeasible);
    assert_eq!(result.formula.num_soft(), 0);
    assert_eq!(result.cost_offset, 0);
    assert_eq!(simp.stats().soft_dropped, 1);
    let model = result.reconstruct_model(&optimum(&result.formula).unwrap().1);
    assert_eq!(w.cost(&model), Some(0));
}

#[test]
fn pure_literal_removed_with_reconstruction() {
    // x1 occurs only positively in the hard part; x2 is soft-frozen.
    let w = dimacs::parse_wcnf("p wcnf 2 3 9\n9 1 2 0\n9 1 -2 0\n1 2 0\n").unwrap();
    let mut simp = Simplifier::with_config(SimpConfig {
        probing: false,
        subsumption: false,
        ..SimpConfig::default()
    });
    let result = simp.simplify(&w);
    assert!(!result.infeasible);
    assert!(simp.stats().pure_literals >= 1, "{}", simp.stats());
    assert_eq!(result.formula.num_hard(), 0);
    if let Some((cost, m)) = optimum(&result.formula) {
        let full = result.reconstruct_model(&m);
        assert_eq!(w.cost(&full), Some(cost));
    }
}

#[test]
fn weighted_offsets_accumulate() {
    // Two soft clauses die to hard units with different weights.
    let w = dimacs::parse_wcnf("p wcnf 2 4 9\n9 1 0\n9 2 0\n5 -1 0\n7 -2 0\n").unwrap();
    let mut simp = Simplifier::new();
    let result = simp.simplify(&w);
    assert_eq!(result.cost_offset, 12);
    let model = result.reconstruct_model(&Assignment::for_vars(0));
    assert_eq!(w.cost(&model), Some(12));
}

#[test]
fn new_format_input_simplifies_identically() {
    let classic = dimacs::parse_wcnf("p wcnf 3 4 9\n9 -1 2 0\n9 -2 3 0\n1 -3 0\n1 1 0\n").unwrap();
    let modern = dimacs::parse_wcnf("h -1 2 0\nh -2 3 0\n1 -3 0\n1 1 0\n").unwrap();
    let a = Simplifier::new().simplify(&classic);
    let b = Simplifier::new().simplify(&modern);
    assert_eq!(a, b);
}

#[test]
fn stats_describe_the_run() {
    let w = dimacs::parse_wcnf("p wcnf 4 4 9\n9 -1 2 0\n9 -2 3 0\n9 -3 4 0\n1 1 0\n").unwrap();
    let mut simp = Simplifier::new();
    let _ = simp.simplify(&w);
    let st = simp.stats();
    assert_eq!(st.vars_in, 4);
    assert_eq!(st.hard_in, 3);
    assert_eq!(st.soft_in, 1);
    assert!(st.rounds >= 1);
    assert!(st.vars_out <= st.vars_in);
    let text = st.to_string();
    assert!(text.contains("vars 4->"), "{text}");
}
