//! The simplification engine: occurrence-list clause database over the
//! hard clauses, top-level facts, subsumption, probing, and bounded
//! variable elimination.
//!
//! Only *hard* clauses enter the database. Soft clauses freeze their
//! variables on entry and are rewritten once at the end (facts applied,
//! hard-subsumed ones dropped), which keeps every transformation
//! cost-preserving — see the crate docs for the argument per technique.

use coremax_cnf::simp::{Reconstructor, SimpResult, VarMap};
use coremax_cnf::{Lit, Var, WcnfFormula, Weight};
use coremax_sat::{Budget, Solver};

use crate::{SimpConfig, SimpStats};

const VALUE_UNDEF: u8 = 0;
const VALUE_TRUE: u8 = 1;
const VALUE_FALSE: u8 = 2;

/// Candidate-pair budget of one subsumption round; bounds the quadratic
/// worst case without a time source.
const SUBSUME_STEP_BUDGET: u64 = 2_000_000;

/// One hard clause in the database. Literals stay sorted (by code), so
/// membership is a binary search and subset tests are linear merges.
#[derive(Debug, Clone)]
struct SClause {
    lits: Vec<Lit>,
    /// 64-bit literal signature: `C ⊆ D` implies `sig(C) & !sig(D) == 0`.
    sig: u64,
    dead: bool,
}

fn signature(lits: &[Lit]) -> u64 {
    lits.iter().fold(0u64, |s, l| s | 1u64 << (l.code() & 63))
}

/// Sorted-slice subset test.
fn is_subset(small: &[Lit], big: &[Lit]) -> bool {
    let mut j = 0;
    for &l in small {
        loop {
            if j == big.len() {
                return false;
            }
            if big[j] == l {
                j += 1;
                break;
            }
            if big[j] > l {
                return false;
            }
            j += 1;
        }
    }
    true
}

/// `small \ {skip} ⊆ big`, both sorted.
fn is_subset_except(small: &[Lit], skip: Lit, big: &[Lit]) -> bool {
    let mut j = 0;
    for &l in small {
        if l == skip {
            continue;
        }
        loop {
            if j == big.len() {
                return false;
            }
            if big[j] == l {
                j += 1;
                break;
            }
            if big[j] > l {
                return false;
            }
            j += 1;
        }
    }
    true
}

pub(crate) struct Engine<'a> {
    cfg: &'a SimpConfig,
    num_vars: usize,
    clauses: Vec<SClause>,
    /// Per-literal occurrence lists (clause indices). Entries go stale
    /// when a clause dies or is strengthened; every read re-checks
    /// liveness and membership.
    occ: Vec<Vec<u32>>,
    frozen: Vec<bool>,
    /// Top-level facts: per-variable VALUE_* byte.
    value: Vec<u8>,
    /// Facts not yet applied to the clause database.
    queue: Vec<Lit>,
    qhead: usize,
    recon: Reconstructor,
    stats: SimpStats,
    infeasible: bool,
    /// Cooperative cancellation: polled between passes and inside the
    /// elimination/probing/subsumption loops.
    budget: Budget,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        cfg: &'a SimpConfig,
        wcnf: &WcnfFormula,
        extra_frozen: &[Var],
        budget: Budget,
    ) -> Self {
        let n = wcnf.num_vars();
        let mut engine = Engine {
            cfg,
            num_vars: n,
            clauses: Vec::with_capacity(wcnf.num_hard()),
            occ: vec![Vec::new(); 2 * n],
            frozen: vec![false; n],
            value: vec![VALUE_UNDEF; n],
            queue: Vec::new(),
            qhead: 0,
            recon: Reconstructor::new(),
            stats: SimpStats {
                vars_in: n as u64,
                hard_in: wcnf.num_hard() as u64,
                soft_in: wcnf.num_soft() as u64,
                ..SimpStats::default()
            },
            infeasible: false,
            budget,
        };
        for s in wcnf.soft_clauses() {
            for &l in s.clause.lits() {
                engine.frozen[l.var().index()] = true;
            }
        }
        for &v in extra_frozen {
            if v.index() < n {
                engine.frozen[v.index()] = true;
            }
        }
        for c in wcnf.hard_clauses() {
            engine.add_clause(c.lits().to_vec());
            if engine.infeasible {
                break;
            }
        }
        engine
    }

    pub(crate) fn into_stats(self) -> SimpStats {
        self.stats
    }

    fn lit_value(&self, l: Lit) -> u8 {
        match self.value[l.var().index()] {
            VALUE_UNDEF => VALUE_UNDEF,
            v if (v == VALUE_TRUE) == l.is_positive() => VALUE_TRUE,
            _ => VALUE_FALSE,
        }
    }

    /// Establishes `lit` as a top-level fact (recorded for
    /// reconstruction) and queues it for database substitution.
    fn enqueue_fact(&mut self, lit: Lit) {
        match self.lit_value(lit) {
            VALUE_TRUE => {}
            VALUE_FALSE => self.infeasible = true,
            _ => {
                self.value[lit.var().index()] = if lit.is_positive() {
                    VALUE_TRUE
                } else {
                    VALUE_FALSE
                };
                self.recon.push_unit(lit);
                self.queue.push(lit);
                self.stats.facts += 1;
            }
        }
    }

    /// Normalises and stores a hard clause: sort, dedup, drop
    /// tautologies, apply current facts; units become facts instead of
    /// clauses, the empty clause refutes the instance.
    fn add_clause(&mut self, mut lits: Vec<Lit>) {
        lits.sort_unstable();
        lits.dedup();
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return; // tautology
        }
        let mut satisfied = false;
        lits.retain(|&l| match self.lit_value(l) {
            VALUE_TRUE => {
                satisfied = true;
                false
            }
            VALUE_FALSE => false,
            _ => true,
        });
        if satisfied {
            return;
        }
        match lits.len() {
            0 => self.infeasible = true,
            1 => self.enqueue_fact(lits[0]),
            _ => {
                let idx = self.clauses.len() as u32;
                for &l in &lits {
                    self.occ[l.index()].push(idx);
                }
                let sig = signature(&lits);
                self.clauses.push(SClause {
                    lits,
                    sig,
                    dead: false,
                });
            }
        }
    }

    /// Removes `lit` from clause `ci`; the clause may collapse to a
    /// fact.
    fn strengthen(&mut self, ci: usize, lit: Lit) {
        let clause = &mut self.clauses[ci];
        debug_assert!(!clause.dead);
        let at = clause.lits.binary_search(&lit).expect("literal present");
        clause.lits.remove(at);
        clause.sig = signature(&clause.lits);
        if clause.lits.len() == 1 {
            let unit = clause.lits[0];
            clause.dead = true;
            self.enqueue_fact(unit);
        }
    }

    /// Applies queued facts to the database until fixpoint.
    fn propagate(&mut self) {
        while self.qhead < self.queue.len() {
            if self.infeasible {
                return;
            }
            let l = self.queue[self.qhead];
            self.qhead += 1;
            // Clauses containing the true literal are satisfied forever.
            let sat_list = std::mem::take(&mut self.occ[l.index()]);
            for &ci in &sat_list {
                let clause = &mut self.clauses[ci as usize];
                if !clause.dead && clause.lits.binary_search(&l).is_ok() {
                    clause.dead = true;
                }
            }
            // Clauses containing the false literal lose it.
            let str_list = std::mem::take(&mut self.occ[(!l).index()]);
            for &ci in &str_list {
                let clause = &self.clauses[ci as usize];
                if !clause.dead && clause.lits.binary_search(&!l).is_ok() {
                    self.strengthen(ci as usize, !l);
                }
            }
        }
    }

    /// One signature-accelerated subsumption + self-subsuming-resolution
    /// pass over the live clauses.
    fn subsume_round(&mut self) {
        let mut budget = SUBSUME_STEP_BUDGET;
        for i in 0..self.clauses.len() {
            if budget == 0 || self.infeasible {
                break;
            }
            if i.is_multiple_of(256) && self.budget.interrupted() {
                break;
            }
            if self.clauses[i].dead {
                continue;
            }
            let c_lits = self.clauses[i].lits.clone();
            let c_sig = self.clauses[i].sig;
            // Backward subsumption: kill every D ⊇ C. Scanning the
            // occurrence list of C's rarest literal sees every such D.
            let best = c_lits
                .iter()
                .copied()
                .min_by_key(|l| self.occ[l.index()].len())
                .expect("live clauses are non-empty");
            let cand = std::mem::take(&mut self.occ[best.index()]);
            for &dj in &cand {
                let dj = dj as usize;
                budget = budget.saturating_sub(1);
                if dj == i {
                    continue;
                }
                let d = &self.clauses[dj];
                if d.dead
                    || c_sig & !d.sig != 0
                    || c_lits.len() > d.lits.len()
                    || !is_subset(&c_lits, &d.lits)
                {
                    continue;
                }
                self.clauses[dj].dead = true;
                self.stats.subsumed += 1;
            }
            self.occ[best.index()] = cand;
            // Self-subsuming resolution: C = (A ∨ l), D = (A' ∨ ¬l) with
            // A ⊆ A' lets ¬l be deleted from D.
            for &l in &c_lits {
                if budget == 0 {
                    break;
                }
                let sig_wo = signature_without(&c_lits, l);
                let cand = std::mem::take(&mut self.occ[(!l).index()]);
                for &dj in &cand {
                    let dj = dj as usize;
                    budget = budget.saturating_sub(1);
                    let d = &self.clauses[dj];
                    if d.dead
                        || c_lits.len() > d.lits.len()
                        || sig_wo & !d.sig != 0
                        || d.lits.binary_search(&!l).is_err()
                        || !is_subset_except(&c_lits, l, &d.lits)
                    {
                        continue;
                    }
                    self.strengthen(dj, !l);
                    self.stats.strengthened += 1;
                }
                self.occ[(!l).index()] = cand;
                if self.clauses[i].dead {
                    break; // C collapsed via a fact cascade
                }
            }
        }
    }

    /// Failed-literal probing on the CDCL engine: load the live
    /// clauses, probe binary-clause literals, harvest every level-0
    /// fact the solver accumulates.
    fn probe_round(&mut self) {
        // Probing only pays when binary clauses give propagation roots;
        // building a solver for a formula without them is pure loss.
        if !self.clauses.iter().any(|c| !c.dead && c.lits.len() == 2) {
            return;
        }
        let mut solver = Solver::new();
        solver.ensure_vars(self.num_vars);
        let mut in_binary = vec![false; 2 * self.num_vars];
        for clause in self.clauses.iter().filter(|c| !c.dead) {
            solver.add_clause(clause.lits.iter().copied());
            if clause.lits.len() == 2 {
                for &l in &clause.lits {
                    in_binary[l.index()] = true;
                }
            }
        }
        let mut remaining = self.cfg.probe_budget;
        for (code, _) in in_binary.iter().enumerate().filter(|&(_, &b)| b) {
            if remaining == 0 || !solver.is_ok() {
                break;
            }
            if remaining.is_multiple_of(64) && self.budget.interrupted() {
                break;
            }
            let lit = Lit::from_code(code as u32);
            remaining -= 1;
            self.stats.probes += 1;
            if solver.probe_lit(lit) == Some(true) {
                self.stats.failed_literals += 1;
                solver.import_units([!lit]);
            }
        }
        if !solver.is_ok() {
            self.infeasible = true;
            return;
        }
        let facts: Vec<Lit> = solver.level0_literals().to_vec();
        for l in facts {
            self.enqueue_fact(l);
        }
        self.propagate();
    }

    /// Bounded variable elimination plus pure-literal removal over the
    /// non-frozen, unassigned variables, cheapest first.
    fn bve_round(&mut self) {
        let mut order: Vec<(usize, usize)> = (0..self.num_vars)
            .filter(|&v| !self.frozen[v] && self.value[v] == VALUE_UNDEF)
            .map(|v| {
                let p = self.occ[Lit::positive(Var::new(v as u32)).index()].len();
                let n = self.occ[Lit::negative(Var::new(v as u32)).index()].len();
                (p * n, v)
            })
            .collect();
        order.sort_unstable();
        for (i, (_, v)) in order.into_iter().enumerate() {
            if self.infeasible {
                return;
            }
            if i.is_multiple_of(64) && self.budget.interrupted() {
                return;
            }
            if self.value[v] != VALUE_UNDEF {
                continue; // fixed by a unit resolvent meanwhile
            }
            let var = Var::new(v as u32);
            let pos_lit = Lit::positive(var);
            let neg_lit = Lit::negative(var);
            let pos = self.live_occurrences(pos_lit);
            let neg = self.live_occurrences(neg_lit);
            match (pos.is_empty(), neg.is_empty()) {
                (true, true) => continue,
                (false, true) => {
                    self.eliminate_pure(pos_lit, &pos);
                    continue;
                }
                (true, false) => {
                    self.eliminate_pure(neg_lit, &neg);
                    continue;
                }
                (false, false) => {}
            }
            if pos.len() * neg.len() > self.cfg.max_resolvent_pairs {
                continue;
            }
            // Count (and collect) non-tautological resolvents; bail as
            // soon as the growth budget is blown.
            let limit = pos.len() + neg.len() + self.cfg.grow_limit;
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut within_budget = true;
            'count: for &pi in &pos {
                for &ni in &neg {
                    if let Some(r) = resolve(&self.clauses[pi].lits, &self.clauses[ni].lits, var) {
                        resolvents.push(r);
                        if resolvents.len() > limit {
                            within_budget = false;
                            break 'count;
                        }
                    }
                }
            }
            if !within_budget {
                continue;
            }
            // Eliminate: save the smaller side for reconstruction
            // (clauses pivot-first, then the opposite-polarity default).
            let (saved, pivot) = if pos.len() <= neg.len() {
                (&pos, pos_lit)
            } else {
                (&neg, neg_lit)
            };
            for &ci in saved.iter() {
                self.recon.push_clause(pivot, &self.clauses[ci].lits);
            }
            self.recon.push_unit(!pivot);
            for &ci in pos.iter().chain(neg.iter()) {
                self.clauses[ci].dead = true;
            }
            for r in resolvents {
                self.add_clause(r);
                if self.infeasible {
                    return;
                }
            }
            self.stats.eliminated_vars += 1;
            self.propagate();
        }
    }

    /// Live clause indices currently containing `lit`.
    fn live_occurrences(&self, lit: Lit) -> Vec<usize> {
        self.occ[lit.index()]
            .iter()
            .map(|&ci| ci as usize)
            .filter(|&ci| {
                let c = &self.clauses[ci];
                !c.dead && c.lits.binary_search(&lit).is_ok()
            })
            .collect()
    }

    fn eliminate_pure(&mut self, lit: Lit, occurrences: &[usize]) {
        self.recon.push_unit(lit);
        for &ci in occurrences {
            self.clauses[ci].dead = true;
        }
        self.stats.pure_literals += 1;
    }

    /// Runs the pipeline and assembles the [`SimpResult`].
    pub(crate) fn run(&mut self, wcnf: &WcnfFormula) -> SimpResult {
        self.propagate();
        // Plain MaxSAT fast path: with no live hard clauses there is
        // nothing any round could rewrite — go straight to the soft
        // pass (which still applies facts from original hard units).
        let mut round = if self.clauses.iter().all(|c| c.dead) {
            self.cfg.max_rounds
        } else {
            0
        };
        // Poll the budget between pipeline passes: a stop flag raised
        // (or a deadline expired) mid-preprocessing abandons further
        // rewriting. Everything already applied is sound on its own, so
        // the partially simplified result stays correct.
        while !self.infeasible && round < self.cfg.max_rounds && !self.budget.interrupted() {
            round += 1;
            self.stats.rounds += 1;
            let before = self.change_marker();
            if self.cfg.subsumption {
                let subsumed0 = self.stats.subsumed + self.stats.strengthened;
                self.subsume_round();
                self.propagate();
                if coremax_obs::tracing_enabled() {
                    coremax_obs::emit(coremax_obs::Event::SimpPass {
                        pass: "subsume",
                        round: round as u64,
                        removed: self.stats.subsumed + self.stats.strengthened - subsumed0,
                    });
                }
            }
            if self.cfg.probing && round == 1 && !self.budget.interrupted() {
                let failed0 = self.stats.failed_literals;
                self.probe_round();
                if coremax_obs::tracing_enabled() {
                    coremax_obs::emit(coremax_obs::Event::SimpPass {
                        pass: "probe",
                        round: round as u64,
                        removed: self.stats.failed_literals - failed0,
                    });
                }
            }
            if self.cfg.bve && !self.budget.interrupted() {
                let eliminated0 = self.stats.eliminated_vars + self.stats.pure_literals;
                self.bve_round();
                if coremax_obs::tracing_enabled() {
                    coremax_obs::emit(coremax_obs::Event::SimpPass {
                        pass: "bve",
                        round: round as u64,
                        removed: self.stats.eliminated_vars + self.stats.pure_literals
                            - eliminated0,
                    });
                }
            }
            self.propagate();
            if self.change_marker() == before {
                break;
            }
        }
        self.finish(wcnf)
    }

    /// A fingerprint of "has any rewrite happened": compares equal
    /// across a round iff the round changed nothing.
    fn change_marker(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.stats.facts,
            self.stats.subsumed,
            self.stats.strengthened,
            self.stats.eliminated_vars,
            self.stats.pure_literals,
            self.stats.failed_literals,
        )
    }

    /// Applies the facts to the soft clauses, drops hard-subsumed
    /// softs, compacts the variable space, and bundles the result.
    fn finish(&mut self, wcnf: &WcnfFormula) -> SimpResult {
        if self.infeasible {
            return SimpResult {
                formula: WcnfFormula::new(),
                var_map: VarMap::from_kept(&vec![false; self.num_vars]),
                reconstructor: Reconstructor::new(),
                cost_offset: 0,
                infeasible: true,
            };
        }
        let mut cost_offset: Weight = 0;
        let mut soft_out: Vec<(Vec<Lit>, Weight)> = Vec::with_capacity(wcnf.num_soft());
        'soft: for s in wcnf.soft_clauses() {
            let mut lits = s.clause.lits().to_vec();
            lits.sort_unstable();
            lits.dedup();
            if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
                // Tautological soft clause: satisfied by every
                // assignment, cost-free.
                self.stats.soft_dropped += 1;
                continue;
            }
            let mut satisfied = false;
            lits.retain(|&l| match self.lit_value(l) {
                VALUE_TRUE => {
                    satisfied = true;
                    false
                }
                VALUE_FALSE => false,
                _ => true,
            });
            if satisfied {
                self.stats.soft_dropped += 1;
                continue;
            }
            if lits.is_empty() {
                // Emptied by hard facts: falsified in every feasible
                // model. Its weight is a constant the caller re-adds.
                cost_offset = cost_offset.saturating_add(s.weight);
                self.stats.soft_falsified += 1;
                continue;
            }
            // A live hard clause D ⊆ S means every feasible model
            // satisfies S: the soft clause can never cost anything.
            if self.cfg.subsumption {
                let s_sig = signature(&lits);
                for &l in &lits {
                    for &dj in &self.occ[l.index()] {
                        let d = &self.clauses[dj as usize];
                        if !d.dead
                            && d.sig & !s_sig == 0
                            && d.lits.len() <= lits.len()
                            && is_subset(&d.lits, &lits)
                        {
                            self.stats.soft_dropped += 1;
                            continue 'soft;
                        }
                    }
                }
            }
            soft_out.push((lits, s.weight));
        }
        // Compact the variable space to the survivors. Frozen variables
        // survive unconditionally (unless fixed by a fact): callers
        // freeze exactly the variables they will relax or assume after
        // preprocessing, so those must keep an image in the new space
        // even when every clause around them died.
        let mut keep = vec![false; self.num_vars];
        for clause in self.clauses.iter().filter(|c| !c.dead) {
            for &l in &clause.lits {
                keep[l.var().index()] = true;
            }
        }
        for (lits, _) in &soft_out {
            for &l in lits {
                keep[l.var().index()] = true;
            }
        }
        for (v, kept) in keep.iter_mut().enumerate() {
            if self.frozen[v] && self.value[v] == VALUE_UNDEF {
                *kept = true;
            }
        }
        let var_map = VarMap::from_kept(&keep);
        let mut formula = WcnfFormula::with_vars(var_map.num_new_vars());
        for clause in self.clauses.iter().filter(|c| !c.dead) {
            formula.add_hard(
                clause
                    .lits
                    .iter()
                    .map(|&l| var_map.map_lit(l).expect("kept var")),
            );
        }
        for (lits, weight) in &soft_out {
            formula.add_soft(
                lits.iter().map(|&l| var_map.map_lit(l).expect("kept var")),
                *weight,
            );
        }
        self.stats.hard_out = formula.num_hard() as u64;
        self.stats.soft_out = formula.num_soft() as u64;
        self.stats.vars_out = formula.num_vars() as u64;
        SimpResult {
            formula,
            var_map,
            reconstructor: std::mem::take(&mut self.recon),
            cost_offset,
            infeasible: false,
        }
    }
}

/// Signature of `lits` with `skip` excluded (recomputed, since bucket
/// collisions make bit removal unsound).
fn signature_without(lits: &[Lit], skip: Lit) -> u64 {
    lits.iter()
        .filter(|&&l| l != skip)
        .fold(0u64, |s, l| s | 1u64 << (l.code() & 63))
}

/// Resolvent of `c1` (containing `var` positively) and `c2` (containing
/// it negatively) on `var`; `None` when tautological. Inputs sorted,
/// output sorted and deduplicated.
fn resolve(c1: &[Lit], c2: &[Lit], var: Var) -> Option<Vec<Lit>> {
    let mut out = Vec::with_capacity(c1.len() + c2.len() - 2);
    let (mut i, mut j) = (0, 0);
    loop {
        if i < c1.len() && c1[i].var() == var {
            i += 1; // skip the pivot
            continue;
        }
        if j < c2.len() && c2[j].var() == var {
            j += 1;
            continue;
        }
        match (c1.get(i), c2.get(j)) {
            (None, None) => break,
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), Some(&y)) => {
                if x == y {
                    out.push(x);
                    i += 1;
                    j += 1;
                } else if x.var() == y.var() {
                    return None; // opposite polarities: tautology
                } else if x < y {
                    out.push(x);
                    i += 1;
                } else {
                    out.push(y);
                    j += 1;
                }
            }
        }
    }
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d).unwrap()
    }

    #[test]
    fn resolve_merges_and_detects_tautologies() {
        let v = Var::new(0);
        let c1 = vec![lit(1), lit(2)];
        let c2 = vec![lit(-1), lit(3)];
        assert_eq!(resolve(&c1, &c2, v), Some(vec![lit(2), lit(3)]));
        let c3 = vec![lit(-1), lit(-2)];
        assert_eq!(resolve(&c1, &c3, v), None);
        let c4 = vec![lit(-1), lit(2)];
        assert_eq!(resolve(&c1, &c4, v), Some(vec![lit(2)]));
    }

    #[test]
    fn resolve_tautology_past_the_pivot() {
        // Pivot first in both clauses: the tautology between the
        // trailing literals must still be seen.
        let v = Var::new(2);
        let c1 = vec![lit(3), lit(4)];
        let c2 = vec![lit(-3), lit(-4)];
        assert_eq!(resolve(&c1, &c2, v), None);
        // And a mixed case where only one side trails the pivot.
        let c3 = vec![lit(1), lit(3)];
        let c4 = vec![lit(-3), lit(5)];
        assert_eq!(resolve(&c3, &c4, v), Some(vec![lit(1), lit(5)]));
    }

    #[test]
    fn subset_tests() {
        let mut a = vec![lit(1), lit(3)];
        let mut b = vec![lit(1), lit(2), lit(3)];
        a.sort_unstable();
        b.sort_unstable();
        assert!(is_subset(&a, &b));
        assert!(!is_subset(&b, &a));
        let mut c = vec![lit(1), lit(-2), lit(3)];
        c.sort_unstable();
        assert!(is_subset_except(&c, lit(-2), &b));
        assert!(!is_subset_except(&c, lit(3), &b));
    }

    #[test]
    fn signature_subset_property() {
        let mut a = vec![lit(5), lit(9)];
        let mut b = vec![lit(5), lit(7), lit(9)];
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(signature(&a) & !signature(&b), 0);
    }
}
