//! MaxSAT-aware CNF preprocessing for the `coremax` suite.
//!
//! Core-guided MaxSAT algorithms (msu1/msu3/msu4) spend nearly all of
//! their time in repeated SAT calls over the *same* working formula, so
//! shrinking that formula once — before the first core is extracted —
//! multiplies every SAT-engine gain across the whole run. This crate is
//! a SatELite-style simplifier with the twists MaxSAT requires:
//!
//! - **Frozen variables.** Soft-clause variables (and any extra the
//!   caller freezes) are never eliminated, because the MaxSAT driver
//!   will attach relaxation/assumption literals to them later. Only the
//!   hard clauses are rewritten; soft clauses are merely *simplified*
//!   by proven facts and dropped when a hard clause subsumes them
//!   (both cost-preserving).
//! - **Model reconstruction.** Every removal is pushed onto an
//!   elimination stack ([`coremax_cnf::simp::Reconstructor`]), so a
//!   model of the simplified formula extends to a model of the original
//!   with *identical* cost — `verify` keeps validating solutions
//!   against the untouched input.
//!
//! Techniques, in pipeline order:
//!
//! 1. top-level **unit propagation** and fact substitution,
//! 2. signature-based forward/backward **subsumption** and
//!    **self-subsuming resolution**,
//! 3. **failed-literal probing**, riding on the CDCL engine's watched
//!    propagation via the [`coremax_sat::Solver::probe_lit`] hook,
//! 4. bounded **variable elimination** (occurrence lists, resolvent
//!    counting with a growth budget) and **pure-literal** removal.
//!
//! # Examples
//!
//! Eliminate the hard-only chain around a soft core:
//!
//! ```
//! use coremax_cnf::{dimacs, WcnfFormula};
//! use coremax_simp::Simplifier;
//!
//! // Hard: x1→x2→x3, soft: ¬x3 and x1.
//! let wcnf = dimacs::parse_wcnf(
//!     "p wcnf 3 4 9\n9 -1 2 0\n9 -2 3 0\n1 -3 0\n1 1 0\n",
//! ).unwrap();
//! let mut simp = Simplifier::new();
//! let result = simp.simplify(&wcnf);
//! assert!(!result.infeasible);
//! // x2 occurs only in hard clauses: eliminated by resolution.
//! assert!(result.formula.num_vars() < wcnf.num_vars());
//! assert_eq!(simp.stats().eliminated_vars, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;

use coremax_cnf::{simp::SimpResult, Var, WcnfFormula};
use coremax_sat::Budget;

/// Tunable preprocessing parameters.
///
/// The defaults are conservative: no clause-count growth during
/// elimination, bounded probing, a handful of rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpConfig {
    /// Enable bounded variable elimination (and pure-literal removal).
    pub bve: bool,
    /// Enable subsumption and self-subsuming resolution.
    pub subsumption: bool,
    /// Enable failed-literal probing (first round only).
    pub probing: bool,
    /// Extra resolvents an elimination may add beyond the clauses it
    /// removes. 0 = classic "never grow" rule.
    pub grow_limit: usize,
    /// Skip elimination of variables whose positive × negative
    /// occurrence product exceeds this (resolvent counting would be
    /// quadratic on them).
    pub max_resolvent_pairs: usize,
    /// Maximum number of literals probed per run.
    pub probe_budget: usize,
    /// Maximum simplification rounds (each round = subsume → probe →
    /// eliminate → propagate).
    pub max_rounds: usize,
}

impl Default for SimpConfig {
    fn default() -> Self {
        SimpConfig {
            bve: true,
            subsumption: true,
            probing: true,
            grow_limit: 0,
            max_resolvent_pairs: 10_000,
            probe_budget: 2_000,
            max_rounds: 3,
        }
    }
}

/// Counters describing one preprocessing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct SimpStats {
    /// Simplification rounds executed.
    pub rounds: u64,
    /// Top-level facts established (original units, propagation,
    /// probing, unit resolvents).
    pub facts: u64,
    /// Literals probed.
    pub probes: u64,
    /// Probes that conflicted (each yields a fact).
    pub failed_literals: u64,
    /// Variables removed by bounded variable elimination.
    pub eliminated_vars: u64,
    /// Pure literals removed.
    pub pure_literals: u64,
    /// Hard clauses removed by subsumption.
    pub subsumed: u64,
    /// Literals removed from hard clauses by self-subsuming resolution.
    pub strengthened: u64,
    /// Soft clauses dropped (satisfied by facts, tautological, or
    /// subsumed by a hard clause) — all cost-free in feasible models.
    pub soft_dropped: u64,
    /// Soft clauses emptied by facts: falsified in every feasible
    /// model, charged to [`SimpResult`]'s `cost_offset`.
    pub soft_falsified: u64,
    /// Hard clauses before / after.
    pub hard_in: u64,
    /// Hard clauses surviving preprocessing.
    pub hard_out: u64,
    /// Soft clauses before.
    pub soft_in: u64,
    /// Soft clauses surviving preprocessing.
    pub soft_out: u64,
    /// Variables before.
    pub vars_in: u64,
    /// Variables surviving (compacted space size).
    pub vars_out: u64,
}

impl SimpStats {
    /// Appends the counters as a JSON object (hand-rolled, no serde;
    /// used by `--stats-json` and the bench artifacts).
    pub fn to_json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"rounds\": {}, \"facts\": {}, \"probes\": {}, \"failed_literals\": {}, \
             \"eliminated_vars\": {}, \"pure_literals\": {}, \"subsumed\": {}, \
             \"strengthened\": {}, \"soft_dropped\": {}, \"soft_falsified\": {}, \
             \"hard_in\": {}, \"hard_out\": {}, \"soft_in\": {}, \"soft_out\": {}, \
             \"vars_in\": {}, \"vars_out\": {}}}",
            self.rounds,
            self.facts,
            self.probes,
            self.failed_literals,
            self.eliminated_vars,
            self.pure_literals,
            self.subsumed,
            self.strengthened,
            self.soft_dropped,
            self.soft_falsified,
            self.hard_in,
            self.hard_out,
            self.soft_in,
            self.soft_out,
            self.vars_in,
            self.vars_out,
        );
    }
}

impl std::fmt::Display for SimpStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vars {}->{} hard {}->{} soft {}->{} | rounds={} facts={} elim={} pure={} \
             subsumed={} strengthened={} failed_lits={}/{} soft_dropped={} soft_falsified={}",
            self.vars_in,
            self.vars_out,
            self.hard_in,
            self.hard_out,
            self.soft_in,
            self.soft_out,
            self.rounds,
            self.facts,
            self.eliminated_vars,
            self.pure_literals,
            self.subsumed,
            self.strengthened,
            self.failed_literals,
            self.probes,
            self.soft_dropped,
            self.soft_falsified,
        )
    }
}

/// The preprocessing pipeline. One instance can simplify many formulas;
/// [`Simplifier::stats`] always describes the most recent run.
///
/// See the [crate docs](crate) for the technique inventory and the
/// soundness contract.
#[derive(Debug, Clone, Default)]
pub struct Simplifier {
    config: SimpConfig,
    stats: SimpStats,
    budget: Budget,
}

impl Simplifier {
    /// A simplifier with the default configuration.
    #[must_use]
    pub fn new() -> Self {
        Simplifier::default()
    }

    /// A simplifier with an explicit configuration.
    #[must_use]
    pub fn with_config(config: SimpConfig) -> Self {
        Simplifier {
            config,
            stats: SimpStats::default(),
            budget: Budget::new(),
        }
    }

    /// Makes the pipeline cooperate with `budget`'s stop flags and
    /// deadline: each pass (and the inner elimination/probing loops)
    /// polls for interruption and stops rewriting early. Every rewrite
    /// already applied is individually sound, so a cancelled run still
    /// returns a correct (merely less simplified) [`SimpResult`].
    /// Conflict/propagation caps do not apply to preprocessing.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SimpConfig {
        &self.config
    }

    /// Counters of the most recent [`Simplifier::simplify`] call.
    #[must_use]
    pub fn stats(&self) -> &SimpStats {
        &self.stats
    }

    /// Simplifies `wcnf` with every soft-clause variable frozen.
    ///
    /// This is the contract MaxSAT drivers need: relaxation/assumption
    /// variables are attached to soft clauses *after* preprocessing, so
    /// no variable a soft clause mentions may be resolved away.
    #[must_use]
    pub fn simplify(&mut self, wcnf: &WcnfFormula) -> SimpResult {
        self.simplify_frozen(wcnf, &[])
    }

    /// Simplifies `wcnf` freezing the soft-clause variables *plus*
    /// `extra_frozen` (e.g. variables the caller will assume later).
    #[must_use]
    pub fn simplify_frozen(&mut self, wcnf: &WcnfFormula, extra_frozen: &[Var]) -> SimpResult {
        if wcnf.num_hard() == 0 {
            // Plain MaxSAT: every variable is frozen and there are no
            // facts to derive — the pipeline is provably a no-op, so
            // skip the occurrence-list build entirely.
            self.stats = SimpStats {
                vars_in: wcnf.num_vars() as u64,
                vars_out: wcnf.num_vars() as u64,
                soft_in: wcnf.num_soft() as u64,
                soft_out: wcnf.num_soft() as u64,
                ..SimpStats::default()
            };
            return SimpResult::identity(wcnf);
        }
        let mut engine = engine::Engine::new(&self.config, wcnf, extra_frozen, self.budget.clone());
        let result = engine.run(wcnf);
        self.stats = engine.into_stats();
        result
    }
}
