//! Design-debugging MaxSAT instances (Safarpour et al., FMCAD'07).
//!
//! The application that motivated the paper: a design fails simulation
//! against a golden reference, and the debugger must localise the error.
//! The MaxSAT formulation constrains the buggy netlist's CNF with the
//! observed input/output vectors as **hard** clauses and makes every
//! gate's characteristic clauses **soft**; a maximum satisfiable subset
//! leaves exactly the suspect gates' clauses falsified.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use coremax_cnf::{Lit, Var, WcnfFormula};

use crate::{tseitin, Circuit, Gate};

/// A generated design-debugging instance.
#[derive(Debug, Clone)]
pub struct DebugInstance {
    /// The partial MaxSAT formulation (hard I/O constraints, soft gate
    /// clauses — unweighted).
    pub wcnf: WcnfFormula,
    /// Index of the mutated gate in the buggy circuit.
    pub bug_gate: usize,
    /// Number of simulation vectors constrained.
    pub num_vectors: usize,
    /// Optimum cost is at most this (the bug gate's clause count per
    /// vector, summed over vectors): blaming the bug gate everywhere
    /// explains all observations.
    pub cost_upper_bound: u64,
}

/// Mutates one randomly chosen two-input gate of `circuit` into a
/// different gate type (the "design error"). Returns the buggy circuit
/// and the mutated gate index, or `None` if there is no two-input gate.
#[must_use]
pub fn mutate_gate(circuit: &Circuit, seed: u64) -> Option<(Circuit, usize)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let candidates: Vec<usize> = circuit
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| g.fanin().len() == 2)
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let target = candidates[rng.gen_range(0..candidates.len())];
    let mut out = Circuit::new(circuit.num_inputs());
    for (i, gate) in circuit.gates().iter().enumerate() {
        let new_gate = if i == target {
            swap_gate_type(gate, &mut rng)
        } else {
            *gate
        };
        out.add_gate(new_gate);
    }
    for &o in circuit.outputs() {
        out.mark_output(o);
    }
    Some((out, target))
}

fn swap_gate_type(gate: &Gate, rng: &mut SmallRng) -> Gate {
    let fanin = gate.fanin();
    let (a, b) = (fanin[0], fanin[1]);
    let options = [
        Gate::And(a, b),
        Gate::Or(a, b),
        Gate::Xor(a, b),
        Gate::Nand(a, b),
        Gate::Nor(a, b),
        Gate::Xnor(a, b),
    ];
    loop {
        let candidate = options[rng.gen_range(0..options.len())];
        if candidate != *gate {
            return candidate;
        }
    }
}

/// Builds a design-debugging MaxSAT instance.
///
/// The golden `reference` circuit is simulated on `num_vectors` random
/// input vectors; the observed I/O pairs become hard unit clauses over
/// a fresh CNF copy of the `buggy` circuit per vector, whose gate
/// clauses are soft. A MaxSAT solver then finds the smallest set of
/// gate-clause violations explaining all observations — error
/// localisation.
///
/// Returns `None` if the two circuits have different interfaces.
#[must_use]
pub fn debug_instance(
    reference: &Circuit,
    buggy: &Circuit,
    bug_gate: usize,
    num_vectors: usize,
    seed: u64,
) -> Option<DebugInstance> {
    if reference.num_inputs() != buggy.num_inputs()
        || reference.outputs().len() != buggy.outputs().len()
    {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut wcnf = WcnfFormula::new();
    let enc = tseitin::encode(buggy);
    let vars_per_copy = enc.formula.num_vars();
    let mut bug_clause_count = 0u64;

    for copy in 0..num_vectors {
        let offset = (copy * vars_per_copy) as u32;
        let shift = |l: Lit| Lit::new(Var::new(l.var().index() as u32 + offset), l.is_positive());

        // Soft gate clauses for this copy.
        for (g, clause_ids) in enc.gate_clauses.iter().enumerate() {
            for &ci in clause_ids {
                let clause = enc.formula.clause(ci);
                wcnf.add_soft(clause.lits().iter().map(|&l| shift(l)), 1);
                if g == bug_gate {
                    bug_clause_count += 1;
                }
            }
        }

        // Simulate the reference on a random vector.
        let inputs: Vec<bool> = (0..reference.num_inputs()).map(|_| rng.gen()).collect();
        let outputs = reference.eval(&inputs);

        // Hard I/O observations.
        for (i, &v) in inputs.iter().enumerate() {
            let l = Lit::new(Var::new(enc.input_vars[i].index() as u32 + offset), v);
            wcnf.add_hard([l]);
        }
        for (o, &v) in outputs.iter().enumerate() {
            let base = enc.output_lits[o];
            let l = shift(if v { base } else { !base });
            wcnf.add_hard([l]);
        }
    }

    Some(DebugInstance {
        wcnf,
        bug_gate,
        num_vectors,
        cost_upper_bound: bug_clause_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn mutation_changes_gate_only() {
        let c = builders::ripple_carry_adder(3);
        let (buggy, idx) = mutate_gate(&c, 7).expect("adder has 2-input gates");
        assert_eq!(c.num_gates(), buggy.num_gates());
        let mut diffs = 0;
        for (a, b) in c.gates().iter().zip(buggy.gates()) {
            if a != b {
                diffs += 1;
            }
        }
        assert_eq!(diffs, 1);
        assert_ne!(c.gates()[idx], buggy.gates()[idx]);
    }

    #[test]
    fn mutation_deterministic_in_seed() {
        let c = builders::comparator(3);
        let a = mutate_gate(&c, 1).unwrap();
        let b = mutate_gate(&c, 1).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn no_two_input_gate_yields_none() {
        let mut c = Circuit::new(1);
        let g = c.not(c.input(0));
        c.mark_output(g);
        assert!(mutate_gate(&c, 0).is_none());
    }

    #[test]
    fn instance_structure() {
        let reference = builders::parity_tree(4);
        let (buggy, idx) = mutate_gate(&reference, 3).unwrap();
        let inst = debug_instance(&reference, &buggy, idx, 2, 99).unwrap();
        assert_eq!(inst.num_vectors, 2);
        assert!(inst.wcnf.num_hard() >= 2 * (4 + 1)); // inputs + outputs per vector
        assert!(inst.wcnf.num_soft() > 0);
        assert!(inst.wcnf.is_unweighted());
    }

    #[test]
    fn debugging_localises_the_error() {
        use coremax::{MaxSatSolver, Msu4};
        let reference = builders::parity_tree(4);
        let (buggy, idx) = mutate_gate(&reference, 5).unwrap();
        let inst = debug_instance(&reference, &buggy, idx, 3, 11).unwrap();
        let solution = Msu4::v2().solve(&inst.wcnf);
        let cost = solution.cost.expect("optimum found");
        // The bug gate's clauses explain everything, so the optimum is at
        // most the per-vector bug clause budget; if the mutation is
        // excited by some vector the cost is also positive.
        assert!(cost <= inst.cost_upper_bound, "cost {cost} too high");
    }

    #[test]
    fn consistent_observations_cost_zero() {
        // "Buggy" circuit identical to reference: nothing to explain.
        use coremax::{MaxSatSolver, Msu4};
        let reference = builders::parity_tree(3);
        let inst = debug_instance(&reference, &reference, 0, 2, 4).unwrap();
        let solution = Msu4::v2().solve(&inst.wcnf);
        assert_eq!(solution.cost, Some(0));
    }
}
