//! Parameterised circuit generators: the building blocks of the
//! benchmark families (arithmetic, comparators, parity, random logic).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Circuit, Signal};

/// An `n`-bit ripple-carry adder: inputs `a[0..n] ++ b[0..n]`, outputs
/// `sum[0..n] ++ [carry]`.
#[must_use]
pub fn ripple_carry_adder(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new(2 * n);
    let mut carry: Option<Signal> = None;
    let mut sums = Vec::with_capacity(n + 1);
    for i in 0..n {
        let a = c.input(i);
        let b = c.input(n + i);
        let axb = c.xor(a, b);
        match carry {
            None => {
                sums.push(axb);
                carry = Some(c.and(a, b));
            }
            Some(cin) => {
                let sum = c.xor(axb, cin);
                sums.push(sum);
                let ab = c.and(a, b);
                let axb_cin = c.and(axb, cin);
                carry = Some(c.or(ab, axb_cin));
            }
        }
    }
    for s in sums {
        c.mark_output(s);
    }
    c.mark_output(carry.expect("n >= 1"));
    c
}

/// An `n`-bit carry-select-style adder: same interface as
/// [`ripple_carry_adder`] but computed through majority gates —
/// structurally different, functionally identical.
#[must_use]
pub fn majority_adder(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new(2 * n);
    let mut carry: Option<Signal> = None;
    let mut sums = Vec::with_capacity(n + 1);
    for i in 0..n {
        let a = c.input(i);
        let b = c.input(n + i);
        match carry {
            None => {
                // sum = a ⊕ b via (a ∨ b) ∧ ¬(a ∧ b)
                let a_or_b = c.or(a, b);
                let a_and_b = c.and(a, b);
                let n_ab = c.not(a_and_b);
                sums.push(c.and(a_or_b, n_ab));
                carry = Some(a_and_b);
            }
            Some(cin) => {
                // sum = parity(a,b,cin) via double XNOR + NOT.
                let x1 = c.xnor(a, b);
                let x2 = c.xnor(x1, cin);
                sums.push(x2);
                // carry = majority(a,b,cin) = ab ∨ ac ∨ bc as NAND tree.
                let ab = c.nand(a, b);
                let ac = c.nand(a, cin);
                let bc = c.nand(b, cin);
                let t = c.and(ab, ac);
                let maj_n = c.and(t, bc);
                carry = Some(c.not(maj_n));
            }
        }
    }
    for s in sums {
        c.mark_output(s);
    }
    c.mark_output(carry.expect("n >= 1"));
    c
}

/// An `n×n`-bit array multiplier: inputs `a ++ b`, outputs the `2n`-bit
/// product.
#[must_use]
pub fn array_multiplier(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new(2 * n);
    // Partial products.
    let mut rows: Vec<Vec<Signal>> = Vec::with_capacity(n);
    for i in 0..n {
        let b = c.input(n + i);
        let mut row = Vec::with_capacity(n);
        for j in 0..n {
            let a = c.input(j);
            row.push(c.and(a, b));
        }
        rows.push(row);
    }
    // Accumulate with ripple additions, shifting each row by its index.
    let mut acc: Vec<Option<Signal>> = vec![None; 2 * n];
    for (i, row) in rows.iter().enumerate() {
        let mut carry: Option<Signal> = None;
        for (j, &pp) in row.iter().enumerate() {
            let pos = i + j;
            let (sum, cout) = add3(&mut c, Some(pp), acc[pos], carry);
            acc[pos] = Some(sum);
            carry = cout;
        }
        // Propagate the final carry.
        let mut pos = i + n;
        while let Some(cy) = carry {
            let (sum, cout) = add3(&mut c, Some(cy), acc[pos], None);
            acc[pos] = Some(sum);
            carry = cout;
            pos += 1;
        }
    }
    for slot in acc {
        let s = match slot {
            Some(s) => s,
            None => c.constant_false(),
        };
        c.mark_output(s);
    }
    c
}

/// One-or-two-or-three input addition helper returning `(sum, carry)`.
fn add3(
    c: &mut Circuit,
    x: Option<Signal>,
    y: Option<Signal>,
    z: Option<Signal>,
) -> (Signal, Option<Signal>) {
    let mut present: Vec<Signal> = [x, y, z].iter().flatten().copied().collect();
    match present.len() {
        0 => {
            let f = c.constant_false();
            (f, None)
        }
        1 => (present.pop().expect("one element"), None),
        2 => {
            let (a, b) = (present[0], present[1]);
            let sum = c.xor(a, b);
            let carry = c.and(a, b);
            (sum, Some(carry))
        }
        _ => {
            let (a, b, cin) = (present[0], present[1], present[2]);
            let axb = c.xor(a, b);
            let sum = c.xor(axb, cin);
            let ab = c.and(a, b);
            let axb_cin = c.and(axb, cin);
            let carry = c.or(ab, axb_cin);
            (sum, Some(carry))
        }
    }
}

/// An `n`-bit unsigned comparator: output 1 iff `a > b`.
#[must_use]
pub fn comparator(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new(2 * n);
    // gt_i = a_i ∧ ¬b_i;  eq_i = a_i ⊙ b_i; scan from MSB.
    let mut result: Option<Signal> = None;
    let mut all_eq: Option<Signal> = None;
    for i in (0..n).rev() {
        let a = c.input(i);
        let b = c.input(n + i);
        let nb = c.not(b);
        let gt = c.and(a, nb);
        let eq = c.xnor(a, b);
        let contribution = match all_eq {
            None => gt,
            Some(e) => c.and(e, gt),
        };
        result = Some(match result {
            None => contribution,
            Some(r) => c.or(r, contribution),
        });
        all_eq = Some(match all_eq {
            None => eq,
            Some(e) => c.and(e, eq),
        });
    }
    c.mark_output(result.expect("n >= 1"));
    c
}

/// An `n`-input parity (XOR) tree.
#[must_use]
pub fn parity_tree(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new(n);
    let mut layer: Vec<Signal> = (0..n).map(|i| c.input(i)).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(c.xor(pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    c.mark_output(layer[0]);
    c
}

/// An `n`-input parity chain (linear instead of tree) — same function as
/// [`parity_tree`], different structure.
#[must_use]
pub fn parity_chain(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new(n);
    let mut acc = c.input(0);
    for i in 1..n {
        let x = c.input(i);
        acc = c.xor(acc, x);
    }
    c.mark_output(acc);
    c
}

/// An `n`-bit barrel shifter (left rotate): data inputs `d[0..n]`,
/// shift-amount inputs `s[0..log2(n)]`, outputs the rotated word.
/// `n` must be a power of two.
#[must_use]
pub fn barrel_shifter(n: usize) -> Circuit {
    assert!(n.is_power_of_two() && n >= 2);
    let stages = n.trailing_zeros() as usize;
    let mut c = Circuit::new(n + stages);
    let mut word: Vec<Signal> = (0..n).map(|i| c.input(i)).collect();
    for stage in 0..stages {
        let sel = c.input(n + stage);
        let shift = 1usize << stage;
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            // mux(sel, word[(i + n - shift) % n], word[i])
            let rotated = word[(i + n - shift) % n];
            let stay = word[i];
            let nsel = c.not(sel);
            let a = c.and(sel, rotated);
            let b = c.and(nsel, stay);
            next.push(c.or(a, b));
        }
        word = next;
    }
    for w in word {
        c.mark_output(w);
    }
    c
}

/// A tiny `n`-bit ALU with a 2-bit opcode: 00 = add, 01 = and,
/// 10 = or, 11 = xor. Inputs `a ++ b ++ op[0..2]`; outputs `n` result
/// bits (the adder's carry-out is dropped).
#[must_use]
pub fn alu(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new(2 * n + 2);
    let op0 = c.input(2 * n);
    let op1 = c.input(2 * n + 1);

    // Adder chain.
    let mut carry: Option<Signal> = None;
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let a = c.input(i);
        let b = c.input(n + i);
        let axb = c.xor(a, b);
        match carry {
            None => {
                sums.push(axb);
                carry = Some(c.and(a, b));
            }
            Some(cin) => {
                sums.push(c.xor(axb, cin));
                let ab = c.and(a, b);
                let axb_cin = c.and(axb, cin);
                carry = Some(c.or(ab, axb_cin));
            }
        }
    }

    // Bitwise units and a 4-way mux per bit. Indexing is clearer than
    // iterators here: i addresses both input words (i, n + i) and sums[i].
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let a = c.input(i);
        let b = c.input(n + i);
        let and_bit = c.and(a, b);
        let or_bit = c.or(a, b);
        let xor_bit = c.xor(a, b);
        // sel0 = ¬op1∧¬op0 → add; ¬op1∧op0 → and; op1∧¬op0 → or; op1∧op0 → xor.
        let nop0 = c.not(op0);
        let nop1 = c.not(op1);
        let s_add = c.and(nop1, nop0);
        let s_and = c.and(nop1, op0);
        let s_or = c.and(op1, nop0);
        let s_xor = c.and(op1, op0);
        let t0 = c.and(s_add, sums[i]);
        let t1 = c.and(s_and, and_bit);
        let t2 = c.and(s_or, or_bit);
        let t3 = c.and(s_xor, xor_bit);
        let m01 = c.or(t0, t1);
        let m23 = c.or(t2, t3);
        let out = c.or(m01, m23);
        c.mark_output(out);
    }
    c
}

/// A pseudo-random combinational netlist over `num_inputs` inputs with
/// `num_gates` two-input gates; the last `num_outputs` nets become
/// outputs. Deterministic in `seed`.
#[must_use]
pub fn random_netlist(
    num_inputs: usize,
    num_gates: usize,
    num_outputs: usize,
    seed: u64,
) -> Circuit {
    assert!(num_inputs >= 1 && num_gates >= num_outputs && num_outputs >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Circuit::new(num_inputs);
    for _ in 0..num_gates {
        let pick = |rng: &mut SmallRng, c: &Circuit| Signal(rng.gen_range(0..c.num_nets()) as u32);
        let a = pick(&mut rng, &c);
        let b = pick(&mut rng, &c);
        match rng.gen_range(0..6) {
            0 => c.and(a, b),
            1 => c.or(a, b),
            2 => c.xor(a, b),
            3 => c.nand(a, b),
            4 => c.nor(a, b),
            _ => c.xnor(a, b),
        };
    }
    let total = c.num_nets();
    for k in 0..num_outputs {
        c.mark_output(Signal((total - 1 - k) as u32));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(mut v: u64, n: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(v & 1 == 1);
            v >>= 1;
        }
        out
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| u64::from(b) << i)
            .sum()
    }

    #[test]
    fn ripple_adder_adds() {
        let n = 4;
        let c = ripple_carry_adder(n);
        for a in 0..(1u64 << n) {
            for b in 0..(1u64 << n) {
                let mut inputs = to_bits(a, n);
                inputs.extend(to_bits(b, n));
                let out = c.eval(&inputs);
                assert_eq!(from_bits(&out), a + b, "{a}+{b}");
            }
        }
    }

    #[test]
    fn majority_adder_matches_ripple() {
        let n = 4;
        let r = ripple_carry_adder(n);
        let m = majority_adder(n);
        assert_ne!(r, m, "structures must differ");
        for bits in 0..(1u64 << (2 * n)) {
            let inputs = to_bits(bits, 2 * n);
            assert_eq!(r.eval(&inputs), m.eval(&inputs), "bits={bits:b}");
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let n = 3;
        let c = array_multiplier(n);
        for a in 0..(1u64 << n) {
            for b in 0..(1u64 << n) {
                let mut inputs = to_bits(a, n);
                inputs.extend(to_bits(b, n));
                let out = c.eval(&inputs);
                assert_eq!(from_bits(&out), a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn comparator_compares() {
        let n = 3;
        let c = comparator(n);
        for a in 0..(1u64 << n) {
            for b in 0..(1u64 << n) {
                let mut inputs = to_bits(a, n);
                inputs.extend(to_bits(b, n));
                assert_eq!(c.eval(&inputs)[0], a > b, "{a}>{b}");
            }
        }
    }

    #[test]
    fn parity_variants_agree() {
        for n in [1usize, 2, 3, 5, 8] {
            let t = parity_tree(n);
            let ch = parity_chain(n);
            for bits in 0..(1u64 << n) {
                let inputs = to_bits(bits, n);
                let expected = (bits.count_ones() % 2) == 1;
                assert_eq!(t.eval(&inputs)[0], expected);
                assert_eq!(ch.eval(&inputs)[0], expected);
            }
        }
    }

    #[test]
    fn barrel_shifter_rotates() {
        let n = 4;
        let c = barrel_shifter(n);
        for value in 0..(1u64 << n) {
            for shift in 0..n {
                let mut inputs = to_bits(value, n);
                inputs.extend(to_bits(shift as u64, 2));
                let out = c.eval(&inputs);
                let rotated = ((value << shift) | (value >> (n - shift))) & ((1 << n) - 1);
                assert_eq!(from_bits(&out), rotated, "value={value} shift={shift}");
            }
        }
    }

    #[test]
    fn alu_all_opcodes() {
        let n = 3;
        let c = alu(n);
        let mask = (1u64 << n) - 1;
        for a in 0..(1u64 << n) {
            for b in 0..(1u64 << n) {
                for op in 0..4u64 {
                    let mut inputs = to_bits(a, n);
                    inputs.extend(to_bits(b, n));
                    inputs.extend(to_bits(op, 2));
                    let out = from_bits(&c.eval(&inputs));
                    let expected = match op {
                        0 => (a + b) & mask,
                        1 => a & b,
                        2 => a | b,
                        _ => a ^ b,
                    };
                    assert_eq!(out, expected, "a={a} b={b} op={op}");
                }
            }
        }
    }

    #[test]
    fn random_netlist_deterministic() {
        let a = random_netlist(6, 30, 2, 42);
        let b = random_netlist(6, 30, 2, 42);
        assert_eq!(a, b);
        let c = random_netlist(6, 30, 2, 43);
        assert_ne!(a, c);
        assert_eq!(a.outputs().len(), 2);
        assert_eq!(a.num_gates(), 30);
    }
}
