//! Sequential circuits and bounded-model-checking unrolling.
//!
//! A [`SeqCircuit`] is a combinational core plus registers: register
//! outputs are appended to the primary inputs of the core, and each
//! register names the core net driving its next-state value.
//! [`unroll`] produces the `k`-step time expansion used by BMC (Biere
//! et al., TACAS'99, reference \[3\] of the paper): the CNF of the
//! unrolled circuit with a **safety property that holds** is
//! unsatisfiable — the model-checking benchmark family.

use crate::{Circuit, Gate, Signal};

/// A sequential circuit.
///
/// The combinational core's inputs are laid out as
/// `[primary inputs, register outputs]`; `registers[r]` gives register
/// `r`'s next-state net and initial value.
///
/// # Examples
///
/// A 2-bit counter whose "counter == 3 with carry-chain inconsistency"
/// property is checked in the module tests.
#[derive(Debug, Clone)]
pub struct SeqCircuit {
    /// Combinational core.
    pub core: Circuit,
    /// Number of true primary inputs (the first inputs of `core`).
    pub num_primary_inputs: usize,
    /// Per register: (next-state net in `core`, initial value).
    pub registers: Vec<(Signal, bool)>,
}

impl SeqCircuit {
    /// Number of registers.
    #[must_use]
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Simulates `steps` cycles from the initial state, returning the
    /// core's declared outputs at every step.
    ///
    /// `inputs[t]` supplies the primary-input values for step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() < steps` or a vector has the wrong width.
    #[must_use]
    pub fn simulate(&self, inputs: &[Vec<bool>], steps: usize) -> Vec<Vec<bool>> {
        assert!(inputs.len() >= steps, "not enough input vectors");
        let mut state: Vec<bool> = self.registers.iter().map(|&(_, init)| init).collect();
        let mut outputs = Vec::with_capacity(steps);
        for step_inputs in inputs.iter().take(steps) {
            assert_eq!(step_inputs.len(), self.num_primary_inputs);
            let mut all = step_inputs.clone();
            all.extend_from_slice(&state);
            let nets = self.core.eval_nets(&all);
            outputs.push(
                self.core
                    .outputs()
                    .iter()
                    .map(|&o| nets[o.index()])
                    .collect(),
            );
            state = self
                .registers
                .iter()
                .map(|&(next, _)| nets[next.index()])
                .collect();
        }
        outputs
    }
}

/// Unrolls `seq` for `k` steps into a combinational circuit.
///
/// The unrolled circuit's inputs are the `k` frames of primary inputs
/// (`k * num_primary_inputs` total); registers start at their initial
/// values and thread through the frames. Outputs are the core's outputs
/// of every frame, in time order.
#[must_use]
pub fn unroll(seq: &SeqCircuit, k: usize) -> Circuit {
    assert!(k >= 1);
    let npi = seq.num_primary_inputs;
    let mut out = Circuit::new(k * npi);

    // Current register nets in `out` (constants initially).
    let mut state: Vec<Signal> = seq
        .registers
        .iter()
        .map(|&(_, init)| {
            if init {
                out.constant_true()
            } else {
                out.constant_false()
            }
        })
        .collect();

    for frame in 0..k {
        // Map core nets to `out` nets for this frame.
        let mut map: Vec<Signal> = Vec::with_capacity(seq.core.num_nets());
        for i in 0..npi {
            map.push(out.input(frame * npi + i));
        }
        map.extend_from_slice(&state);
        for gate in seq.core.gates() {
            let remapped = remap(gate, &map);
            map.push(out.add_gate(remapped));
        }
        for &o in seq.core.outputs() {
            let mapped = map[o.index()];
            out.mark_output(mapped);
        }
        state = seq
            .registers
            .iter()
            .map(|&(next, _)| map[next.index()])
            .collect();
    }
    out
}

fn remap(gate: &Gate, map: &[Signal]) -> Gate {
    let f = |s: Signal| map[s.index()];
    match *gate {
        Gate::And(a, b) => Gate::And(f(a), f(b)),
        Gate::Or(a, b) => Gate::Or(f(a), f(b)),
        Gate::Xor(a, b) => Gate::Xor(f(a), f(b)),
        Gate::Nand(a, b) => Gate::Nand(f(a), f(b)),
        Gate::Nor(a, b) => Gate::Nor(f(a), f(b)),
        Gate::Xnor(a, b) => Gate::Xnor(f(a), f(b)),
        Gate::Not(a) => Gate::Not(f(a)),
        Gate::Buf(a) => Gate::Buf(f(a)),
        Gate::False => Gate::False,
        Gate::True => Gate::True,
    }
}

/// Builds an `n`-bit binary up-counter with an `enable` input. Outputs:
/// the `n` state bits followed by a **safety-property violation flag**
/// that is 1 iff the state equals `2^n − 1` *and* the parity of the
/// state bits disagrees with its recomputation — a contradiction, so
/// the flag is never 1: BMC of this flag at any depth is UNSAT.
#[must_use]
pub fn counter_with_safe_property(n: usize) -> SeqCircuit {
    assert!(n >= 2);
    let mut core = Circuit::new(1 + n); // enable + n register outputs
    let enable = core.input(0);
    let state: Vec<Signal> = (0..n).map(|i| core.input(1 + i)).collect();

    // next = state + enable (ripple increment gated by enable).
    let mut carry = enable;
    let mut next = Vec::with_capacity(n);
    for &bit in &state {
        next.push(core.xor(bit, carry));
        carry = core.and(bit, carry);
    }

    // all_ones = AND of state bits.
    let mut all_ones = state[0];
    for &bit in &state[1..] {
        all_ones = core.and(all_ones, bit);
    }
    // parity and its (inverted twice) recomputation — the two always
    // agree, making the violation flag constant false, but the SAT
    // solver must discover that through the logic.
    let mut parity_a = state[0];
    for &bit in &state[1..] {
        parity_a = core.xor(parity_a, bit);
    }
    let mut parity_b = core.buf(state[0]);
    for &bit in &state[1..] {
        // XNOR + NOT = XOR, gate-for-gate different from parity_a.
        let xn = core.xnor(parity_b, bit);
        parity_b = core.not(xn);
    }
    let disagree = core.xor(parity_a, parity_b);
    let violation = core.and(all_ones, disagree);

    for &bit in &state {
        core.mark_output(bit);
    }
    core.mark_output(violation);

    SeqCircuit {
        core,
        num_primary_inputs: 1,
        registers: next.into_iter().map(|s| (s, false)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coremax_sat::{SolveOutcome, Solver};

    #[test]
    fn counter_counts() {
        let seq = counter_with_safe_property(3);
        let inputs: Vec<Vec<bool>> = (0..10).map(|_| vec![true]).collect();
        let outs = seq.simulate(&inputs, 10);
        for (t, out) in outs.iter().enumerate() {
            let value: usize = out[..3]
                .iter()
                .enumerate()
                .map(|(i, &b)| usize::from(b) << i)
                .sum();
            assert_eq!(value, t % 8, "step {t}");
            assert!(!out[3], "violation flag raised at step {t}");
        }
    }

    #[test]
    fn counter_holds_without_enable() {
        let seq = counter_with_safe_property(2);
        let inputs: Vec<Vec<bool>> = (0..4).map(|_| vec![false]).collect();
        let outs = seq.simulate(&inputs, 4);
        for out in &outs {
            assert!(!out[0] && !out[1], "state must stay zero");
        }
    }

    #[test]
    fn unrolled_simulation_matches_sequential() {
        let seq = counter_with_safe_property(2);
        let k = 5;
        let unrolled = unroll(&seq, k);
        let inputs: Vec<Vec<bool>> =
            vec![vec![true], vec![false], vec![true], vec![true], vec![true]];
        let flat: Vec<bool> = inputs.iter().flatten().copied().collect();
        let seq_out = seq.simulate(&inputs, k);
        let unrolled_out = unrolled.eval(&flat);
        let width = seq.core.outputs().len();
        for t in 0..k {
            assert_eq!(
                &unrolled_out[t * width..(t + 1) * width],
                seq_out[t].as_slice(),
                "frame {t}"
            );
        }
    }

    #[test]
    fn bmc_of_safe_property_is_unsat() {
        let seq = counter_with_safe_property(3);
        let k = 6;
        let unrolled = unroll(&seq, k);
        let enc = crate::tseitin::encode(&unrolled);
        let width = seq.core.outputs().len();
        let mut solver = Solver::new();
        solver.add_formula(&enc.formula);
        // Assert the violation flag of some frame (here: the last).
        let violation = enc.output_lits[k * width - 1];
        solver.add_clause([violation]);
        assert_eq!(solver.solve(), SolveOutcome::Unsat);
    }

    #[test]
    fn bmc_unsat_at_every_depth() {
        let seq = counter_with_safe_property(2);
        let width = seq.core.outputs().len();
        for k in 1..=4 {
            let unrolled = unroll(&seq, k);
            let enc = crate::tseitin::encode(&unrolled);
            let mut solver = Solver::new();
            solver.add_formula(&enc.formula);
            // Violation in any frame.
            let violations: Vec<_> = (0..k)
                .map(|t| enc.output_lits[(t + 1) * width - 1])
                .collect();
            solver.add_clause(violations);
            assert_eq!(solver.solve(), SolveOutcome::Unsat, "depth {k}");
        }
    }
}
