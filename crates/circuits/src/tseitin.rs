//! Tseitin CNF encoding of circuits with clause→gate provenance.

use coremax_cnf::{CnfFormula, Lit, Var};

use crate::{Circuit, Gate};

/// The result of Tseitin-encoding a [`Circuit`].
///
/// One CNF variable per net (inputs first). `gate_clauses[g]` lists the
/// indices of the clauses that constrain gate `g`'s output — the
/// provenance needed by design debugging, where each gate's clauses
/// become one soft group.
#[derive(Debug, Clone)]
pub struct TseitinEncoding {
    /// The characteristic CNF of the circuit.
    pub formula: CnfFormula,
    /// CNF variable of each primary input.
    pub input_vars: Vec<Var>,
    /// Literal of each declared circuit output.
    pub output_lits: Vec<Lit>,
    /// For every gate, the clause indices encoding it.
    pub gate_clauses: Vec<Vec<usize>>,
}

impl TseitinEncoding {
    /// The CNF variable carrying the value of an arbitrary net.
    #[must_use]
    pub fn net_var(&self, signal: crate::Signal) -> Var {
        Var::new(signal.index() as u32)
    }
}

/// Tseitin-encodes `circuit`: every net becomes a variable and every
/// gate contributes its characteristic clauses (both implication
/// directions, so the CNF models exactly the circuit's consistent
/// valuations).
///
/// # Examples
///
/// ```
/// use coremax_circuits::{Circuit, tseitin};
/// let mut c = Circuit::new(2);
/// let g = c.and(c.input(0), c.input(1));
/// c.mark_output(g);
/// let enc = tseitin::encode(&c);
/// assert_eq!(enc.formula.num_vars(), 3);
/// assert_eq!(enc.gate_clauses[0].len(), 3); // AND has 3 clauses
/// ```
#[must_use]
pub fn encode(circuit: &Circuit) -> TseitinEncoding {
    let mut formula = CnfFormula::with_vars(circuit.num_nets());
    let mut gate_clauses = Vec::with_capacity(circuit.num_gates());
    let lit = |s: crate::Signal| Lit::positive(Var::new(s.index() as u32));

    for (g, gate) in circuit.gates().iter().enumerate() {
        let out = Lit::positive(Var::new((circuit.num_inputs() + g) as u32));
        let mut clauses = Vec::new();
        match *gate {
            Gate::And(a, b) => {
                let (a, b) = (lit(a), lit(b));
                clauses.push(formula.add_clause([!out, a]));
                clauses.push(formula.add_clause([!out, b]));
                clauses.push(formula.add_clause([!a, !b, out]));
            }
            Gate::Or(a, b) => {
                let (a, b) = (lit(a), lit(b));
                clauses.push(formula.add_clause([out, !a]));
                clauses.push(formula.add_clause([out, !b]));
                clauses.push(formula.add_clause([a, b, !out]));
            }
            Gate::Nand(a, b) => {
                let (a, b) = (lit(a), lit(b));
                clauses.push(formula.add_clause([out, a]));
                clauses.push(formula.add_clause([out, b]));
                clauses.push(formula.add_clause([!a, !b, !out]));
            }
            Gate::Nor(a, b) => {
                let (a, b) = (lit(a), lit(b));
                clauses.push(formula.add_clause([!out, !a]));
                clauses.push(formula.add_clause([!out, !b]));
                clauses.push(formula.add_clause([a, b, out]));
            }
            Gate::Xor(a, b) => {
                let (a, b) = (lit(a), lit(b));
                clauses.push(formula.add_clause([!out, a, b]));
                clauses.push(formula.add_clause([!out, !a, !b]));
                clauses.push(formula.add_clause([out, !a, b]));
                clauses.push(formula.add_clause([out, a, !b]));
            }
            Gate::Xnor(a, b) => {
                let (a, b) = (lit(a), lit(b));
                clauses.push(formula.add_clause([out, a, b]));
                clauses.push(formula.add_clause([out, !a, !b]));
                clauses.push(formula.add_clause([!out, !a, b]));
                clauses.push(formula.add_clause([!out, a, !b]));
            }
            Gate::Not(a) => {
                let a = lit(a);
                clauses.push(formula.add_clause([!out, !a]));
                clauses.push(formula.add_clause([out, a]));
            }
            Gate::Buf(a) => {
                let a = lit(a);
                clauses.push(formula.add_clause([!out, a]));
                clauses.push(formula.add_clause([out, !a]));
            }
            Gate::False => {
                clauses.push(formula.add_clause([!out]));
            }
            Gate::True => {
                clauses.push(formula.add_clause([out]));
            }
        }
        gate_clauses.push(clauses);
    }

    TseitinEncoding {
        input_vars: (0..circuit.num_inputs())
            .map(|i| Var::new(i as u32))
            .collect(),
        output_lits: circuit.outputs().iter().map(|&s| lit(s)).collect(),
        formula,
        gate_clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Signal;
    use coremax_cnf::Assignment;
    use coremax_sat::{SolveOutcome, Solver};

    /// Exhaustive consistency: for every input vector, the CNF under
    /// input assumptions has exactly the circuit's net valuation.
    fn check_encoding(circuit: &Circuit) {
        let enc = encode(circuit);
        let n = circuit.num_inputs();
        for bits in 0u32..(1 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let nets = circuit.eval_nets(&inputs);
            let mut solver = Solver::new();
            solver.add_formula(&enc.formula);
            let assumptions: Vec<Lit> = (0..n)
                .map(|i| Lit::new(Var::new(i as u32), inputs[i]))
                .collect();
            assert_eq!(
                solver.solve_with_assumptions(&assumptions),
                SolveOutcome::Sat
            );
            let model = solver.model().unwrap();
            for (net, &expected) in nets.iter().enumerate() {
                assert_eq!(
                    model.value(Var::new(net as u32)),
                    Some(expected),
                    "net {net} bits {bits:b}"
                );
            }
        }
    }

    #[test]
    fn every_gate_type_encodes_exactly() {
        let mut c = Circuit::new(2);
        let (a, b) = (c.input(0), c.input(1));
        let g1 = c.and(a, b);
        let g2 = c.or(a, g1);
        let g3 = c.xor(g2, b);
        let g4 = c.nand(g3, a);
        let g5 = c.nor(g4, b);
        let g6 = c.xnor(g5, g1);
        let g7 = c.not(g6);
        let g8 = c.buf(g7);
        c.mark_output(g8);
        check_encoding(&c);
    }

    #[test]
    fn constants_encode() {
        let mut c = Circuit::new(1);
        let t = c.constant_true();
        let f = c.constant_false();
        let o = c.and(t, f);
        c.mark_output(o);
        check_encoding(&c);
    }

    #[test]
    fn gate_clause_provenance_is_complete() {
        let mut c = Circuit::new(2);
        let g = c.xor(c.input(0), c.input(1));
        c.mark_output(g);
        let enc = encode(&c);
        // All clauses belong to the single gate.
        let total: usize = enc.gate_clauses.iter().map(Vec::len).sum();
        assert_eq!(total, enc.formula.num_clauses());
        assert_eq!(enc.gate_clauses[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn output_lits_match_declared_outputs() {
        let mut c = Circuit::new(1);
        let g = c.not(c.input(0));
        c.mark_output(g);
        c.mark_output(c.input(0));
        let enc = encode(&c);
        assert_eq!(enc.output_lits.len(), 2);
        assert_eq!(enc.output_lits[1], Lit::positive(Var::new(0)));
    }

    #[test]
    fn net_var_maps_signal() {
        let mut c = Circuit::new(1);
        let g = c.buf(c.input(0));
        c.mark_output(g);
        let enc = encode(&c);
        assert_eq!(enc.net_var(Signal(1)), Var::new(1));
    }

    #[test]
    fn model_projection_matches_simulation() {
        // Sanity for Assignment-based checks used elsewhere.
        let mut c = Circuit::new(2);
        let g = c.or(c.input(0), c.input(1));
        c.mark_output(g);
        let enc = encode(&c);
        let mut a = Assignment::for_vars(enc.formula.num_vars());
        a.assign(Var::new(0), true);
        a.assign(Var::new(1), false);
        a.assign(Var::new(2), true);
        assert_eq!(enc.formula.eval(&a), Some(true));
        a.assign(Var::new(2), false);
        assert_eq!(enc.formula.eval(&a), Some(false));
    }
}
