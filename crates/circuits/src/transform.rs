//! Equivalence-preserving structural rewrites.
//!
//! Equivalence-checking benchmarks need pairs of circuits that compute
//! the same function through different structure (the "two
//! implementations" a miter compares). These rewrites expand gates into
//! canonical NAND/NOR forms, yielding functionally identical netlists
//! with different gate counts and topology.

use crate::{Circuit, Gate, Signal};

/// Rewrites every gate into 2-input NAND + NOT form (De Morgan
/// expansions). The resulting circuit computes the same outputs.
///
/// # Examples
///
/// ```
/// use coremax_circuits::{builders, transform};
/// let a = builders::parity_tree(4);
/// let b = transform::rewrite_nand(&a);
/// assert!(b.num_gates() > a.num_gates());
/// assert_eq!(a.eval(&[true, false, true, true]), b.eval(&[true, false, true, true]));
/// ```
#[must_use]
pub fn rewrite_nand(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_inputs());
    // Maps original nets to new nets.
    let mut map: Vec<Signal> = (0..circuit.num_inputs()).map(|i| out.input(i)).collect();

    for gate in circuit.gates() {
        let m = |s: Signal, map: &[Signal]| map[s.index()];
        let new = match *gate {
            Gate::And(a, b) => {
                let (a, b) = (m(a, &map), m(b, &map));
                let n = out.nand(a, b);
                out.not(n)
            }
            Gate::Or(a, b) => {
                let (a, b) = (m(a, &map), m(b, &map));
                let na = out.not(a);
                let nb = out.not(b);
                out.nand(na, nb)
            }
            Gate::Nand(a, b) => {
                let (a, b) = (m(a, &map), m(b, &map));
                out.nand(a, b)
            }
            Gate::Nor(a, b) => {
                let (a, b) = (m(a, &map), m(b, &map));
                let na = out.not(a);
                let nb = out.not(b);
                let n = out.nand(na, nb);
                out.not(n)
            }
            Gate::Xor(a, b) => {
                // a⊕b = NAND(NAND(a, NAND(a,b)), NAND(b, NAND(a,b)))
                let (a, b) = (m(a, &map), m(b, &map));
                let nab = out.nand(a, b);
                let l = out.nand(a, nab);
                let r = out.nand(b, nab);
                out.nand(l, r)
            }
            Gate::Xnor(a, b) => {
                let (a, b) = (m(a, &map), m(b, &map));
                let nab = out.nand(a, b);
                let l = out.nand(a, nab);
                let r = out.nand(b, nab);
                let x = out.nand(l, r);
                out.not(x)
            }
            Gate::Not(a) => {
                let a = m(a, &map);
                out.not(a)
            }
            Gate::Buf(a) => {
                let a = m(a, &map);
                out.buf(a)
            }
            Gate::False => out.constant_false(),
            Gate::True => out.constant_true(),
        };
        map.push(new);
    }
    for &o in circuit.outputs() {
        let mapped = map[o.index()];
        out.mark_output(mapped);
    }
    out
}

/// Rewrites every gate into NOR + NOT form.
#[must_use]
pub fn rewrite_nor(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_inputs());
    let mut map: Vec<Signal> = (0..circuit.num_inputs()).map(|i| out.input(i)).collect();

    for gate in circuit.gates() {
        let m = |s: Signal, map: &[Signal]| map[s.index()];
        let new = match *gate {
            Gate::Or(a, b) => {
                let (a, b) = (m(a, &map), m(b, &map));
                let n = out.nor(a, b);
                out.not(n)
            }
            Gate::And(a, b) => {
                let (a, b) = (m(a, &map), m(b, &map));
                let na = out.not(a);
                let nb = out.not(b);
                out.nor(na, nb)
            }
            Gate::Nor(a, b) => {
                let (a, b) = (m(a, &map), m(b, &map));
                out.nor(a, b)
            }
            Gate::Nand(a, b) => {
                let (a, b) = (m(a, &map), m(b, &map));
                let na = out.not(a);
                let nb = out.not(b);
                let n = out.nor(na, nb);
                out.not(n)
            }
            Gate::Xor(a, b) => {
                // a⊕b = NOR(NOR(a,b), NOR(¬a,¬b)) = (a∨b) ∧ (¬a∨¬b)
                let (a, b) = (m(a, &map), m(b, &map));
                let n1 = out.nor(a, b);
                let na = out.not(a);
                let nb = out.not(b);
                let n2 = out.nor(na, nb);
                out.nor(n1, n2)
            }
            Gate::Xnor(a, b) => {
                let (a, b) = (m(a, &map), m(b, &map));
                let n1 = out.nor(a, b);
                let na = out.not(a);
                let nb = out.not(b);
                let n2 = out.nor(na, nb);
                let x = out.nor(n1, n2);
                out.not(x)
            }
            Gate::Not(a) => {
                let a = m(a, &map);
                out.not(a)
            }
            Gate::Buf(a) => {
                let a = m(a, &map);
                out.buf(a)
            }
            Gate::False => out.constant_false(),
            Gate::True => out.constant_true(),
        };
        map.push(new);
    }
    for &o in circuit.outputs() {
        let mapped = map[o.index()];
        out.mark_output(mapped);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn check_equivalent(a: &Circuit, b: &Circuit) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        let n = a.num_inputs();
        assert!(n <= 10, "exhaustive check limit");
        for bits in 0u64..(1 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(a.eval(&inputs), b.eval(&inputs), "bits={bits:b}");
        }
    }

    #[test]
    fn nand_rewrite_preserves_adder() {
        let a = builders::ripple_carry_adder(3);
        let b = rewrite_nand(&a);
        check_equivalent(&a, &b);
        assert!(b.num_gates() > a.num_gates());
    }

    #[test]
    fn nor_rewrite_preserves_adder() {
        let a = builders::ripple_carry_adder(3);
        let b = rewrite_nor(&a);
        check_equivalent(&a, &b);
    }

    #[test]
    fn rewrites_preserve_all_gate_types() {
        let mut c = Circuit::new(3);
        let (x, y, z) = (c.input(0), c.input(1), c.input(2));
        let g1 = c.xnor(x, y);
        let g2 = c.nor(g1, z);
        let g3 = c.nand(g2, x);
        let g4 = c.xor(g3, g1);
        let t = c.constant_true();
        let g5 = c.and(g4, t);
        c.mark_output(g5);
        check_equivalent(&c, &rewrite_nand(&c));
        check_equivalent(&c, &rewrite_nor(&c));
    }

    #[test]
    fn rewrite_of_comparator() {
        let a = builders::comparator(3);
        check_equivalent(&a, &rewrite_nand(&a));
        check_equivalent(&a, &rewrite_nor(&a));
    }
}
