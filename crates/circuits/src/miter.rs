//! Miter construction for combinational equivalence checking.

use crate::{Circuit, Gate, Signal};

/// Builds the miter of two circuits with identical interfaces: shared
/// primary inputs, per-output XOR differences, OR-reduced into a single
/// output that is 1 iff the circuits disagree on some output.
///
/// Asserting the miter output true and handing the Tseitin CNF to a SAT
/// solver is the classic equivalence check: **UNSAT ⟺ equivalent** —
/// the source of the paper's equivalence-checking benchmark family.
///
/// Returns `None` if the interfaces (input/output counts) differ.
#[must_use]
pub fn build_miter(a: &Circuit, b: &Circuit) -> Option<Circuit> {
    if a.num_inputs() != b.num_inputs() || a.outputs().len() != b.outputs().len() {
        return None;
    }
    let n = a.num_inputs();
    let mut m = Circuit::new(n);

    // Instantiate circuit A.
    let mut map_a: Vec<Signal> = (0..n).map(|i| m.input(i)).collect();
    for gate in a.gates() {
        let remapped = remap(gate, &map_a);
        map_a.push(m.add_gate(remapped));
    }
    // Instantiate circuit B on the same inputs.
    let mut map_b: Vec<Signal> = (0..n).map(|i| m.input(i)).collect();
    for gate in b.gates() {
        let remapped = remap(gate, &map_b);
        map_b.push(m.add_gate(remapped));
    }
    // XOR corresponding outputs, OR-reduce.
    let mut diff: Option<Signal> = None;
    for (&oa, &ob) in a.outputs().iter().zip(b.outputs()) {
        let x = m.xor(map_a[oa.index()], map_b[ob.index()]);
        diff = Some(match diff {
            None => x,
            Some(d) => m.or(d, x),
        });
    }
    m.mark_output(diff.expect("at least one output"));
    Some(m)
}

fn remap(gate: &Gate, map: &[Signal]) -> Gate {
    let f = |s: Signal| map[s.index()];
    match *gate {
        Gate::And(a, b) => Gate::And(f(a), f(b)),
        Gate::Or(a, b) => Gate::Or(f(a), f(b)),
        Gate::Xor(a, b) => Gate::Xor(f(a), f(b)),
        Gate::Nand(a, b) => Gate::Nand(f(a), f(b)),
        Gate::Nor(a, b) => Gate::Nor(f(a), f(b)),
        Gate::Xnor(a, b) => Gate::Xnor(f(a), f(b)),
        Gate::Not(a) => Gate::Not(f(a)),
        Gate::Buf(a) => Gate::Buf(f(a)),
        Gate::False => Gate::False,
        Gate::True => Gate::True,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builders, transform, tseitin};
    use coremax_sat::{SolveOutcome, Solver};

    fn miter_unsat(a: &Circuit, b: &Circuit) -> bool {
        let m = build_miter(a, b).expect("same interface");
        let enc = tseitin::encode(&m);
        let mut solver = Solver::new();
        solver.add_formula(&enc.formula);
        solver.add_clause([enc.output_lits[0]]);
        solver.solve() == SolveOutcome::Unsat
    }

    #[test]
    fn equivalent_adders_give_unsat_miter() {
        let a = builders::ripple_carry_adder(3);
        let b = builders::majority_adder(3);
        assert!(miter_unsat(&a, &b));
    }

    #[test]
    fn rewritten_circuits_equivalent() {
        let a = builders::comparator(3);
        assert!(miter_unsat(&a, &transform::rewrite_nand(&a)));
        assert!(miter_unsat(&a, &transform::rewrite_nor(&a)));
    }

    #[test]
    fn inequivalent_circuits_give_sat_miter() {
        let a = builders::parity_tree(4);
        // An almost-parity: drop one input.
        let mut b = Circuit::new(4);
        let x0 = b.input(0);
        let x1 = b.input(1);
        let x2 = b.input(2);
        let t = b.xor(x0, x1);
        let o = b.xor(t, x2);
        b.mark_output(o);
        assert!(!miter_unsat(&a, &b));
    }

    #[test]
    fn interface_mismatch_rejected() {
        let a = builders::parity_tree(3);
        let b = builders::parity_tree(4);
        assert!(build_miter(&a, &b).is_none());
    }

    #[test]
    fn miter_simulation_detects_difference() {
        let a = builders::parity_tree(3);
        let b = builders::parity_chain(3);
        // Break b: flip its output with an inverter.
        let old = b.outputs()[0];
        let mut broken = Circuit::new(3);
        let mut map: Vec<Signal> = (0..3).map(|i| broken.input(i)).collect();
        for g in b.gates() {
            let remapped = remap(g, &map);
            map.push(broken.add_gate(remapped));
        }
        let inv = broken.not(map[old.index()]);
        broken.mark_output(inv);
        let m = build_miter(&a, &broken).unwrap();
        // Disagrees everywhere: miter is 1 for any input.
        assert!(m.eval(&[false, false, false])[0]);
        assert!(m.eval(&[true, true, false])[0]);
    }
}
