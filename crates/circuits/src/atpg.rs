//! Stuck-at-fault automatic test-pattern generation (ATPG) instances.
//!
//! A stuck-at fault fixes one net to a constant. The SAT formulation
//! builds a miter between the fault-free and faulty circuits and asks
//! for an input vector exposing a difference: **SAT ⟺ testable**.
//! Untestable (redundant) faults yield unsatisfiable CNF — the paper's
//! test-pattern-generation benchmark family. [`with_redundant_logic`]
//! plants provably redundant nets so that untestable faults can be
//! generated on demand.

use crate::{miter, Circuit, Gate, Signal};

/// A single stuck-at fault: `net` is fixed to `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckAtFault {
    /// The faulty net.
    pub net: Signal,
    /// The stuck value.
    pub value: bool,
}

/// Builds a copy of `circuit` with `fault` injected: the faulty net is
/// replaced by a constant, downstream logic reads the constant.
///
/// # Panics
///
/// Panics if the fault net does not exist.
#[must_use]
pub fn inject_fault(circuit: &Circuit, fault: StuckAtFault) -> Circuit {
    assert!(fault.net.index() < circuit.num_nets(), "unknown net");
    let mut out = Circuit::new(circuit.num_inputs());
    let mut map: Vec<Signal> = Vec::with_capacity(circuit.num_nets());
    // Inputs map to themselves unless faulty.
    let constant = |out: &mut Circuit, v: bool| {
        if v {
            out.constant_true()
        } else {
            out.constant_false()
        }
    };
    for i in 0..circuit.num_inputs() {
        let s = out.input(i);
        if fault.net.index() == i {
            let c = constant(&mut out, fault.value);
            map.push(c);
        } else {
            map.push(s);
        }
    }
    for (g, gate) in circuit.gates().iter().enumerate() {
        let f = |s: Signal| map[s.index()];
        let remapped = match *gate {
            Gate::And(a, b) => Gate::And(f(a), f(b)),
            Gate::Or(a, b) => Gate::Or(f(a), f(b)),
            Gate::Xor(a, b) => Gate::Xor(f(a), f(b)),
            Gate::Nand(a, b) => Gate::Nand(f(a), f(b)),
            Gate::Nor(a, b) => Gate::Nor(f(a), f(b)),
            Gate::Xnor(a, b) => Gate::Xnor(f(a), f(b)),
            Gate::Not(a) => Gate::Not(f(a)),
            Gate::Buf(a) => Gate::Buf(f(a)),
            Gate::False => Gate::False,
            Gate::True => Gate::True,
        };
        let new = out.add_gate(remapped);
        if fault.net.index() == circuit.num_inputs() + g {
            let c = constant(&mut out, fault.value);
            map.push(c);
        } else {
            map.push(new);
        }
    }
    for &o in circuit.outputs() {
        let mapped = map[o.index()];
        out.mark_output(mapped);
    }
    out
}

/// Builds the ATPG miter for `fault` on `circuit`: output 1 iff some
/// input vector distinguishes faulty from fault-free behaviour.
/// Assert the output and solve: SAT gives a test pattern, UNSAT proves
/// the fault untestable.
#[must_use]
pub fn atpg_miter(circuit: &Circuit, fault: StuckAtFault) -> Circuit {
    let faulty = inject_fault(circuit, fault);
    miter::build_miter(circuit, &faulty).expect("identical interfaces by construction")
}

/// Appends provably redundant logic to `circuit`: for a fresh internal
/// net `r = x ∧ ¬x` (constant 0), each output `o` is replaced by
/// `o ∨ r`. The circuit's function is unchanged, and the fault
/// "`r` stuck-at-0" is untestable. Returns the modified circuit and the
/// redundant net.
#[must_use]
pub fn with_redundant_logic(circuit: &Circuit) -> (Circuit, Signal) {
    let mut out = circuit.clone();
    let x = out.input(0);
    let nx = out.not(x);
    let r = out.and(x, nx); // constant false, but structurally hidden
    let outputs: Vec<Signal> = out.outputs().to_vec();
    let mut new_outputs = Vec::with_capacity(outputs.len());
    for o in outputs {
        new_outputs.push(out.or(o, r));
    }
    let mut rebuilt = Circuit::new(out.num_inputs());
    for g in out.gates() {
        rebuilt.add_gate(*g);
    }
    for o in new_outputs {
        rebuilt.mark_output(o);
    }
    (rebuilt, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{builders, tseitin};
    use coremax_sat::{SolveOutcome, Solver};

    fn atpg_outcome(circuit: &Circuit, fault: StuckAtFault) -> SolveOutcome {
        let m = atpg_miter(circuit, fault);
        let enc = tseitin::encode(&m);
        let mut solver = Solver::new();
        solver.add_formula(&enc.formula);
        solver.add_clause([enc.output_lits[0]]);
        solver.solve()
    }

    #[test]
    fn input_fault_on_adder_is_testable() {
        let c = builders::ripple_carry_adder(3);
        let fault = StuckAtFault {
            net: c.input(0),
            value: false,
        };
        assert_eq!(atpg_outcome(&c, fault), SolveOutcome::Sat);
    }

    #[test]
    fn internal_fault_on_parity_is_testable() {
        let c = builders::parity_tree(4);
        // First XOR gate output.
        let fault = StuckAtFault {
            net: Signal(4),
            value: true,
        };
        assert_eq!(atpg_outcome(&c, fault), SolveOutcome::Sat);
    }

    #[test]
    fn redundant_fault_is_untestable() {
        let base = builders::comparator(3);
        let (c, r) = with_redundant_logic(&base);
        // Function preserved.
        for bits in 0u64..(1 << 6) {
            let inputs: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(base.eval(&inputs), c.eval(&inputs));
        }
        let fault = StuckAtFault {
            net: r,
            value: false,
        };
        assert_eq!(atpg_outcome(&c, fault), SolveOutcome::Unsat);
    }

    #[test]
    fn injected_fault_changes_function() {
        let c = builders::parity_tree(3);
        let faulty = inject_fault(
            &c,
            StuckAtFault {
                net: c.input(1),
                value: true,
            },
        );
        // With x1 stuck-at-1, input (F,F,F) gives parity 1 instead of 0.
        assert!(!c.eval(&[false, false, false])[0]);
        assert!(faulty.eval(&[false, false, false])[0]);
        // Where x1 is already 1, behaviour matches.
        assert_eq!(
            c.eval(&[true, true, false]),
            faulty.eval(&[true, true, false])
        );
    }

    #[test]
    fn fault_on_gate_net() {
        let mut c = Circuit::new(2);
        let g = c.and(c.input(0), c.input(1));
        c.mark_output(g);
        let faulty = inject_fault(
            &c,
            StuckAtFault {
                net: g,
                value: true,
            },
        );
        assert!(faulty.eval(&[false, false])[0]);
    }
}
